// Experiment A1 (paper §IV-A, [72] burden and [73] NAWB): sweep the
// planted bias level and show that (a) the burden gap between groups grows
// with bias and (b) NAWB separates groups when false-negative rates
// differ. Expected shape: both gaps ~0 at zero bias and monotone-ish
// increasing in the planted shift.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/burden.h"
#include "src/util/table.h"

namespace xfair {
namespace {

struct SweepPoint {
  double shift;
  BurdenReport burden;
  NawbReport nawb;
};

const std::vector<SweepPoint>& Sweep() {
  static const std::vector<SweepPoint>* points = [] {
    auto* out = new std::vector<SweepPoint>();
    for (double shift : {0.0, 0.4, 0.8, 1.2}) {
      BiasConfig cfg;
      cfg.score_shift = shift;
      cfg.label_bias = 0.05 * shift;
      Dataset data = CreditGen(cfg).Generate(900, 71);
      LogisticRegression model;
      XFAIR_CHECK(model.Fit(data).ok());
      Rng rng(72);
      SweepPoint p;
      p.shift = shift;
      p.burden = ComputeBurden(model, data, BurdenScope::kAllNegatives, {},
                               &rng);
      p.nawb = ComputeNawb(model, data, {}, &rng);
      out->push_back(p);
    }
    return out;
  }();
  return *points;
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  AsciiTable t({"planted shift", "burden G+", "burden G-", "burden gap",
                "NAWB G+", "NAWB G-", "NAWB gap"});
  for (const auto& p : Sweep()) {
    t.AddRow({FormatDouble(p.shift, 1),
              FormatDouble(p.burden.burden_protected),
              FormatDouble(p.burden.burden_non_protected),
              FormatDouble(p.burden.burden_gap),
              FormatDouble(p.nawb.nawb_protected, 4),
              FormatDouble(p.nawb.nawb_non_protected, 4),
              FormatDouble(p.nawb.nawb_gap, 4)});
  }
  std::printf("\n=== A1: burden [72] and NAWB [73] vs planted bias ===\n"
              "Expected shape: gaps ~0 at shift 0, increasing with shift.\n"
              "%s\n",
              t.ToString().c_str());
}

void BM_Burden(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data =
      CreditGen(cfg).Generate(static_cast<size_t>(state.range(0)), 73);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  Rng rng(74);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeBurden(model, data, BurdenScope::kAllNegatives, {}, &rng));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Burden)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_Nawb(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 75);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  Rng rng(76);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeNawb(model, data, {}, &rng));
  }
}
BENCHMARK(BM_Nawb)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
