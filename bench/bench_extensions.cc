// Experiment A11 (paper §V future directions, implemented here as
// extensions): diverse counterfactual sets, fairness *of* explanations
// ([41]-[43], paper §II), dynamic fairness monitoring under distribution
// shift, the combined utility-fairness-explainability score, and
// multiclass parity profiles.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/data/generators.h"
#include "src/explain/diverse.h"
#include "src/fairness/drift.h"
#include "src/fairness/tradeoff.h"
#include "src/mitigate/inprocess.h"
#include "src/model/logistic_regression.h"
#include "src/model/softmax_regression.h"
#include "src/unfair/explanation_quality.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(900, 171);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());

  // Diverse counterfactual sets.
  {
    Rng rng(172);
    AsciiTable t({"k requested", "k found", "min pairwise dist",
                  "mean cost"});
    size_t neg = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (model.Predict(data.instance(i)) == 0) {
        neg = i;
        break;
      }
    }
    for (size_t k : {1, 3, 5}) {
      DiverseCfOptions opts;
      opts.k = k;
      auto set = GenerateDiverseCounterfactuals(
          model, data.schema(), data.instance(neg), opts, &rng);
      t.AddRow({std::to_string(k), std::to_string(set.results.size()),
                FormatDouble(set.min_pairwise_distance),
                FormatDouble(set.mean_cost)});
    }
    std::printf("\n=== A11a: diverse counterfactual sets (SV) ===\n"
                "Expected shape: more requested CFs cost more on average "
                "(later ones take longer routes) while staying "
                "separated.\n%s\n",
                t.ToString().c_str());
  }

  // Fairness of explanations.
  {
    Rng rng(173);
    ExplanationQualityOptions opts;
    opts.sample_per_group = 20;
    auto r = AuditExplanationQuality(model, data, opts, &rng);
    AsciiTable t({"quality metric", "G+", "G-", "gap"});
    t.AddRow({"local fidelity (R^2)", FormatDouble(r.fidelity_protected),
              FormatDouble(r.fidelity_non_protected),
              FormatDouble(r.fidelity_gap)});
    t.AddRow({"instability (lower=better)",
              FormatDouble(r.instability_protected),
              FormatDouble(r.instability_non_protected),
              FormatDouble(r.instability_gap)});
    t.AddRow({"CF sparsity", FormatDouble(r.cf_sparsity_protected, 1),
              FormatDouble(r.cf_sparsity_non_protected, 1),
              FormatDouble(r.cf_sparsity_gap, 1)});
    std::printf("=== A11b: fairness of explanations [41]-[43] ===\n"
                "Expected shape: per-group explanation quality compared "
                "as in [41]; large gaps flag second-order unfairness.\n"
                "%s\n",
                t.ToString().c_str());
  }

  // Drift monitoring.
  {
    BiasConfig fair;
    fair.score_shift = 0.0;
    fair.label_bias = 0.0;
    fair.proxy_strength = 0.0;
    fair.qualification_gap = 0.0;
    Dataset fair_train = CreditGen(fair).Generate(800, 174);
    LogisticRegression fair_model;
    XFAIR_CHECK(fair_model.Fit(fair_train).ok());
    DriftMonitorOptions opts;
    opts.tolerance = 0.08;
    opts.patience = 2;
    FairnessDriftMonitor monitor(opts);
    AsciiTable t({"batch", "world shift", "parity gap", "alarm"});
    for (uint64_t b = 0; b < 8; ++b) {
      BiasConfig drifting;
      drifting.score_shift = 0.25 * static_cast<double>(b);
      drifting.qualification_gap = 0.25 * static_cast<double>(b);
      const double gap = monitor.ObserveBatch(
          fair_model, CreditGen(drifting).Generate(500, 500 + b));
      t.AddRow({std::to_string(b),
                FormatDouble(0.25 * static_cast<double>(b), 2),
                FormatDouble(gap), monitor.alarm() ? "YES" : "-"});
    }
    std::printf("=== A11c: dynamic fairness monitoring (SV) ===\n"
                "Expected shape: gap trends up with the population shift "
                "(trend slope %.3f/batch) and the alarm latches.\n%s\n",
                monitor.TrendSlope(), t.ToString().c_str());
  }

  // Combined tradeoff frontier.
  {
    AsciiTable t({"model", "utility", "fairness", "explainability",
                  "combined"});
    auto add = [&](const char* name, const Model& m) {
      auto s = EvaluateTradeoff(m, data);
      t.AddRow({name, FormatDouble(s.utility), FormatDouble(s.fairness),
                FormatDouble(s.explainability),
                FormatDouble(s.combined)});
    };
    add("baseline logistic", model);
    for (double lambda : {2.0, 20.0}) {
      FairTrainingOptions opts;
      opts.lambda = lambda;
      auto fair_model = TrainFairLogisticRegression(data, opts);
      XFAIR_CHECK(fair_model.ok());
      add(lambda < 10 ? "parity penalty lambda=2"
                      : "parity penalty lambda=20",
          *fair_model);
    }
    std::printf("=== A11d: combined utility-fairness-explainability "
                "score (SV) ===\nExpected shape: penalized models trade "
                "utility for fairness; the geometric mean rewards "
                "balance.\n%s\n",
                t.ToString().c_str());
  }

  // Multiclass parity profile.
  {
    AsciiTable t({"planted shift", "accuracy", "parity gap",
                  "deny tier", "review tier", "approve tier"});
    for (double shift : {0.0, 0.6, 1.2}) {
      auto mc = GenerateMulticlassCredit(2500, shift, 175);
      SoftmaxRegression sm;
      XFAIR_CHECK(sm.Fit(mc.x, mc.labels, 3).ok());
      const Vector profile =
          MulticlassParityProfile(sm, mc.x, mc.groups);
      t.AddRow({FormatDouble(shift, 1),
                FormatDouble(MulticlassAccuracy(sm, mc.x, mc.labels)),
                FormatDouble(MulticlassParityGap(sm, mc.x, mc.groups)),
                FormatDouble(profile[0]), FormatDouble(profile[1]),
                FormatDouble(profile[2])});
    }
    std::printf("=== A11e: multiclass fairness (SV gap) ===\nExpected "
                "shape: gap grows with the planted shift; the profile "
                "shows G+ pushed into the deny tier and out of the "
                "approve tier.\n%s\n",
                t.ToString().c_str());
  }
}

void BM_DiverseCf(benchmark::State& state) {
  PrintOnce();
  Dataset data = CreditGen().Generate(400, 176);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  size_t neg = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.instance(i)) == 0) {
      neg = i;
      break;
    }
  }
  Rng rng(177);
  DiverseCfOptions opts;
  opts.k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateDiverseCounterfactuals(
        model, data.schema(), data.instance(neg), opts, &rng));
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_DiverseCf)->Arg(1)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

void BM_ExplanationQualityAudit(benchmark::State& state) {
  PrintOnce();
  Dataset data = CreditGen().Generate(500, 178);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  Rng rng(179);
  ExplanationQualityOptions opts;
  opts.sample_per_group = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AuditExplanationQuality(model, data, opts, &rng));
  }
}
BENCHMARK(BM_ExplanationQualityAudit)->Unit(benchmark::kMillisecond);

void BM_SoftmaxTraining(benchmark::State& state) {
  PrintOnce();
  auto mc = GenerateMulticlassCredit(
      static_cast<size_t>(state.range(0)), 1.0, 180);
  for (auto _ : state) {
    SoftmaxRegression sm;
    benchmark::DoNotOptimize(sm.Fit(mc.x, mc.labels, 3));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SoftmaxTraining)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
