// Experiment A5 (paper §IV-B, fairness Shapley [81] and causal-path
// decomposition [82]):
//  a. Feature-level decomposition of the parity gap: the sensitive column
//     dominates for a directly-discriminating model; proxies take over
//     when the sensitive column is dropped.
//  b. Sampled-Shapley convergence to exact values.
//  c. Feature vs path attribution under a proxy chain: the feature view
//     lumps everything on the terminal features; the path view separates
//     S -> income from S -> income -> savings.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_json.h"
#include "src/causal/worlds.h"
#include "src/data/generators.h"
#include "src/explain/shap.h"
#include "src/explain/tree_shap.h"
#include "src/model/decision_tree.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/fairness_shap.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // a. Feature-level fairness Shapley, with and without the sensitive
  // column available to the model.
  {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    cfg.proxy_strength = 0.8;
    Dataset data = CreditGen(cfg).Generate(900, 111);
    LogisticRegression with_s;
    XFAIR_CHECK(with_s.Fit(data).ok());
    auto direct = ExplainParityWithShapley(with_s, data, {});

    Dataset blind = data.WithoutFeature(0);
    LogisticRegression without_s;
    XFAIR_CHECK(without_s.Fit(blind).ok());
    auto proxy = ExplainParityWithShapley(without_s, blind, {});

    AsciiTable t({"setting", "parity gap", "top contributor", "phi(top)",
                  "phi(zip_risk)"});
    auto zip_direct = data.schema().IndexOf("zip_risk");
    t.AddRow({"model sees 'protected'", FormatDouble(direct.full_gap),
              direct.feature_names[direct.ranked_features[0]],
              FormatDouble(direct.contributions[direct.ranked_features[0]]),
              FormatDouble(direct.contributions[*zip_direct])});
    auto zip_blind = blind.schema().IndexOf("zip_risk");
    t.AddRow({"'protected' dropped", FormatDouble(proxy.full_gap),
              proxy.feature_names[proxy.ranked_features[0]],
              FormatDouble(proxy.contributions[proxy.ranked_features[0]]),
              FormatDouble(proxy.contributions[*zip_blind])});
    std::printf("\n=== A5a: fairness Shapley [81] — direct vs proxy "
                "discrimination ===\nExpected shape: with the sensitive "
                "column present it carries a dominant share; once "
                "dropped, the residual gap is attributed to proxies "
                "(zip_risk and depressed qualifications).\n%s\n",
                t.ToString().c_str());
  }

  // b. Sampled convergence on a fixed random game.
  {
    Rng table_rng(112);
    Vector game(1u << 8);
    for (double& v : game) v = table_rng.Uniform(-1, 1);
    CoalitionValue value = [&](const std::vector<bool>& mask) {
      size_t s = 0;
      for (size_t i = 0; i < mask.size(); ++i)
        if (mask[i]) s |= (1u << i);
      return game[s];
    };
    const Vector exact = ExactShapley(value, 8);
    AsciiTable t({"permutations", "max |error| vs exact"});
    for (size_t perms : {10, 40, 160, 640}) {
      Rng rng(113);
      const Vector sampled = SampledShapley(value, 8, perms, &rng);
      double err = 0.0;
      for (size_t i = 0; i < 8; ++i)
        err = std::max(err, std::fabs(sampled[i] - exact[i]));
      t.AddRow({std::to_string(perms), FormatDouble(err, 4)});
    }
    std::printf("=== A5b: sampled Shapley convergence ===\nExpected "
                "shape: error decreasing roughly as 1/sqrt("
                "permutations).\n%s\n",
                t.ToString().c_str());
  }

  // c. Path vs feature attribution in the causal world.
  {
    CausalWorld world = MakeCreditWorld(1.0);
    LogisticRegression model;
    model.SetParameters({0.0, 0.4, 0.35, -0.3, 0.2}, -2.5);
    auto report = DecomposeDisparityByPaths(model, world, 4000, 114);
    AsciiTable t({"causal path", "transmitted shift",
                  "disparity contribution"});
    for (const auto& p : report.paths) {
      t.AddRow({p.description, FormatDouble(p.transmitted_shift),
                FormatDouble(p.score_contribution)});
    }
    t.AddRow({"(sum of paths)", "-",
              FormatDouble(report.explained_disparity)});
    t.AddRow({"(actual disparity)", "-",
              FormatDouble(report.total_disparity)});
    std::printf("=== A5c: causal-path decomposition [82] ===\nExpected "
                "shape: the S->income and S->income->savings paths carry "
                "most of the disparity; the sum of path contributions "
                "approximates the actual total.\n%s\n",
                t.ToString().c_str());
  }

  // Generic coalition enumeration vs the interventional-TreeSHAP fast
  // path on a tree model (same game, same attributions), plus the
  // slice-scale audit throughput of the batched thresholded sweep
  // (DESIGN §10) vs its looped per-row reference, all written to
  // BENCH_fairness_shap.json.
  {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    Dataset data = CreditGen(cfg).Generate(900, 118);
    DecisionTree model;
    XFAIR_CHECK(model.Fit(data).ok());
    FairnessShapOptions generic;
    generic.use_tree_fast_path = false;
    FairnessShapOptions fast;  // Tree fast path on by default.

    // Audit throughput: the batched thresholded sweep vs its looped
    // per-row reference on the credit audit slice — the engine inner
    // loop FairnessShapBatch dispatches on. The game is exactly the
    // slice's parity-gap decomposition: column-mean background and
    // +-1/count[g] per-row weights. The engine-independent endpoint-gap
    // evaluations are excluded so the field tracks the sweep itself;
    // both engines are bit-identical by construction.
    constexpr size_t kAuditRows = 8192;
    Dataset audit = CreditGen(cfg).Generate(kAuditRows, 119);
    DecisionTree audit_model;
    XFAIR_CHECK(audit_model.Fit(audit).ok());
    const size_t ad = audit.num_features();
    std::vector<size_t> slice(audit.size());
    for (size_t i = 0; i < slice.size(); ++i) slice[i] = i;
    Vector background(ad, 0.0);
    for (size_t i = 0; i < audit.size(); ++i)
      for (size_t c = 0; c < ad; ++c) background[c] += audit.x().At(i, c);
    for (size_t c = 0; c < ad; ++c)
      background[c] /= static_cast<double>(audit.size());
    size_t count[2] = {0, 0};
    for (size_t i = 0; i < audit.size(); ++i) ++count[audit.group(i)];
    Vector weights(audit.size());
    for (size_t i = 0; i < audit.size(); ++i) {
      weights[i] = audit.group(i) == 0
                       ? 1.0 / static_cast<double>(count[0])
                       : -1.0 / static_cast<double>(count[1]);
    }
    const double tau = audit_model.threshold();
    const std::string extra = MeasureThroughputExtra(
        "audit_rows", kAuditRows,
        [&] {
          benchmark::DoNotOptimize(InterventionalTreeShapThresholded(
              audit_model, audit.x(), slice, weights, background, tau));
        },
        [&] {
          benchmark::DoNotOptimize(InterventionalTreeShapThresholdedLooped(
              audit_model, audit.x(), slice, weights, background, tau));
        },
        /*repeats=*/7);

    RecordAlgoSpeedup(
        "fairness_shap",
        [&] {
          benchmark::DoNotOptimize(
              ExplainParityWithShapley(model, data, generic));
        },
        [&] {
          benchmark::DoNotOptimize(
              ExplainParityWithShapley(model, data, fast));
        },
        /*repeats=*/3, extra);
  }
}

void BM_FairnessShapMask(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data =
      CreditGen(cfg).Generate(static_cast<size_t>(state.range(0)), 115);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainParityWithShapley(model, data, {}));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FairnessShapMask)->Arg(300)->Arg(900)
    ->Unit(benchmark::kMillisecond);

void BM_FairnessShapRetrain(benchmark::State& state) {
  PrintOnce();
  Dataset full = CreditGen().Generate(250, 116);
  // Narrow to 4 features so the 2^d retrains stay tractable.
  Dataset data = full;
  for (int c = static_cast<int>(full.num_features()) - 1; c >= 0; --c) {
    if (c == 0 || c == 2 || c == 3 || c == 7) continue;
    data = data.WithoutFeature(static_cast<size_t>(c));
  }
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  FairnessShapOptions opts;
  opts.mode = FairnessShapMode::kRetrain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainParityWithShapley(model, data, opts));
  }
}
BENCHMARK(BM_FairnessShapRetrain)->Unit(benchmark::kMillisecond);

void BM_CausalPathDecomposition(benchmark::State& state) {
  PrintOnce();
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression model;
  model.SetParameters({0.0, 0.4, 0.35, -0.3, 0.2}, -2.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeDisparityByPaths(
        model, world, static_cast<size_t>(state.range(0)), 117));
  }
  state.SetLabel("samples=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CausalPathDecomposition)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
