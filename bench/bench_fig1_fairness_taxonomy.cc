// Experiment F1 — regenerates Figure 1 ("Taxonomy of Fairness
// Approaches") as an executable artifact: every leaf of the taxonomy
// (level x criterion x mitigation stage x task) is exercised on the
// planted-bias fixtures and printed with a live measured value, so the
// figure's structure is backed by running code rather than citations.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/core/registry.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/individual_metrics.h"
#include "src/fairness/ranking_metrics.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/rec/recwalk.h"
#include "src/util/table.h"

namespace xfair {
namespace {

const RunContext& Ctx() {
  static const RunContext* ctx = new RunContext(RunContext::Make(41));
  return *ctx;
}

std::string F(double v) { return FormatDouble(v, 3); }

void PrintLevelAndCriteria() {
  const RunContext& ctx = Ctx();
  AsciiTable t({"Branch", "Leaf", "Metric", "Measured"});

  // Group / observational: base rates, accuracy-based, calibration.
  GroupFairnessReport g = EvaluateGroupFairness(ctx.credit_model, ctx.credit);
  t.AddRow({"Level: group", "base rates", "statistical parity diff",
            F(g.statistical_parity_difference)});
  t.AddRow({"Level: group", "base rates", "disparate impact ratio",
            F(g.disparate_impact_ratio)});
  t.AddRow({"Level: group", "accuracy-based", "equal opportunity diff",
            F(g.equal_opportunity_difference)});
  t.AddRow({"Level: group", "accuracy-based", "equalized odds diff",
            F(g.equalized_odds_difference)});
  t.AddRow({"Level: group", "accuracy-based", "predictive parity diff",
            F(g.predictive_parity_difference)});
  t.AddRow({"Level: group", "calibration-based", "calibration gap",
            F(g.calibration_gap)});

  // Individual / observational: distance-based.
  Rng rng(1);
  t.AddRow({"Level: individual", "distance-based",
            "Lipschitz violations (L=0.5)",
            F(LipschitzViolationRate(ctx.credit_model, ctx.credit, 0.5,
                                     2000, &rng))});
  t.AddRow({"Level: individual", "distance-based", "kNN consistency (k=5)",
            F(KnnConsistency(ctx.credit_model, ctx.credit, 5))});

  // Individual / causal: counterfactual fairness.
  t.AddRow({"Criteria: causal", "counterfactual fairness",
            "CF fairness gap (flip S)",
            F(CounterfactualFairnessGap(ctx.world_model, ctx.world, 500,
                                        2))});
  t.AddRow({"Criteria: causal", "causal effect",
            "total effect of S on income",
            F(ctx.world.scm.TotalEffect(
                ctx.world.sensitive,
                *ctx.world.scm.dag().IndexOf("income"), 0.0, 1.0))});
  std::printf("\n=== Figure 1 (a): level & criteria, measured ===\n%s\n",
              t.ToString().c_str());
}

void PrintMitigationStages() {
  const RunContext& ctx = Ctx();
  AsciiTable t({"Stage", "Method", "Parity gap", "Accuracy"});
  const double base_gap =
      StatisticalParityDifference(ctx.credit_model, ctx.credit);
  t.AddRow({"(none)", "baseline logistic", F(base_gap),
            F(Accuracy(ctx.credit_model, ctx.credit))});

  LogisticRegression reweighed;
  XFAIR_CHECK(
      reweighed.Fit(ctx.credit, {}, ReweighingWeights(ctx.credit)).ok());
  t.AddRow({"Pre-processing", "reweighing",
            F(StatisticalParityDifference(reweighed, ctx.credit)),
            F(Accuracy(reweighed, ctx.credit))});

  Dataset massaged = MassageLabels(ctx.credit, ctx.credit_model, 60);
  LogisticRegression on_massaged;
  XFAIR_CHECK(on_massaged.Fit(massaged).ok());
  t.AddRow({"Pre-processing", "massaging (60 pairs)",
            F(StatisticalParityDifference(on_massaged, ctx.credit)),
            F(Accuracy(on_massaged, ctx.credit))});

  FairTrainingOptions fair_opts;
  fair_opts.lambda = 10.0;
  auto fair_lr = TrainFairLogisticRegression(ctx.credit, fair_opts);
  XFAIR_CHECK(fair_lr.ok());
  t.AddRow({"In-processing", "parity-penalized logistic (lambda=10)",
            F(StatisticalParityDifference(*fair_lr, ctx.credit)),
            F(Accuracy(*fair_lr, ctx.credit))});

  auto thresholds = FitGroupThresholds(ctx.credit_model, ctx.credit, {});
  XFAIR_CHECK(thresholds.ok());
  t.AddRow({"Post-processing", "group thresholds",
            F(StatisticalParityDifference(*thresholds, ctx.credit)),
            F(Accuracy(*thresholds, ctx.credit))});
  std::printf("=== Figure 1 (b): mitigation stages, measured ===\n%s\n",
              t.ToString().c_str());
}

void PrintTasks() {
  const RunContext& ctx = Ctx();
  AsciiTable t({"Task", "Metric", "Measured"});
  t.AddRow({"Classification", "statistical parity diff",
            F(StatisticalParityDifference(ctx.credit_model, ctx.credit))});

  RecWalkScorer scorer(&ctx.rec.interactions);
  t.AddRow({"Recommendation", "protected-item exposure share (top-10)",
            F(RecExposureShare(scorer, ctx.rec.interactions,
                               ctx.rec.item_groups, 10))});

  // Ranking: probability-based fairness of the income ranking.
  std::vector<std::pair<double, size_t>> scored(ctx.credit.size());
  for (size_t i = 0; i < ctx.credit.size(); ++i)
    scored[i] = {-ctx.credit.x().At(i, 2), i};
  std::sort(scored.begin(), scored.end());
  std::vector<size_t> ranking;
  std::vector<int> tuple_groups(ctx.credit.size());
  for (size_t i = 0; i < ctx.credit.size(); ++i) {
    ranking.push_back(scored[i].second);
    tuple_groups[i] = ctx.credit.group(i);
  }
  ranking.resize(100);
  t.AddRow({"Ranking", "fair-prefix p-value (income ranking, top-100)",
            F(*FairPrefixPValue(ranking, tuple_groups))});
  t.AddRow({"Ranking", "exposure gap (income ranking, top-100)",
            F(*ExposureGap(ranking, tuple_groups))});

  t.AddRow({"Graphs", "SGC parity gap on homophilous SBM",
            F(SgcParityGap(ctx.sgc, ctx.graph.groups))});
  std::printf("=== Figure 1 (c): tasks & modalities, measured ===\n%s\n",
              t.ToString().c_str());
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  PrintLevelAndCriteria();
  PrintMitigationStages();
  PrintTasks();
}

void BM_Fig1GroupMetrics(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateGroupFairness(ctx.credit_model, ctx.credit));
  }
}
BENCHMARK(BM_Fig1GroupMetrics)->Unit(benchmark::kMillisecond);

void BM_Fig1IndividualMetrics(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LipschitzViolationRate(
        ctx.credit_model, ctx.credit, 0.5, 500, &rng));
  }
}
BENCHMARK(BM_Fig1IndividualMetrics)->Unit(benchmark::kMillisecond);

void BM_Fig1CounterfactualFairness(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CounterfactualFairnessGap(ctx.world_model, ctx.world, 200, 4));
  }
}
BENCHMARK(BM_Fig1CounterfactualFairness)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
