// Experiment F2 — regenerates Figure 2 ("Taxonomy of Explanation
// Approaches") as an executable artifact: one representative
// implementation per taxonomy leaf is run on the credit fixture and
// reported with its access tier, coverage, a quality measure
// (fidelity/validity where defined), and wall time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "src/core/registry.h"
#include "src/explain/counterfactual.h"
#include "src/model/metrics.h"
#include "src/explain/importance.h"
#include "src/explain/influence.h"
#include "src/explain/prototypes.h"
#include "src/explain/rules.h"
#include "src/explain/shap.h"
#include "src/explain/surrogate.h"
#include "src/model/decision_tree.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace xfair {
namespace {

const RunContext& Ctx() {
  static const RunContext* ctx = new RunContext(RunContext::Make(42));
  return *ctx;
}

std::string F(double v) { return FormatDouble(v, 3); }

/// Runs `body` and returns (label, quality, milliseconds).
template <typename Fn>
std::vector<std::string> Timed(const std::string& branch,
                               const std::string& leaf,
                               const std::string& access,
                               const std::string& coverage, Fn&& body) {
  const auto start = std::chrono::steady_clock::now();
  const std::string quality = body();
  const auto end = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return {branch, leaf, access, coverage, quality, FormatDouble(ms, 2)};
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const RunContext& ctx = Ctx();
  const Dataset& data = ctx.credit;
  const LogisticRegression& model = ctx.credit_model;

  // Explainee: first negatively-predicted instance.
  size_t neg = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (model.Predict(data.instance(i)) == 0) {
      neg = i;
      break;
    }
  }
  const Vector x = data.instance(neg);

  AsciiTable t({"Branch", "Leaf", "Access", "Coverage", "Quality",
                "Time (ms)"});

  t.AddRow(Timed("Intrinsic", "interpretable tree", "W", "G", [&] {
    DecisionTree tree;
    DecisionTreeOptions opts;
    opts.max_depth = 3;
    XFAIR_CHECK(tree.Fit(data, opts).ok());
    return "accuracy=" + F(Accuracy(tree, data)) + ", " +
           std::to_string(RulesFromTree(tree).size()) + " rules";
  }));

  t.AddRow(Timed("Pre/data-based", "feature-group correlation scan", "-",
                 "G", [&] {
    // Which feature correlates most with group membership (proxy scan)?
    Vector groups(data.size());
    for (size_t i = 0; i < data.size(); ++i) groups[i] = data.group(i);
    double best = 0.0;
    size_t best_c = 0;
    for (size_t c = 1; c < data.num_features(); ++c) {
      const double r =
          std::fabs(PearsonCorrelation(data.x().Col(c), groups));
      if (r > best) {
        best = r;
        best_c = c;
      }
    }
    return "strongest proxy '" + data.schema().feature(best_c).name +
           "' |r|=" + F(best);
  }));

  t.AddRow(Timed("Post-hoc/example", "counterfactual (Wachter)", "G", "L",
                 [&] {
    auto r = WachterCounterfactual(model, data.schema(), x, {});
    return std::string("valid=") + (r.valid ? "yes" : "no") +
           ", dist=" + F(r.distance) +
           ", sparsity=" + std::to_string(r.sparsity);
  }));

  t.AddRow(Timed("Post-hoc/example", "counterfactual (growing spheres)",
                 "B", "L", [&] {
    Rng rng(1);
    auto r = GrowingSpheresCounterfactual(model, data.schema(), x, {},
                                          &rng);
    return std::string("valid=") + (r.valid ? "yes" : "no") +
           ", dist=" + F(r.distance) +
           ", sparsity=" + std::to_string(r.sparsity);
  }));

  t.AddRow(Timed("Post-hoc/example", "prototypes (k-medoids)", "B", "G",
                 [&] {
    Rng rng(2);
    auto protos = ClassPrototypes(data, 1, 3, &rng);
    return std::to_string(protos.size()) + " prototypes of class 1";
  }));

  t.AddRow(Timed("Post-hoc/example", "nearest neighbors", "B", "L", [&] {
    auto ne = ExplainByNeighbors(data, x, 0);
    return "contrast at distance " + F(ne.other_label_distance);
  }));

  t.AddRow(Timed("Post-hoc/example", "influence functions", "W", "L", [&] {
    auto analyzer = InfluenceAnalyzer::Create(model, data);
    XFAIR_CHECK(analyzer.ok());
    double max_infl = 0.0;
    for (size_t i = 0; i < 100; ++i) {
      max_infl = std::max(
          max_infl, std::fabs(analyzer->InfluenceOnPrediction(x, i)));
    }
    return "max |influence| over 100 train pts=" + F(max_infl);
  }));

  t.AddRow(Timed("Post-hoc/feature", "SHAP (instance)", "B", "L", [&] {
    Rng rng(3);
    Dataset background = data.Subset(rng.SampleWithoutReplacement(
        data.size(), 20));
    Vector phi = ShapExplainInstance(model, background, x, 100, &rng);
    double sum = 0.0;
    for (double p : phi) sum += p;
    return "sum(phi)=" + F(sum) + " (efficiency)";
  }));

  t.AddRow(Timed("Post-hoc/feature", "permutation importance", "B", "G",
                 [&] {
    Rng rng(4);
    Vector imp = PermutationImportance(model, data, 2, &rng);
    size_t top = 0;
    for (size_t c = 1; c < imp.size(); ++c)
      if (imp[c] > imp[top]) top = c;
    return "top feature '" + data.schema().feature(top).name + "'";
  }));

  t.AddRow(Timed("Post-hoc/feature", "partial dependence", "B", "G", [&] {
    auto pd = ComputePartialDependence(model, data, 2, 12);
    return "PDP(income) spans " +
           F(pd.mean_predictions.back() - pd.mean_predictions.front());
  }));

  t.AddRow(Timed("Post-hoc/approximation", "local surrogate (LIME)", "B",
                 "L", [&] {
    Rng rng(5);
    auto s = FitLocalSurrogate(model, data, x, {}, &rng);
    return "fidelity R^2=" + F(s.fidelity);
  }));

  t.AddRow(Timed("Post-hoc/approximation", "global surrogate tree", "B",
                 "G", [&] {
    auto s = FitGlobalSurrogate(model, data, 4);
    return "fidelity=" + F(s.fidelity);
  }));

  t.AddRow(Timed("Post-hoc/approximation", "rule extraction", "B", "G",
                 [&] {
    auto s = FitGlobalSurrogate(model, data, 3);
    auto rules = RulesFromTree(s.tree);
    return std::to_string(rules.size()) + " rules, e.g. '" +
           rules[0].ToString(data.schema()) + "'";
  }));

  std::printf("\n=== Figure 2: explanation taxonomy, executed ===\n%s\n",
              t.ToString().c_str());
}

void BM_Fig2Wachter(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  const Vector x = ctx.credit.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WachterCounterfactual(
        ctx.credit_model, ctx.credit.schema(), x, {}));
  }
}
BENCHMARK(BM_Fig2Wachter)->Unit(benchmark::kMicrosecond);

void BM_Fig2GrowingSpheres(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  const Vector x = ctx.credit.instance(0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GrowingSpheresCounterfactual(
        ctx.credit_model, ctx.credit.schema(), x, {}, &rng));
  }
}
BENCHMARK(BM_Fig2GrowingSpheres)->Unit(benchmark::kMicrosecond);

void BM_Fig2ShapInstance(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  Rng rng(8);
  Dataset background = ctx.credit.Subset(
      rng.SampleWithoutReplacement(ctx.credit.size(), 15));
  const Vector x = ctx.credit.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapExplainInstance(
        ctx.credit_model, background, x, 60, &rng));
  }
}
BENCHMARK(BM_Fig2ShapInstance)->Unit(benchmark::kMillisecond);

void BM_Fig2LocalSurrogate(benchmark::State& state) {
  PrintOnce();
  const RunContext& ctx = Ctx();
  Rng rng(9);
  const Vector x = ctx.credit.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FitLocalSurrogate(ctx.credit_model, ctx.credit, x, {}, &rng));
  }
}
BENCHMARK(BM_Fig2LocalSurrogate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
