// Experiment A6 (paper §IV-B, Gopher [63],[83]): data-based explanations
// of unfairness. Prints the top patterns with influence-estimated and
// retraining-verified parity-gap changes, and sweeps the planted bias to
// show pattern interestingness tracks it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_json.h"
#include "src/data/generators.h"
#include "src/unfair/gopher.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    cfg.label_bias = 0.1;
    Dataset data = CreditGen(cfg).Generate(800, 121);
    LogisticRegression model;
    XFAIR_CHECK(model.Fit(data).ok());
    GopherOptions opts;
    opts.top_k = 5;
    auto report = ExplainUnfairnessByPatterns(model, data, opts);
    XFAIR_CHECK(report.ok());
    AsciiTable t({"pattern", "support", "est dGap (influence)",
                  "verified dGap (retrain)", "interestingness"});
    for (const auto& p : report->patterns) {
      t.AddRow({p.description, std::to_string(p.support),
                FormatDouble(p.estimated_gap_change, 4),
                p.verified ? FormatDouble(p.verified_gap_change, 4) : "-",
                FormatDouble(p.interestingness, 5)});
    }
    std::printf("\n=== A6: Gopher top patterns (original parity gap "
                "%.3f, %zu patterns examined) ===\nExpected shape: "
                "estimated and verified changes agree in sign; removing "
                "top patterns reduces the gap.\n%s\n",
                report->original_gap, report->patterns_examined,
                t.ToString().c_str());
  }

  {
    AsciiTable t({"planted shift", "original gap",
                  "best verified reduction"});
    for (double shift : {0.4, 0.8, 1.2}) {
      BiasConfig cfg;
      cfg.score_shift = shift;
      Dataset data = CreditGen(cfg).Generate(700, 122);
      LogisticRegression model;
      XFAIR_CHECK(model.Fit(data).ok());
      GopherOptions opts;
      opts.top_k = 3;
      auto report = ExplainUnfairnessByPatterns(model, data, opts);
      XFAIR_CHECK(report.ok());
      double best = 0.0;
      for (const auto& p : report->patterns) {
        if (p.verified) best = std::min(best, p.verified_gap_change);
      }
      t.AddRow({FormatDouble(shift, 1),
                FormatDouble(report->original_gap),
                FormatDouble(best, 4)});
    }
    std::printf("=== A6b: Gopher vs planted bias ===\nExpected shape: "
                "larger planted gaps leave more room for data-removal "
                "repairs.\n%s\n",
                t.ToString().c_str());
  }

  // Depth-3 intersectional workload: the vertical-bitset lattice engine
  // vs the looped BinTable::Matches oracle (identical candidates, 0-ulp
  // identical estimates), written to BENCH_gopher.json with a
  // candidates_per_sec throughput figure. Estimate-only so the search
  // dominates the measurement instead of retraining.
  {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    Dataset data = CreditGen(cfg).Generate(8000, 125);
    LogisticRegression model;
    XFAIR_CHECK(model.Fit(data).ok());
    GopherOptions engine;
    engine.top_k = 0;  // No retraining, and top_k = 0 disables pruning —
    engine.bins = 5;   // both paths score every lattice candidate.
    engine.max_conditions = 3;
    engine.min_support = 0.01;
    GopherOptions oracle = engine;
    oracle.use_bitset_engine = false;
    const auto probe = ExplainUnfairnessByPatterns(model, data, engine);
    XFAIR_CHECK(probe.ok());
    const size_t candidates = probe->candidates_scored;
    const auto run_engine = [&] {
      benchmark::DoNotOptimize(
          ExplainUnfairnessByPatterns(model, data, engine));
    };
    const auto run_oracle = [&] {
      benchmark::DoNotOptimize(
          ExplainUnfairnessByPatterns(model, data, oracle));
    };
    const std::string extra =
        MeasureThroughputExtra("candidates", candidates, run_engine,
                               run_oracle);
    RecordAlgoSpeedup("gopher", run_oracle, run_engine, 3, extra);
  }
}

void BM_GopherEstimateOnly(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data =
      CreditGen(cfg).Generate(static_cast<size_t>(state.range(0)), 123);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  GopherOptions opts;
  opts.top_k = 0;  // Influence scoring only; no retraining.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExplainUnfairnessByPatterns(model, data, opts));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_GopherEstimateOnly)->Arg(300)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_GopherWithVerification(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(500, 124);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  GopherOptions opts;
  opts.top_k = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExplainUnfairnessByPatterns(model, data, opts));
  }
}
BENCHMARK(BM_GopherWithVerification)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
