// Experiment A8 (paper §IV-C, graphs): topology-driven unfairness and its
// structural explanations.
//  a. SGC parity gap vs homophily: the more segregated the graph, the
//     more propagation amplifies the group gap over a no-graph baseline.
//  b. [89] bias-edge removal curve: pruning the top bias-accounting edges
//     monotonically shrinks the gap.
//  c. [90] node-influence concentration: a small fraction of training
//     nodes carries most of the bias influence.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/beyond/node_influence.h"
#include "src/beyond/structural_bias.h"
#include "src/graph/sbm.h"
#include "src/util/table.h"

namespace xfair {
namespace {

GraphData MakeGraph(double p_inter, uint64_t seed = 141) {
  SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.p_intra = 0.10;
  cfg.p_inter = p_inter;
  cfg.label_shift = 1.0;
  cfg.feature_signal = 0.7;
  return GenerateSbm(cfg, seed);
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // a. Homophily sweep.
  {
    AsciiTable t({"p_inter (cross-group)", "homophily", "SGC parity gap",
                  "no-graph parity gap"});
    for (double p_inter : {0.10, 0.05, 0.01}) {
      GraphData d = MakeGraph(p_inter);
      SgcModel with_graph;
      XFAIR_CHECK(with_graph.Fit(d).ok());
      SgcOptions no_hops;
      no_hops.hops = 0;
      SgcModel without_graph;
      XFAIR_CHECK(without_graph.Fit(d, no_hops).ok());
      t.AddRow({FormatDouble(p_inter, 2),
                p_inter >= 0.10 ? "none" : (p_inter >= 0.05 ? "mild"
                                                            : "strong"),
                FormatDouble(SgcParityGap(with_graph, d.groups)),
                FormatDouble(SgcParityGap(without_graph, d.groups))});
    }
    std::printf("\n=== A8a: SGC parity gap vs homophily ===\nExpected "
                "shape: with strong homophily the graph model's gap "
                "meets or exceeds the featureless baseline; mixing "
                "dampens the amplification.\n%s\n",
                t.ToString().c_str());
  }

  GraphData d = MakeGraph(0.01, 142);
  SgcModel model;
  XFAIR_CHECK(model.Fit(d).ok());

  // b. Bias-edge pruning curve [89].
  {
    size_t node = 0;
    for (size_t u = 0; u < d.graph.num_nodes(); ++u) {
      if (d.graph.Degree(u) >= 4) {
        node = u;
        break;
      }
    }
    StructuralBiasOptions opts;
    opts.max_set_size = 8;
    auto report = ExplainNodeBias(model, d, node, opts);
    AsciiTable t({"edges pruned", "parity gap"});
    Graph pruned = d.graph;
    t.AddRow({"0", FormatDouble(model.ParityGapOnGraph(
                        pruned, d.features, d.groups))});
    size_t k = 0;
    for (const auto& [u, v] : report.bias_edge_set) {
      pruned.RemoveEdge(u, v);
      ++k;
      t.AddRow({std::to_string(k),
                FormatDouble(model.ParityGapOnGraph(pruned, d.features,
                                                    d.groups))});
    }
    std::printf("=== A8b: [89] bias-edge pruning around node %zu ===\n"
                "Expected shape: gap non-increasing along the pruned "
                "bias-accounting edges.\n%s\n",
                node, t.ToString().c_str());
  }

  // c. Node-influence concentration [90].
  {
    auto report = ExplainBiasByNodeInfluence(model);
    XFAIR_CHECK(report.ok());
    AsciiTable t({"quantity", "value"});
    t.AddRow({"top-decile |influence| share",
              FormatDouble(report->top_decile_share)});
    t.AddRow({"most gap-reducing node influence",
              FormatDouble(report->influence[report->ranked_nodes.front()],
                           5)});
    t.AddRow({"most gap-increasing node influence",
              FormatDouble(report->influence[report->ranked_nodes.back()],
                           5)});
    std::printf("=== A8c: [90] training-node attribution of bias ===\n"
                "Expected shape: influence concentrated well above the "
                "uniform 0.10 share.\n%s\n",
                t.ToString().c_str());
  }
}

void BM_SgcFit(benchmark::State& state) {
  PrintOnce();
  GraphData d = MakeGraph(0.01, 143);
  for (auto _ : state) {
    SgcModel model;
    benchmark::DoNotOptimize(model.Fit(d));
  }
}
BENCHMARK(BM_SgcFit)->Unit(benchmark::kMillisecond);

void BM_StructuralBiasExplanation(benchmark::State& state) {
  PrintOnce();
  GraphData d = MakeGraph(0.01, 144);
  SgcModel model;
  XFAIR_CHECK(model.Fit(d).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainNodeBias(model, d, 0, {}));
  }
}
BENCHMARK(BM_StructuralBiasExplanation)->Unit(benchmark::kMillisecond);

void BM_NodeInfluence(benchmark::State& state) {
  PrintOnce();
  GraphData d = MakeGraph(0.01, 145);
  SgcModel model;
  XFAIR_CHECK(model.Fit(d).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainBiasByNodeInfluence(model));
  }
}
BENCHMARK(BM_NodeInfluence)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
