// Experiment A3 (paper §IV-A group counterfactuals): head-to-head of the
// four group-counterfactual families — FACTS [77], GLOBE-CE [75],
// counterfactual explanation trees [76], and AReS [74] — at increasing
// group sizes. Reported: recourse effectiveness per group, cost where
// defined, summary size (interpretability proxy), and wall time scaling.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/ares.h"
#include "src/unfair/cet.h"
#include "src/unfair/facts.h"
#include "src/unfair/globece.h"
#include "src/util/table.h"

namespace xfair {
namespace {

struct Fixture {
  Dataset data;
  LogisticRegression model;
};

Fixture MakeFixture(size_t n) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Fixture f{CreditGen(cfg).Generate(n, 91), {}};
  XFAIR_CHECK(f.model.Fit(f.data).ok());
  return f;
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  AsciiTable t({"n", "method", "eff G+", "eff G-", "summary size",
                "time (ms)"});
  for (size_t n : {400, 800, 1600}) {
    Fixture f = MakeFixture(n);
    auto timed = [&](auto&& body) {
      const auto start = std::chrono::steady_clock::now();
      body();
      const auto end = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(end - start)
          .count();
    };

    FactsReport facts;
    const double facts_ms = timed([&] {
      facts = RunFacts(f.model, f.data, {});
    });
    // FACTS effectiveness at the whole-population level.
    t.AddRow({std::to_string(n), "FACTS [77]",
              FormatDouble(facts.overall_best_effectiveness_protected),
              FormatDouble(facts.overall_best_effectiveness_non_protected),
              std::to_string(facts.subgroups_examined) + " subgroups",
              FormatDouble(facts_ms, 1)});

    GlobeCeReport globe;
    Rng rng(92);
    const double globe_ms =
        timed([&] { globe = FitGlobeCe(f.model, f.data, {}, &rng); });
    t.AddRow({std::to_string(n), "GLOBE-CE [75]",
              FormatDouble(globe.protected_group.coverage),
              FormatDouble(globe.non_protected_group.coverage),
              "1 direction/group", FormatDouble(globe_ms, 1)});

    CetReport cet;
    const double cet_ms =
        timed([&] { cet = BuildCounterfactualTree(f.model, f.data, {}); });
    t.AddRow({std::to_string(n), "CE tree [76]",
              FormatDouble(cet.effectiveness_protected),
              FormatDouble(cet.effectiveness_non_protected),
              std::to_string(cet.num_leaves) + " leaves",
              FormatDouble(cet_ms, 1)});

    AresReport ares;
    const double ares_ms =
        timed([&] { ares = BuildRecourseSet(f.model, f.data, {}); });
    t.AddRow({std::to_string(n), "AReS [74]",
              FormatDouble(ares.recourse_rate_protected),
              FormatDouble(ares.recourse_rate_non_protected),
              std::to_string(ares.num_rules) + " rules",
              FormatDouble(ares_ms, 1)});
  }
  // FACTS equal-choice-of-recourse sweep over the sufficiency level phi
  // (the second fairness-of-recourse criterion of [77]).
  {
    Fixture f = MakeFixture(800);
    AsciiTable phi_table({"phi", "choices G+", "choices G-",
                          "choice gap"});
    for (double phi : {0.1, 0.3, 0.5, 0.7}) {
      FactsOptions opts;
      opts.phi = phi;
      auto r = RunFacts(f.model, f.data, opts);
      phi_table.AddRow({FormatDouble(phi, 1),
                        std::to_string(r.overall_choices_protected),
                        std::to_string(r.overall_choices_non_protected),
                        FormatDouble(r.overall_choice_gap, 0)});
    }
    std::printf("=== A3b: FACTS equal choice of recourse vs phi ===\n"
                "Expected shape: as phi rises fewer actions qualify for "
                "either group, but G- keeps more choices at every "
                "level.\n%s\n",
                phi_table.ToString().c_str());
  }

  std::printf("\n=== A3: group counterfactual methods vs group size ===\n"
              "Expected shape: all methods achieve recourse for a clear "
              "majority of G-; the planted bias makes G+ harder (lower "
              "effectiveness) across methods; summaries stay small.\n%s\n",
              t.ToString().c_str());
}

void BM_Facts(benchmark::State& state) {
  PrintOnce();
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunFacts(f.model, f.data, {}));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Facts)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_GlobeCe(benchmark::State& state) {
  PrintOnce();
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  Rng rng(93);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGlobeCe(f.model, f.data, {}, &rng));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_GlobeCe)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_CeTree(benchmark::State& state) {
  PrintOnce();
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCounterfactualTree(f.model, f.data, {}));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CeTree)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_Ares(benchmark::State& state) {
  PrintOnce();
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRecourseSet(f.model, f.data, {}));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Ares)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
