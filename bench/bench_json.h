// Speedup harness for the benches. Two recorders, one artifact format:
//
// - RecordParallelSpeedup: times one workload with the pool pinned to a
//   single worker and to XFAIR_BENCH_THREADS workers (default 4).
// - RecordAlgoSpeedup: additionally times a *baseline algorithm* against
//   the optimized one (both single-worker, so the ratio is purely
//   algorithmic), then the optimized one with the pool enabled.
//
// Both write BENCH_<name>.json in the working directory with the fields
// baseline_ms / optimized_ms / algo_speedup (single-core algorithm
// comparison; equal to serial for parallel-only benches) and serial_ms /
// parallel_ms / speedup (thread scaling of the shipped path), so
// speedups are machine-readable artifacts of a bench run rather than
// numbers scraped from stdout. Determinism makes the comparisons honest:
// every run produces bit-identical results, so the only difference is
// wall time.

#ifndef XFAIR_BENCH_BENCH_JSON_H_
#define XFAIR_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>

#include "src/util/parallel.h"

namespace xfair {
namespace bench_json_internal {

inline double TimeMs(const std::function<void()>& workload, int repeats) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    workload();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

inline size_t BenchThreads() {
  if (const char* env = std::getenv("XFAIR_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4;
}

inline void WriteBenchJson(const std::string& name, double baseline_ms,
                           double optimized_ms, double serial_ms,
                           double parallel_ms, size_t threads) {
  const double algo_speedup =
      optimized_ms > 0.0 ? baseline_ms / optimized_ms : 0.0;
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"baseline_ms\": %.3f,\n"
               "  \"optimized_ms\": %.3f,\n"
               "  \"algo_speedup\": %.3f,\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"parallel_ms\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_concurrency\": %u\n"
               "}\n",
               name.c_str(), baseline_ms, optimized_ms, algo_speedup,
               serial_ms, parallel_ms, speedup, threads,
               std::thread::hardware_concurrency());
  std::fclose(f);
  std::printf("[bench_json] %s: baseline %.1f ms, optimized %.1f ms "
              "(algo %.2fx); serial %.1f ms, %zu-thread %.1f ms "
              "(threads %.2fx) -> %s\n",
              name.c_str(), baseline_ms, optimized_ms, algo_speedup,
              serial_ms, threads, parallel_ms, speedup, path.c_str());
}

}  // namespace bench_json_internal

/// Runs `workload` serially and with the pool at XFAIR_BENCH_THREADS
/// (default 4) workers, taking the best of `repeats` runs each, and
/// writes BENCH_<name>.json (baseline fields mirror the serial run: no
/// algorithmic variant is being compared). Restores the pool to its
/// environment default before returning.
inline void RecordParallelSpeedup(const std::string& name,
                                  const std::function<void()>& workload,
                                  int repeats = 3) {
  const size_t threads = bench_json_internal::BenchThreads();
  SetParallelThreads(1);
  const double serial_ms = bench_json_internal::TimeMs(workload, repeats);
  SetParallelThreads(threads);
  const double parallel_ms = bench_json_internal::TimeMs(workload, repeats);
  SetParallelThreads(0);
  bench_json_internal::WriteBenchJson(name, serial_ms, serial_ms, serial_ms,
                                      parallel_ms, threads);
}

/// Times `baseline` and `optimized` with the pool pinned to one worker —
/// so algo_speedup = baseline_ms / optimized_ms is a pure
/// algorithmic-improvement ratio, uncontaminated by threading — then
/// re-times `optimized` at XFAIR_BENCH_THREADS workers for the thread-
/// scaling fields, and writes BENCH_<name>.json.
inline void RecordAlgoSpeedup(const std::string& name,
                              const std::function<void()>& baseline,
                              const std::function<void()>& optimized,
                              int repeats = 3) {
  const size_t threads = bench_json_internal::BenchThreads();
  SetParallelThreads(1);
  const double baseline_ms = bench_json_internal::TimeMs(baseline, repeats);
  const double optimized_ms = bench_json_internal::TimeMs(optimized, repeats);
  SetParallelThreads(threads);
  const double parallel_ms = bench_json_internal::TimeMs(optimized, repeats);
  SetParallelThreads(0);
  bench_json_internal::WriteBenchJson(name, baseline_ms, optimized_ms,
                                      optimized_ms, parallel_ms, threads);
}

}  // namespace xfair

#endif  // XFAIR_BENCH_BENCH_JSON_H_
