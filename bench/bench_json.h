// Serial-vs-parallel speedup harness for the benches.
//
// RecordParallelSpeedup times one workload twice — pool pinned to a
// single worker, then to XFAIR_BENCH_THREADS workers (default 4) — and
// writes the measurement to BENCH_<name>.json in the working directory,
// so speedups are machine-readable artifacts of a bench run rather than
// numbers scraped from stdout. Determinism makes the comparison honest:
// both runs produce bit-identical results, so the only difference is
// wall time.

#ifndef XFAIR_BENCH_BENCH_JSON_H_
#define XFAIR_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>

#include "src/util/parallel.h"

namespace xfair {
namespace bench_json_internal {

inline double TimeMs(const std::function<void()>& workload, int repeats) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    workload();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

inline size_t BenchThreads() {
  if (const char* env = std::getenv("XFAIR_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4;
}

}  // namespace bench_json_internal

/// Runs `workload` serially and with the pool at XFAIR_BENCH_THREADS
/// (default 4) workers, taking the best of `repeats` runs each, and
/// writes BENCH_<name>.json. Restores the pool to its environment
/// default before returning.
inline void RecordParallelSpeedup(const std::string& name,
                                  const std::function<void()>& workload,
                                  int repeats = 3) {
  const size_t threads = bench_json_internal::BenchThreads();
  SetParallelThreads(1);
  const double serial_ms = bench_json_internal::TimeMs(workload, repeats);
  SetParallelThreads(threads);
  const double parallel_ms = bench_json_internal::TimeMs(workload, repeats);
  SetParallelThreads(0);

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"parallel_ms\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_concurrency\": %u\n"
               "}\n",
               name.c_str(), serial_ms, parallel_ms, speedup, threads,
               std::thread::hardware_concurrency());
  std::fclose(f);
  std::printf("[bench_json] %s: serial %.1f ms, %zu-thread %.1f ms, "
              "speedup %.2fx -> %s\n",
              name.c_str(), serial_ms, threads, parallel_ms, speedup,
              path.c_str());
}

}  // namespace xfair

#endif  // XFAIR_BENCH_BENCH_JSON_H_
