// Speedup harness for the benches. Two recorders, one artifact format:
//
// - RecordParallelSpeedup: times one workload with the pool pinned to a
//   single worker and to XFAIR_BENCH_THREADS workers (default 4).
// - RecordAlgoSpeedup: additionally times a *baseline algorithm* against
//   the optimized one (both single-worker, so the ratio is purely
//   algorithmic), then the optimized one with the pool enabled.
//
// Both write BENCH_<name>.json in the working directory with the fields
// baseline_ms / optimized_ms / algo_speedup (single-core algorithm
// comparison; equal to serial for parallel-only benches) and serial_ms /
// parallel_ms / speedup (thread scaling of the shipped path), so
// speedups are machine-readable artifacts of a bench run rather than
// numbers scraped from stdout. Determinism makes the comparisons honest:
// every run produces bit-identical results, so the only difference is
// wall time.
//
// After the timed measurements, the optimized workload runs once more
// with tracing force-enabled; the artifact then also carries "stages"
// (per-XFAIR_SPAN wall-time breakdown: count / total_ms / self_ms) and
// "counters" (the obs counters that advanced during that run). The timed
// numbers are never taken with tracing on.

#ifndef XFAIR_BENCH_BENCH_JSON_H_
#define XFAIR_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace bench_json_internal {

inline double TimeMs(const std::function<void()>& workload, int repeats) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    workload();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

inline size_t BenchThreads() {
  if (const char* env = std::getenv("XFAIR_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4;
}

/// Per-stage breakdown of one profiled run, JSON-ready. Captured by
/// running the workload once more with tracing force-enabled: "stages" is
/// the span aggregate (total/self wall ms per XFAIR_SPAN name) and
/// "counters" holds the counters that advanced during the run. Purely
/// observational — the timed measurements above never run with tracing on.
struct ProfiledRun {
  std::string stages_json = "[]";    ///< Array of stage objects.
  std::string counters_json = "{}";  ///< Object of counter deltas.
};

inline ProfiledRun ProfileWorkload(const std::function<void()>& workload) {
  std::unordered_map<std::string, uint64_t> before;
  for (const auto& c : obs::SnapshotCounters()) before[c.name] = c.value;
  obs::FlushSpans();  // Discard anything recorded before the profile run.
  const bool was_tracing = obs::TracingEnabled();
  obs::SetTracingEnabled(true);
  workload();
  obs::SetTracingEnabled(was_tracing);
  ProfiledRun out;
  out.stages_json = obs::StagesToJson(obs::AggregateStages(obs::FlushSpans()));
  std::string deltas = "{";
  bool first = true;
  for (const auto& c : obs::SnapshotCounters()) {
    const auto it = before.find(c.name);
    const uint64_t delta =
        it == before.end() ? c.value : c.value - it->second;
    if (delta == 0) continue;
    deltas += first ? "\n" : ",\n";
    first = false;
    deltas += "    \"" + c.name + "\": " + std::to_string(delta);
  }
  deltas += first ? "}" : "\n  }";
  out.counters_json = std::move(deltas);
  return out;
}

inline void WriteBenchJson(const std::string& name, double baseline_ms,
                           double optimized_ms, double serial_ms,
                           double parallel_ms, size_t threads,
                           const ProfiledRun& profile = {},
                           const std::string& extra_json = "") {
  const double algo_speedup =
      optimized_ms > 0.0 ? baseline_ms / optimized_ms : 0.0;
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"baseline_ms\": %.3f,\n"
               "  \"optimized_ms\": %.3f,\n"
               "  \"algo_speedup\": %.3f,\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"parallel_ms\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "%s"
               "  \"stages\": %s,\n"
               "  \"counters\": %s\n"
               "}\n",
               name.c_str(), baseline_ms, optimized_ms, algo_speedup,
               serial_ms, parallel_ms, speedup, threads,
               std::thread::hardware_concurrency(), extra_json.c_str(),
               profile.stages_json.c_str(), profile.counters_json.c_str());
  std::fclose(f);
  std::printf("[bench_json] %s: baseline %.1f ms, optimized %.1f ms "
              "(algo %.2fx); serial %.1f ms, %zu-thread %.1f ms "
              "(threads %.2fx) -> %s\n",
              name.c_str(), baseline_ms, optimized_ms, algo_speedup,
              serial_ms, threads, parallel_ms, speedup, path.c_str());
}

}  // namespace bench_json_internal

/// Runs `workload` serially and with the pool at XFAIR_BENCH_THREADS
/// (default 4) workers, taking the best of `repeats` runs each, and
/// writes BENCH_<name>.json (baseline fields mirror the serial run: no
/// algorithmic variant is being compared). Restores the pool to its
/// environment default before returning.
inline void RecordParallelSpeedup(const std::string& name,
                                  const std::function<void()>& workload,
                                  int repeats = 3) {
  const size_t threads = bench_json_internal::BenchThreads();
  SetParallelThreads(1);
  const double serial_ms = bench_json_internal::TimeMs(workload, repeats);
  SetParallelThreads(threads);
  const double parallel_ms = bench_json_internal::TimeMs(workload, repeats);
  const auto profile = bench_json_internal::ProfileWorkload(workload);
  SetParallelThreads(0);
  bench_json_internal::WriteBenchJson(name, serial_ms, serial_ms, serial_ms,
                                      parallel_ms, threads, profile);
}

/// Times `baseline` and `optimized` with the pool pinned to one worker —
/// so algo_speedup = baseline_ms / optimized_ms is a pure
/// algorithmic-improvement ratio, uncontaminated by threading — then
/// re-times `optimized` at XFAIR_BENCH_THREADS workers for the thread-
/// scaling fields, and writes BENCH_<name>.json. `extra_json` is spliced
/// into the artifact verbatim as additional top-level fields; it must be
/// empty or a sequence of `  "key": value,\n` lines.
/// Measures a batch workload's throughput against a looped per-instance
/// equivalent (both pinned to one worker, best of `repeats`), and returns
/// the first-class throughput fields as extra_json lines for
/// RecordAlgoSpeedup / WriteBenchJson:
///
///   "<unit>_per_sec"         batch items per second,
///   "<unit>_per_sec_looped"  looped items per second,
///   "batch_speedup"          looped_ms / batch_ms,
///   "batch_ms"               batch wall time (the noise floor gates use),
///   "batch_items"            items per call.
///
/// Restores the pool to its environment default before returning.
inline std::string MeasureThroughputExtra(const char* unit, size_t items,
                                          const std::function<void()>& batch,
                                          const std::function<void()>& looped,
                                          int repeats = 3) {
  SetParallelThreads(1);
  const double batch_ms = bench_json_internal::TimeMs(batch, repeats);
  const double looped_ms = bench_json_internal::TimeMs(looped, repeats);
  SetParallelThreads(0);
  const double n = static_cast<double>(items);
  const double per_sec = batch_ms > 0.0 ? n * 1000.0 / batch_ms : 0.0;
  const double per_sec_looped =
      looped_ms > 0.0 ? n * 1000.0 / looped_ms : 0.0;
  const double batch_speedup = batch_ms > 0.0 ? looped_ms / batch_ms : 0.0;
  std::printf("[bench_json] %zu %s: batch %.2f ms (%.0f/s), looped %.2f ms "
              "(%.0f/s) -> batch %.2fx\n",
              items, unit, batch_ms, per_sec, looped_ms, per_sec_looped,
              batch_speedup);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"%s_per_sec\": %.1f,\n"
                "  \"%s_per_sec_looped\": %.1f,\n"
                "  \"batch_speedup\": %.3f,\n"
                "  \"batch_ms\": %.3f,\n"
                "  \"batch_items\": %zu,\n",
                unit, per_sec, unit, per_sec_looped, batch_speedup, batch_ms,
                items);
  return buf;
}

inline void RecordAlgoSpeedup(const std::string& name,
                              const std::function<void()>& baseline,
                              const std::function<void()>& optimized,
                              int repeats = 3,
                              const std::string& extra_json = "") {
  const size_t threads = bench_json_internal::BenchThreads();
  SetParallelThreads(1);
  const double baseline_ms = bench_json_internal::TimeMs(baseline, repeats);
  const double optimized_ms = bench_json_internal::TimeMs(optimized, repeats);
  SetParallelThreads(threads);
  const double parallel_ms = bench_json_internal::TimeMs(optimized, repeats);
  const auto profile = bench_json_internal::ProfileWorkload(optimized);
  SetParallelThreads(0);
  bench_json_internal::WriteBenchJson(name, baseline_ms, optimized_ms,
                                      optimized_ms, parallel_ms, threads,
                                      profile, extra_json);
}

}  // namespace xfair

#endif  // XFAIR_BENCH_BENCH_JSON_H_
