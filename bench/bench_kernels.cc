// Kernel-layer benches: the algorithmic fast paths against their
// exponential / pointer-chasing / brute-force reference implementations.
//
//  a. BENCH_tree_shap.json — path-dependent TreeSHAP vs coalition
//     enumeration (ExactShapley over the identical EXPVALUE game) on a
//     d=13 tree. 2^13 coalitions per instance collapse to one
//     O(leaves * depth^2) pass, so the algorithmic speedup is orders of
//     magnitude even on one core.
//  b. BENCH_flat_tree.json — branchless structure-of-arrays forest
//     inference (FlatForest, what PredictProbaBatch ships) vs the
//     classic per-row pointer walk over the node arrays.
//  c. BENCH_knn_index.json — KD-tree k-nearest-neighbor queries vs the
//     O(n*d) brute-force scan. Both return identical index sets.
//  d. BENCH_obs_overhead.json — a span/counter-dense workload with
//     tracing force-enabled ("baseline") vs the shipped tracing-off
//     default ("optimized"): the runtime toggle must reduce the
//     observability cost to noise (and XFAIR_OBS=0 compiles even the
//     disabled checks away entirely).
//  e. BENCH_dense_kernels.json — the check-free dense kernels (Gemv,
//     SquaredDistance, SigmoidBatch from src/util/kernels.h) vs the
//     per-element checked Matrix::At loops every call site used before
//     the kernel layer. Same arithmetic, same matrices; the measured
//     difference is the bounds check + lost vectorization.
//
// The first three comparisons are exact drop-ins (golden tests in
// tests/tree_shap_test.cc pin bit-level agreement), so wall time is the
// only difference being measured.

#include <benchmark/benchmark.h>

#include <algorithm>

#include <cmath>
#include <cstdio>

#include "bench/bench_json.h"
#include "src/data/generators.h"
#include "src/explain/shap.h"
#include "src/explain/tree_shap.h"
#include "src/model/knn.h"
#include "src/model/random_forest.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/slice_search.h"
#include "src/util/kernels.h"
#include "src/util/table.h"

namespace xfair {
namespace {

constexpr size_t kWideDim = 13;

/// Synthetic dataset of `dim` numeric features with a nonlinear label
/// rule, so fitted trees split on many distinct features per path. The
/// credit generator caps at 8 features; the TreeSHAP benches want d >= 12
/// so coalition enumeration is genuinely exponential, while the KD-tree
/// bench wants the moderate dimension its call sites have.
Dataset WideDataset(size_t n, uint64_t seed, size_t dim = kWideDim) {
  std::vector<FeatureSpec> specs(dim);
  for (size_t c = 0; c < dim; ++c) {
    specs[c].name = "f";
    specs[c].name += std::to_string(c);
    specs[c].lower = -3.0;
    specs[c].upper = 3.0;
  }
  Rng rng(seed);
  Matrix x(n, dim);
  std::vector<int> labels(n), groups(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) x.At(i, c) = rng.Uniform(-3, 3);
    double score = x.At(i, 0) + rng.Normal(0.0, 0.3);
    if (dim > 4) {
      score += 0.8 * x.At(i, 1) * x.At(i, 2) - 0.6 * x.At(i, 3) +
               0.5 * std::sin(x.At(i, 4));
    }
    if (dim > 8) {
      score += 0.4 * (x.At(i, 5) > 0.5 ? 1.0 : -1.0) +
               0.3 * x.At(i, 6) * x.At(i, 7) + 0.2 * x.At(i, 8);
    }
    labels[i] = score > 0.0 ? 1 : 0;
    groups[i] = x.At(i, 0) > 0.0 ? 1 : 0;
  }
  return Dataset(Schema(std::move(specs), -1), std::move(x),
                 std::move(labels), std::move(groups));
}

/// The pre-flat per-row inference, replicated verbatim: chase left/right
/// child pointers through the node array (with the per-node bounds check
/// the old PredictProbaRow paid) for every (row, tree) pair.
double WalkNodes(const std::vector<TreeNode>& nodes, const double* row,
                 size_t dim) {
  int id = 0;
  for (;;) {
    const TreeNode& n = nodes[static_cast<size_t>(id)];
    if (n.feature < 0) return n.proba;
    XFAIR_CHECK(static_cast<size_t>(n.feature) < dim);
    id = row[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                            : n.right;
  }
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // a. TreeSHAP vs coalition enumeration of the same EXPVALUE game.
  {
    Dataset data = WideDataset(1200, 301);
    DecisionTree tree;
    DecisionTreeOptions opts;
    opts.max_depth = 8;
    opts.min_samples_leaf = 4;
    XFAIR_CHECK(tree.Fit(data, opts).ok());
    const std::vector<size_t> instances = {5, 117, 403, 766, 1024};

    // Agreement table first: the two algorithms solve the same game.
    AsciiTable t({"instance", "max |phi_exact - phi_treeshap|",
                  "sum(phi) + base - f(x)"});
    for (size_t i : instances) {
      const Vector x = data.instance(i);
      const Vector exact =
          ExactShapley(PathDependentGame(tree, x), kWideDim);
      const TreeShapExplanation fast = PathDependentTreeShap(tree, x);
      double err = 0.0, total = fast.base_value;
      for (size_t c = 0; c < kWideDim; ++c) {
        err = std::max(err, std::fabs(exact[c] - fast.phi[c]));
        total += fast.phi[c];
      }
      t.AddRow({std::to_string(i), FormatDouble(err, 12),
                FormatDouble(total - tree.PredictProba(x), 12)});
    }
    std::printf("\n=== Kernels a: path-dependent TreeSHAP vs 2^13 "
                "coalition enumeration ===\nExpected shape: agreement at "
                "float roundoff and exact efficiency — identical values, "
                "polynomial cost.\n%s\n",
                t.ToString().c_str());

    // Batched serving throughput on the credit audit workload: one SHAP
    // vector per row of an 8192-row slice through a fitted audit forest.
    // The batch engine and the per-instance loop produce bit-identical
    // phi (pinned by tests/tree_shap_test.cc), so explanations/sec is
    // the only axis being measured.
    std::string throughput_json;
    {
      Dataset credit = CreditGen().Generate(8192, 311);
      RandomForest audit_forest;
      RandomForestOptions audit_opts;
      audit_opts.num_trees = 12;
      audit_opts.max_depth = 5;
      XFAIR_CHECK(audit_forest.Fit(credit, audit_opts).ok());
      const Matrix& xs = credit.x();
      Matrix phi;
      Vector base;
      TreeShapBatchInto(audit_forest, xs, &phi, &base);  // Warm cache/arenas.
      throughput_json = MeasureThroughputExtra(
          "explanations", xs.rows(),
          [&] { TreeShapBatchInto(audit_forest, xs, &phi, &base); },
          [&] {
            for (size_t i = 0; i < xs.rows(); ++i) {
              benchmark::DoNotOptimize(
                  PathDependentTreeShap(audit_forest, credit.instance(i)));
            }
          });
    }

    RecordAlgoSpeedup(
        "tree_shap",
        [&] {
          for (size_t i : instances) {
            benchmark::DoNotOptimize(ExactShapley(
                PathDependentGame(tree, data.instance(i)), kWideDim));
          }
        },
        [&] {
          for (size_t i : instances) {
            benchmark::DoNotOptimize(
                PathDependentTreeShap(tree, data.instance(i)));
          }
        },
        /*repeats=*/3, throughput_json);
  }

  // b. Flat branchless forest inference vs the pointer walk.
  {
    Dataset data = WideDataset(4000, 302);
    RandomForest forest;
    RandomForestOptions opts;
    opts.num_trees = 30;
    XFAIR_CHECK(forest.Fit(data, opts).ok());
    const Matrix& x = data.x();
    RecordAlgoSpeedup(
        "flat_tree",
        [&] {
          Vector out(x.rows());
          for (size_t i = 0; i < x.rows(); ++i) {
            double acc = 0.0;
            for (const DecisionTree& tree : forest.trees()) {
              acc += WalkNodes(tree.nodes(), x.RowPtr(i), x.cols());
            }
            out[i] = acc / static_cast<double>(forest.trees().size());
          }
          benchmark::DoNotOptimize(out);
        },
        [&] { benchmark::DoNotOptimize(forest.PredictProbaBatch(x)); });
  }

  // c. KD-tree neighbor queries vs the brute-force scan, in the regime
  // the index actually serves (d ~ 6-8 tabular features, as in the
  // credit data every call site uses; KD-trees lose their pruning power
  // at the d=13 used above — the curse of dimensionality).
  {
    Dataset train = WideDataset(12000, 303, 6);
    Dataset queries = WideDataset(400, 304, 6);
    KnnClassifier knn(5);
    XFAIR_CHECK(knn.Fit(train).ok());
    RecordAlgoSpeedup(
        "knn_index",
        [&] {
          size_t acc = 0;
          for (size_t i = 0; i < queries.size(); ++i) {
            acc += knn.NeighborsBruteForce(queries.instance(i), 5)[0];
          }
          benchmark::DoNotOptimize(acc);
        },
        [&] {
          size_t acc = 0;
          for (size_t i = 0; i < queries.size(); ++i) {
            acc += knn.Neighbors(queries.instance(i), 5)[0];
          }
          benchmark::DoNotOptimize(acc);
        });
  }

  // d. Observability overhead: the same span/counter-dense workload
  // (per-instance TreeSHAP spans + per-query KD-tree counters) with
  // tracing force-enabled vs the shipped tracing-off default. The
  // "algo_speedup" field reads as "overhead removed by the runtime
  // toggle"; 1.0x means free.
  {
    Dataset data = WideDataset(1200, 305);
    DecisionTree tree;
    DecisionTreeOptions opts;
    opts.max_depth = 8;
    opts.min_samples_leaf = 4;
    XFAIR_CHECK(tree.Fit(data, opts).ok());
    Dataset train = WideDataset(4000, 306, 6);
    Dataset queries = WideDataset(200, 307, 6);
    KnnClassifier knn(5);
    XFAIR_CHECK(knn.Fit(train).ok());
    auto workload = [&] {
      for (size_t i = 0; i < 200; ++i) {
        benchmark::DoNotOptimize(
            PathDependentTreeShap(tree, data.instance(i)));
      }
      size_t acc = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        acc += knn.Neighbors(queries.instance(i), 5)[0];
      }
      benchmark::DoNotOptimize(acc);
    };
    // Monitor overhead on a flat-tree batch workload, the shipped
    // PredictProbaBatch path the streaming hook instruments:
    //   off    — monitoring disabled (the hook is one relaxed load);
    //   idle   — monitoring enabled, no stream context installed;
    //   active — enabled with a stream context, one drain per batch.
    Dataset mdata = WideDataset(4000, 308);
    RandomForest forest;
    RandomForestOptions fopts;
    fopts.num_trees = 30;
    XFAIR_CHECK(forest.Fit(mdata, fopts).ok());
    auto batch = [&] {
      benchmark::DoNotOptimize(forest.PredictProbaBatch(mdata.x()));
    };
    std::string monitor_json;
    {
      obs::MonitorOptions mopts;
      mopts.window = 512;
      obs::FairnessMonitor monitor("bench/obs_overhead", mopts);
      SetParallelThreads(1);
      obs::SetMonitoringEnabled(false);
      const double off_ms = bench_json_internal::TimeMs(batch, 5);
      obs::SetMonitoringEnabled(true);
      const double idle_ms = bench_json_internal::TimeMs(batch, 5);
      const double active_ms = bench_json_internal::TimeMs(
          [&] {
            obs::ScopedStreamContext stream(&monitor,
                                            mdata.groups().data(),
                                            mdata.labels().data(),
                                            mdata.size());
            batch();
            monitor.Drain();
          },
          5);
      obs::SetMonitoringEnabled(false);
      SetParallelThreads(0);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  \"monitor\": {\"off_ms\": %.3f, \"idle_ms\": %.3f, "
                    "\"active_ms\": %.3f, \"idle_overhead_pct\": %.1f, "
                    "\"active_overhead_pct\": %.1f},\n",
                    off_ms, idle_ms, active_ms,
                    off_ms > 0.0 ? 100.0 * (idle_ms / off_ms - 1.0) : 0.0,
                    off_ms > 0.0
                        ? 100.0 * (active_ms / off_ms - 1.0)
                        : 0.0);
      monitor_json = buf;
    }

    // Flight-recorder and event-log idle overhead: the same flat-tree
    // batch with the recorder (then the event log) enabled vs both off.
    // "Idle" = the sink is armed and retaining, nothing is drained or
    // dumped. The two *_idle_overhead_pct fields are gated absolutely by
    // bench_compare.py (--max-overhead-pct); the nested objects add
    // informational on/off timings for the span-dense fairness-SHAP
    // batch and worst-slice-search workloads from PRs 8/9.
    std::string obs_extra;
    {
      Dataset credit = CreditGen().Generate(1024, 313);
      DecisionTree ctree;
      DecisionTreeOptions copts;
      copts.max_depth = 6;
      XFAIR_CHECK(ctree.Fit(credit, copts).ok());
      std::vector<size_t> all(credit.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      auto fshap = [&] {
        benchmark::DoNotOptimize(
            FairnessShapBatch(ctree, credit, all, {}));
      };
      SliceSearchOptions sopts;
      sopts.max_conditions = 2;
      auto ssearch = [&] {
        benchmark::DoNotOptimize(WorstSliceSearch(ctree, credit, sopts));
      };
      const auto once = [&](const std::function<void()>& fn) {
        return bench_json_internal::TimeMs(fn, 3);
      };
      SetParallelThreads(1);
      // Interleave the off / recorder-on / eventlog-on states and keep
      // the per-state minimum over 25 bracketed rounds of best-of-3
      // samples (~8s wall: longer than the CPU-contention bursts a
      // shared host throws at this container, so every state gets
      // quiet-window samples). Scheduler noise is strictly additive, so
      // floor-vs-floor is the estimator of the sinks' intrinsic cost —
      // which is what an absolute 2% budget has to bound; sequential
      // on/off blocks or per-round ratio medians both swing several
      // percent run to run at this workload scale.
      double batch_off = 1e300, fs_off = 1e300, ss_off = 1e300;
      double batch_rec = 1e300, fs_rec = 1e300, ss_rec = 1e300;
      double batch_ev = 1e300, fs_ev = 1e300, ss_ev = 1e300;
      const auto pct = [](double off, double on) {
        return off > 0.0 ? 100.0 * (on / off - 1.0) : 0.0;
      };
      // Host-level CPU steal on a single-vCPU guest can outlast one
      // sampling pass, so the floors carry across up to three passes —
      // they only ever settle downward toward the intrinsic cost. A
      // sink whose true cost exceeded the budget would read high on
      // every pass, so the early exit cannot mask a real regression.
      double rec_pct = 0.0, ev_pct = 0.0;
      for (int attempt = 0; attempt < 3; ++attempt) {
        for (int rep = 0; rep < 25; ++rep) {
          batch_off = std::min(batch_off, once(batch));
          fs_off = std::min(fs_off, once(fshap));
          ss_off = std::min(ss_off, once(ssearch));
          obs::SetRecorderEnabled(true);
          batch_rec = std::min(batch_rec, once(batch));
          fs_rec = std::min(fs_rec, once(fshap));
          ss_rec = std::min(ss_rec, once(ssearch));
          obs::SetRecorderEnabled(false);
          obs::SetEventLogEnabled(true);
          batch_ev = std::min(batch_ev, once(batch));
          fs_ev = std::min(fs_ev, once(fshap));
          ss_ev = std::min(ss_ev, once(ssearch));
          obs::SetEventLogEnabled(false);
          batch_off = std::min(batch_off, once(batch));
        }
        rec_pct = pct(batch_off, batch_rec);
        ev_pct = pct(batch_off, batch_ev);
        if (std::max(rec_pct, ev_pct) <= 1.0) break;
      }
      obs::ResetRecorder();
      obs::ResetEventLog();
      SetParallelThreads(0);
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "  \"recorder_idle_overhead_pct\": %.1f,\n"
          "  \"eventlog_idle_overhead_pct\": %.1f,\n"
          "  \"recorder\": {\"off_ms\": %.3f, \"on_ms\": %.3f, "
          "\"fairness_shap_off_ms\": %.3f, \"fairness_shap_on_ms\": %.3f, "
          "\"slice_search_off_ms\": %.3f, \"slice_search_on_ms\": %.3f},\n"
          "  \"eventlog\": {\"off_ms\": %.3f, \"on_ms\": %.3f, "
          "\"fairness_shap_off_ms\": %.3f, \"fairness_shap_on_ms\": %.3f, "
          "\"slice_search_off_ms\": %.3f, \"slice_search_on_ms\": %.3f},\n",
          rec_pct, ev_pct, batch_off,
          batch_rec, fs_off, fs_rec, ss_off, ss_rec, batch_off, batch_ev,
          fs_off, fs_ev, ss_off, ss_ev);
      obs_extra = buf;
    }

    RecordAlgoSpeedup(
        "obs_overhead",
        [&] {
          obs::SetTracingEnabled(true);
          workload();
          obs::SetTracingEnabled(false);
          obs::FlushSpans();  // Drain so buffers never grow unboundedly.
        },
        workload, /*repeats=*/5, monitor_json + obs_extra);
  }

  // e. Dense kernels vs the pre-kernel per-element checked-At loops.
  // The baseline replicates what LogisticRegression / KNN / the scaler
  // paid before PR 4: an always-on bounds check per element (the old
  // Matrix::At) and a strictly sequential accumulator the compiler
  // cannot vectorize without changing results.
  {
    const size_t rows = 2000, d = 64;
    Matrix m(rows, d);
    Rng rng(309);
    for (size_t r = 0; r < rows; ++r)
      for (size_t c = 0; c < d; ++c) m.At(r, c) = rng.Uniform(-2, 2);
    Vector v(d), q(d), logits(rows), probs(rows);
    for (size_t c = 0; c < d; ++c) {
      v[c] = rng.Uniform(-1, 1);
      q[c] = rng.Uniform(-2, 2);
    }
    // The old checked accessor, verbatim: every element access pays the
    // branch Matrix::At used to carry before it became an XFAIR_DCHECK.
    auto checked_at = [&](size_t r, size_t c) -> double {
      XFAIR_CHECK(r < m.rows() && c < m.cols());
      return m.At(r, c);
    };
    RecordAlgoSpeedup(
        "dense_kernels",
        [&] {
          // Gemv: sequential per-row dot through the checked accessor.
          for (size_t r = 0; r < rows; ++r) {
            double acc = 0.0;
            for (size_t c = 0; c < d; ++c) acc += checked_at(r, c) * v[c];
            logits[r] = acc;
          }
          // SquaredDistance of every row against the query.
          double total = 0.0;
          for (size_t r = 0; r < rows; ++r) {
            double acc = 0.0;
            for (size_t c = 0; c < d; ++c) {
              const double diff = checked_at(r, c) - q[c];
              acc += diff * diff;
            }
            total += acc;
          }
          benchmark::DoNotOptimize(total);
          // Element-at-a-time sigmoid over the logits.
          for (size_t r = 0; r < rows; ++r)
            probs[r] = kernels::Sigmoid(logits[r]);
          benchmark::DoNotOptimize(probs);
        },
        [&] {
          kernels::Gemv(m.RowPtr(0), rows, d, v.data(), 0.0, logits.data());
          double total = 0.0;
          for (size_t r = 0; r < rows; ++r)
            total += kernels::SquaredDistance(m.RowPtr(r), q.data(), d);
          benchmark::DoNotOptimize(total);
          kernels::SigmoidBatch(logits.data(), probs.data(), rows);
          benchmark::DoNotOptimize(probs);
        },
        /*repeats=*/5);
  }
}

void BM_PathDependentTreeShap(benchmark::State& state) {
  PrintOnce();
  Dataset data = WideDataset(1200, 301);
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 8;
  opts.min_samples_leaf = 4;
  XFAIR_CHECK(tree.Fit(data, opts).ok());
  const Vector x = data.instance(117);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PathDependentTreeShap(tree, x));
  }
}
BENCHMARK(BM_PathDependentTreeShap)->Unit(benchmark::kMicrosecond);

void BM_ExactShapleyTreeGame(benchmark::State& state) {
  PrintOnce();
  Dataset data = WideDataset(1200, 301);
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 8;
  opts.min_samples_leaf = 4;
  XFAIR_CHECK(tree.Fit(data, opts).ok());
  const Vector x = data.instance(117);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactShapley(PathDependentGame(tree, x), kWideDim));
  }
}
BENCHMARK(BM_ExactShapleyTreeGame)->Unit(benchmark::kMillisecond);

void BM_InterventionalTreeShap(benchmark::State& state) {
  PrintOnce();
  Dataset data = WideDataset(1200, 301);
  RandomForest forest;
  XFAIR_CHECK(forest.Fit(data).ok());
  // Background of the first `range(0)` rows.
  const size_t b = static_cast<size_t>(state.range(0));
  Matrix background(b, kWideDim);
  for (size_t r = 0; r < b; ++r)
    for (size_t c = 0; c < kWideDim; ++c)
      background.At(r, c) = data.x().At(r, c);
  const Vector x = data.instance(766);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterventionalTreeShap(forest, background, x));
  }
  state.SetLabel("background=" + std::to_string(b));
}
BENCHMARK(BM_InterventionalTreeShap)->Arg(32)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_ForestBatchPredict(benchmark::State& state) {
  PrintOnce();
  Dataset data = WideDataset(static_cast<size_t>(state.range(0)), 302);
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 30;
  XFAIR_CHECK(forest.Fit(data, opts).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictProbaBatch(data.x()));
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ForestBatchPredict)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_KdTreeQuery(benchmark::State& state) {
  PrintOnce();
  Dataset train = WideDataset(12000, 303, 6);
  KnnClassifier knn(5);
  XFAIR_CHECK(knn.Fit(train).ok());
  const Vector q = WideDataset(1, 304, 6).instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.Neighbors(q, 5));
  }
}
BENCHMARK(BM_KdTreeQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xfair
