// Experiment A9 (paper §II, mitigation stages): the fairness-accuracy
// frontier across pre-, in-, and post-processing on held-out data —
// the tradeoff the Figure 1 taxonomy implies. Also an ablation on the
// in-processing penalty weight.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/data/generators.h"
#include "src/fairness/group_metrics.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/util/table.h"

namespace xfair {
namespace {

struct Split {
  Dataset train, test;
};

Split MakeSplit(uint64_t seed = 151) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  cfg.label_bias = 0.1;
  Dataset all = CreditGen(cfg).Generate(3000, seed);
  Rng rng(seed + 1);
  auto [train, test] = all.Split(0.6, &rng);
  return {std::move(train), std::move(test)};
}

void AddRow(AsciiTable* t, const std::string& stage,
            const std::string& method, const Model& model,
            const Dataset& test) {
  GroupFairnessReport r = EvaluateGroupFairness(model, test);
  t->AddRow({stage, method, FormatDouble(r.accuracy),
             FormatDouble(r.statistical_parity_difference),
             FormatDouble(r.equal_opportunity_difference),
             FormatDouble(r.equalized_odds_difference)});
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  Split s = MakeSplit();
  LogisticRegression baseline;
  XFAIR_CHECK(baseline.Fit(s.train).ok());

  AsciiTable t({"stage", "method", "accuracy", "parity", "eq. opp.",
                "eq. odds"});
  AddRow(&t, "(none)", "baseline logistic", baseline, s.test);

  LogisticRegression reweighed;
  XFAIR_CHECK(
      reweighed.Fit(s.train, {}, ReweighingWeights(s.train)).ok());
  AddRow(&t, "pre", "reweighing", reweighed, s.test);

  Dataset massaged = MassageLabels(s.train, baseline, 100);
  LogisticRegression on_massaged;
  XFAIR_CHECK(on_massaged.Fit(massaged).ok());
  AddRow(&t, "pre", "massaging (100 pairs)", on_massaged, s.test);

  for (double lambda : {2.0, 20.0}) {
    FairTrainingOptions opts;
    opts.penalty = FairPenalty::kParity;
    opts.lambda = lambda;
    auto model = TrainFairLogisticRegression(s.train, opts);
    XFAIR_CHECK(model.ok());
    AddRow(&t, "in", "parity penalty lambda=" + FormatDouble(lambda, 0),
           *model, s.test);
  }

  {
    FairTrainingOptions opts;
    opts.penalty = FairPenalty::kIndividual;
    opts.lambda = 5.0;
    opts.lipschitz = 0.15;
    auto model = TrainFairLogisticRegression(s.train, opts);
    XFAIR_CHECK(model.ok());
    AddRow(&t, "in", "Lipschitz penalty (individual)", *model, s.test);
  }

  for (auto criterion : {ThresholdCriterion::kStatisticalParity,
                         ThresholdCriterion::kEqualOpportunity,
                         ThresholdCriterion::kEqualizedOdds}) {
    ThresholdSearchOptions opts;
    opts.criterion = criterion;
    auto wrapped = FitGroupThresholds(baseline, s.train, opts);
    XFAIR_CHECK(wrapped.ok());
    const char* name =
        criterion == ThresholdCriterion::kStatisticalParity
            ? "thresholds (parity)"
            : criterion == ThresholdCriterion::kEqualOpportunity
                  ? "thresholds (eq. opp.)"
                  : "thresholds (eq. odds)";
    AddRow(&t, "post", name, *wrapped, s.test);
  }
  std::printf("\n=== A9: mitigation stages, held-out fairness-accuracy "
              "frontier ===\nExpected shape: each method shrinks its own "
              "target gap at modest accuracy cost; the individual-level "
              "Lipschitz penalty leaves group gaps untouched (individual "
              "!= group fairness, SII); post-processing hits its "
              "criterion most precisely.\n"
              "%s\n",
              t.ToString().c_str());

  // Ablation: penalty-weight dial.
  AsciiTable dial({"lambda", "parity gap (test)", "accuracy (test)"});
  for (double lambda : {0.0, 0.5, 2.0, 8.0, 32.0}) {
    FairTrainingOptions opts;
    opts.lambda = lambda;
    auto model = TrainFairLogisticRegression(s.train, opts);
    XFAIR_CHECK(model.ok());
    dial.AddRow({FormatDouble(lambda, 1),
                 FormatDouble(std::fabs(
                     StatisticalParityDifference(*model, s.test))),
                 FormatDouble(Accuracy(*model, s.test))});
  }
  std::printf("=== A9b: in-processing penalty dial ===\nExpected shape: "
              "gap monotone down, accuracy slowly down.\n%s\n",
              dial.ToString().c_str());
}

void BM_Reweighing(benchmark::State& state) {
  PrintOnce();
  Split s = MakeSplit(152);
  for (auto _ : state) {
    LogisticRegression model;
    benchmark::DoNotOptimize(
        model.Fit(s.train, {}, ReweighingWeights(s.train)));
  }
}
BENCHMARK(BM_Reweighing)->Unit(benchmark::kMillisecond);

void BM_FairTraining(benchmark::State& state) {
  PrintOnce();
  Split s = MakeSplit(153);
  FairTrainingOptions opts;
  opts.lambda = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainFairLogisticRegression(s.train, opts));
  }
}
BENCHMARK(BM_FairTraining)->Unit(benchmark::kMillisecond);

void BM_ThresholdSearch(benchmark::State& state) {
  PrintOnce();
  Split s = MakeSplit(154);
  LogisticRegression baseline;
  XFAIR_CHECK(baseline.Fit(s.train).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGroupThresholds(baseline, s.train, {}));
  }
}
BENCHMARK(BM_ThresholdSearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
