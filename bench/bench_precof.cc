// Experiment A2 (paper §IV-A, PreCoF [71]): explicit vs implicit bias.
// With the sensitive attribute available and a direct penalty on it, the
// counterfactuals of protected negatives flip the sensitive attribute
// (explicit bias). With the sensitive attribute removed from training, the
// change frequencies migrate onto proxy features, and the migration grows
// with the planted proxy strength (implicit bias).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/precof.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // Explicit-bias probe: model with a direct sensitive-attribute penalty.
  {
    Dataset data = CreditGen().Generate(700, 81);
    LogisticRegression direct;
    Vector w(data.num_features(), 0.0);
    w[0] = -6.0;
    w[2] = 0.25;
    direct.SetParameters(w, 0.0);
    Rng rng(82);
    auto report = PrecofExplicitBias(direct, data, &rng);
    AsciiTable t({"feature", "CF change freq G+", "CF change freq G-"});
    for (size_t c = 0; c < report.feature_names.size(); ++c) {
      t.AddRow({report.feature_names[c],
                FormatDouble(report.change_freq_protected[c]),
                FormatDouble(report.change_freq_non_protected[c])});
    }
    std::printf("\n=== A2a: PreCoF explicit bias (model penalizes "
                "'protected' directly) ===\nExpected shape: 'protected' "
                "changes in nearly all G+ counterfactuals, almost never "
                "in G-.\n%s\n",
                t.ToString().c_str());
  }

  // Implicit-bias probe: sweep proxy strength.
  {
    AsciiTable t({"proxy strength", "top proxy feature", "freq gap",
                  "zip_risk gap"});
    for (double proxy : {0.0, 0.45, 0.9}) {
      BiasConfig cfg;
      cfg.proxy_strength = proxy;
      cfg.score_shift = 0.8;
      Dataset data = CreditGen(cfg).Generate(900, 83);
      Rng rng(84);
      auto report = PrecofImplicitBias(data, &rng);
      const size_t top = report.ranked_features[0];
      // zip_risk is index 6 after the sensitive column is dropped.
      t.AddRow({FormatDouble(proxy, 2), report.feature_names[top],
                FormatDouble(report.frequency_gap[top]),
                FormatDouble(report.frequency_gap[6])});
    }
    std::printf("=== A2b: PreCoF implicit bias vs proxy strength ===\n"
                "Expected shape: with no proxy the gaps are small; strong "
                "proxies create group-specific recourse routes.\n%s\n",
                t.ToString().c_str());
  }
}

void BM_PrecofExplicit(benchmark::State& state) {
  PrintOnce();
  Dataset data = CreditGen().Generate(500, 85);
  LogisticRegression direct;
  Vector w(data.num_features(), 0.0);
  w[0] = -6.0;
  w[2] = 0.25;
  direct.SetParameters(w, 0.0);
  Rng rng(86);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecofExplicitBias(direct, data, &rng));
  }
}
BENCHMARK(BM_PrecofExplicit)->Unit(benchmark::kMillisecond);

void BM_PrecofImplicit(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.proxy_strength = 0.9;
  Dataset data = CreditGen(cfg).Generate(500, 87);
  Rng rng(88);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecofImplicitBias(data, &rng));
  }
}
BENCHMARK(BM_PrecofImplicit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
