// Experiment A7 (paper §IV-C, recommendations): the four recommendation
// fairness explainers on the popularity-biased world —
//  - exposure share vs planted popularity suppression (the bias dial);
//  - RecWalk edge-removal attributions [84];
//  - CEF latent-factor explanations [87];
//  - CFairER minimal attribute sets [86];
//  - GNNUERS edge perturbation curve [91];
//  - fairness-aware KG path reranking [44].

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/beyond/cef.h"
#include "src/beyond/dexer.h"
#include "src/data/generators.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/fair_topk.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/rec/knowledge_graph.h"
#include "src/rec/mf.h"
#include "src/util/table.h"

namespace xfair {
namespace {

RecWorld MakeWorld(double popularity, uint64_t seed = 131) {
  RecGenConfig cfg;
  cfg.protected_item_popularity = popularity;
  cfg.protected_user_activity = 0.5;
  return GenerateRecWorld(cfg, seed);
}

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // Exposure vs popularity suppression.
  {
    AsciiTable t({"protected popularity multiplier",
                  "protected exposure share (top-10)",
                  "protected item share"});
    for (double pop : {1.0, 0.6, 0.3}) {
      RecWorld world = MakeWorld(pop);
      RecWalkScorer scorer(&world.interactions);
      size_t protected_items = 0;
      for (int g : world.item_groups) protected_items += (g == 1);
      t.AddRow({FormatDouble(pop, 1),
                FormatDouble(RecExposureShare(scorer, world.interactions,
                                              world.item_groups, 10)),
                FormatDouble(static_cast<double>(protected_items) /
                             world.item_groups.size())});
    }
    std::printf("\n=== A7a: RecWalk exposure vs planted popularity bias "
                "===\nExpected shape: exposure share tracks the "
                "popularity multiplier down, falling below the item "
                "share.\n%s\n",
                t.ToString().c_str());
  }

  RecWorld world = MakeWorld(0.3);

  // Edge-removal attributions [84].
  {
    RecEdgeExplainOptions opts;
    opts.max_edges = 25;
    auto attributions = ExplainExposureByEdgeRemoval(
        world.interactions, world.item_groups, opts);
    AsciiTable t({"removed edge", "dExposure(protected)"});
    for (const auto& a : attributions) {
      t.AddRow({"(user " + std::to_string(a.user) + ", item " +
                    std::to_string(a.item) + ")",
                FormatDouble(a.effect, 4)});
    }
    std::printf("=== A7b: edge-removal bias explanations [84] ===\n%s\n",
                t.ToString().c_str());
  }

  // CEF factors [87].
  {
    MatrixFactorization mf;
    XFAIR_CHECK(mf.Fit(world.interactions, {}).ok());
    auto report = ExplainRecFairnessByFactors(mf, world.interactions,
                                              world.item_groups, {});
    AsciiTable t({"latent factor", "best damp scale", "fairness gain",
                  "utility loss", "explainability"});
    for (size_t k = 0; k < std::min<size_t>(4, report.ranked_factors.size());
         ++k) {
      const auto& f = report.ranked_factors[k];
      t.AddRow({std::to_string(f.factor), FormatDouble(f.best_scale, 2),
                FormatDouble(f.fairness_gain, 4),
                FormatDouble(f.utility_loss, 4),
                FormatDouble(f.explainability, 4)});
    }
    std::printf("=== A7c: CEF factor explanations [87] (base |gap| %.4f) "
                "===\nExpected shape: a few factors offer positive "
                "fairness gain at small utility loss.\n%s\n",
                report.base_exposure_gap, t.ToString().c_str());
  }

  // CFairER attribute sets [86].
  {
    Rng rng(132);
    Matrix attrs(world.interactions.num_items(), 4);
    for (size_t i = 0; i < attrs.rows(); ++i) {
      attrs.At(i, 0) = world.item_groups[i] == 1 ? 0.2 : 1.0;
      for (size_t a = 1; a < 4; ++a) attrs.At(i, a) = rng.Uniform(0, 1);
    }
    AttributeRecommender model(world.interactions, std::move(attrs));
    CfairerOptions opts;
    opts.target_gap = 0.01;
    auto report =
        ExplainFairnessByAttributes(model, world.item_groups, opts);
    std::printf("=== A7d: CFairER minimal attribute set [86] ===\n"
                "Removed %zu attribute(s); |exposure gap| %.4f -> %.4f "
                "(target %.2f %s)\n\n",
                report.attribute_set.size(), report.base_exposure_gap,
                report.final_exposure_gap, opts.target_gap,
                report.target_reached ? "reached" : "not reached");
  }

  // GNNUERS perturbation curve [91].
  {
    GnnuersOptions opts;
    opts.max_deletions = 6;
    opts.target_gap = 0.005;
    auto report = ExplainUserUnfairnessByPerturbation(
        world.interactions, world.user_groups, opts);
    AsciiTable t({"deletion #", "edge", "quality gap after"});
    t.AddRow({"0", "(none)", FormatDouble(report.base_gap, 4)});
    for (size_t k = 0; k < report.deletions.size(); ++k) {
      const auto& d = report.deletions[k];
      t.AddRow({std::to_string(k + 1),
                "(u" + std::to_string(d.user) + ", i" +
                    std::to_string(d.item) + ")",
                FormatDouble(d.gap_after, 4)});
    }
    std::printf("=== A7e: GNNUERS edge-perturbation curve [91] ===\n"
                "Expected shape: |gap| decreasing along deletions.\n%s\n",
                t.ToString().c_str());
  }

  // Probability-based fair top-k (FA*IR style, SII [23]).
  {
    Rng rng(134);
    const size_t n = 60;
    std::vector<double> scores(n);
    std::vector<int> flags(n);
    for (size_t i = 0; i < n; ++i) {
      flags[i] = i % 2;
      scores[i] = rng.Uniform(0, 1) - 0.35 * flags[i];  // Biased scorer.
    }
    AsciiTable t({"alpha", "protected in top-20", "swaps", "feasible"});
    for (double alpha : {0.01, 0.1, 0.3}) {
      auto r = BuildFairTopK(scores, flags, 20, 0.5, alpha);
      size_t prot = 0;
      for (size_t i : r.ranking) prot += (flags[i] == 1);
      t.AddRow({FormatDouble(alpha, 2), std::to_string(prot),
                std::to_string(r.swaps), r.feasible ? "yes" : "no"});
    }
    std::printf("=== A7g: probability-based fair top-k (FA*IR style) ===\n"
                "Expected shape: larger alpha demands prefixes closer to "
                "the target proportion, forcing more protected items in "
                "via more swaps.\n%s\n",
                t.ToString().c_str());
  }

  // Dexer [88]: detect + explain group under-representation in a
  // score-based ranking.
  {
    BiasConfig cfg;
    cfg.qualification_gap = 1.5;
    Dataset tuples = CreditGen(cfg).Generate(600, 135);
    TupleScorer scorer = [](const Vector& x) {
      return x[2] + 0.3 * x[3];  // income + savings
    };
    DexerOptions opts;
    opts.top_k = 60;
    auto r = ExplainRankingRepresentation(tuples, scorer, opts);
    AsciiTable t({"quantity", "value"});
    t.AddRow({"protected share overall",
              FormatDouble(r.detection.overall_share)});
    t.AddRow({"protected share in top-60",
              FormatDouble(r.detection.topk_share)});
    t.AddRow({"representation gap",
              FormatDouble(r.detection.representation_gap)});
    t.AddRow({"top attribute (Shapley)",
              r.attribute_names[r.ranked_attributes[0]]});
    t.AddRow({"its contribution",
              FormatDouble(r.attributions[r.ranked_attributes[0]])});
    std::printf("=== A7h: Dexer ranking-representation explanation [88] "
                "===\nExpected shape: the protected group is "
                "under-represented in the top-k and the scoring "
                "attributes carry the blame.\n%s\n",
                t.ToString().c_str());
  }

  // KG path reranking [44] on a KG materialized from the interaction
  // world (interaction triples + item attributes).
  {
    KgWorld kgw = BuildKgFromRecWorld(world, 6, 133);
    auto paths = kgw.kg.FindItemPaths(kgw.user_entities[0], 3);
    auto candidates =
        kgw.kg.ToCandidates(paths, kgw.entity_item_groups);
    AsciiTable t({"min protected exposure", "exposure after",
                  "relevance loss", "path diversity"});
    for (double target : {0.3, 0.6, 0.75}) {
      KgRerankOptions opts;
      opts.min_protected_exposure = target;
      auto r = FairRerank(candidates, opts);
      t.AddRow({FormatDouble(target, 2), FormatDouble(r.exposure_after),
                FormatDouble(r.relevance_loss),
                FormatDouble(r.path_diversity)});
    }
    std::printf("=== A7f: fairness-aware KG path reranking [44] ===\n"
                "Expected shape: tighter constraints cost more relevance; "
                "diversity stays high.\n%s\n",
                t.ToString().c_str());
  }
}

void BM_RecWalkScore(benchmark::State& state) {
  PrintOnce();
  RecWorld world = MakeWorld(0.3);
  RecWalkScorer scorer(&world.interactions);
  size_t user = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.ScoreItems(user));
    user = (user + 1) % world.interactions.num_users();
  }
}
BENCHMARK(BM_RecWalkScore)->Unit(benchmark::kMicrosecond);

void BM_MfTraining(benchmark::State& state) {
  PrintOnce();
  RecWorld world = MakeWorld(0.3);
  for (auto _ : state) {
    MatrixFactorization mf;
    benchmark::DoNotOptimize(mf.Fit(world.interactions, {}));
  }
}
BENCHMARK(BM_MfTraining)->Unit(benchmark::kMillisecond);

void BM_GnnuersPerturbation(benchmark::State& state) {
  PrintOnce();
  RecWorld world = MakeWorld(0.3);
  GnnuersOptions opts;
  opts.max_deletions = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainUserUnfairnessByPerturbation(
        world.interactions, world.user_groups, opts));
  }
}
BENCHMARK(BM_GnnuersPerturbation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
