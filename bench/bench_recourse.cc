// Experiment A4 (paper §IV-A recourse): three claims made by the recourse
// line of work, measured.
//  1. Independent-feature counterfactuals overstate effort compared with
//     SCM-aware recourse [65]: intervening on a cause moves its effects
//     for free.
//  2. Recourse is unevenly distributed across groups [79]; a recourse-
//     equalized classifier shrinks that gap.
//  3. Fair causal recourse [80]: the cost gap between an individual and
//     their counterfactual twin vanishes when the classifier ignores
//     S-descendant information, and grows with world disparity.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/causal/worlds.h"
#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/mitigate/inprocess.h"
#include "src/model/metrics.h"
#include "src/unfair/recourse.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;

  // 1. Independent CF vs causal recourse.
  {
    CausalWorld world = MakeCreditWorld(1.0);
    Dataset data = world.GenerateDataset(600, 101);
    LogisticRegression model;
    XFAIR_CHECK(model.Fit(data).ok());
    auto income = world.scm.dag().IndexOf("income");
    Rng rng(102);
    double independent_cost = 0.0, causal_cost = 0.0;
    size_t evaluated = 0;
    for (size_t i = 0; i < data.size() && evaluated < 60; ++i) {
      const Vector x = data.instance(i);
      if (model.Predict(x) != 0) continue;
      auto cf =
          GrowingSpheresCounterfactual(model, data.schema(), x, {}, &rng);
      auto recourse =
          FindCausalRecourse(model, world.scm, x, {*income}, {});
      if (!cf.valid || !recourse.found) continue;
      // Comparable units: range-normalized distance of the final state.
      independent_cost += cf.distance;
      causal_cost +=
          NormalizedDistance(data.schema(), x, recourse.resulting_state);
      ++evaluated;
    }
    AsciiTable t({"strategy", "mean state change (normalized)"});
    t.AddRow({"independent-feature CF",
              FormatDouble(independent_cost / evaluated)});
    t.AddRow({"SCM intervention on income (effects free)",
              FormatDouble(causal_cost / evaluated)});
    std::printf("\n=== A4a: independent CFs vs causal recourse [65] "
                "(n=%zu denied) ===\nExpected shape: the SCM route moves "
                "more total state per unit of *intervention* because "
                "downstream effects come free; the independent CF "
                "minimizes visible change instead.\n%s\n",
                evaluated, t.ToString().c_str());
  }

  // 2. Recourse equalization [79].
  {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    Dataset data = CreditGen(cfg).Generate(1500, 103);
    AsciiTable t({"model", "recourse G+", "recourse G-", "gap",
                  "accuracy"});
    LogisticRegression baseline;
    XFAIR_CHECK(baseline.Fit(data).ok());
    auto base_report = EvaluateGroupRecourse(baseline, data);
    t.AddRow({"baseline logistic",
              FormatDouble(base_report.recourse_protected),
              FormatDouble(base_report.recourse_non_protected),
              FormatDouble(base_report.recourse_gap),
              FormatDouble(Accuracy(baseline, data))});
    for (double lambda : {1.0, 5.0, 20.0}) {
      FairTrainingOptions opts;
      opts.penalty = FairPenalty::kRecourse;
      opts.lambda = lambda;
      auto model = TrainFairLogisticRegression(data, opts);
      XFAIR_CHECK(model.ok());
      auto report = EvaluateGroupRecourse(*model, data);
      t.AddRow({"recourse-penalized (lambda=" + FormatDouble(lambda, 0) +
                    ")",
                FormatDouble(report.recourse_protected),
                FormatDouble(report.recourse_non_protected),
                FormatDouble(report.recourse_gap),
                FormatDouble(Accuracy(*model, data))});
    }
    std::printf("=== A4b: equalizing recourse across groups [79] ===\n"
                "Expected shape: the baseline's recourse gap shrinks "
                "monotonically with the penalty weight at modest accuracy "
                "cost.\n%s\n",
                t.ToString().c_str());
  }

  // 3. Fair causal recourse [80] vs world disparity.
  {
    AsciiTable t({"world disparity", "cost gap (group)",
                  "individual unfairness"});
    for (double disparity : {0.0, 0.75, 1.5}) {
      CausalWorld world = MakeCreditWorld(disparity);
      LogisticRegression model;
      model.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
      auto income = world.scm.dag().IndexOf("income");
      auto report = EvaluateCausalRecourseFairness(model, world,
                                                   {*income}, 400, 104);
      t.AddRow({FormatDouble(disparity, 2), FormatDouble(report.group_gap),
                FormatDouble(report.individual_unfairness)});
    }
    std::printf("=== A4c: fair causal recourse [80] vs disparity ===\n"
                "Expected shape: both unfairness measures ~0 in the "
                "disparity-free world and increasing with it.\n%s\n",
                t.ToString().c_str());
  }
}

void BM_CausalRecourseSearch(benchmark::State& state) {
  PrintOnce();
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression model;
  model.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
  auto income = world.scm.dag().IndexOf("income");
  auto savings = world.scm.dag().IndexOf("savings");
  Rng rng(105);
  Vector x;
  do {
    x = world.scm.SampleDo({{world.sensitive, 1.0}}, &rng);
  } while (model.Predict(x) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindCausalRecourse(model, world.scm, x, {*income, *savings}, {}));
  }
}
BENCHMARK(BM_CausalRecourseSearch)->Unit(benchmark::kMicrosecond);

void BM_GroupRecourse(benchmark::State& state) {
  PrintOnce();
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(1000, 106);
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(data).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateGroupRecourse(model, data));
  }
}
BENCHMARK(BM_GroupRecourse)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
