// Experiment T1 — regenerates the paper's Table I ("Overview of
// approaches for explaining (un)fairness").
//
// For every registry entry this prints the static classification columns
// (Stage / Access / Agnostic / Coverage / Type / Output / Level / Fairness
// type / Task / Goal) exactly as Table I reports them, plus a live
// "measured" column produced by running this library's implementation on
// the standard planted-bias fixtures. The benchmark timings report the
// cost of each approach end-to-end.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/registry.h"
#include "src/util/table.h"

namespace xfair {
namespace {

const RunContext& SharedContext() {
  static const RunContext* ctx = new RunContext(RunContext::Make(2024));
  return *ctx;
}

void PrintTableOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const RunContext& ctx = SharedContext();

  AsciiTable table({"Appr.", "Stage", "Access", "Agn.", "Cov.", "Type",
                    "Output", "Level", "Fairness type", "Task", "Goal",
                    "Measured (this run)"});
  for (const auto& a : ApproachRegistry()) {
    if (!a.in_table1) continue;
    table.AddRow({a.citation, ToString(a.stage), ToString(a.access),
                  ToString(a.agnostic), ToString(a.coverage),
                  a.explanation_type, a.output, ToString(a.level),
                  a.fairness_type, ToString(a.task), a.goals.ToString(),
                  a.runner(ctx)});
  }
  std::printf("\n=== Table I: approaches for explaining (un)fairness "
              "(regenerated) ===\n%s\n",
              table.ToString().c_str());

  AsciiTable extras({"Appr.", "Name", "Output", "Goal",
                     "Measured (this run)"});
  for (const auto& a : ApproachRegistry()) {
    if (a.in_table1) continue;
    extras.AddRow({a.citation, a.name, a.output, a.goals.ToString(),
                   a.runner(ctx)});
  }
  std::printf("=== SIV-text methods beyond Table I ===\n%s\n",
              extras.ToString().c_str());
}

void BM_TableOneApproach(benchmark::State& state) {
  PrintTableOnce();
  const auto& registry = ApproachRegistry();
  const auto& approach = registry[static_cast<size_t>(state.range(0))];
  const RunContext& ctx = SharedContext();
  for (auto _ : state) {
    benchmark::DoNotOptimize(approach.runner(ctx));
  }
  state.SetLabel(approach.citation + " " + approach.name);
}

void RegisterAll() {
  const auto& registry = ApproachRegistry();
  for (size_t i = 0; i < registry.size(); ++i) {
    benchmark::RegisterBenchmark("BM_TableOneApproach", BM_TableOneApproach)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace xfair
