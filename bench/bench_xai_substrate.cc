// Experiment A10 (paper §III substrate): quality/cost characterization of
// the XAI machinery everything in §IV builds on.
//  a. Counterfactual generators (Wachter vs growing spheres) on a linear
//     and an ensemble model: validity, distance, sparsity.
//  b. Exact vs sampled SHAP: error against evaluation budget.
//  c. Surrogate fidelity (local and global) against black-box complexity.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/explain/shap.h"
#include "src/explain/surrogate.h"
#include "src/model/logistic_regression.h"
#include "src/model/gbm.h"
#include "src/model/random_forest.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace xfair {
namespace {

void PrintOnce() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  Dataset data = CreditGen().Generate(800, 161);
  LogisticRegression lr;
  XFAIR_CHECK(lr.Fit(data).ok());
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 20;
  XFAIR_CHECK(forest.Fit(data, fo).ok());
  GradientBoostedTrees gbm;
  XFAIR_CHECK(gbm.Fit(data).ok());

  // a. CF generator comparison.
  {
    AsciiTable t({"model", "generator", "validity", "mean dist",
                  "mean sparsity"});
    auto eval = [&](const Model& model, const std::string& model_name,
                    bool wachter) {
      Rng rng(162);
      size_t valid = 0, tried = 0;
      double dist = 0.0, sparsity = 0.0;
      for (size_t i = 0; i < data.size() && tried < 50; ++i) {
        const Vector x = data.instance(i);
        if (model.Predict(x) != 0) continue;
        ++tried;
        CounterfactualResult r;
        if (wachter) {
          r = WachterCounterfactual(lr, data.schema(), x, {});
        } else {
          r = GrowingSpheresCounterfactual(model, data.schema(), x, {},
                                           &rng);
        }
        if (!r.valid) continue;
        ++valid;
        dist += r.distance;
        sparsity += static_cast<double>(r.sparsity);
      }
      t.AddRow({model_name, wachter ? "Wachter (gradient)"
                                    : "growing spheres (black-box)",
                FormatDouble(static_cast<double>(valid) / tried),
                FormatDouble(valid ? dist / valid : 0.0),
                FormatDouble(valid ? sparsity / valid : 0.0, 1)});
    };
    eval(lr, "logistic", true);
    eval(lr, "logistic", false);
    eval(forest, "forest", false);
    eval(gbm, "gbm", false);
    std::printf("\n=== A10a: counterfactual generators ===\nExpected "
                "shape: gradient access buys shorter, sparser CFs on the "
                "linear model; growing spheres still achieves high "
                "validity on the black-box forest.\n%s\n",
                t.ToString().c_str());
  }

  // a2. Growing-spheres configuration ablation on the forest.
  {
    AsciiTable t({"samples/sphere", "radius growth", "validity",
                  "mean dist", "mean iterations"});
    for (size_t samples : {10, 40, 160}) {
      for (double growth : {1.1, 1.3, 1.8}) {
        Rng rng(190);
        CounterfactualConfig cfg;
        cfg.samples_per_sphere = samples;
        cfg.radius_growth = growth;
        size_t valid = 0, tried = 0;
        double dist = 0.0, iters = 0.0;
        for (size_t i = 0; i < data.size() && tried < 40; ++i) {
          const Vector x = data.instance(i);
          if (forest.Predict(x) != 0) continue;
          ++tried;
          auto r = GrowingSpheresCounterfactual(forest, data.schema(), x,
                                                cfg, &rng);
          if (!r.valid) continue;
          ++valid;
          dist += r.distance;
          iters += static_cast<double>(r.iterations);
        }
        t.AddRow({std::to_string(samples), FormatDouble(growth, 1),
                  FormatDouble(static_cast<double>(valid) / tried),
                  FormatDouble(valid ? dist / valid : 0.0),
                  FormatDouble(valid ? iters / valid : 0.0, 1)});
      }
    }
    std::printf("=== A10a2: growing-spheres ablation ===\nExpected "
                "shape: more samples per sphere buy shorter CFs; faster "
                "radius growth converges in fewer iterations at a "
                "distance cost.\n%s\n",
                t.ToString().c_str());
  }

  // b. SHAP budget sweep.
  {
    Rng rng(163);
    Dataset background =
        data.Subset(rng.SampleWithoutReplacement(data.size(), 15));
    const Vector x = data.instance(3);
    // Exact values via the same value function.
    CoalitionValue value = [&](const std::vector<bool>& mask) {
      double acc = 0.0;
      for (size_t b = 0; b < background.size(); ++b) {
        Vector z = background.instance(b);
        for (size_t c = 0; c < x.size(); ++c)
          if (mask[c]) z[c] = x[c];
        acc += lr.PredictProba(z);
      }
      return acc / static_cast<double>(background.size());
    };
    const Vector exact = ExactShapley(value, data.num_features());
    AsciiTable t({"permutations", "max |error|",
                  "value evals (approx)"});
    for (size_t perms : {4, 16, 64, 256}) {
      Rng srng(164);
      const Vector sampled =
          SampledShapley(value, data.num_features(), perms, &srng);
      double err = 0.0;
      for (size_t c = 0; c < exact.size(); ++c)
        err = std::max(err, std::fabs(sampled[c] - exact[c]));
      t.AddRow({std::to_string(perms), FormatDouble(err, 4),
                std::to_string(perms * (data.num_features() + 1))});
    }
    std::printf("=== A10b: SHAP sampling budget ===\nExpected shape: "
                "error falls ~1/sqrt(budget); exact costs 2^d = %zu "
                "evals.\n%s\n",
                size_t{1} << data.num_features(), t.ToString().c_str());
  }

  // c. Surrogate fidelity vs black-box.
  {
    AsciiTable t({"black box", "local surrogate R^2",
                  "global surrogate fidelity"});
    Rng rng(165);
    const Vector x = data.instance(5);
    auto local_lr = FitLocalSurrogate(lr, data, x, {}, &rng);
    auto local_rf = FitLocalSurrogate(forest, data, x, {}, &rng);
    auto local_gbm = FitLocalSurrogate(gbm, data, x, {}, &rng);
    auto global_lr = FitGlobalSurrogate(lr, data, 4);
    auto global_rf = FitGlobalSurrogate(forest, data, 4);
    auto global_gbm = FitGlobalSurrogate(gbm, data, 4);
    t.AddRow({"logistic", FormatDouble(local_lr.fidelity),
              FormatDouble(global_lr.fidelity)});
    t.AddRow({"forest", FormatDouble(local_rf.fidelity),
              FormatDouble(global_rf.fidelity)});
    t.AddRow({"gbm", FormatDouble(local_gbm.fidelity),
              FormatDouble(global_gbm.fidelity)});
    std::printf("=== A10c: surrogate fidelity ===\nExpected shape: both "
                "fidelities drop when the black box gets less smooth "
                "(forest vs logistic).\n%s\n",
                t.ToString().c_str());
  }
}

void BM_WachterCf(benchmark::State& state) {
  PrintOnce();
  Dataset data = CreditGen().Generate(400, 166);
  LogisticRegression lr;
  XFAIR_CHECK(lr.Fit(data).ok());
  const Vector x = data.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WachterCounterfactual(lr, data.schema(), x, {}));
  }
}
BENCHMARK(BM_WachterCf)->Unit(benchmark::kMicrosecond);

void BM_GrowingSpheresCf(benchmark::State& state) {
  PrintOnce();
  Dataset data = CreditGen().Generate(400, 167);
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 15;
  XFAIR_CHECK(forest.Fit(data, fo).ok());
  size_t neg = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (forest.Predict(data.instance(i)) == 0) {
      neg = i;
      break;
    }
  }
  const Vector x = data.instance(neg);
  Rng rng(168);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GrowingSpheresCounterfactual(forest, data.schema(), x, {}, &rng));
  }
}
BENCHMARK(BM_GrowingSpheresCf)->Unit(benchmark::kMicrosecond);

void BM_ExactShapley(benchmark::State& state) {
  PrintOnce();
  const size_t d = static_cast<size_t>(state.range(0));
  Rng table_rng(169);
  Vector game(size_t{1} << d);
  for (double& v : game) v = table_rng.Uniform(-1, 1);
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    size_t s = 0;
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) s |= (size_t{1} << i);
    return game[s];
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactShapley(value, d));
  }
  state.SetLabel("d=" + std::to_string(d));
}
BENCHMARK(BM_ExactShapley)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SampledShapley(benchmark::State& state) {
  PrintOnce();
  const size_t d = 16;
  Rng table_rng(170);
  Vector weights(d);
  for (double& w : weights) w = table_rng.Uniform(-1, 1);
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (size_t i = 0; i < d; ++i)
      if (mask[i]) acc += weights[i];
    return acc;
  };
  Rng rng(171);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampledShapley(
        value, d, static_cast<size_t>(state.range(0)), &rng));
  }
  state.SetLabel("perms=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SampledShapley)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfair
