file(REMOVE_RECURSE
  "CMakeFiles/bench_burden_nawb.dir/bench_burden_nawb.cc.o"
  "CMakeFiles/bench_burden_nawb.dir/bench_burden_nawb.cc.o.d"
  "bench_burden_nawb"
  "bench_burden_nawb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burden_nawb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
