# Empty dependencies file for bench_burden_nawb.
# This may be replaced when dependencies are built.
