file(REMOVE_RECURSE
  "CMakeFiles/bench_fairness_shap.dir/bench_fairness_shap.cc.o"
  "CMakeFiles/bench_fairness_shap.dir/bench_fairness_shap.cc.o.d"
  "bench_fairness_shap"
  "bench_fairness_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fairness_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
