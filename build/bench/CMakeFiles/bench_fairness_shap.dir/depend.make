# Empty dependencies file for bench_fairness_shap.
# This may be replaced when dependencies are built.
