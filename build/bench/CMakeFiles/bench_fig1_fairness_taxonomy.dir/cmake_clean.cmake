file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fairness_taxonomy.dir/bench_fig1_fairness_taxonomy.cc.o"
  "CMakeFiles/bench_fig1_fairness_taxonomy.dir/bench_fig1_fairness_taxonomy.cc.o.d"
  "bench_fig1_fairness_taxonomy"
  "bench_fig1_fairness_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fairness_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
