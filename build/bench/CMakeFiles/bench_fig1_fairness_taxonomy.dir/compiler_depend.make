# Empty compiler generated dependencies file for bench_fig1_fairness_taxonomy.
# This may be replaced when dependencies are built.
