file(REMOVE_RECURSE
  "CMakeFiles/bench_gopher.dir/bench_gopher.cc.o"
  "CMakeFiles/bench_gopher.dir/bench_gopher.cc.o.d"
  "bench_gopher"
  "bench_gopher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gopher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
