# Empty dependencies file for bench_gopher.
# This may be replaced when dependencies are built.
