file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_fairness.dir/bench_graph_fairness.cc.o"
  "CMakeFiles/bench_graph_fairness.dir/bench_graph_fairness.cc.o.d"
  "bench_graph_fairness"
  "bench_graph_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
