file(REMOVE_RECURSE
  "CMakeFiles/bench_group_cf.dir/bench_group_cf.cc.o"
  "CMakeFiles/bench_group_cf.dir/bench_group_cf.cc.o.d"
  "bench_group_cf"
  "bench_group_cf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
