# Empty dependencies file for bench_group_cf.
# This may be replaced when dependencies are built.
