file(REMOVE_RECURSE
  "CMakeFiles/bench_precof.dir/bench_precof.cc.o"
  "CMakeFiles/bench_precof.dir/bench_precof.cc.o.d"
  "bench_precof"
  "bench_precof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
