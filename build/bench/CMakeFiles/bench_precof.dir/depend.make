# Empty dependencies file for bench_precof.
# This may be replaced when dependencies are built.
