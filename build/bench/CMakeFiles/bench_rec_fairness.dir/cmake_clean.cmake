file(REMOVE_RECURSE
  "CMakeFiles/bench_rec_fairness.dir/bench_rec_fairness.cc.o"
  "CMakeFiles/bench_rec_fairness.dir/bench_rec_fairness.cc.o.d"
  "bench_rec_fairness"
  "bench_rec_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rec_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
