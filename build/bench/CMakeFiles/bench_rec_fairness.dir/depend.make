# Empty dependencies file for bench_rec_fairness.
# This may be replaced when dependencies are built.
