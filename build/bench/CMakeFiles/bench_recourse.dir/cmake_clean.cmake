file(REMOVE_RECURSE
  "CMakeFiles/bench_recourse.dir/bench_recourse.cc.o"
  "CMakeFiles/bench_recourse.dir/bench_recourse.cc.o.d"
  "bench_recourse"
  "bench_recourse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recourse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
