# Empty compiler generated dependencies file for bench_recourse.
# This may be replaced when dependencies are built.
