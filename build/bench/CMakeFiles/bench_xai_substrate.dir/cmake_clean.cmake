file(REMOVE_RECURSE
  "CMakeFiles/bench_xai_substrate.dir/bench_xai_substrate.cc.o"
  "CMakeFiles/bench_xai_substrate.dir/bench_xai_substrate.cc.o.d"
  "bench_xai_substrate"
  "bench_xai_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xai_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
