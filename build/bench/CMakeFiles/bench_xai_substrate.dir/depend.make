# Empty dependencies file for bench_xai_substrate.
# This may be replaced when dependencies are built.
