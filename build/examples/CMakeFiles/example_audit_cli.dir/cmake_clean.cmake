file(REMOVE_RECURSE
  "CMakeFiles/example_audit_cli.dir/audit_cli.cpp.o"
  "CMakeFiles/example_audit_cli.dir/audit_cli.cpp.o.d"
  "example_audit_cli"
  "example_audit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_audit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
