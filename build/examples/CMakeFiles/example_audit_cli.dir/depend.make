# Empty dependencies file for example_audit_cli.
# This may be replaced when dependencies are built.
