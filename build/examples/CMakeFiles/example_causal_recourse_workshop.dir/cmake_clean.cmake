file(REMOVE_RECURSE
  "CMakeFiles/example_causal_recourse_workshop.dir/causal_recourse_workshop.cpp.o"
  "CMakeFiles/example_causal_recourse_workshop.dir/causal_recourse_workshop.cpp.o.d"
  "example_causal_recourse_workshop"
  "example_causal_recourse_workshop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_causal_recourse_workshop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
