# Empty dependencies file for example_causal_recourse_workshop.
# This may be replaced when dependencies are built.
