file(REMOVE_RECURSE
  "CMakeFiles/example_graph_fairness.dir/graph_fairness.cpp.o"
  "CMakeFiles/example_graph_fairness.dir/graph_fairness.cpp.o.d"
  "example_graph_fairness"
  "example_graph_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
