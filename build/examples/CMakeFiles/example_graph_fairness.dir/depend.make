# Empty dependencies file for example_graph_fairness.
# This may be replaced when dependencies are built.
