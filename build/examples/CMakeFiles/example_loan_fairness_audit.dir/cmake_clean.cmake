file(REMOVE_RECURSE
  "CMakeFiles/example_loan_fairness_audit.dir/loan_fairness_audit.cpp.o"
  "CMakeFiles/example_loan_fairness_audit.dir/loan_fairness_audit.cpp.o.d"
  "example_loan_fairness_audit"
  "example_loan_fairness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_loan_fairness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
