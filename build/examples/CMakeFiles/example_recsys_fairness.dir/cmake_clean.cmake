file(REMOVE_RECURSE
  "CMakeFiles/example_recsys_fairness.dir/recsys_fairness.cpp.o"
  "CMakeFiles/example_recsys_fairness.dir/recsys_fairness.cpp.o.d"
  "example_recsys_fairness"
  "example_recsys_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_recsys_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
