# Empty compiler generated dependencies file for example_recsys_fairness.
# This may be replaced when dependencies are built.
