
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beyond/cef.cc" "src/CMakeFiles/xfair.dir/beyond/cef.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/cef.cc.o.d"
  "/root/repo/src/beyond/cfairer.cc" "src/CMakeFiles/xfair.dir/beyond/cfairer.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/cfairer.cc.o.d"
  "/root/repo/src/beyond/dexer.cc" "src/CMakeFiles/xfair.dir/beyond/dexer.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/dexer.cc.o.d"
  "/root/repo/src/beyond/fair_topk.cc" "src/CMakeFiles/xfair.dir/beyond/fair_topk.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/fair_topk.cc.o.d"
  "/root/repo/src/beyond/gnnuers.cc" "src/CMakeFiles/xfair.dir/beyond/gnnuers.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/gnnuers.cc.o.d"
  "/root/repo/src/beyond/kg_rerank.cc" "src/CMakeFiles/xfair.dir/beyond/kg_rerank.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/kg_rerank.cc.o.d"
  "/root/repo/src/beyond/node_influence.cc" "src/CMakeFiles/xfair.dir/beyond/node_influence.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/node_influence.cc.o.d"
  "/root/repo/src/beyond/rec_edge_explain.cc" "src/CMakeFiles/xfair.dir/beyond/rec_edge_explain.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/rec_edge_explain.cc.o.d"
  "/root/repo/src/beyond/structural_bias.cc" "src/CMakeFiles/xfair.dir/beyond/structural_bias.cc.o" "gcc" "src/CMakeFiles/xfair.dir/beyond/structural_bias.cc.o.d"
  "/root/repo/src/causal/dag.cc" "src/CMakeFiles/xfair.dir/causal/dag.cc.o" "gcc" "src/CMakeFiles/xfair.dir/causal/dag.cc.o.d"
  "/root/repo/src/causal/scm.cc" "src/CMakeFiles/xfair.dir/causal/scm.cc.o" "gcc" "src/CMakeFiles/xfair.dir/causal/scm.cc.o.d"
  "/root/repo/src/causal/worlds.cc" "src/CMakeFiles/xfair.dir/causal/worlds.cc.o" "gcc" "src/CMakeFiles/xfair.dir/causal/worlds.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/xfair.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/xfair.dir/core/registry.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/xfair.dir/core/report.cc.o" "gcc" "src/CMakeFiles/xfair.dir/core/report.cc.o.d"
  "/root/repo/src/core/taxonomy.cc" "src/CMakeFiles/xfair.dir/core/taxonomy.cc.o" "gcc" "src/CMakeFiles/xfair.dir/core/taxonomy.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/xfair.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/xfair.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/xfair.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/xfair.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/xfair.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/xfair.dir/data/generators.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/CMakeFiles/xfair.dir/data/scaler.cc.o" "gcc" "src/CMakeFiles/xfair.dir/data/scaler.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/xfair.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/xfair.dir/data/schema.cc.o.d"
  "/root/repo/src/explain/counterfactual.cc" "src/CMakeFiles/xfair.dir/explain/counterfactual.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/counterfactual.cc.o.d"
  "/root/repo/src/explain/diverse.cc" "src/CMakeFiles/xfair.dir/explain/diverse.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/diverse.cc.o.d"
  "/root/repo/src/explain/importance.cc" "src/CMakeFiles/xfair.dir/explain/importance.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/importance.cc.o.d"
  "/root/repo/src/explain/influence.cc" "src/CMakeFiles/xfair.dir/explain/influence.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/influence.cc.o.d"
  "/root/repo/src/explain/prototypes.cc" "src/CMakeFiles/xfair.dir/explain/prototypes.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/prototypes.cc.o.d"
  "/root/repo/src/explain/rules.cc" "src/CMakeFiles/xfair.dir/explain/rules.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/rules.cc.o.d"
  "/root/repo/src/explain/shap.cc" "src/CMakeFiles/xfair.dir/explain/shap.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/shap.cc.o.d"
  "/root/repo/src/explain/surrogate.cc" "src/CMakeFiles/xfair.dir/explain/surrogate.cc.o" "gcc" "src/CMakeFiles/xfair.dir/explain/surrogate.cc.o.d"
  "/root/repo/src/fairness/drift.cc" "src/CMakeFiles/xfair.dir/fairness/drift.cc.o" "gcc" "src/CMakeFiles/xfair.dir/fairness/drift.cc.o.d"
  "/root/repo/src/fairness/group_metrics.cc" "src/CMakeFiles/xfair.dir/fairness/group_metrics.cc.o" "gcc" "src/CMakeFiles/xfair.dir/fairness/group_metrics.cc.o.d"
  "/root/repo/src/fairness/individual_metrics.cc" "src/CMakeFiles/xfair.dir/fairness/individual_metrics.cc.o" "gcc" "src/CMakeFiles/xfair.dir/fairness/individual_metrics.cc.o.d"
  "/root/repo/src/fairness/ranking_metrics.cc" "src/CMakeFiles/xfair.dir/fairness/ranking_metrics.cc.o" "gcc" "src/CMakeFiles/xfair.dir/fairness/ranking_metrics.cc.o.d"
  "/root/repo/src/fairness/tradeoff.cc" "src/CMakeFiles/xfair.dir/fairness/tradeoff.cc.o" "gcc" "src/CMakeFiles/xfair.dir/fairness/tradeoff.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/xfair.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/xfair.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/sbm.cc" "src/CMakeFiles/xfair.dir/graph/sbm.cc.o" "gcc" "src/CMakeFiles/xfair.dir/graph/sbm.cc.o.d"
  "/root/repo/src/graph/sgc.cc" "src/CMakeFiles/xfair.dir/graph/sgc.cc.o" "gcc" "src/CMakeFiles/xfair.dir/graph/sgc.cc.o.d"
  "/root/repo/src/mitigate/counterfactual_fair.cc" "src/CMakeFiles/xfair.dir/mitigate/counterfactual_fair.cc.o" "gcc" "src/CMakeFiles/xfair.dir/mitigate/counterfactual_fair.cc.o.d"
  "/root/repo/src/mitigate/inprocess.cc" "src/CMakeFiles/xfair.dir/mitigate/inprocess.cc.o" "gcc" "src/CMakeFiles/xfair.dir/mitigate/inprocess.cc.o.d"
  "/root/repo/src/mitigate/postprocess.cc" "src/CMakeFiles/xfair.dir/mitigate/postprocess.cc.o" "gcc" "src/CMakeFiles/xfair.dir/mitigate/postprocess.cc.o.d"
  "/root/repo/src/mitigate/preprocess.cc" "src/CMakeFiles/xfair.dir/mitigate/preprocess.cc.o" "gcc" "src/CMakeFiles/xfair.dir/mitigate/preprocess.cc.o.d"
  "/root/repo/src/model/calibration.cc" "src/CMakeFiles/xfair.dir/model/calibration.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/calibration.cc.o.d"
  "/root/repo/src/model/decision_tree.cc" "src/CMakeFiles/xfair.dir/model/decision_tree.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/decision_tree.cc.o.d"
  "/root/repo/src/model/gbm.cc" "src/CMakeFiles/xfair.dir/model/gbm.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/gbm.cc.o.d"
  "/root/repo/src/model/knn.cc" "src/CMakeFiles/xfair.dir/model/knn.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/knn.cc.o.d"
  "/root/repo/src/model/logistic_regression.cc" "src/CMakeFiles/xfair.dir/model/logistic_regression.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/logistic_regression.cc.o.d"
  "/root/repo/src/model/metrics.cc" "src/CMakeFiles/xfair.dir/model/metrics.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/metrics.cc.o.d"
  "/root/repo/src/model/model.cc" "src/CMakeFiles/xfair.dir/model/model.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/model.cc.o.d"
  "/root/repo/src/model/random_forest.cc" "src/CMakeFiles/xfair.dir/model/random_forest.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/random_forest.cc.o.d"
  "/root/repo/src/model/softmax_regression.cc" "src/CMakeFiles/xfair.dir/model/softmax_regression.cc.o" "gcc" "src/CMakeFiles/xfair.dir/model/softmax_regression.cc.o.d"
  "/root/repo/src/rec/interactions.cc" "src/CMakeFiles/xfair.dir/rec/interactions.cc.o" "gcc" "src/CMakeFiles/xfair.dir/rec/interactions.cc.o.d"
  "/root/repo/src/rec/knowledge_graph.cc" "src/CMakeFiles/xfair.dir/rec/knowledge_graph.cc.o" "gcc" "src/CMakeFiles/xfair.dir/rec/knowledge_graph.cc.o.d"
  "/root/repo/src/rec/mf.cc" "src/CMakeFiles/xfair.dir/rec/mf.cc.o" "gcc" "src/CMakeFiles/xfair.dir/rec/mf.cc.o.d"
  "/root/repo/src/rec/recwalk.cc" "src/CMakeFiles/xfair.dir/rec/recwalk.cc.o" "gcc" "src/CMakeFiles/xfair.dir/rec/recwalk.cc.o.d"
  "/root/repo/src/unfair/actions.cc" "src/CMakeFiles/xfair.dir/unfair/actions.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/actions.cc.o.d"
  "/root/repo/src/unfair/ares.cc" "src/CMakeFiles/xfair.dir/unfair/ares.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/ares.cc.o.d"
  "/root/repo/src/unfair/burden.cc" "src/CMakeFiles/xfair.dir/unfair/burden.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/burden.cc.o.d"
  "/root/repo/src/unfair/causal_path.cc" "src/CMakeFiles/xfair.dir/unfair/causal_path.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/causal_path.cc.o.d"
  "/root/repo/src/unfair/cet.cc" "src/CMakeFiles/xfair.dir/unfair/cet.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/cet.cc.o.d"
  "/root/repo/src/unfair/contrastive.cc" "src/CMakeFiles/xfair.dir/unfair/contrastive.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/contrastive.cc.o.d"
  "/root/repo/src/unfair/explanation_quality.cc" "src/CMakeFiles/xfair.dir/unfair/explanation_quality.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/explanation_quality.cc.o.d"
  "/root/repo/src/unfair/facts.cc" "src/CMakeFiles/xfair.dir/unfair/facts.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/facts.cc.o.d"
  "/root/repo/src/unfair/fairness_shap.cc" "src/CMakeFiles/xfair.dir/unfair/fairness_shap.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/fairness_shap.cc.o.d"
  "/root/repo/src/unfair/globece.cc" "src/CMakeFiles/xfair.dir/unfair/globece.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/globece.cc.o.d"
  "/root/repo/src/unfair/gopher.cc" "src/CMakeFiles/xfair.dir/unfair/gopher.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/gopher.cc.o.d"
  "/root/repo/src/unfair/precof.cc" "src/CMakeFiles/xfair.dir/unfair/precof.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/precof.cc.o.d"
  "/root/repo/src/unfair/recourse.cc" "src/CMakeFiles/xfair.dir/unfair/recourse.cc.o" "gcc" "src/CMakeFiles/xfair.dir/unfair/recourse.cc.o.d"
  "/root/repo/src/util/matrix.cc" "src/CMakeFiles/xfair.dir/util/matrix.cc.o" "gcc" "src/CMakeFiles/xfair.dir/util/matrix.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/xfair.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/xfair.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/xfair.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/xfair.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xfair.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xfair.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/xfair.dir/util/table.cc.o" "gcc" "src/CMakeFiles/xfair.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
