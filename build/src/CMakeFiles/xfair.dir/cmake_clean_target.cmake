file(REMOVE_RECURSE
  "libxfair.a"
)
