# Empty dependencies file for xfair.
# This may be replaced when dependencies are built.
