
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/beyond_degenerate_test.cc" "tests/CMakeFiles/xfair_tests.dir/beyond_degenerate_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/beyond_degenerate_test.cc.o.d"
  "/root/repo/tests/causal_test.cc" "tests/CMakeFiles/xfair_tests.dir/causal_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/causal_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/xfair_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/xfair_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/xfair_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/extensions2_test.cc" "tests/CMakeFiles/xfair_tests.dir/extensions2_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/extensions2_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/xfair_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/failure_test.cc" "tests/CMakeFiles/xfair_tests.dir/failure_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/failure_test.cc.o.d"
  "/root/repo/tests/fair_topk_test.cc" "tests/CMakeFiles/xfair_tests.dir/fair_topk_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/fair_topk_test.cc.o.d"
  "/root/repo/tests/fairness_test.cc" "tests/CMakeFiles/xfair_tests.dir/fairness_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/fairness_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/xfair_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/groupcf_property_test.cc" "tests/CMakeFiles/xfair_tests.dir/groupcf_property_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/groupcf_property_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/xfair_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kg_test.cc" "tests/CMakeFiles/xfair_tests.dir/kg_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/kg_test.cc.o.d"
  "/root/repo/tests/mitigate_test.cc" "tests/CMakeFiles/xfair_tests.dir/mitigate_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/mitigate_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/xfair_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xfair_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rec_test.cc" "tests/CMakeFiles/xfair_tests.dir/rec_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/rec_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/xfair_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/unfair_test.cc" "tests/CMakeFiles/xfair_tests.dir/unfair_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/unfair_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/xfair_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/xfair_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xfair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
