# Empty dependencies file for xfair_tests.
# This may be replaced when dependencies are built.
