// Command-line fairness auditor for external CSV data.
//
//   ./build/examples/example_audit_cli <data.csv>
//
// The CSV uses the WriteCsv layout: a header of feature names followed by
// "label,group", then one row per instance with 0/1 label (1 = favorable)
// and 0/1 group (1 = protected). The schema is inferred (a column named
// "protected" is treated as the immutable sensitive attribute).
//
// Output: the Figure 1 group metrics, the counterfactual burden per group,
// and the top parity-gap contributors by fairness Shapley. With no
// argument the tool writes a demo CSV first and audits that, so it is
// runnable out of the box.

#include <cstdio>

#include "src/core/report.h"
#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/fairness/group_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/burden.h"
#include "src/unfair/fairness_shap.h"

int main(int argc, char** argv) {
  using namespace xfair;

  std::string path;
  if (argc >= 2) {
    path = argv[1];
  } else {
    path = "/tmp/xfair_audit_demo.csv";
    BiasConfig bias;
    bias.score_shift = 1.0;
    Dataset demo = CreditGen(bias).Generate(1200, 99);
    Status st = WriteCsv(demo, path);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write demo data: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("(no CSV given; auditing generated demo data at %s)\n\n",
                path.c_str());
  }

  auto schema = InferSchemaFromCsv(path);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema inference failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  auto data = ReadCsv(*schema, path);
  if (!data.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %zu features from %s\n", data->size(),
              data->num_features(), path.c_str());

  LogisticRegression model;
  Status st = model.Fit(*data);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n%s", WriteAuditReport(model, *data).c_str());
  return 0;
}
