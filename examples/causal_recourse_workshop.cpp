// Causal recourse workshop (paper SIV-A causal thread): a known SCM world
// lets us do what observational data cannot — Pearl counterfactuals,
// do()-interventions, actionable recourse through causal effects, and
// fairness checks that hold in the counterfactual world.
//
//   ./build/examples/example_causal_recourse_workshop

#include <cstdio>

#include "src/causal/worlds.h"
#include "src/fairness/individual_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/contrastive.h"
#include "src/unfair/recourse.h"

int main() {
  using namespace xfair;

  // A world where S suppresses income (disparity 1.0) and income drives
  // savings and debt; zip_risk is a pure proxy.
  CausalWorld world = MakeCreditWorld(1.0);
  Dataset data = world.GenerateDataset(1200, 27);
  LogisticRegression model;
  if (!model.Fit(data).ok()) return 1;

  // 1. Counterfactual fairness [20]: is the model's decision stable when
  //    we flip the protected attribute in the causal world?
  std::printf("counterfactual fairness gap: %.3f\n",
              CounterfactualFairnessGap(model, world, 800, 28));

  // 2. Where does the disparity flow? Causal-path decomposition [82].
  auto paths = DecomposeDisparityByPaths(model, world, 4000, 29);
  std::printf("\ndisparity decomposition over causal paths "
              "(total %.3f):\n",
              paths.total_disparity);
  for (const auto& p : paths.paths) {
    std::printf("  %-26s %+0.4f\n", p.description.c_str(),
                p.score_contribution);
  }

  // 3. Actionable recourse [65]: minimal do() interventions for a denied
  //    individual. Intervening on income moves savings and debt for free.
  auto income = world.scm.dag().IndexOf("income");
  auto savings = world.scm.dag().IndexOf("savings");
  Rng rng(30);
  for (int tries = 0; tries < 200; ++tries) {
    Vector x = world.scm.SampleDo({{world.sensitive, 1.0}}, &rng);
    if (model.Predict(x) == 1) continue;
    auto recourse =
        FindCausalRecourse(model, world.scm, x, {*income, *savings}, {});
    if (!recourse.found) continue;
    std::printf("\nrecourse for a denied protected individual "
                "(cost %.2f):\n",
                recourse.cost);
    for (const auto& iv : recourse.interventions) {
      std::printf("  do(%s := %.2f)   [was %.2f]\n",
                  world.scm.dag().name(iv.node).c_str(), iv.value,
                  x[iv.node]);
    }
    std::printf("  downstream: savings %.2f -> %.2f (moved for free)\n",
                x[*savings], recourse.resulting_state[*savings]);
    break;
  }

  // 4. Probabilistic contrastive queries [10]: would do(income := high)
  //    rescue denied individuals equally often across groups?
  auto contrast = ContrastInterventions(model, world.scm, world.sensitive,
                                        {{*income, 6.0}},
                                        {{*income, 3.0}}, 2000, 31);
  std::printf("\nsufficiency of do(income := 6): G+ %.2f vs G- %.2f "
              "(gap %+0.2f)\n",
              contrast.sufficiency_protected,
              contrast.sufficiency_non_protected,
              contrast.sufficiency_gap);

  // 5. Fair causal recourse [80]: does recourse cost the same for each
  //    individual's counterfactual twin?
  auto fairness =
      EvaluateCausalRecourseFairness(model, world, {*income}, 500, 32);
  std::printf("\ncausal recourse fairness: group cost gap %+0.3f, "
              "individual twin unfairness %.3f (n=%zu)\n",
              fairness.group_gap, fairness.individual_unfairness,
              fairness.evaluated);
  return 0;
}
