// Graph fairness (paper SII & SIV-C): a homophilous social graph amplifies
// group disparity through message passing; structural explainers identify
// the edges and training nodes responsible.
//
//   ./build/examples/example_graph_fairness

#include <cstdio>

#include "src/beyond/node_influence.h"
#include "src/beyond/structural_bias.h"
#include "src/graph/sbm.h"

int main() {
  using namespace xfair;

  SbmConfig cfg;
  cfg.num_nodes = 400;
  cfg.p_intra = 0.10;
  cfg.p_inter = 0.01;  // Strong homophily: groups barely mix.
  cfg.label_shift = 1.0;
  cfg.feature_signal = 0.7;
  GraphData data = GenerateSbm(cfg, 47);

  SgcModel gnn;
  if (!gnn.Fit(data).ok()) return 1;
  SgcOptions no_graph;
  no_graph.hops = 0;
  SgcModel baseline;
  if (!baseline.Fit(data, no_graph).ok()) return 1;

  std::printf("parity gap: featureless logistic %.3f vs 2-hop SGC %.3f\n"
              "(homophilous propagation injects group signal)\n\n",
              SgcParityGap(baseline, data.groups),
              SgcParityGap(gnn, data.groups));

  // Structural explanation [89] for one node: which local edges account
  // for the bias and which support fairness?
  size_t node = 0;
  for (size_t u = 0; u < data.graph.num_nodes(); ++u) {
    if (data.graph.Degree(u) >= 4) {
      node = u;
      break;
    }
  }
  auto structural = ExplainNodeBias(gnn, data, node, {});
  std::printf("node %zu: %zu bias-accounting edges, %zu "
              "fairness-supporting edges in its computation graph\n",
              node, structural.bias_edge_set.size(),
              structural.fairness_edge_set.size());
  Graph pruned = data.graph;
  for (const auto& [u, v] : structural.bias_edge_set) {
    pruned.RemoveEdge(u, v);
  }
  std::printf("pruning the bias set moves the global gap %.3f -> %.3f\n\n",
              gnn.ParityGapOnGraph(data.graph, data.features, data.groups),
              gnn.ParityGapOnGraph(pruned, data.features, data.groups));

  // Training-node attribution [90]: who teaches the model its bias?
  auto influence = ExplainBiasByNodeInfluence(gnn);
  if (influence.ok()) {
    std::printf("node-influence analysis: top decile of nodes carries "
                "%.0f%% of bias influence;\n"
                "most gap-reducing removal: node %zu (influence %+0.4f)\n",
                100.0 * influence->top_decile_share,
                influence->ranked_nodes.front(),
                influence->influence[influence->ranked_nodes.front()]);
  }
  return 0;
}
