// End-to-end loan-decision fairness investigation: detect disparity,
// explain its causes with four different explanation families (paper
// SIV), then mitigate at all three pipeline stages and re-audit.
//
//   ./build/examples/example_loan_fairness_audit

#include <cstdio>

#include "src/data/generators.h"
#include "src/fairness/group_metrics.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/gopher.h"
#include "src/unfair/precof.h"

int main() {
  using namespace xfair;

  BiasConfig bias;
  bias.score_shift = 1.0;
  bias.label_bias = 0.1;
  bias.proxy_strength = 0.8;
  Dataset all = CreditGen(bias).Generate(2400, 17);
  Rng split_rng(18);
  auto [train, test] = all.Split(0.6, &split_rng);

  LogisticRegression model;
  if (!model.Fit(train).ok()) return 1;

  // --- Detect -----------------------------------------------------------
  const double gap = StatisticalParityDifference(model, test);
  std::printf("parity gap on held-out data: %.3f (accuracy %.3f)\n\n", gap,
              Accuracy(model, test));

  // --- Explain 1: which features carry the gap (fairness Shapley [81]) --
  auto shap = ExplainParityWithShapley(model, test, {});
  std::printf("feature contributions to the parity gap:\n");
  for (size_t c : shap.ranked_features) {
    std::printf("  %-18s %+0.3f\n", shap.feature_names[c].c_str(),
                shap.contributions[c]);
  }

  // --- Explain 2: which recourse routes differ per group (PreCoF [71]) --
  Rng rng(19);
  auto precof = PrecofImplicitBias(train, &rng);
  const size_t top = precof.ranked_features[0];
  std::printf("\nPreCoF implicit-bias probe (sensitive column dropped):\n"
              "  most group-divergent recourse feature: %s "
              "(change freq G+=%.2f vs G-=%.2f)\n",
              precof.feature_names[top].c_str(),
              precof.change_freq_protected[top],
              precof.change_freq_non_protected[top]);

  // --- Explain 3: which subgroups suffer recourse bias (FACTS [77]) -----
  auto facts = RunFacts(model, test, {});
  if (!facts.ranked_subgroups.empty()) {
    const auto& sg = facts.ranked_subgroups.front();
    std::printf("\nFACTS: most recourse-biased subgroup: %s\n"
                "  best action works for %.0f%% of G- but only %.0f%% of "
                "G+ there\n",
                sg.description.c_str(),
                100.0 * sg.best_effectiveness_non_protected,
                100.0 * sg.best_effectiveness_protected);
  }

  // --- Explain 4: which training data drives it (Gopher [63],[83]) ------
  auto gopher = ExplainUnfairnessByPatterns(model, train, {});
  if (gopher.ok() && !gopher->patterns.empty()) {
    const auto& p = gopher->patterns.front();
    std::printf("\nGopher: removing training pattern '%s' (support %zu) "
                "changes the gap by %+0.3f (verified %+0.3f)\n",
                p.description.c_str(), p.support, p.estimated_gap_change,
                p.verified_gap_change);
  }

  // --- Mitigate at each stage and re-audit ------------------------------
  std::printf("\n=== mitigation comparison (held-out) ===\n");
  std::printf("%-28s %10s %10s\n", "variant", "parity", "accuracy");
  auto report_line = [&](const char* name, const Model& m) {
    std::printf("%-28s %10.3f %10.3f\n", name,
                StatisticalParityDifference(m, test), Accuracy(m, test));
  };
  report_line("baseline", model);

  LogisticRegression reweighed;
  if (reweighed.Fit(train, {}, ReweighingWeights(train)).ok()) {
    report_line("pre: reweighing", reweighed);
  }

  FairTrainingOptions fair_opts;
  fair_opts.lambda = 10.0;
  auto fair = TrainFairLogisticRegression(train, fair_opts);
  if (fair.ok()) report_line("in: parity penalty", *fair);

  auto thresholds = FitGroupThresholds(model, train, {});
  if (thresholds.ok()) report_line("post: group thresholds", *thresholds);

  return 0;
}
