// Live fairness monitoring: replay synthetic loan traffic through a
// trained model with a FairnessMonitor attached, inject a bias shift
// mid-stream, and watch the drift detectors raise alarms — each alarm
// dumping a diagnostic bundle (trailing flight-recorder trace, monitor
// snapshot, counters, event log, provenance) via the alarm hook bus.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_monitor_stream [--events N] [--shift S]
//       [--window W] [--batch B] [--bundle-dir DIR]
//
// The stream is deterministic: the same arguments produce the same
// events, the same windowed gaps, the same alarm sequence numbers, and
// the same event log bytes at any XFAIR_THREADS setting. Built with
// -DXFAIR_OBS=OFF the replay still runs but produces zero monitoring
// output and writes no artifacts — and no bundle directory.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"

int main(int argc, char** argv) {
  using namespace xfair;

  size_t events = 4096;   // Total stream length.
  size_t shift_at = 2048; // First event drawn from the shifted world.
  size_t window = 512;    // Monitor sliding-window capacity.
  size_t batch = 64;      // Scoring batch (one drain per batch).
  std::string bundle_dir = "monitor_stream_bundles";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--bundle-dir") == 0) {
      bundle_dir = argv[i + 1];
      continue;
    }
    const size_t v = static_cast<size_t>(std::atol(argv[i + 1]));
    if (std::strcmp(argv[i], "--events") == 0) events = v;
    if (std::strcmp(argv[i], "--shift") == 0) shift_at = v;
    if (std::strcmp(argv[i], "--window") == 0) window = v;
    if (std::strcmp(argv[i], "--batch") == 0) batch = v;
  }
  if (batch == 0) batch = 1;

  // 1. Train on the pre-shift world: no planted bias, so the deployed
  //    model starts out (approximately) fair and the windowed gaps
  //    hover near zero.
  BiasConfig pre;
  pre.score_shift = 0.0;
  pre.label_bias = 0.0;
  pre.proxy_strength = 0.0;
  pre.qualification_gap = 0.0;
  Dataset train = CreditGen(pre).Generate(1200, /*seed=*/7);
  LogisticRegression model;
  if (Status st = model.Fit(train); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Production traffic: the first `shift_at` events come from the
  //    training distribution; after that the upstream world drifts —
  //    the protected group's observable qualifications degrade — so the
  //    model's positive rate for that group collapses and the windowed
  //    demographic-parity gap widens.
  BiasConfig post = pre;
  post.score_shift = 1.2;
  post.qualification_gap = 1.5;
  post.proxy_strength = 0.8;
  post.label_bias = 0.15;
  const Dataset pre_traffic = CreditGen(pre).Generate(events, /*seed=*/21);
  const Dataset post_traffic =
      CreditGen(post).Generate(events, /*seed=*/22);

  obs::MonitorOptions mopts;
  mopts.window = window;
  obs::FairnessMonitor& monitor =
      obs::GetMonitor("monitor_stream/credit", mopts);
  monitor.Reset();
  const bool was_monitoring = obs::MonitoringEnabled();
  obs::SetMonitoringEnabled(true);

  // Arm the always-on sinks the way an audit deployment would: the
  // flight recorder keeps the trailing spans, the event log records
  // lifecycle events, and each drift alarm dumps a diagnostic bundle.
  // All three are no-ops under -DXFAIR_OBS=OFF: no bundle directory is
  // ever created.
  obs::SetRecorderEnabled(true);
  obs::SetEventLogEnabled(true);
  obs::BundleOptions bopts;
  bopts.directory = bundle_dir;
  bopts.max_bundles = 2;
  obs::InstallBundleDumpOnAlarm(monitor, bopts);
  obs::SetActiveProvenance(
      "{\"method\": \"monitor_stream\", \"seed\": 7}");

  if (obs::MonitoringCompiledIn()) {
    std::printf("streaming %zu events (bias shift at %zu, window %zu, "
                "batch %zu)\n",
                events, shift_at, window, batch);
  }

  // 3. Replay in scoring batches. The monitor hook inside
  //    PredictProbaBatch joins each batch's scores with the group/label
  //    slices installed here; draining after each batch keeps alarm
  //    latency at one batch.
  size_t alarms_seen = 0;
  for (size_t start = 0; start < events; start += batch) {
    const size_t n = std::min(batch, events - start);
    const Dataset& world = start >= shift_at ? post_traffic : pre_traffic;
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = start + i;
    const Dataset slice = world.Subset(rows);
    {
      obs::ScopedStreamContext stream(&monitor, slice.groups().data(),
                                      slice.labels().data(), slice.size());
      (void)model.PredictProbaBatch(slice.x());
    }
    monitor.Drain();
    for (; alarms_seen < monitor.alarms().size(); ++alarms_seen) {
      const obs::DriftAlarm& a = monitor.alarms()[alarms_seen];
      std::printf("ALARM seq=%llu metric=%s detector=%s value=%.4f "
                  "statistic=%.4f\n",
                  static_cast<unsigned long long>(a.seq), a.metric.c_str(),
                  a.detector.c_str(), a.value, a.statistic);
    }
  }

  obs::SetMonitoringEnabled(was_monitoring);
  obs::SetRecorderEnabled(false);
  obs::SetEventLogEnabled(false);
  if (!obs::MonitoringCompiledIn()) return 0;

  // 4. Final state: cumulative aggregates and the (post-shift) window.
  const obs::WindowedMetrics wm = monitor.Windowed();
  std::printf("processed=%llu dropped=%llu alarms=%zu\n",
              static_cast<unsigned long long>(monitor.events_processed()),
              static_cast<unsigned long long>(monitor.events_dropped()),
              monitor.alarms().size());
  std::printf("window: dp_diff=%.4f eo_diff=%.4f calib_gap=%.4f "
              "(events=%zu, seq %llu..%llu)\n",
              wm.demographic_parity_diff, wm.equalized_odds_diff,
              wm.calibration_gap, wm.events,
              static_cast<unsigned long long>(wm.first_seq),
              static_cast<unsigned long long>(wm.last_seq));

  // Always-on sink summary: counts only — record counts and alarm/bundle
  // tallies are deterministic at any XFAIR_THREADS, wall-clock latencies
  // are not.
  const auto logged = obs::SnapshotEvents();
  size_t alarm_events = 0, bundle_events = 0;
  for (const auto& e : logged) {
    if (e.event == "drift_alarm") ++alarm_events;
    if (e.event == "bundle_dumped") ++bundle_events;
  }
  std::printf("event log: %zu records (%zu drift alarms), %llu dropped\n",
              logged.size(), alarm_events,
              static_cast<unsigned long long>(obs::EventsDropped()));
  std::printf("bundles: %zu dumped under %s\n", bundle_events,
              bundle_dir.c_str());

  // 5. Exposition artifacts: Prometheus text + JSON snapshot.
  if (Status st = obs::WriteTextFile("monitor_stream.prom",
                                     obs::RenderPrometheusText());
      !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = obs::WriteTextFile("monitor_stream.json",
                                     obs::MonitorsToJson());
      !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote monitor_stream.prom and monitor_stream.json\n");
  return 0;
}
