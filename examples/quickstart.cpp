// Quickstart: train a model on biased loan data, audit its fairness, and
// generate an actionable counterfactual for one denied applicant.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/fairness/group_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/burden.h"

int main() {
  using namespace xfair;

  // 1. Synthetic German-credit-like data with planted bias against the
  //    protected group (score shift + label bias + proxy feature).
  BiasConfig bias;
  bias.score_shift = 1.0;
  bias.label_bias = 0.1;
  Dataset data = CreditGen(bias).Generate(1500, /*seed=*/7);

  // 2. Train a logistic model the way an unaware practitioner would.
  LogisticRegression model;
  Status st = model.Fit(data);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Group fairness audit (Figure 1 metrics).
  GroupFairnessReport report = EvaluateGroupFairness(model, data);
  std::printf("=== group fairness audit ===\n%s\n",
              report.ToString().c_str());

  // 4. Counterfactual burden (paper SIV-A, [72]): how much change each
  //    group needs for a favorable outcome.
  Rng rng(8);
  BurdenReport burden =
      ComputeBurden(model, data, BurdenScope::kAllNegatives, {}, &rng);
  std::printf("burden: protected=%.3f non-protected=%.3f gap=%.3f\n\n",
              burden.burden_protected, burden.burden_non_protected,
              burden.burden_gap);

  // 5. An actionable counterfactual for the first denied applicant:
  //    immutable features (protected status, age) cannot move.
  for (size_t i = 0; i < data.size(); ++i) {
    const Vector x = data.instance(i);
    if (model.Predict(x) != 0) continue;
    auto cf = WachterCounterfactual(model, data.schema(), x, {});
    if (!cf.valid) continue;
    std::printf("recourse for applicant %zu (group %d):\n", i,
                data.group(i));
    for (size_t c = 0; c < x.size(); ++c) {
      if (std::abs(cf.counterfactual[c] - x[c]) < 1e-9) continue;
      std::printf("  %-18s %.2f -> %.2f\n",
                  data.schema().feature(c).name.c_str(), x[c],
                  cf.counterfactual[c]);
    }
    std::printf("  (normalized distance %.3f, %zu features changed)\n",
                cf.distance, cf.sparsity);
    break;
  }
  return 0;
}
