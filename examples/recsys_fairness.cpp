// Recommendation fairness beyond classification (paper SIV-C): audit a
// popularity-biased recommender's exposure, then explain and repair it
// with the four surveyed mechanisms.
//
//   ./build/examples/example_recsys_fairness

#include <cstdio>

#include "src/beyond/cef.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/rec/knowledge_graph.h"
#include "src/rec/mf.h"

int main() {
  using namespace xfair;

  RecGenConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 50;
  cfg.protected_item_popularity = 0.3;  // Niche producers suppressed.
  cfg.protected_user_activity = 0.5;    // Low-activity consumer group.
  RecWorld world = GenerateRecWorld(cfg, 37);

  // 1. Detect producer-side exposure bias under the RecWalk recommender.
  RecWalkScorer scorer(&world.interactions);
  size_t protected_items = 0;
  for (int g : world.item_groups) protected_items += (g == 1);
  std::printf("protected items: %zu/%zu of catalog; exposure share in "
              "top-10 lists: %.3f\n",
              protected_items, world.item_groups.size(),
              RecExposureShare(scorer, world.interactions,
                               world.item_groups, 10));

  // 2. Explain via interaction removals [84]: which consumption events
  //    most suppress protected exposure?
  RecEdgeExplainOptions edge_opts;
  edge_opts.max_edges = 25;
  auto removals = ExplainExposureByEdgeRemoval(world.interactions,
                                               world.item_groups, edge_opts);
  if (!removals.empty()) {
    std::printf("\ntop counterfactual edge removal: (user %zu, item %zu) "
                "would change protected exposure by %+0.4f\n",
                removals[0].user, removals[0].item, removals[0].effect);
  }

  // 3. Explain via latent factors (CEF [87]) on a trained MF model.
  MatrixFactorization mf;
  if (!mf.Fit(world.interactions, {}).ok()) return 1;
  auto cef = ExplainRecFairnessByFactors(mf, world.interactions,
                                         world.item_groups, {});
  if (!cef.ranked_factors.empty()) {
    const auto& f = cef.ranked_factors.front();
    std::printf("\nCEF: damping latent factor %zu to %.2f trades %.4f "
                "fairness gain for %.4f utility loss\n",
                f.factor, f.best_scale, f.fairness_gain, f.utility_loss);
  }

  // 4. Explain via item attributes (CFairER [86]).
  Rng rng(38);
  Matrix attrs(world.interactions.num_items(), 4);
  for (size_t i = 0; i < attrs.rows(); ++i) {
    attrs.At(i, 0) = world.item_groups[i] == 1 ? 0.2 : 1.0;  // Popularity.
    for (size_t a = 1; a < 4; ++a) attrs.At(i, a) = rng.Uniform(0, 1);
  }
  AttributeRecommender attr_model(world.interactions, std::move(attrs));
  CfairerOptions cf_opts;
  cf_opts.target_gap = 0.01;
  auto cfairer =
      ExplainFairnessByAttributes(attr_model, world.item_groups, cf_opts);
  std::printf("\nCFairER: removing %zu attribute(s) moves |exposure gap| "
              "%.4f -> %.4f\n",
              cfairer.attribute_set.size(), cfairer.base_exposure_gap,
              cfairer.final_exposure_gap);

  // 5. Consumer-side unfairness via graph perturbation (GNNUERS [91]).
  GnnuersOptions g_opts;
  g_opts.max_deletions = 6;
  auto gnnuers = ExplainUserUnfairnessByPerturbation(
      world.interactions, world.user_groups, g_opts);
  std::printf("\nGNNUERS: %zu interaction deletions move the user-group "
              "quality gap %.4f -> %.4f\n",
              gnnuers.deletions.size(), gnnuers.base_gap,
              gnnuers.final_gap);

  // 6. Repair presentation with fairness-aware KG path reranking [44]:
  //    recommendations come with real KG-path explanations (interaction
  //    triples + item attributes), then get reranked under the exposure
  //    constraint.
  KgWorld kgw = BuildKgFromRecWorld(world, 6, 39);
  auto paths = kgw.kg.FindItemPaths(kgw.user_entities[0], 3);
  auto candidates = kgw.kg.ToCandidates(paths, kgw.entity_item_groups);
  KgRerankOptions k_opts;
  k_opts.min_protected_exposure = 0.35;
  auto rerank = FairRerank(candidates, k_opts);
  std::printf("\nKG rerank for user 0: exposure %.3f -> %.3f at relevance "
              "cost %.4f (path diversity %.2f)\n",
              rerank.exposure_before, rerank.exposure_after,
              rerank.relevance_loss, rerank.path_diversity);
  return 0;
}
