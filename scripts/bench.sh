#!/usr/bin/env bash
# Regenerates the BENCH_*.json speedup artifacts in the repo root.
#
# Builds the kernel-layer benches in a Release tree (the bench CMake
# guard warns on anything else) and runs each from the repo root so the
# JSON files land next to README.md. XFAIR_BENCH_THREADS controls the
# worker count of the thread-scaling measurement (default 4).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=(bench_kernels bench_fairness_shap bench_gopher)

echo "== configure + build (Release) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-release -j --target "${BENCHES[@]}"

for b in "${BENCHES[@]}"; do
  echo
  echo "== $b =="
  # Tiny min_time: the JSON artifacts are produced by the RecordAlgoSpeedup
  # harness (best-of-3 wall times), not by the google-benchmark loops.
  "./build-release/bench/$b" --benchmark_min_time=0.01
done

echo
echo "bench: wrote $(ls BENCH_*.json | tr '\n' ' ')"
