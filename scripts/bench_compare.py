#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json artifacts and fail on regressions.

Usage: bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold PCT]
       [--min-ms MS] [--max-overhead-pct PCT]

For every BENCH_<name>.json present in both directories, compares

  * optimized_ms  — regression when current > baseline * (1 + threshold)
  * algo_speedup  — regression when current < baseline * (1 - threshold)
  * batch_speedup and every *_per_sec throughput field (e.g.
    explanations_per_sec, audit_rows_per_sec) — higher is better, same
    threshold

and exits nonzero if any comparison regresses by more than the threshold
(default 15%). Additionally, every top-level *_overhead_pct field in the
CURRENT artifact is gated absolutely: the run fails when the measured
overhead exceeds --max-overhead-pct (default 2.0). This is how the
always-on observability sinks (flight recorder, event log) prove their
idle cost stays at noise level; it compares against a budget, not
against the baseline run. Workloads faster than --min-ms (default 1.0 ms) in the
baseline are reported but never fail the gate: at sub-millisecond scale
the scheduler owns more of the measurement than the algorithm does. For
throughput fields the noise floor is the baseline's batch_ms (the wall
time the rate was derived from; optimized_ms when the artifact has no
batch_ms), and algo_speedup's floor is the baseline's optimized_ms —
the fast side of that ratio, which is where its noise lives. Benches
present on only one side are reported but do not fail the gate.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression threshold in percent (default 15)")
    ap.add_argument("--min-ms", type=float, default=1.0,
                    help="ignore optimized_ms regressions when the "
                         "baseline is below this (default 1.0 ms)")
    ap.add_argument("--max-overhead-pct", type=float, default=2.0,
                    help="absolute budget for top-level *_overhead_pct "
                         "fields in the current artifacts (default 2.0)")
    args = ap.parse_args()
    frac = args.threshold / 100.0

    base_files = {os.path.basename(p): p for p in sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))}
    cur_files = {os.path.basename(p): p for p in sorted(
        glob.glob(os.path.join(args.current_dir, "BENCH_*.json")))}
    if not base_files:
        print(f"bench_compare: no BENCH_*.json in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(set(base_files) | set(cur_files)):
        if name not in base_files:
            print(f"  {name}: only in current (new bench, not gated)")
            continue
        if name not in cur_files:
            print(f"  {name}: MISSING from current run (not gated)")
            continue
        base = load(base_files[name])
        cur = load(cur_files[name])
        rows = []

        b_ms, c_ms = base.get("optimized_ms"), cur.get("optimized_ms")
        if b_ms is not None and c_ms is not None and b_ms > 0:
            delta = 100.0 * (c_ms / b_ms - 1.0)
            bad = c_ms > b_ms * (1.0 + frac) and b_ms >= args.min_ms
            rows.append(("optimized_ms", b_ms, c_ms, delta, bad))

        # Higher-is-better fields: the algorithmic-speedup ratio, the
        # batch-vs-looped ratio, and any throughput rate. Throughput
        # rates inherit the --min-ms noise floor through the batch wall
        # time they were derived from (falling back to the optimized
        # wall time when the artifact carries no batch_ms).
        batch_ms = base.get("batch_ms")
        if batch_ms is None:
            batch_ms = base.get("optimized_ms")
        gated = batch_ms is None or batch_ms >= args.min_ms
        # algo_speedup's noise scale is the optimized wall time the
        # ratio was derived from (the baseline side is orders of
        # magnitude slower, so its noise is negligible in the ratio).
        algo_gated = b_ms is None or b_ms >= args.min_ms
        higher_is_better = ["algo_speedup", "batch_speedup"] + sorted(
            k for k in base if isinstance(k, str) and k.endswith("_per_sec"))
        for field in higher_is_better:
            b_sp, c_sp = base.get(field), cur.get(field)
            if b_sp is None or c_sp is None or b_sp <= 0:
                continue
            delta = 100.0 * (c_sp / b_sp - 1.0)
            noisy = not (algo_gated if field == "algo_speedup" else gated)
            bad = c_sp < b_sp * (1.0 - frac) and not noisy
            rows.append((field, b_sp, c_sp, delta, bad))

        for field, b, c, delta, bad in rows:
            mark = "REGRESSION" if bad else "ok"
            print(f"  {name} {field}: {b:.3f} -> {c:.3f} "
                  f"({delta:+.1f}%) {mark}")
            if bad:
                regressions.append((name, field, delta))

        # Absolute budget for always-on sink overhead: a top-level
        # *_overhead_pct field measures "enabled vs off" in the current
        # run, so it is gated against --max-overhead-pct rather than
        # against the baseline artifact.
        for field in sorted(k for k in cur if isinstance(k, str)
                            and k.endswith("_overhead_pct")):
            val = cur.get(field)
            if not isinstance(val, (int, float)):
                continue
            bad = val > args.max_overhead_pct
            mark = "OVER BUDGET" if bad else "ok"
            print(f"  {name} {field}: {val:+.1f}% "
                  f"(budget {args.max_overhead_pct:.1f}%) {mark}")
            if bad:
                regressions.append((name, field, val))

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, field, delta in regressions:
            print(f"  {name} {field} {delta:+.1f}%", file=sys.stderr)
        return 1
    print("bench_compare: no regressions beyond "
          f"{args.threshold:.0f}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
