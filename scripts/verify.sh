#!/usr/bin/env bash
# Full verification: tier-1 build + tests, the same suite with the pool
# forced to 4 workers, and the parallel runtime under ThreadSanitizer.
# With --bench, additionally regenerates the BENCH_*.json artifacts via
# scripts/bench.sh (Release build; slower).
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    *) echo "usage: $0 [--bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "== tier-1 again with XFAIR_THREADS=4 =="
(cd build && XFAIR_THREADS=4 ctest --output-on-failure -j)

echo
echo "== parallel_test under ThreadSanitizer (XFAIR_THREADS=8) =="
cmake -B build-tsan -S . -DXFAIR_TSAN=ON > /dev/null
cmake --build build-tsan -j --target parallel_test
XFAIR_THREADS=8 ./build-tsan/tests/parallel_test

if [[ "$run_bench" == 1 ]]; then
  echo
  echo "== bench artifacts (scripts/bench.sh) =="
  ./scripts/bench.sh
fi

echo
echo "verify: all checks passed"
