#!/usr/bin/env bash
# Full verification: tier-1 build + tests, the same suite with the pool
# forced to 4 workers, the parallel runtime under ThreadSanitizer, the
# full suite under Address+UndefinedBehaviorSanitizer (which arm
# XFAIR_DCHECK, restoring per-element Matrix bounds checks), a scalar
# XFAIR_SIMD=OFF build of the kernel layer, an XFAIR_OBS=0 compile
# check (spans/counters compiled to no-ops), and a Release run of the
# tree_shap throughput bench gated against the committed artifact. With
# --bench, additionally regenerates all BENCH_*.json artifacts via
# scripts/bench.sh (Release build; slower).
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    *) echo "usage: $0 [--bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "== tier-1 again with XFAIR_THREADS=4 =="
(cd build && XFAIR_THREADS=4 ctest --output-on-failure -j)

echo
echo "== parallel_test under ThreadSanitizer (XFAIR_THREADS=8) =="
cmake -B build-tsan -S . -DXFAIR_TSAN=ON > /dev/null
cmake --build build-tsan -j --target parallel_test
XFAIR_THREADS=8 ./build-tsan/tests/parallel_test

echo
echo "== full suite under ASan + UBSan =="
cmake -B build-asan -S . -DXFAIR_ASAN=ON -DXFAIR_UBSAN=ON > /dev/null
cmake --build build-asan -j --target xfair_tests parallel_test
./build-asan/tests/xfair_tests
XFAIR_THREADS=4 ./build-asan/tests/parallel_test

echo
echo "== XFAIR_SIMD=OFF: scalar kernels must pass the same goldens =="
cmake -B build-nosimd -S . -DXFAIR_SIMD=OFF > /dev/null
cmake --build build-nosimd -j --target xfair_tests parallel_test
./build-nosimd/tests/xfair_tests
./build-nosimd/tests/parallel_test \
  --gtest_filter='BatchConsistencyTest.*:ParallelModel.*:ParallelExplain.*:ParallelUnfair.*'

echo
echo "== XFAIR_OBS=0 compile check (spans/counters/monitors as no-ops) =="
cmake -B build-noobs -S . -DXFAIR_OBS=OFF > /dev/null
cmake --build build-noobs -j --target xfair_tests example_monitor_stream
./build-noobs/tests/xfair_tests \
  --gtest_filter='Counters.*:Tracer.*:BitIdentity.*:Monitor*:Exposition.*:Histograms.*:Recorder.*:EventLog.*'
# The same example binary must run with zero monitoring output when the
# layer is compiled out (no alarms, no summaries, no artifacts) — and
# the alarm hook bus must never dump a diagnostic bundle.
noobs_bundles=build-noobs/noobs-bundles
rm -rf "$noobs_bundles"
noobs_out=$(./build-noobs/examples/example_monitor_stream \
  --events 512 --shift 256 --window 128 --bundle-dir "$noobs_bundles")
if [[ -n "$noobs_out" ]]; then
  echo "XFAIR_OBS=OFF example_monitor_stream produced output:" >&2
  echo "$noobs_out" >&2
  exit 1
fi
if [[ -d "$noobs_bundles" ]]; then
  echo "XFAIR_OBS=OFF example_monitor_stream created a bundle dir:" >&2
  ls "$noobs_bundles" >&2
  exit 1
fi

echo
echo "== bench-regression gate smoke (committed artifacts vs themselves) =="
python3 scripts/bench_compare.py . .

echo
echo "== tree_shap + fairness_shap + gopher + obs-overhead benches (Release) =="
# Runs the kernel bench, the fairness-SHAP bench, and the gopher
# slice-discovery bench in a scratch dir so the committed BENCH_*.json
# stay untouched, and gates the throughput fields (explanations_per_sec,
# audit_rows_per_sec, candidates_per_sec, batch_speedup, algo_speedup)
# against the committed artifacts through the extended bench_compare.py
# (higher-is-better fields, 15% threshold, --min-ms noise floor on the
# batch wall time). The same run gates the always-on sink cost: the
# top-level *_overhead_pct fields in BENCH_obs_overhead.json must stay
# within bench_compare.py's absolute --max-overhead-pct budget (2%).
# Each bench is filtered to one cheap benchmark: the JSON artifacts are
# written by their PrintOnce blocks, which any benchmark triggers.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-release -j --target bench_kernels bench_fairness_shap \
  bench_gopher
baseline_one=build-release/bench-committed
rm -rf "$baseline_one" && mkdir -p "$baseline_one"
cp BENCH_tree_shap.json BENCH_fairness_shap.json BENCH_gopher.json \
  BENCH_obs_overhead.json "$baseline_one"/
# This quick gate exists to catch "the fast path stopped running"
# regressions, which show up as 2-10x swings — not to re-measure the
# committed numbers precisely. On this shared 1-core container, CPU
# contention bursts swing even 30-50ms workloads by +-30%, so the quick
# gate runs at a 35% threshold with an 8ms noise floor and retries the
# whole measure+compare step up to three times (a genuine regression
# fails every attempt; a contention burst fails at most one or two).
# The precise 15% gate remains available via --bench on a quiet
# machine, and the absolute 2% *_overhead_pct budget is floor-vs-floor
# and applies unchanged on every attempt.
bench_gate_ok=0
for attempt in 1 2 3; do
  bench_out=build-release/bench-out
  rm -rf "$bench_out" && mkdir -p "$bench_out"
  (cd "$bench_out" && ../bench/bench_kernels --benchmark_min_time=0.01)
  (cd "$bench_out" && ../bench/bench_fairness_shap \
    --benchmark_min_time=0.01 --benchmark_filter='BM_FairnessShapMask/300')
  (cd "$bench_out" && ../bench/bench_gopher --benchmark_min_time=0.01 \
    --benchmark_filter='BM_GopherEstimateOnly/300')
  if python3 scripts/bench_compare.py "$baseline_one" "$bench_out" \
      --min-ms 8 --threshold 35; then
    bench_gate_ok=1
    break
  fi
  echo "bench gate attempt $attempt regressed; retrying on a quieter window"
done
if [[ "$bench_gate_ok" != 1 ]]; then
  echo "bench gate failed on all attempts" >&2
  exit 1
fi

if [[ "$run_bench" == 1 ]]; then
  echo
  echo "== bench artifacts (scripts/bench.sh) + regression gate =="
  baseline_dir=build/bench-baseline
  rm -rf "$baseline_dir" && mkdir -p "$baseline_dir"
  cp BENCH_*.json "$baseline_dir"/
  ./scripts/bench.sh
  python3 scripts/bench_compare.py "$baseline_dir" .
fi

echo
echo "verify: all checks passed"
