#include "src/beyond/cef.h"

#include <algorithm>
#include <cmath>

#include "src/fairness/ranking_metrics.h"
#include "src/util/check.h"

namespace xfair {
namespace {

std::vector<size_t> RankDamped(const MatrixFactorization& model,
                               const Interactions& interactions,
                               size_t user, size_t k, size_t factor,
                               double scale) {
  std::vector<size_t> order;
  for (size_t i = 0; i < interactions.num_items(); ++i)
    if (!interactions.Has(user, i)) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double sa = model.ScoreWithDampedFactor(user, a, factor, scale);
    const double sb = model.ScoreWithDampedFactor(user, b, factor, scale);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

/// Mean |exposure gap| and mean utility of damped rankings over users.
void EvaluateDamped(const MatrixFactorization& model,
                    const Interactions& interactions,
                    const std::vector<int>& item_groups, size_t k,
                    size_t factor, double scale, double* abs_gap,
                    double* utility) {
  double gap_acc = 0.0, util_acc = 0.0;
  size_t users = 0;
  for (size_t u = 0; u < interactions.num_users(); ++u) {
    const auto ranking = RankDamped(model, interactions, u, k, factor,
                                    scale);
    if (ranking.empty()) continue;
    const Result<double> gap = ExposureGap(ranking, item_groups);
    XFAIR_CHECK(gap.ok());  // RankDamped emits only valid item ids.
    gap_acc += *gap;
    // Utility: the *undamped* affinity of what was recommended.
    double s = 0.0;
    for (size_t i : ranking) s += model.Score(u, i);
    util_acc += s / static_cast<double>(ranking.size());
    ++users;
  }
  *abs_gap = users ? std::fabs(gap_acc / static_cast<double>(users)) : 0.0;
  *utility = users ? util_acc / static_cast<double>(users) : 0.0;
}

}  // namespace

CefReport ExplainRecFairnessByFactors(const MatrixFactorization& model,
                                      const Interactions& interactions,
                                      const std::vector<int>& item_groups,
                                      const CefOptions& options) {
  XFAIR_CHECK(model.fitted());
  CefReport report;
  // Baseline: scale 1 on any factor is the unperturbed model.
  EvaluateDamped(model, interactions, item_groups, options.top_k, 0, 1.0,
                 &report.base_exposure_gap, &report.base_utility);

  for (size_t f = 0; f < model.rank(); ++f) {
    CefFactorExplanation ex;
    ex.factor = f;
    for (double scale : options.scales) {
      double gap = 0.0, utility = 0.0;
      EvaluateDamped(model, interactions, item_groups, options.top_k, f,
                     scale, &gap, &utility);
      const double gain = report.base_exposure_gap - gap;
      const double loss = report.base_utility - utility;
      const double score = gain - options.beta * loss;
      if (score > ex.explainability) {
        ex.explainability = score;
        ex.best_scale = scale;
        ex.fairness_gain = gain;
        ex.utility_loss = loss;
      }
    }
    report.ranked_factors.push_back(ex);
  }
  std::sort(report.ranked_factors.begin(), report.ranked_factors.end(),
            [](const CefFactorExplanation& a, const CefFactorExplanation& b) {
              return a.explainability > b.explainability;
            });
  return report;
}

}  // namespace xfair
