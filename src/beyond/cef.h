// CEF — Counterfactual Explainable Fairness [87] (paper §IV-C): find the
// "minimal" perturbation of model features that brings recommendation
// fairness to a target level, and score each feature by the
// fairness-utility tradeoff of perturbing it. On the MF substrate the
// perturbable features are the latent factors: CEF sweeps a damping scale
// per factor, measures exposure-gap reduction vs. ranking-utility loss,
// and ranks factors by explainability score.

#ifndef XFAIR_BEYOND_CEF_H_
#define XFAIR_BEYOND_CEF_H_

#include "src/rec/mf.h"

namespace xfair {

/// One latent factor's fairness explanation.
struct CefFactorExplanation {
  size_t factor = 0;
  /// Damping scale in [0, 1) that best trades fairness for utility.
  double best_scale = 1.0;
  double fairness_gain = 0.0;  ///< Reduction in |exposure gap|.
  double utility_loss = 0.0;   ///< Drop in mean top-k self-score.
  /// fairness_gain - beta * utility_loss (the CEF explainability score).
  double explainability = 0.0;
};

/// Options for ExplainRecFairnessByFactors.
struct CefOptions {
  size_t top_k = 10;
  /// Candidate damping scales swept per factor.
  std::vector<double> scales = {0.0, 0.25, 0.5, 0.75};
  /// Utility-loss weight in the explainability score.
  double beta = 0.5;
};

/// CEF report: factors ranked by explainability.
struct CefReport {
  std::vector<CefFactorExplanation> ranked_factors;
  double base_exposure_gap = 0.0;  ///< |ExposureGap| before perturbation.
  double base_utility = 0.0;
};

CefReport ExplainRecFairnessByFactors(const MatrixFactorization& model,
                                      const Interactions& interactions,
                                      const std::vector<int>& item_groups,
                                      const CefOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_CEF_H_
