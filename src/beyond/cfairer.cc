#include "src/beyond/cfairer.h"

#include <algorithm>
#include <cmath>

#include "src/fairness/ranking_metrics.h"
#include "src/util/check.h"

namespace xfair {

AttributeRecommender::AttributeRecommender(const Interactions& interactions,
                                           Matrix item_attributes)
    : interactions_(&interactions),
      item_attributes_(std::move(item_attributes)) {
  XFAIR_CHECK(item_attributes_.rows() == interactions.num_items());
  const size_t na = item_attributes_.cols();
  user_preferences_ = Matrix(interactions.num_users(), na);
  for (size_t u = 0; u < interactions.num_users(); ++u) {
    const auto& items = interactions.ItemsOf(u);
    if (items.empty()) continue;
    for (size_t i : items) {
      for (size_t a = 0; a < na; ++a)
        user_preferences_.At(u, a) += item_attributes_.At(i, a);
    }
    for (size_t a = 0; a < na; ++a)
      user_preferences_.At(u, a) /= static_cast<double>(items.size());
  }
}

double AttributeRecommender::Score(size_t user, size_t item,
                                   const std::vector<bool>& masked) const {
  XFAIR_CHECK(masked.size() == num_attributes());
  double z = 0.0;
  for (size_t a = 0; a < num_attributes(); ++a) {
    if (masked[a]) continue;
    z += user_preferences_.At(user, a) * item_attributes_.At(item, a);
  }
  return z;
}

std::vector<size_t> AttributeRecommender::RankItems(
    size_t user, size_t k, const std::vector<bool>& masked) const {
  std::vector<size_t> order;
  for (size_t i = 0; i < interactions_->num_items(); ++i)
    if (!interactions_->Has(user, i)) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double sa = Score(user, a, masked), sb = Score(user, b, masked);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

namespace {

double MeanAbsExposureGap(const AttributeRecommender& model,
                          const std::vector<int>& item_groups, size_t k,
                          const std::vector<bool>& masked) {
  double acc = 0.0;
  size_t users = 0;
  for (size_t u = 0; u < model.interactions().num_users(); ++u) {
    const auto ranking = model.RankItems(u, k, masked);
    if (ranking.empty()) continue;
    const Result<double> gap = ExposureGap(ranking, item_groups);
    XFAIR_CHECK(gap.ok());  // RankItems emits only valid item ids.
    acc += *gap;
    ++users;
  }
  return users ? std::fabs(acc / static_cast<double>(users)) : 0.0;
}

}  // namespace

CfairerReport ExplainFairnessByAttributes(
    const AttributeRecommender& model, const std::vector<int>& item_groups,
    const CfairerOptions& options) {
  CfairerReport report;
  std::vector<bool> masked(model.num_attributes(), false);
  report.base_exposure_gap =
      MeanAbsExposureGap(model, item_groups, options.top_k, masked);
  double current = report.base_exposure_gap;
  if (current <= options.target_gap) {
    report.final_exposure_gap = current;
    report.target_reached = true;
    return report;
  }

  // Greedy forward selection with pruning: at each step mask the single
  // attribute that most reduces the gap; drop attributes that do not help
  // from future consideration.
  std::vector<size_t> candidates;
  for (size_t a = 0; a < model.num_attributes(); ++a)
    candidates.push_back(a);
  while (report.attribute_set.size() < options.max_attributes &&
         current > options.target_gap && !candidates.empty()) {
    size_t best = model.num_attributes();
    double best_gap = current;
    std::vector<size_t> keep;
    for (size_t a : candidates) {
      masked[a] = true;
      const double gap =
          MeanAbsExposureGap(model, item_groups, options.top_k, masked);
      masked[a] = false;
      if (gap < best_gap - 1e-12) {
        if (best != model.num_attributes()) keep.push_back(best);
        best = a;
        best_gap = gap;
      } else if (gap < current - 1e-12) {
        keep.push_back(a);  // Helpful but not best: stays a candidate.
      }
      // Attributes that do not reduce the gap are pruned.
    }
    if (best == model.num_attributes()) break;
    masked[best] = true;
    report.attribute_set.push_back(best);
    current = best_gap;
    candidates = std::move(keep);
  }
  report.final_exposure_gap = current;
  report.target_reached = current <= options.target_gap;
  return report;
}

}  // namespace xfair
