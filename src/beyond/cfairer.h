// CFairER-style attribute-level counterfactual explanations for
// recommendation fairness [86] (paper §IV-C): find a *minimal set* of item
// attributes whose removal brings the exposure disparity under a
// threshold. The original trains an off-policy RL agent over a
// heterogeneous information network; here the same search problem is
// solved by greedy forward selection with candidate pruning (the role of
// the paper's attentive action pruning), which preserves the output
// semantics: a small attribute set + its fairness improvement.

#ifndef XFAIR_BEYOND_CFAIRER_H_
#define XFAIR_BEYOND_CFAIRER_H_

#include "src/rec/interactions.h"
#include "src/util/matrix.h"

namespace xfair {

/// Attribute-based recommender: score(u, i) = sum_a pref(u, a) * attr(i, a).
/// This is the HIN-flattened model CFairER perturbs.
class AttributeRecommender {
 public:
  /// `item_attributes`: one row per item, one column per attribute.
  /// User preferences are estimated from interactions (mean attributes of
  /// consumed items).
  AttributeRecommender(const Interactions& interactions,
                       Matrix item_attributes);

  size_t num_attributes() const { return item_attributes_.cols(); }
  /// Score with a set of attributes masked out (removed).
  double Score(size_t user, size_t item,
               const std::vector<bool>& masked) const;
  /// Top-k ranking with masked attributes, excluding consumed items.
  std::vector<size_t> RankItems(size_t user, size_t k,
                                const std::vector<bool>& masked) const;

  const Interactions& interactions() const { return *interactions_; }

 private:
  const Interactions* interactions_;
  Matrix item_attributes_;
  Matrix user_preferences_;
};

/// Result of the minimal-attribute-set search.
struct CfairerReport {
  /// Attributes whose removal achieves the target (possibly empty when
  /// already fair; maximal candidate set if unreachable).
  std::vector<size_t> attribute_set;
  double base_exposure_gap = 0.0;   ///< |gap| before removal.
  double final_exposure_gap = 0.0;  ///< |gap| after removal.
  bool target_reached = false;
};

/// Options for ExplainFairnessByAttributes.
struct CfairerOptions {
  size_t top_k = 10;
  double target_gap = 0.05;  ///< Stop once |exposure gap| <= this.
  size_t max_attributes = 4;
};

/// Greedy minimal attribute set bringing protected-item exposure
/// disparity under the target.
CfairerReport ExplainFairnessByAttributes(
    const AttributeRecommender& model, const std::vector<int>& item_groups,
    const CfairerOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_CFAIRER_H_
