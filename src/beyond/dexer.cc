#include "src/beyond/dexer.h"

#include <algorithm>

#include "src/explain/shap.h"
#include "src/util/stats.h"

namespace xfair {
namespace {

/// Protected share of the top-k under a masked scorer: attributes outside
/// the coalition are frozen to their column means for every tuple, so
/// they cannot differentiate the ranking.
double TopkProtectedShare(const Dataset& data, const TupleScorer& scorer,
                          const std::vector<bool>& mask,
                          const Vector& means, size_t k) {
  std::vector<std::pair<double, size_t>> scored(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    Vector x = data.instance(i);
    for (size_t c = 0; c < x.size(); ++c)
      if (!mask[c]) x[c] = means[c];
    scored[i] = {-scorer(x), i};  // Ascending sort => descending score.
  }
  std::sort(scored.begin(), scored.end());
  const size_t kk = std::min(k, scored.size());
  if (kk == 0) return 0.0;
  size_t protected_count = 0;
  for (size_t r = 0; r < kk; ++r)
    protected_count += static_cast<size_t>(data.group(scored[r].second) == 1);
  return static_cast<double>(protected_count) / static_cast<double>(kk);
}

std::array<double, 3> Quantiles(Vector v) {
  if (v.empty()) return {0.0, 0.0, 0.0};
  return {Quantile(v, 0.25), Quantile(v, 0.5), Quantile(v, 0.75)};
}

}  // namespace

DexerReport ExplainRankingRepresentation(const Dataset& data,
                                         const TupleScorer& scorer,
                                         const DexerOptions& options) {
  const size_t d = data.num_features();
  XFAIR_CHECK(d > 0 && data.size() > 0);
  DexerReport report;
  Vector means(d);
  for (size_t c = 0; c < d; ++c) {
    double acc = 0.0;
    for (size_t i = 0; i < data.size(); ++i) acc += data.x().At(i, c);
    means[c] = acc / static_cast<double>(data.size());
  }

  // Detection.
  std::vector<bool> all(d, true);
  report.detection.topk_share =
      TopkProtectedShare(data, scorer, all, means, options.top_k);
  size_t protected_total = 0;
  for (size_t i = 0; i < data.size(); ++i)
    protected_total += static_cast<size_t>(data.group(i) == 1);
  report.detection.overall_share =
      static_cast<double>(protected_total) /
      static_cast<double>(data.size());
  report.detection.representation_gap =
      report.detection.overall_share - report.detection.topk_share;

  // Shapley over attributes: v(S) = representation gap with only S active.
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    return report.detection.overall_share -
           TopkProtectedShare(data, scorer, mask, means, options.top_k);
  };
  Rng rng(options.seed);
  report.attributions = d <= 10
                            ? ExactShapley(value, d)
                            : SampledShapley(value, d,
                                             options.permutations, &rng);

  report.attribute_names.reserve(d);
  for (size_t c = 0; c < d; ++c)
    report.attribute_names.push_back(data.schema().feature(c).name);
  report.ranked_attributes.resize(d);
  for (size_t c = 0; c < d; ++c) report.ranked_attributes[c] = c;
  std::sort(report.ranked_attributes.begin(),
            report.ranked_attributes.end(), [&](size_t a, size_t b) {
              return report.attributions[a] > report.attributions[b];
            });

  // Distribution comparison for the visualization: protected group vs
  // actual top-k.
  std::vector<std::pair<double, size_t>> scored(data.size());
  for (size_t i = 0; i < data.size(); ++i)
    scored[i] = {-scorer(data.instance(i)), i};
  std::sort(scored.begin(), scored.end());
  const size_t kk = std::min(options.top_k, scored.size());
  for (size_t c = 0; c < d; ++c) {
    Vector group_vals, topk_vals;
    for (size_t i = 0; i < data.size(); ++i)
      if (data.group(i) == 1) group_vals.push_back(data.x().At(i, c));
    for (size_t r = 0; r < kk; ++r)
      topk_vals.push_back(data.x().At(scored[r].second, c));
    report.group_quantiles.push_back(Quantiles(std::move(group_vals)));
    report.topk_quantiles.push_back(Quantiles(std::move(topk_vals)));
  }
  return report;
}

}  // namespace xfair
