// Dexer [88] (paper §IV-C): detect and explain biased representation in
// ranking. Given tuples ranked by a score over attributes and a group
// under-represented in the top-k, Shapley values over *attributes* tell
// which attributes drive the disparity; the report also carries the value
// distributions Dexer visualizes (group vs top-k quantiles).

#ifndef XFAIR_BEYOND_DEXER_H_
#define XFAIR_BEYOND_DEXER_H_

#include <array>
#include <functional>
#include <string>

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace xfair {

/// A ranking task: score tuples of `data` by `scorer` (higher = better).
using TupleScorer = std::function<double(const Vector&)>;

/// Representation audit of the protected group in the top-k.
struct DexerDetection {
  double topk_share = 0.0;     ///< Protected share of the top-k.
  double overall_share = 0.0;  ///< Protected share of all tuples.
  /// overall - topk: positive = protected group under-represented.
  double representation_gap = 0.0;
};

/// Per-attribute Shapley explanation of the representation gap.
struct DexerReport {
  DexerDetection detection;
  std::vector<std::string> attribute_names;
  /// Shapley contribution of each attribute to the representation gap
  /// (attributes outside the coalition are neutralized to their mean).
  Vector attributions;
  std::vector<size_t> ranked_attributes;  ///< By descending contribution.
  /// Quantiles (25/50/75%) of each attribute within the protected group
  /// and within the top-k, for the Dexer-style distribution comparison.
  std::vector<std::array<double, 3>> group_quantiles;
  std::vector<std::array<double, 3>> topk_quantiles;
};

/// Options for ExplainRankingRepresentation.
struct DexerOptions {
  size_t top_k = 50;
  size_t permutations = 40;  ///< For the sampled Shapley engine (d > 10).
  uint64_t seed = 23;
};

/// Detects and explains the protected group's representation in the
/// top-k of the ranking induced by `scorer` over `data`.
DexerReport ExplainRankingRepresentation(const Dataset& data,
                                         const TupleScorer& scorer,
                                         const DexerOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_DEXER_H_
