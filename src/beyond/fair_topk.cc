#include "src/beyond/fair_topk.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace xfair {

std::vector<size_t> FairPrefixTargets(size_t k, double p, double alpha) {
  XFAIR_CHECK(p >= 0.0 && p <= 1.0);
  XFAIR_CHECK(alpha > 0.0 && alpha < 1.0);
  std::vector<size_t> targets(k, 0);
  for (size_t prefix = 1; prefix <= k; ++prefix) {
    // FA*IR m-table: the smallest m with P(X <= m) > alpha for
    // X ~ Bin(prefix, p). Seeing fewer than m protected items in the
    // prefix would then have probability <= alpha — evidence of bias.
    // P(X <= m) = 1 - P(X >= m + 1).
    size_t m = 0;
    while (m < prefix &&
           1.0 - BinomialTailProb(prefix, m + 1, p) <= alpha) {
      ++m;
    }
    targets[prefix - 1] = m;
  }
  return targets;
}

FairTopKResult BuildFairTopK(const std::vector<double>& scores,
                             const std::vector<int>& protected_flags,
                             size_t k, double p, double alpha) {
  XFAIR_CHECK(scores.size() == protected_flags.size());
  FairTopKResult result;
  const size_t n = scores.size();
  k = std::min(k, n);
  if (k == 0) {
    result.feasible = true;
    return result;
  }
  const std::vector<size_t> targets = FairPrefixTargets(k, p, alpha);

  // Two score-sorted queues, one per group.
  std::vector<size_t> prot, nonprot;
  for (size_t i = 0; i < n; ++i) {
    (protected_flags[i] == 1 ? prot : nonprot).push_back(i);
  }
  auto by_score = [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::sort(prot.begin(), prot.end(), by_score);
  std::sort(nonprot.begin(), nonprot.end(), by_score);

  size_t pi = 0, qi = 0, protected_taken = 0;
  result.feasible = true;
  for (size_t rank = 0; rank < k; ++rank) {
    const size_t required = targets[rank];
    const bool must_take_protected =
        protected_taken < required && pi < prot.size();
    if (protected_taken < required && pi >= prot.size()) {
      result.feasible = false;  // Supply exhausted: constraint unmeetable.
    }
    size_t chosen;
    if (must_take_protected) {
      chosen = prot[pi++];
      // It is a promotion if a better non-protected item was available.
      if (qi < nonprot.size() &&
          scores[nonprot[qi]] > scores[chosen]) {
        ++result.swaps;
      }
    } else if (pi < prot.size() &&
               (qi >= nonprot.size() || by_score(prot[pi], nonprot[qi]))) {
      chosen = prot[pi++];
    } else if (qi < nonprot.size()) {
      chosen = nonprot[qi++];
    } else {
      break;  // Both queues empty.
    }
    protected_taken += static_cast<size_t>(protected_flags[chosen] == 1);
    result.ranking.push_back(chosen);
  }
  // Final feasibility check against the targets actually required.
  size_t seen = 0;
  for (size_t rank = 0; rank < result.ranking.size(); ++rank) {
    seen += static_cast<size_t>(
        protected_flags[result.ranking[rank]] == 1);
    if (seen < targets[rank]) result.feasible = false;
  }
  return result;
}

}  // namespace xfair
