// Probability-based fair top-k reranking (paper §II "probability-based
// fairness" [23], in the FA*IR style): enforce, at every prefix of the
// ranking, the minimum number of protected items that a fair coin with
// the target proportion would produce with probability >= alpha —
// i.e. make FairPrefixPValue's test pass by construction.

#ifndef XFAIR_BEYOND_FAIR_TOPK_H_
#define XFAIR_BEYOND_FAIR_TOPK_H_

#include <cstddef>
#include <vector>

namespace xfair {

/// Minimum protected count required at each prefix length 1..k so that
/// P(Binomial(prefix, p) < count) <= 1 - alpha; the classic FA*IR
/// m-table. `p` is the target protected proportion, alpha the
/// significance level of the underlying test (e.g. 0.1).
std::vector<size_t> FairPrefixTargets(size_t k, double p, double alpha);

/// Result of the constrained reranking.
struct FairTopKResult {
  /// Item ids in final order (size <= k).
  std::vector<size_t> ranking;
  bool feasible = false;  ///< Whether every prefix target was met.
  size_t swaps = 0;       ///< Items promoted past better-scored ones.
};

/// Builds a top-k from candidates sorted by preference: at each rank,
/// takes the best-scored remaining item unless the m-table requires a
/// protected item, in which case the best-scored remaining *protected*
/// item is promoted. `scores[i]`/`protected_flags[i]` describe item i.
FairTopKResult BuildFairTopK(const std::vector<double>& scores,
                             const std::vector<int>& protected_flags,
                             size_t k, double p, double alpha);

}  // namespace xfair

#endif  // XFAIR_BEYOND_FAIR_TOPK_H_
