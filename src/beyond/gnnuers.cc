#include "src/beyond/gnnuers.h"

#include <algorithm>
#include <cmath>

namespace xfair {

double UserGroupQualityGap(const Interactions& interactions,
                           const std::vector<int>& user_groups, size_t k) {
  RecWalkScorer scorer(&interactions);
  double quality[2] = {0.0, 0.0};
  size_t count[2] = {0, 0};
  for (size_t u = 0; u < interactions.num_users(); ++u) {
    const Vector scores = scorer.ScoreItems(u);
    const auto ranking = scorer.RankItems(u, k);
    double mass = 0.0;
    for (size_t i : ranking) mass += scores[i];
    quality[user_groups[u]] += mass;
    ++count[user_groups[u]];
  }
  const double q0 =
      count[0] ? quality[0] / static_cast<double>(count[0]) : 0.0;
  const double q1 =
      count[1] ? quality[1] / static_cast<double>(count[1]) : 0.0;
  return q0 - q1;
}

GnnuersReport ExplainUserUnfairnessByPerturbation(
    const Interactions& interactions, const std::vector<int>& user_groups,
    const GnnuersOptions& options) {
  GnnuersReport report;
  Interactions working = interactions;
  report.base_gap =
      UserGroupQualityGap(working, user_groups, options.top_k);
  double current = report.base_gap;

  for (size_t round = 0; round < options.max_deletions; ++round) {
    if (std::fabs(current) <= options.target_gap) break;
    // Candidates: edges of users in the advantaged group (their deletion
    // redistributes walk mass toward the disadvantaged side), highest
    // item degree first.
    const int advantaged = current > 0.0 ? 0 : 1;
    std::vector<std::pair<size_t, std::pair<size_t, size_t>>> ranked;
    for (const auto& [u, i] : working.pairs()) {
      if (user_groups[u] != advantaged) continue;
      if (working.ItemsOf(u).size() <= 1) continue;  // Keep users alive.
      ranked.push_back({working.UsersOf(i).size(), {u, i}});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > options.candidates_per_round)
      ranked.resize(options.candidates_per_round);
    if (ranked.empty()) break;

    size_t best_u = 0, best_i = 0;
    double best_gap = std::fabs(current);
    bool found = false;
    for (const auto& [degree, edge] : ranked) {
      const auto [u, i] = edge;
      working.Remove(u, i);
      const double gap =
          UserGroupQualityGap(working, user_groups, options.top_k);
      working.Add(u, i);
      if (std::fabs(gap) < best_gap - 1e-12) {
        best_gap = std::fabs(gap);
        best_u = u;
        best_i = i;
        found = true;
      }
    }
    if (!found) break;
    working.Remove(best_u, best_i);
    current = UserGroupQualityGap(working, user_groups, options.top_k);
    report.deletions.push_back({best_u, best_i, current});
  }
  report.final_gap = current;
  report.target_reached = std::fabs(current) <= options.target_gap;
  return report;
}

}  // namespace xfair
