// GNNUERS [91] (paper §IV-C): explain consumer-side unfairness in a
// graph-based recommender by perturbing the bipartite user-item graph —
// identify the minimal set of interactions whose deletion most closes the
// gap in recommendation quality between user groups. Operationalized on
// the RecWalk substrate with greedy edge deletion.

#ifndef XFAIR_BEYOND_GNNUERS_H_
#define XFAIR_BEYOND_GNNUERS_H_

#include "src/rec/recwalk.h"

namespace xfair {

/// Quality metric: mean top-k hit score per user group. "Hit score" is
/// the walk probability mass the user's top-k captures — a proxy for how
/// well the system serves the user.
double UserGroupQualityGap(const Interactions& interactions,
                           const std::vector<int>& user_groups, size_t k);

/// One deleted edge with the gap achieved after its deletion.
struct GnnuersStep {
  size_t user = 0;
  size_t item = 0;
  double gap_after = 0.0;
};

/// Options for ExplainUserUnfairnessByPerturbation.
struct GnnuersOptions {
  size_t top_k = 10;
  size_t max_deletions = 10;
  /// Stop once the |gap| falls below this.
  double target_gap = 0.02;
  /// Candidate edges per round (highest-degree items of the advantaged
  /// group's users first).
  size_t candidates_per_round = 20;
};

/// Report: the perturbation (edge deletions in order) and the gap curve.
struct GnnuersReport {
  std::vector<GnnuersStep> deletions;
  double base_gap = 0.0;
  double final_gap = 0.0;
  bool target_reached = false;
};

GnnuersReport ExplainUserUnfairnessByPerturbation(
    const Interactions& interactions, const std::vector<int>& user_groups,
    const GnnuersOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_GNNUERS_H_
