#include "src/beyond/kg_rerank.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/fairness/ranking_metrics.h"
#include "src/util/check.h"

namespace xfair {
namespace {

double ExposureOf(const std::vector<ExplainedCandidate>& candidates,
                  const std::vector<size_t>& ranking) {
  double total = 0.0, prot = 0.0;
  for (size_t r = 0; r < ranking.size(); ++r) {
    const double w = PositionBias(r);
    total += w;
    if (candidates[ranking[r]].item_group == 1) prot += w;
  }
  return total > 0.0 ? prot / total : 0.0;
}

double PathEntropy(const std::vector<ExplainedCandidate>& candidates,
                   const std::vector<size_t>& ranking) {
  std::map<int, size_t> counts;
  for (size_t idx : ranking) ++counts[candidates[idx].path_type];
  double entropy = 0.0;
  const double n = static_cast<double>(ranking.size());
  for (const auto& [type, count] : counts) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace

KgRerankResult FairRerank(const std::vector<ExplainedCandidate>& candidates,
                          const KgRerankOptions& options) {
  KgRerankResult result;
  if (candidates.empty()) return result;

  // Baseline: rank by relevance.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (candidates[a].relevance != candidates[b].relevance)
      return candidates[a].relevance > candidates[b].relevance;
    return a < b;
  });
  const size_t k = std::min(options.top_k, order.size());
  std::vector<size_t> topk(order.begin(),
                           order.begin() + static_cast<long>(k));
  std::vector<size_t> pool(order.begin() + static_cast<long>(k),
                           order.end());
  result.exposure_before = ExposureOf(candidates, topk);

  // Greedy swaps: replace the lowest-relevance non-protected item in the
  // top-k with the highest-relevance protected item from the pool, until
  // the constraint holds or no swap remains.
  double relevance_loss = 0.0;
  while (ExposureOf(candidates, topk) <
         options.min_protected_exposure) {
    // Victim: last-ranked non-protected item.
    size_t victim_pos = topk.size();
    for (size_t r = topk.size(); r-- > 0;) {
      if (candidates[topk[r]].item_group == 0) {
        victim_pos = r;
        break;
      }
    }
    if (victim_pos == topk.size()) break;  // Already all protected.
    // Replacement: best protected candidate in the pool.
    size_t repl_idx = pool.size();
    for (size_t p = 0; p < pool.size(); ++p) {
      if (candidates[pool[p]].item_group == 1) {
        repl_idx = p;
        break;  // Pool is relevance-sorted.
      }
    }
    if (repl_idx == pool.size()) break;  // No protected supply.
    relevance_loss += candidates[topk[victim_pos]].relevance -
                      candidates[pool[repl_idx]].relevance;
    std::swap(topk[victim_pos], pool[repl_idx]);
    // Keep the top-k relevance-sorted so exposure weights stay sensible.
    std::sort(topk.begin(), topk.end(), [&](size_t a, size_t b) {
      if (candidates[a].relevance != candidates[b].relevance)
        return candidates[a].relevance > candidates[b].relevance;
      return a < b;
    });
  }

  result.ranking = std::move(topk);
  result.exposure_after = ExposureOf(candidates, result.ranking);
  result.relevance_loss = relevance_loss;
  result.path_diversity = PathEntropy(candidates, result.ranking);
  result.constraint_met =
      result.exposure_after >= options.min_protected_exposure - 1e-12;
  return result;
}

}  // namespace xfair
