// Fairness-aware reranking of explainable (KG-path) recommendations [44]
// (paper §IV-C): recommendations arrive with knowledge-graph-path
// explanations; the reranker swaps items in the top-k until the protected
// producer group's exposure meets a constraint, preferring swaps that cost
// the least relevance and keeping the path-type diversity of the
// surviving explanations measurable.

#ifndef XFAIR_BEYOND_KG_RERANK_H_
#define XFAIR_BEYOND_KG_RERANK_H_

#include <cstddef>
#include <vector>

namespace xfair {

/// One candidate recommendation with its path-based explanation.
struct ExplainedCandidate {
  size_t item = 0;
  double relevance = 0.0;
  int item_group = 0;   ///< 1 = protected producer.
  int path_type = 0;    ///< Id of the KG path pattern explaining it.
};

/// Options for FairRerank.
struct KgRerankOptions {
  size_t top_k = 10;
  /// Required minimum share of exposure for protected items in the top-k.
  double min_protected_exposure = 0.3;
};

/// Result of reranking one candidate list.
struct KgRerankResult {
  std::vector<size_t> ranking;  ///< Indices into the candidate list.
  double exposure_before = 0.0;
  double exposure_after = 0.0;
  double relevance_loss = 0.0;  ///< Total relevance given up by swaps.
  /// Shannon entropy (nats) of path types in the final top-k — the
  /// explanation-diversity metric.
  double path_diversity = 0.0;
  bool constraint_met = false;
};

/// Reranks `candidates` (any order) into a top-k satisfying the exposure
/// constraint with minimal relevance loss (greedy lowest-cost swaps).
KgRerankResult FairRerank(const std::vector<ExplainedCandidate>& candidates,
                          const KgRerankOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_KG_RERANK_H_
