#include "src/beyond/node_influence.h"

#include <algorithm>
#include <cmath>

#include "src/explain/influence.h"

namespace xfair {

Result<NodeInfluenceReport> ExplainBiasByNodeInfluence(
    const SgcModel& model) {
  XFAIR_CHECK_MSG(model.fitted(), "model not fitted");
  const Dataset& propagated = model.propagated_dataset();
  auto analyzer = InfluenceAnalyzer::Create(model.head(), propagated);
  if (!analyzer.ok()) return analyzer.status();

  NodeInfluenceReport report;
  report.influence = analyzer->InfluenceOnParityGap(propagated);
  const size_t n = report.influence.size();
  report.ranked_nodes.resize(n);
  for (size_t u = 0; u < n; ++u) report.ranked_nodes[u] = u;
  // Most gap-reducing removals first. Removing node u changes the gap by
  // influence[u]; gap > 0 means G+ is disadvantaged, so reductions are the
  // most negative influences.
  std::sort(report.ranked_nodes.begin(), report.ranked_nodes.end(),
            [&](size_t a, size_t b) {
              return report.influence[a] < report.influence[b];
            });

  Vector magnitude(n);
  for (size_t u = 0; u < n; ++u)
    magnitude[u] = std::fabs(report.influence[u]);
  std::sort(magnitude.rbegin(), magnitude.rend());
  double total = 0.0, top = 0.0;
  const size_t decile = std::max<size_t>(1, n / 10);
  for (size_t u = 0; u < n; ++u) {
    total += magnitude[u];
    if (u < decile) top += magnitude[u];
  }
  report.top_decile_share = total > 0.0 ? top / total : 0.0;
  return report;
}

}  // namespace xfair
