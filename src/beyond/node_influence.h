// Training-node attribution of GNN bias [90] (paper §IV-C): estimate each
// training node's influence on the model's group disparity and rank the
// nodes whose removal would most reduce it. Because the SGC head is
// logistic regression over propagated features, the classic influence-
// function machinery applies directly to the propagated dataset.

#ifndef XFAIR_BEYOND_NODE_INFLUENCE_H_
#define XFAIR_BEYOND_NODE_INFLUENCE_H_

#include "src/graph/sgc.h"
#include "src/util/status.h"

namespace xfair {

/// Ranked node attributions.
struct NodeInfluenceReport {
  /// influence[u]: first-order change in the score-space parity gap if
  /// node u were removed from training (positive = removal widens it).
  Vector influence;
  /// Nodes sorted so that the most gap-reducing removals come first.
  std::vector<size_t> ranked_nodes;
  /// Fraction of total |influence| mass carried by the top 10% of nodes —
  /// bias concentration (the [90] observation that few nodes drive bias).
  double top_decile_share = 0.0;
};

/// Computes per-node influence on the SGC parity gap. Returns
/// kFailedPrecondition if the head's Hessian is singular.
Result<NodeInfluenceReport> ExplainBiasByNodeInfluence(
    const SgcModel& model);

}  // namespace xfair

#endif  // XFAIR_BEYOND_NODE_INFLUENCE_H_
