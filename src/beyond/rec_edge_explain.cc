#include "src/beyond/rec_edge_explain.h"

#include <algorithm>

namespace xfair {

std::vector<RecEdgeAttribution> ExplainExposureByEdgeRemoval(
    const Interactions& interactions, const std::vector<int>& item_groups,
    const RecEdgeExplainOptions& options) {
  // Baseline exposure of protected items.
  Interactions working = interactions;
  RecWalkScorer base_scorer(&working);
  const double base =
      RecExposureShare(base_scorer, working, item_groups, options.top_k);

  // Candidate edges: prioritize interactions with high-degree
  // (popularity-hub) items — the ones that crowd out protected exposure.
  std::vector<std::pair<size_t, std::pair<size_t, size_t>>> ranked;
  for (const auto& [u, i] : interactions.pairs()) {
    ranked.push_back({interactions.UsersOf(i).size(), {u, i}});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > options.max_edges) ranked.resize(options.max_edges);

  std::vector<RecEdgeAttribution> attributions;
  for (const auto& [degree, edge] : ranked) {
    const auto [u, i] = edge;
    working.Remove(u, i);
    RecWalkScorer scorer(&working);
    const double exposure =
        RecExposureShare(scorer, working, item_groups, options.top_k);
    attributions.push_back({u, i, exposure - base});
    working.Add(u, i);
  }
  std::sort(attributions.begin(), attributions.end(),
            [](const RecEdgeAttribution& a, const RecEdgeAttribution& b) {
              return a.effect > b.effect;
            });
  if (attributions.size() > options.report_top)
    attributions.resize(options.report_top);
  return attributions;
}

std::vector<RecEdgeAttribution> ExplainUserItemScore(
    const Interactions& interactions, size_t user, size_t item,
    const RecWalkOptions& walk_options) {
  Interactions working = interactions;
  RecWalkScorer base_scorer(&working, walk_options);
  const double base = base_scorer.ScoreItems(user)[item];

  std::vector<RecEdgeAttribution> attributions;
  // Copy: removal mutates the adjacency being iterated otherwise.
  const std::vector<size_t> own_items = interactions.ItemsOf(user);
  for (size_t i : own_items) {
    if (i == item) continue;
    working.Remove(user, i);
    RecWalkScorer scorer(&working, walk_options);
    const double score = scorer.ScoreItems(user)[item];
    attributions.push_back({user, i, score - base});
    working.Add(user, i);
  }
  std::sort(attributions.begin(), attributions.end(),
            [](const RecEdgeAttribution& a, const RecEdgeAttribution& b) {
              return std::abs(a.effect) > std::abs(b.effect);
            });
  return attributions;
}

}  // namespace xfair
