// Counterfactual explanations for recommendation bias via edge removal
// [84] (paper §IV-C): on the RecWalk substrate, evaluate how removing
// individual user-item interactions changes estimated scores and group
// exposure — at the single-user, user-group, single-item, and item-group
// levels.

#ifndef XFAIR_BEYOND_REC_EDGE_EXPLAIN_H_
#define XFAIR_BEYOND_REC_EDGE_EXPLAIN_H_

#include "src/rec/recwalk.h"

namespace xfair {

/// One interaction edge's effect on an exposure target.
struct RecEdgeAttribution {
  size_t user = 0;
  size_t item = 0;
  /// Change in the audited quantity when the edge is removed.
  double effect = 0.0;
};

/// Options for the edge-removal explainer.
struct RecEdgeExplainOptions {
  size_t top_k = 10;       ///< Ranking depth for exposure.
  size_t max_edges = 30;   ///< Edge candidates evaluated (by item degree).
  size_t report_top = 5;   ///< Attributions reported.
};

/// Explains the protected-item exposure share: which interactions, if
/// removed, would most raise protected items' exposure across all users.
/// Returns attributions sorted by descending effect.
std::vector<RecEdgeAttribution> ExplainExposureByEdgeRemoval(
    const Interactions& interactions, const std::vector<int>& item_groups,
    const RecEdgeExplainOptions& options);

/// Explains one user's estimated rating of one item: effect of removing
/// each of the user's own interactions on score(user, item).
std::vector<RecEdgeAttribution> ExplainUserItemScore(
    const Interactions& interactions, size_t user, size_t item,
    const RecWalkOptions& walk_options = {});

}  // namespace xfair

#endif  // XFAIR_BEYOND_REC_EDGE_EXPLAIN_H_
