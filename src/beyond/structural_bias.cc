#include "src/beyond/structural_bias.h"

#include <algorithm>

namespace xfair {

StructuralBiasReport ExplainNodeBias(const SgcModel& model,
                                     const GraphData& data, size_t node,
                                     const StructuralBiasOptions& options) {
  XFAIR_CHECK(node < data.graph.num_nodes());
  StructuralBiasReport report;
  report.node = node;

  // Collect nodes within hops of the target (the computation graph).
  std::vector<bool> in_scope(data.graph.num_nodes(), false);
  std::vector<size_t> frontier = {node};
  in_scope[node] = true;
  for (size_t hop = 0; hop < model.hops(); ++hop) {
    std::vector<size_t> next;
    for (size_t u : frontier) {
      for (size_t v : data.graph.Neighbors(u)) {
        if (!in_scope[v]) {
          in_scope[v] = true;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }

  const double base_gap =
      model.ParityGapOnGraph(data.graph, data.features, data.groups);
  const double base_score =
      model.ScoreOnGraph(data.graph, data.features, node);

  // Leave-one-edge-out over in-scope edges.
  Graph perturbed = data.graph;
  for (const auto& [u, v] : data.graph.Edges()) {
    if (!in_scope[u] || !in_scope[v]) continue;
    perturbed.RemoveEdge(u, v);
    EdgeAttribution attr;
    attr.edge = {u, v};
    attr.gap_change =
        model.ParityGapOnGraph(perturbed, data.features, data.groups) -
        base_gap;
    attr.node_score_change =
        model.ScoreOnGraph(perturbed, data.features, node) - base_score;
    report.attributions.push_back(attr);
    perturbed.AddEdge(u, v);
  }

  std::sort(report.attributions.begin(), report.attributions.end(),
            [](const EdgeAttribution& a, const EdgeAttribution& b) {
              return a.gap_change < b.gap_change;
            });
  for (const auto& attr : report.attributions) {
    if (attr.gap_change < -options.min_effect &&
        report.bias_edge_set.size() < options.max_set_size) {
      report.bias_edge_set.push_back(attr.edge);
    }
  }
  for (auto it = report.attributions.rbegin();
       it != report.attributions.rend(); ++it) {
    if (it->gap_change > options.min_effect &&
        report.fairness_edge_set.size() < options.max_set_size) {
      report.fairness_edge_set.push_back(it->edge);
    }
  }
  return report;
}

}  // namespace xfair
