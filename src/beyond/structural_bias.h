// Structural explanation of bias in GNNs [89] (paper §IV-C): for a target
// node, identify the edge sets in its computational graph that maximally
// account for the exhibited bias and maximally contribute to fairness.
// Operationalized on the SGC model: each candidate edge's removal is
// scored by its effect on the model's parity gap; edges whose removal
// shrinks the gap form the bias-accounting set, edges whose removal widens
// it form the fairness-contributing set.

#ifndef XFAIR_BEYOND_STRUCTURAL_BIAS_H_
#define XFAIR_BEYOND_STRUCTURAL_BIAS_H_

#include "src/graph/sgc.h"

namespace xfair {

/// One edge's attribution.
struct EdgeAttribution {
  std::pair<size_t, size_t> edge;
  /// parity_gap(without edge) - parity_gap(with edge): negative = the edge
  /// contributes to bias (removing it helps).
  double gap_change = 0.0;
  /// Change in the target node's own favorable score when removed.
  double node_score_change = 0.0;
};

/// Explanation of one node's bias in terms of its local edges.
struct StructuralBiasReport {
  size_t node = 0;
  /// Edges in the node's `hops`-hop computation graph, most
  /// bias-accounting first (ascending gap_change).
  std::vector<EdgeAttribution> attributions;
  /// Top edges whose removal reduces the global parity gap.
  std::vector<std::pair<size_t, size_t>> bias_edge_set;
  /// Top edges whose removal increases the gap (they were helping).
  std::vector<std::pair<size_t, size_t>> fairness_edge_set;
};

/// Options for ExplainNodeBias.
struct StructuralBiasOptions {
  size_t max_set_size = 5;
  /// Only edges with |gap_change| above this enter the sets.
  double min_effect = 1e-6;
};

/// Scores every edge in `node`'s computation graph (all edges within
/// `model.hops()` hops) by leave-one-edge-out re-evaluation.
StructuralBiasReport ExplainNodeBias(const SgcModel& model,
                                     const GraphData& data, size_t node,
                                     const StructuralBiasOptions& options);

}  // namespace xfair

#endif  // XFAIR_BEYOND_STRUCTURAL_BIAS_H_
