#include "src/causal/dag.h"

#include <algorithm>

#include "src/util/check.h"

namespace xfair {

size_t Dag::AddNode(const std::string& name) {
  for (const auto& n : names_) XFAIR_CHECK_MSG(n != name, "duplicate node");
  names_.push_back(name);
  parents_.emplace_back();
  children_.emplace_back();
  return names_.size() - 1;
}

Status Dag::AddEdge(size_t from, size_t to) {
  XFAIR_CHECK(from < num_nodes() && to < num_nodes());
  if (from == to) return Status::FailedPrecondition("self-loop");
  if (HasEdge(from, to)) return Status::OK();  // Idempotent.
  if (Reaches(to, from)) {
    return Status::FailedPrecondition("edge " + names_[from] + "->" +
                                      names_[to] + " would create a cycle");
  }
  parents_[to].push_back(from);
  children_[from].push_back(to);
  return Status::OK();
}

const std::string& Dag::name(size_t i) const {
  XFAIR_CHECK(i < num_nodes());
  return names_[i];
}

Result<size_t> Dag::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  return Status::NotFound("no node named " + name);
}

const std::vector<size_t>& Dag::parents(size_t i) const {
  XFAIR_CHECK(i < num_nodes());
  return parents_[i];
}

const std::vector<size_t>& Dag::children(size_t i) const {
  XFAIR_CHECK(i < num_nodes());
  return children_[i];
}

bool Dag::HasEdge(size_t from, size_t to) const {
  XFAIR_CHECK(from < num_nodes() && to < num_nodes());
  const auto& ch = children_[from];
  return std::find(ch.begin(), ch.end(), to) != ch.end();
}

bool Dag::Reaches(size_t from, size_t to) const {
  if (from == to) return true;
  std::vector<bool> seen(num_nodes(), false);
  std::vector<size_t> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    for (size_t v : children_[u]) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

std::vector<size_t> Dag::TopologicalOrder() const {
  std::vector<size_t> in_degree(num_nodes(), 0);
  for (size_t i = 0; i < num_nodes(); ++i)
    in_degree[i] = parents_[i].size();
  std::vector<size_t> queue, order;
  for (size_t i = 0; i < num_nodes(); ++i)
    if (in_degree[i] == 0) queue.push_back(i);
  while (!queue.empty()) {
    const size_t u = queue.back();
    queue.pop_back();
    order.push_back(u);
    for (size_t v : children_[u]) {
      if (--in_degree[v] == 0) queue.push_back(v);
    }
  }
  XFAIR_CHECK_MSG(order.size() == num_nodes(), "graph contains a cycle");
  return order;
}

std::vector<std::vector<size_t>> Dag::AllPaths(size_t from, size_t to) const {
  XFAIR_CHECK(from < num_nodes() && to < num_nodes());
  std::vector<std::vector<size_t>> paths;
  std::vector<size_t> current = {from};
  // DFS; the graph is acyclic so no visited set is needed.
  struct Frame {
    size_t node;
    size_t next_child;
  };
  std::vector<Frame> stack = {{from, 0}};
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.node == to) {
      paths.push_back(current);
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const auto& ch = children_[top.node];
    if (top.next_child >= ch.size()) {
      stack.pop_back();
      current.pop_back();
      continue;
    }
    const size_t v = ch[top.next_child++];
    stack.push_back({v, 0});
    current.push_back(v);
  }
  return paths;
}

std::vector<size_t> Dag::Descendants(size_t from) const {
  XFAIR_CHECK(from < num_nodes());
  std::vector<bool> seen(num_nodes(), false);
  std::vector<size_t> stack = {from}, out;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    for (size_t v : children_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        out.push_back(v);
        stack.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xfair
