// Directed acyclic graph over named variables — the causal diagram shared
// by the SCM, actionable recourse, and causal-path decomposition.

#ifndef XFAIR_CAUSAL_DAG_H_
#define XFAIR_CAUSAL_DAG_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace xfair {

/// DAG with string-named nodes. Node indices are assigned in insertion
/// order and are stable.
class Dag {
 public:
  /// Adds a node; name must be unique. Returns its index.
  size_t AddNode(const std::string& name);

  /// Adds edge from -> to (indices must exist). Returns
  /// kFailedPrecondition if the edge would create a cycle.
  Status AddEdge(size_t from, size_t to);

  size_t num_nodes() const { return names_.size(); }
  const std::string& name(size_t i) const;
  Result<size_t> IndexOf(const std::string& name) const;

  const std::vector<size_t>& parents(size_t i) const;
  const std::vector<size_t>& children(size_t i) const;
  bool HasEdge(size_t from, size_t to) const;

  /// Node indices in a topological order (parents before children).
  std::vector<size_t> TopologicalOrder() const;

  /// All directed paths from `from` to `to`, each as a node sequence
  /// starting with `from` and ending with `to`.
  std::vector<std::vector<size_t>> AllPaths(size_t from, size_t to) const;

  /// Nodes reachable from `from` by directed edges (descendants,
  /// excluding `from` itself).
  std::vector<size_t> Descendants(size_t from) const;

 private:
  bool Reaches(size_t from, size_t to) const;

  std::vector<std::string> names_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<std::vector<size_t>> children_;
};

}  // namespace xfair

#endif  // XFAIR_CAUSAL_DAG_H_
