#include "src/causal/scm.h"

#include <cmath>

namespace xfair {

Scm::Scm(Dag dag) : dag_(std::move(dag)) {
  const size_t n = dag_.num_nodes();
  weights_.resize(n);
  for (size_t i = 0; i < n; ++i)
    weights_[i].assign(dag_.parents(i).size(), 0.0);
  biases_.assign(n, 0.0);
  noise_std_.assign(n, 1.0);
  topo_ = dag_.TopologicalOrder();
}

void Scm::SetEquation(size_t i, Vector parent_weights, double bias,
                      double noise_std) {
  XFAIR_CHECK(i < num_vars());
  XFAIR_CHECK(parent_weights.size() == dag_.parents(i).size());
  XFAIR_CHECK(noise_std >= 0.0);
  weights_[i] = std::move(parent_weights);
  biases_[i] = bias;
  noise_std_[i] = noise_std;
}

double Scm::bias(size_t i) const {
  XFAIR_CHECK(i < num_vars());
  return biases_[i];
}

double Scm::noise_std(size_t i) const {
  XFAIR_CHECK(i < num_vars());
  return noise_std_[i];
}

double Scm::EdgeWeight(size_t parent, size_t i) const {
  XFAIR_CHECK(parent < num_vars() && i < num_vars());
  const auto& pa = dag_.parents(i);
  for (size_t k = 0; k < pa.size(); ++k)
    if (pa[k] == parent) return weights_[i][k];
  return 0.0;
}

Vector Scm::Sample(Rng* rng) const { return SampleDo({}, rng); }

Vector Scm::SampleDo(const std::vector<Intervention>& dos, Rng* rng) const {
  XFAIR_CHECK(rng != nullptr);
  Vector x(num_vars(), 0.0);
  std::vector<bool> forced(num_vars(), false);
  Vector forced_value(num_vars(), 0.0);
  for (const auto& d : dos) {
    XFAIR_CHECK(d.node < num_vars());
    forced[d.node] = true;
    forced_value[d.node] = d.value;
  }
  for (size_t i : topo_) {
    if (forced[i]) {
      x[i] = forced_value[i];
      continue;
    }
    double v = biases_[i] + rng->Normal(0.0, noise_std_[i]);
    const auto& pa = dag_.parents(i);
    for (size_t k = 0; k < pa.size(); ++k) v += weights_[i][k] * x[pa[k]];
    x[i] = v;
  }
  return x;
}

Vector Scm::Abduct(const Vector& x) const {
  XFAIR_CHECK(x.size() == num_vars());
  Vector u(num_vars(), 0.0);
  for (size_t i = 0; i < num_vars(); ++i) {
    double structural = biases_[i];
    const auto& pa = dag_.parents(i);
    for (size_t k = 0; k < pa.size(); ++k)
      structural += weights_[i][k] * x[pa[k]];
    u[i] = x[i] - structural;
  }
  return u;
}

Vector Scm::Counterfactual(const Vector& x,
                           const std::vector<Intervention>& dos) const {
  const Vector u = Abduct(x);
  Vector cf(num_vars(), 0.0);
  std::vector<bool> forced(num_vars(), false);
  Vector forced_value(num_vars(), 0.0);
  for (const auto& d : dos) {
    XFAIR_CHECK(d.node < num_vars());
    forced[d.node] = true;
    forced_value[d.node] = d.value;
  }
  for (size_t i : topo_) {
    if (forced[i]) {
      cf[i] = forced_value[i];
      continue;
    }
    double v = biases_[i] + u[i];
    const auto& pa = dag_.parents(i);
    for (size_t k = 0; k < pa.size(); ++k) v += weights_[i][k] * cf[pa[k]];
    cf[i] = v;
  }
  return cf;
}

Status Scm::FitFromData(const Matrix& data) {
  if (data.cols() != num_vars()) {
    return Status::InvalidArgument("data width must equal variable count");
  }
  if (data.rows() < num_vars() + 1) {
    return Status::InvalidArgument("too few rows to fit SCM");
  }
  const size_t n = data.rows();
  for (size_t i = 0; i < num_vars(); ++i) {
    const auto& pa = dag_.parents(i);
    const size_t p = pa.size();
    // OLS of column i on parents + intercept via normal equations.
    Matrix xtx(p + 1, p + 1);
    Vector xty(p + 1, 0.0);
    for (size_t r = 0; r < n; ++r) {
      Vector row(p + 1);
      row[0] = 1.0;
      for (size_t k = 0; k < p; ++k) row[k + 1] = data.At(r, pa[k]);
      const double y = data.At(r, i);
      for (size_t a = 0; a <= p; ++a) {
        xty[a] += row[a] * y;
        for (size_t b = 0; b <= p; ++b) xtx.At(a, b) += row[a] * row[b];
      }
    }
    // Tiny ridge for numerical stability of near-collinear parents.
    for (size_t a = 0; a <= p; ++a) xtx.At(a, a) += 1e-9;
    Result<Vector> beta = SolveLinearSystem(std::move(xtx), std::move(xty));
    if (!beta.ok()) return beta.status();
    biases_[i] = (*beta)[0];
    for (size_t k = 0; k < p; ++k) weights_[i][k] = (*beta)[k + 1];
    // Residual standard deviation.
    double ss = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double pred = biases_[i];
      for (size_t k = 0; k < p; ++k)
        pred += weights_[i][k] * data.At(r, pa[k]);
      const double e = data.At(r, i) - pred;
      ss += e * e;
    }
    noise_std_[i] = std::sqrt(ss / static_cast<double>(n));
  }
  return Status::OK();
}

double Scm::TotalEffect(size_t source, size_t target, double value0,
                        double value1) const {
  XFAIR_CHECK(source < num_vars() && target < num_vars());
  if (source == target) return value1 - value0;
  double gain = 0.0;
  for (const auto& path : dag_.AllPaths(source, target)) {
    double w = 1.0;
    for (size_t k = 0; k + 1 < path.size(); ++k)
      w *= EdgeWeight(path[k], path[k + 1]);
    gain += w;
  }
  return gain * (value1 - value0);
}

}  // namespace xfair
