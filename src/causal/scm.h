// Structural causal model with linear-Gaussian additive-noise equations.
//
// Each endogenous variable is x_i = b_i + sum_{j in pa(i)} w_ij x_j + u_i
// with independent noise u_i. Additive noise makes abduction exact, so the
// three-step counterfactual (abduction - action - prediction) of Pearl is
// computed in closed form. This is the world model behind actionable
// recourse [65], fair causal recourse [80], probabilistic contrastive
// counterfactuals [10], and causal-path decomposition [82].

#ifndef XFAIR_CAUSAL_SCM_H_
#define XFAIR_CAUSAL_SCM_H_

#include <map>

#include "src/causal/dag.h"
#include "src/util/matrix.h"
#include "src/util/rng.h"

namespace xfair {

/// A do() intervention: forces variable `node` to `value`.
struct Intervention {
  size_t node;
  double value;
};

/// Linear-Gaussian structural causal model over a Dag.
class Scm {
 public:
  /// Builds an SCM skeleton over `dag`. Equations default to
  /// x_i = u_i (no parents' effect) until SetEquation is called.
  explicit Scm(Dag dag);

  const Dag& dag() const { return dag_; }
  size_t num_vars() const { return dag_.num_nodes(); }

  /// Sets node i's equation: bias + sum_k weight[k] * parent_k + noise with
  /// `noise_std`. `parent_weights` must align with dag().parents(i) order.
  void SetEquation(size_t i, Vector parent_weights, double bias,
                   double noise_std);

  double bias(size_t i) const;
  double noise_std(size_t i) const;
  /// Structural weight of edge parent -> i, or 0 if no such edge.
  double EdgeWeight(size_t parent, size_t i) const;

  /// Draws one sample of all variables in topological order.
  Vector Sample(Rng* rng) const;
  /// Draws one sample under interventions (do-semantics: intervened nodes
  /// ignore their equations).
  Vector SampleDo(const std::vector<Intervention>& dos, Rng* rng) const;

  /// Abduction: recovers the noise vector u that generated observation x
  /// (exact under additive noise).
  Vector Abduct(const Vector& x) const;

  /// Pearl's counterfactual: given factual observation x and interventions,
  /// returns the counterfactual state (abduction - action - prediction).
  /// Non-intervened variables keep their factual noise and respond to
  /// upstream changes.
  Vector Counterfactual(const Vector& x,
                        const std::vector<Intervention>& dos) const;

  /// Fits equations (weights, bias, residual std) from data by per-node
  /// OLS, keeping the DAG fixed. `columns[i]` is the data column for
  /// node i. Returns kFailedPrecondition on a singular design.
  Status FitFromData(const Matrix& data);

  /// Total causal effect of do(source = value1) vs do(source = value0) on
  /// `target`: closed form for a linear SCM (sum over directed paths of
  /// edge-weight products, times the value delta).
  double TotalEffect(size_t source, size_t target, double value0,
                     double value1) const;

 private:
  Dag dag_;
  std::vector<Vector> weights_;  // Aligned with dag_.parents(i).
  Vector biases_;
  Vector noise_std_;
  std::vector<size_t> topo_;
};

}  // namespace xfair

#endif  // XFAIR_CAUSAL_SCM_H_
