#include "src/causal/worlds.h"

#include <cmath>

namespace xfair {

double CausalWorld::LabelProba(const Vector& x) const {
  const double z = Dot(label_weights, x) + label_bias;
  return 1.0 / (1.0 + std::exp(-z));
}

Dataset CausalWorld::GenerateDataset(size_t n, uint64_t seed) const {
  Rng rng(seed);
  const size_t d = scm.num_vars();
  Matrix x(n, d);
  std::vector<int> labels(n), groups(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = rng.Bernoulli(0.5) ? 1 : 0;
    Vector row = scm.SampleDo(
        {{sensitive, static_cast<double>(g)}}, &rng);
    x.SetRow(i, row);
    groups[i] = g;
    labels[i] = rng.Bernoulli(LabelProba(row)) ? 1 : 0;
  }
  std::vector<FeatureSpec> specs(d);
  for (size_t c = 0; c < d; ++c) {
    specs[c].name = scm.dag().name(c);
    specs[c].kind =
        c == sensitive ? FeatureKind::kBinary : FeatureKind::kNumeric;
    specs[c].actionability =
        c == sensitive ? Actionability::kImmutable : Actionability::kAny;
    specs[c].lower = -1e3;
    specs[c].upper = 1e3;
  }
  Schema schema(std::move(specs), static_cast<int>(sensitive));
  return Dataset(std::move(schema), std::move(x), std::move(labels),
                 std::move(groups));
}

CausalWorld MakeCreditWorld(double disparity) {
  Dag dag;
  const size_t s = dag.AddNode("S");
  const size_t income = dag.AddNode("income");
  const size_t savings = dag.AddNode("savings");
  const size_t debt = dag.AddNode("debt");
  const size_t zip = dag.AddNode("zip_risk");
  XFAIR_CHECK(dag.AddEdge(s, income).ok());
  XFAIR_CHECK(dag.AddEdge(s, zip).ok());
  XFAIR_CHECK(dag.AddEdge(income, savings).ok());
  XFAIR_CHECK(dag.AddEdge(income, debt).ok());

  Scm scm(std::move(dag));
  // S is exogenous; its value is always forced when sampling datasets.
  scm.SetEquation(s, {}, 0.0, 0.0);
  scm.SetEquation(income, {-1.0 * disparity}, 5.0, 1.0);   // pa: S
  scm.SetEquation(savings, {0.8}, 1.0, 0.8);               // pa: income
  scm.SetEquation(debt, {-0.5}, 6.0, 0.9);                 // pa: income
  scm.SetEquation(zip, {3.0}, 2.0, 0.7);                   // pa: S

  CausalWorld world{std::move(scm), s,
                    /*label_weights=*/{0.0, 0.6, 0.4, -0.5, 0.0},
                    /*label_bias=*/-3.5};
  return world;
}

CausalWorld MakeEducationWorld(double disparity) {
  Dag dag;
  const size_t s = dag.AddNode("S");
  const size_t education = dag.AddNode("education");
  const size_t income = dag.AddNode("income");
  const size_t savings = dag.AddNode("savings");
  const size_t zip = dag.AddNode("zip_risk");
  XFAIR_CHECK(dag.AddEdge(s, income).ok());
  XFAIR_CHECK(dag.AddEdge(education, income).ok());
  XFAIR_CHECK(dag.AddEdge(income, savings).ok());
  XFAIR_CHECK(dag.AddEdge(s, zip).ok());

  Scm scm(std::move(dag));
  scm.SetEquation(s, {}, 0.0, 0.0);
  scm.SetEquation(education, {}, 12.0, 2.0);  // S-independent.
  scm.SetEquation(income, {-1.0 * disparity, 0.4}, 0.5, 1.0);  // pa: S, edu
  scm.SetEquation(savings, {0.8}, 1.0, 0.8);                   // pa: income
  scm.SetEquation(zip, {3.0}, 2.0, 0.7);                       // pa: S

  CausalWorld world{std::move(scm), s,
                    /*label_weights=*/{0.0, 0.35, 0.45, 0.3, 0.0},
                    /*label_bias=*/-8.5};
  return world;
}

}  // namespace xfair
