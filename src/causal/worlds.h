// Ground-truth causal worlds.
//
// The causal recourse literature ([65], [80], [10], [82]) assumes a known
// SCM; real deployments fit one. Since no proprietary SCM can ship here, we
// provide a canonical synthetic "credit world" with a known graph
//   S -> income -> savings -> .  S -> zip_risk.  income -> debt.
// so that every causal method in the library can be verified in closed
// form against the generating mechanism.

#ifndef XFAIR_CAUSAL_WORLDS_H_
#define XFAIR_CAUSAL_WORLDS_H_

#include "src/causal/scm.h"
#include "src/data/dataset.h"

namespace xfair {

/// A synthetic causal world: an SCM, the index of its binary sensitive
/// variable, and a logistic labeler over the SCM variables.
struct CausalWorld {
  Scm scm;
  size_t sensitive;       ///< Node index of the protected attribute.
  Vector label_weights;   ///< Logistic label model over all variables.
  double label_bias;

  /// P(y=1 | x) under the world's labeler.
  double LabelProba(const Vector& x) const;

  /// Samples a dataset whose columns are the SCM variables in node order
  /// (sensitive variable first by construction) and whose labels follow
  /// the logistic labeler. The schema marks the sensitive column immutable.
  Dataset GenerateDataset(size_t n, uint64_t seed) const;
};

/// The canonical 5-variable credit world:
///   S (binary, exogenous) -> income, zip_risk;
///   income -> savings, debt.
/// `disparity` scales the S -> income edge (how strongly group membership
/// suppresses income).
CausalWorld MakeCreditWorld(double disparity = 1.0);

/// A 5-variable world with a *non-descendant* of S:
///   S -> income -> savings;  S -> zip_risk;  education (exogenous,
///   S-independent) -> income and the label.
/// Counterfactually fair prediction is possible here by using education
/// only — the fixture for causal feature-selection mitigation.
CausalWorld MakeEducationWorld(double disparity = 1.0);

}  // namespace xfair

#endif  // XFAIR_CAUSAL_WORLDS_H_
