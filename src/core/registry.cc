#include "src/core/registry.h"

#include "src/beyond/cef.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/dexer.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/node_influence.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/beyond/structural_bias.h"
#include "src/rec/mf.h"
#include "src/rec/recwalk.h"
#include "src/unfair/ares.h"
#include "src/unfair/burden.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/cet.h"
#include "src/unfair/contrastive.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/globece.h"
#include "src/explain/tree_shap.h"
#include "src/unfair/gopher.h"
#include "src/unfair/precof.h"
#include "src/unfair/recourse.h"
#include "src/unfair/slice_search.h"
#include "src/util/table.h"

namespace xfair {

RunContext RunContext::Make(uint64_t seed) {
  RunContext ctx;
  ctx.seed = seed;
  BiasConfig bias;
  bias.score_shift = 1.0;
  bias.label_bias = 0.1;
  ctx.credit = CreditGen(bias).Generate(900, seed);
  XFAIR_CHECK(ctx.credit_model.Fit(ctx.credit).ok());


  ctx.world_data = ctx.world.GenerateDataset(900, seed + 1);
  XFAIR_CHECK(ctx.world_model.Fit(ctx.world_data).ok());

  RecGenConfig rec_cfg;
  rec_cfg.protected_item_popularity = 0.35;
  rec_cfg.protected_user_activity = 0.5;
  ctx.rec = GenerateRecWorld(rec_cfg, seed + 2);

  SbmConfig sbm;
  sbm.num_nodes = 250;
  sbm.label_shift = 1.0;
  ctx.graph = GenerateSbm(sbm, seed + 3);
  XFAIR_CHECK(ctx.sgc.Fit(ctx.graph).ok());
  return ctx;
}

namespace {

std::string F(double v) { return FormatDouble(v, 3); }

std::vector<ApproachDescriptor> BuildRegistry() {
  std::vector<ApproachDescriptor> reg;

  // [10] Probabilistic contrastive counterfactuals (Galhotra et al.).
  reg.push_back(
      {"[10]", "probabilistic contrastive CFs", true,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kBoth, "Contrastive",
       "Probabilistic contrastive CFEs / actionable recourses",
       FairnessLevel::kBoth, "Fairness of recourse",
       FairnessTask::kClassification, Goals{false, true, false},
       [](const RunContext& ctx) {
         auto income = ctx.world.scm.dag().IndexOf("income");
         auto r = ContrastInterventions(
             ctx.world_model, ctx.world.scm, ctx.world.sensitive,
             {{*income, 5.5}}, {{*income, 3.0}}, 800, ctx.seed);
         return "suff G+=" + F(r.sufficiency_protected) +
                " G-=" + F(r.sufficiency_non_protected) +
                " gap=" + F(r.sufficiency_gap);
       }});

  // [63] Gopher influence-based debugging (Salimi et al.).
  reg.push_back(
      {"[63]", "Gopher (influence patterns)", true,
       ExplanationStage::kPostHoc, ModelAccess::kGradient,
       Agnosticism::kSpecific, Coverage::kGlobal, "Influence-based",
       "Predicate-based causal", FairnessLevel::kGroup,
       "Base-Rates/Accuracy-Based", FairnessTask::kClassification,
       Goals{false, true, true}, [](const RunContext& ctx) {
         GopherOptions opts;
         opts.top_k = 1;
         auto r =
             ExplainUnfairnessByPatterns(ctx.credit_model, ctx.credit, opts);
         if (!r.ok() || r->patterns.empty()) return std::string("n/a");
         return "top pattern '" + r->patterns[0].description +
                "' est dGap=" + F(r->patterns[0].estimated_gap_change);
       }});

  // [71] PreCoF (Goethals et al.).
  reg.push_back(
      {"[71]", "PreCoF", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kLocal,
       "CFE", "Most significant feature change", FairnessLevel::kGroup,
       "Implicit/Explicit bias", FairnessTask::kClassification,
       Goals{false, true, false}, [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         auto r = PrecofImplicitBias(ctx.credit, &rng);
         if (r.ranked_features.empty()) return std::string("n/a");
         const size_t top = r.ranked_features[0];
         return "top proxy '" + r.feature_names[top] +
                "' freq gap=" + F(r.frequency_gap[top]);
       }});

  // [72] CERTIFAI burden (Sharma et al.).
  reg.push_back(
      {"[72]", "CERTIFAI burden", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kLocal,
       "CFE", "CFEs", FairnessLevel::kBoth, "Burden",
       FairnessTask::kClassification, Goals{true, true, false},
       [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         auto r = ComputeBurden(ctx.credit_model, ctx.credit,
                                BurdenScope::kAllNegatives, {}, &rng);
         return "burden G+=" + F(r.burden_protected) +
                " G-=" + F(r.burden_non_protected) +
                " gap=" + F(r.burden_gap);
       }});

  // [73] NAWB (Kuratomi et al.).
  reg.push_back(
      {"[73]", "NAWB", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "CFE", "Burden", FairnessLevel::kBoth, "Burden",
       FairnessTask::kClassification, Goals{true, true, false},
       [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         auto r = ComputeNawb(ctx.credit_model, ctx.credit, {}, &rng);
         return "NAWB G+=" + F(r.nawb_protected) +
                " G-=" + F(r.nawb_non_protected) +
                " gap=" + F(r.nawb_gap);
       }});

  // [74] AReS two-level recourse sets (Rawal & Lakkaraju).
  reg.push_back(
      {"[74]", "AReS recourse sets", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kBoth,
       "Recourse", "Two level Recourse Sets", FairnessLevel::kBoth,
       "User study (complexity proxies)", FairnessTask::kClassification,
       Goals{false, true, false}, [](const RunContext& ctx) {
         auto r = BuildRecourseSet(ctx.credit_model, ctx.credit, {});
         return std::to_string(r.num_rules) + " rules, recourse rate G+=" +
                F(r.recourse_rate_protected) +
                " G-=" + F(r.recourse_rate_non_protected);
       }});

  // [75] GLOBE-CE (Ley et al.).
  reg.push_back(
      {"[75]", "GLOBE-CE", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "CFE", "CFEs (global translation)", FairnessLevel::kGroup,
       "Fairness of recourse", FairnessTask::kClassification,
       Goals{false, true, false}, [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         auto r = FitGlobeCe(ctx.credit_model, ctx.credit, {}, &rng);
         return "cost G+=" + F(r.protected_group.mean_cost) +
                " G-=" + F(r.non_protected_group.mean_cost) +
                " gap=" + F(r.cost_gap);
       }});

  // [77] FACTS (Kavouras et al.).
  reg.push_back(
      {"[77]", "FACTS subgroups", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "CFE", "CFEs (subgroup audits)", FairnessLevel::kGroup,
       "Fairness of recourse", FairnessTask::kClassification,
       Goals{true, true, false}, [](const RunContext& ctx) {
         auto r = RunFacts(ctx.credit_model, ctx.credit, {});
         if (r.ranked_subgroups.empty()) return std::string("n/a");
         return std::to_string(r.subgroups_examined) +
                " subgroups, worst '" +
                r.ranked_subgroups[0].description +
                "' eff gap=" + F(r.ranked_subgroups[0].unfairness);
       }});

  // [82] Causal path decomposition (Pan et al.).
  reg.push_back(
      {"[82]", "causal path decomposition", true,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kGlobal, "Recourse",
       "Causal path", FairnessLevel::kGroup, "Base-Rates",
       FairnessTask::kClassification, Goals{false, true, true},
       [](const RunContext& ctx) {
         auto r = DecomposeDisparityByPaths(ctx.world_model, ctx.world,
                                            2000, ctx.seed);
         if (r.paths.empty()) return std::string("n/a");
         return "top path '" + r.paths[0].description +
                "' contrib=" + F(r.paths[0].score_contribution) +
                " of total=" + F(r.total_disparity);
       }});

  // [79] Equalizing recourse (Gupta et al.).
  reg.push_back(
      {"[79]", "recourse equalization", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "Recourse", "Recourses", FairnessLevel::kGroup,
       "Fairness of recourse", FairnessTask::kClassification,
       Goals{true, false, true}, [](const RunContext& ctx) {
         auto r = EvaluateGroupRecourse(ctx.credit_model, ctx.credit);
         return "recourse G+=" + F(r.recourse_protected) +
                " G-=" + F(r.recourse_non_protected) +
                " gap=" + F(r.recourse_gap);
       }});

  // [80] Fair causal recourse (von Kuegelgen et al.).
  reg.push_back(
      {"[80]", "fair causal recourse", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kBoth,
       "Recourse", "Recourses", FairnessLevel::kBoth,
       "Fairness of recourse", FairnessTask::kClassification,
       Goals{true, false, true}, [](const RunContext& ctx) {
         auto income = ctx.world.scm.dag().IndexOf("income");
         auto r = EvaluateCausalRecourseFairness(
             ctx.world_model, ctx.world, {*income}, 300, ctx.seed);
         return "cost gap=" + F(r.group_gap) +
                " indiv unfairness=" + F(r.individual_unfairness);
       }});

  // [89] Structural bias explanation in GNNs (Dong et al.).
  reg.push_back(
      {"[89]", "GNN structural bias edges", true,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kLocal, "CFE", "Edge-Set",
       FairnessLevel::kBoth, "Dist/Base-Rates/Accuracy-Based",
       FairnessTask::kGraph, Goals{true, true, true},
       [](const RunContext& ctx) {
         size_t node = 0;
         for (size_t u = 0; u < ctx.graph.graph.num_nodes(); ++u) {
           if (ctx.graph.graph.Degree(u) >= 3) {
             node = u;
             break;
           }
         }
         auto r = ExplainNodeBias(ctx.sgc, ctx.graph, node, {});
         return "node " + std::to_string(node) + ": " +
                std::to_string(r.bias_edge_set.size()) + " bias edges, " +
                std::to_string(r.fairness_edge_set.size()) +
                " fairness edges";
       }});

  // [81] Fairness Shapley (Begley et al.).
  reg.push_back(
      {"[81]", "fairness Shapley", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kBoth,
       "Shapley", "Shapley based visualization", FairnessLevel::kGroup,
       "Base-Rates", FairnessTask::kClassification,
       Goals{false, true, true}, [](const RunContext& ctx) {
         // Whole-dataset audit through the slice entry point (identical to
         // ExplainParityWithShapley on the full data, one batched sweep).
         std::vector<size_t> all(ctx.credit.size());
         for (size_t i = 0; i < all.size(); ++i) all[i] = i;
         auto r = FairnessShapBatch(ctx.credit_model, ctx.credit, all, {});
         if (r.ranked_features.empty()) return std::string("n/a");
         const size_t top = r.ranked_features[0];
         return "top contributor '" + r.feature_names[top] + "' phi=" +
                F(r.contributions[top]) + " of gap=" + F(r.full_gap);
       }});

  // [84] RecWalk edge-removal explanations (Zafeiriou).
  reg.push_back(
      {"[84]", "RecWalk edge CFs", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kBoth,
       "CFE", "CFEs (edge removals)", FairnessLevel::kBoth, "Base-Rates",
       FairnessTask::kRecommendation, Goals{false, true, false},
       [](const RunContext& ctx) {
         RecEdgeExplainOptions opts;
         opts.max_edges = 15;
         auto r = ExplainExposureByEdgeRemoval(
             ctx.rec.interactions, ctx.rec.item_groups, opts);
         if (r.empty()) return std::string("n/a");
         return "best removal (u" + std::to_string(r[0].user) + ",i" +
                std::to_string(r[0].item) +
                ") dExposure=" + F(r[0].effect);
       }});

  // [86] CFairER (Wang et al.).
  reg.push_back(
      {"[86]", "CFairER attribute CFs", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "CFE", "CFEs (attribute sets)", FairnessLevel::kGroup, "Exposure",
       FairnessTask::kRecommendation, Goals{false, true, true},
       [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         Matrix attrs(ctx.rec.interactions.num_items(), 4);
         for (size_t i = 0; i < attrs.rows(); ++i) {
           attrs.At(i, 0) = ctx.rec.item_groups[i] == 1 ? 0.2 : 1.0;
           for (size_t a = 1; a < 4; ++a)
             attrs.At(i, a) = rng.Uniform(0, 1);
         }
         AttributeRecommender model(ctx.rec.interactions,
                                    std::move(attrs));
         auto r = ExplainFairnessByAttributes(model, ctx.rec.item_groups,
                                              {});
         return std::to_string(r.attribute_set.size()) +
                " attrs removed, gap " + F(r.base_exposure_gap) + " -> " +
                F(r.final_exposure_gap);
       }});

  // [87] CEF (Ge et al.).
  reg.push_back(
      {"[87]", "CEF factor explanations", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "CFE", "CFEs (feature perturbations)", FairnessLevel::kGroup,
       "Exposure", FairnessTask::kRecommendation, Goals{false, true, true},
       [](const RunContext& ctx) {
         MatrixFactorization mf;
         if (!mf.Fit(ctx.rec.interactions, {}).ok()) return std::string("n/a");
         auto r = ExplainRecFairnessByFactors(mf, ctx.rec.interactions,
                                              ctx.rec.item_groups, {});
         if (r.ranked_factors.empty()) return std::string("n/a");
         const auto& top = r.ranked_factors[0];
         return "factor " + std::to_string(top.factor) +
                " score=" + F(top.explainability) +
                " (gain " + F(top.fairness_gain) + ", loss " +
                F(top.utility_loss) + ")";
       }});

  // [88] Dexer (Moskovitch et al.).
  reg.push_back(
      {"[88]", "Dexer ranking Shapley", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kGlobal,
       "Shapley", "Attribute Shapley value distribution visualization",
       FairnessLevel::kGroup, "Exposure", FairnessTask::kRanking,
       Goals{false, true, false}, [](const RunContext& ctx) {
         TupleScorer scorer = [](const Vector& x) {
           return x[2] + 0.3 * x[3];
         };
         DexerOptions opts;
         opts.top_k = 60;
         auto r = ExplainRankingRepresentation(ctx.credit, scorer, opts);
         const size_t top = r.ranked_attributes[0];
         return "repr gap=" + F(r.detection.representation_gap) +
                ", top attr '" + r.attribute_names[top] + "'";
       }});

  // [90] Node-attribution of GNN bias (Dong et al.).
  reg.push_back(
      {"[90]", "GNN node influence", true, ExplanationStage::kPostHoc,
       ModelAccess::kGradient, Agnosticism::kSpecific, Coverage::kGlobal,
       "Influence-based", "Node influence", FairnessLevel::kGroup,
       "Base-Rates/Accuracy-Based", FairnessTask::kGraph,
       Goals{true, true, true}, [](const RunContext& ctx) {
         auto r = ExplainBiasByNodeInfluence(ctx.sgc);
         if (!r.ok()) return std::string("n/a");
         return "top-decile influence share=" + F(r->top_decile_share);
       }});

  // [83] Gopher demo (Zhu et al.): top-k data subsets, verified.
  reg.push_back(
      {"[83]", "Gopher (verified subsets)", true,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kGlobal, "Contrastive",
       "Top-k data subsets", FairnessLevel::kGroup,
       "Base-Rates/Accuracy-Based", FairnessTask::kClassification,
       Goals{false, true, true}, [](const RunContext& ctx) {
         GopherOptions opts;
         opts.top_k = 3;
         auto r =
             ExplainUnfairnessByPatterns(ctx.credit_model, ctx.credit, opts);
         if (!r.ok() || r->patterns.empty()) return std::string("n/a");
         size_t verified = 0;
         for (const auto& p : r->patterns) verified += p.verified;
         return std::to_string(verified) + "/" +
                std::to_string(r->patterns.size()) +
                " verified, best dGap=" +
                F(r->patterns[0].verified_gap_change);
       }});

  // [91] GNNUERS (Medda et al.).
  reg.push_back(
      {"[91]", "GNNUERS edge perturbation", true,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kGlobal, "CFE", "CFE",
       FairnessLevel::kGroup, "Exposure", FairnessTask::kRecommendation,
       Goals{false, true, true}, [](const RunContext& ctx) {
         GnnuersOptions opts;
         opts.max_deletions = 5;
         auto r = ExplainUserUnfairnessByPerturbation(
             ctx.rec.interactions, ctx.rec.user_groups, opts);
         return std::to_string(r.deletions.size()) +
                " deletions, quality gap " + F(r.base_gap) + " -> " +
                F(r.final_gap);
       }});

  // [44] Fairness-aware KG path reranking (Fu et al.).
  reg.push_back(
      {"[44]", "KG path reranking", true, ExplanationStage::kPostHoc,
       ModelAccess::kBlackBox, Agnosticism::kAgnostic, Coverage::kBoth,
       "Example-based", "Top-k KG-path", FairnessLevel::kBoth,
       "Constraints", FairnessTask::kRecommendation,
       Goals{true, true, true}, [](const RunContext& ctx) {
         Rng rng(ctx.seed);
         std::vector<ExplainedCandidate> candidates;
         for (size_t i = 0; i < 30; ++i) {
           ExplainedCandidate c;
           c.item = i;
           c.item_group = ctx.rec.item_groups[i % ctx.rec.item_groups.size()];
           c.relevance =
               rng.Uniform(0, 1) - 0.3 * (c.item_group == 1);
           c.path_type = static_cast<int>(i % 4);
           candidates.push_back(c);
         }
         auto r = FairRerank(candidates, {});
         return "exposure " + F(r.exposure_before) + " -> " +
                F(r.exposure_after) + ", diversity=" +
                F(r.path_diversity);
       }});

  // --- Methods discussed in §IV's text but not rows of Table I ---

  // [65] Actionable recourse via interventions (Karimi et al.).
  reg.push_back(
      {"[65]", "actionable recourse (SCM)", false,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kLocal, "Recourse", "Flipsets",
       FairnessLevel::kIndividual, "Fairness of recourse",
       FairnessTask::kClassification, Goals{false, false, true},
       [](const RunContext& ctx) {
         auto income = ctx.world.scm.dag().IndexOf("income");
         Rng rng(ctx.seed);
         for (int tries = 0; tries < 100; ++tries) {
           Vector x = ctx.world.scm.SampleDo(
               {{ctx.world.sensitive, 1.0}}, &rng);
           if (ctx.world_model.Predict(x) == 1) continue;
           auto r = FindCausalRecourse(ctx.world_model, ctx.world.scm, x,
                                       {*income}, {});
           if (!r.found) continue;
           return std::to_string(r.interventions.size()) +
                  " interventions, cost=" + F(r.cost);
         }
         return std::string("n/a");
       }});

  // [76] Counterfactual explanation trees (Kanamori et al.).
  reg.push_back(
      {"[76]", "counterfactual explanation tree", false,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kGlobal, "CFE",
       "Decision tree of actions", FairnessLevel::kGroup,
       "Fairness of recourse", FairnessTask::kClassification,
       Goals{false, true, true}, [](const RunContext& ctx) {
         auto r = BuildCounterfactualTree(ctx.credit_model, ctx.credit,
                                          {});
         return std::to_string(r.num_leaves) + " leaves, eff G+=" +
                F(r.effectiveness_protected) +
                " G-=" + F(r.effectiveness_non_protected);
       }});

  // Batched SHAP serving over a whole audit slice (ExplainBench-style
  // infrastructure; exercises the batched TreeSHAP engine end to end).
  reg.push_back(
      {"[serve]", "batched SHAP audit slice", false,
       ExplanationStage::kPostHoc, ModelAccess::kWhiteBox,
       Agnosticism::kSpecific, Coverage::kLocal, "Shapley",
       "Per-instance SHAP matrix", FairnessLevel::kGroup,
       "Unfair model behavior", FairnessTask::kClassification,
       Goals{false, true, false}, [](const RunContext& ctx) {
         DecisionTree tree;
         XFAIR_CHECK(tree.Fit(ctx.credit).ok());
         const size_t n = std::min<size_t>(ctx.credit.size(), 256);
         Matrix xs(n, ctx.credit.num_features());
         for (size_t i = 0; i < n; ++i) {
           xs.SetRow(i, ctx.credit.instance(i));
         }
         const Dataset background = ctx.credit.Subset({0, 7, 14, 21, 28});
         Rng rng(ctx.seed);
         const Matrix phi =
             ShapExplainBatch(tree, background, xs, /*permutations=*/64,
                              &rng);
         // Report the slice size and the globally strongest feature by
         // mean |phi| — the "which feature drives decisions on this
         // audit slice" headline a serving deployment surfaces.
         size_t top = 0;
         double top_mean = -1.0;
         for (size_t c = 0; c < phi.cols(); ++c) {
           double acc = 0.0;
           for (size_t i = 0; i < phi.rows(); ++i) {
             acc += std::abs(phi.At(i, c));
           }
           acc /= static_cast<double>(phi.rows());
           if (acc > top_mean) {
             top_mean = acc;
             top = c;
           }
         }
         return std::to_string(n) + " SHAP rows, top feature " +
                std::to_string(top) + " mean|phi|=" + F(top_mean);
       }});

  // Slice-scale fairness audit (ExplainBench-style): decompose the parity
  // gap of two dataset slices in one FairnessShapBatch call each, through
  // the batched thresholded sweep.
  reg.push_back(
      {"[audit]", "fairness-SHAP audit slices", false,
       ExplanationStage::kPostHoc, ModelAccess::kWhiteBox,
       Agnosticism::kSpecific, Coverage::kGlobal, "Shapley",
       "Per-slice parity decomposition", FairnessLevel::kGroup,
       "Base-Rates", FairnessTask::kClassification,
       Goals{false, true, false}, [](const RunContext& ctx) {
         DecisionTree tree;
         XFAIR_CHECK(tree.Fit(ctx.credit).ok());
         // Two halves of the credit data stand in for tenant slices.
         const size_t n = ctx.credit.size();
         std::vector<size_t> first, second;
         for (size_t i = 0; i < n; ++i) {
           (i < n / 2 ? first : second).push_back(i);
         }
         std::string out;
         for (const auto* slice : {&first, &second}) {
           const auto r = FairnessShapBatch(tree, ctx.credit, *slice, {});
           if (r.ranked_features.empty()) return std::string("n/a");
           const size_t top = r.ranked_features[0];
           if (!out.empty()) out += "; ";
           out += std::to_string(slice->size()) + " rows top '" +
                  r.feature_names[top] + "' gap=" + F(r.full_gap);
         }
         return out;
       }});

  // Worst-slice audit on the vertical-bitset lattice engine: top
  // worst-off intersectional subgroups (conjunctions of up to three
  // discretized conditions) by selection rate — the FFB/FairX-style
  // multi-attribute subgroup setting of ROADMAP item 3.
  reg.push_back(
      {"[slice]", "worst-slice subgroup audit", false,
       ExplanationStage::kPostHoc, ModelAccess::kBlackBox,
       Agnosticism::kAgnostic, Coverage::kGlobal, "Subgroup search",
       "Top-k worst-off slices", FairnessLevel::kGroup,
       "Unfair model behavior", FairnessTask::kClassification,
       Goals{true, true, false}, [](const RunContext& ctx) {
         LogisticRegression model;
         XFAIR_CHECK(model.Fit(ctx.credit).ok());
         SliceSearchOptions opts;
         opts.metric = SliceMetricKind::kSelectionRate;
         const WorstSliceReport r =
             WorstSliceSearch(model, ctx.credit, opts);
         if (r.slices.empty()) return std::string("no slice above support");
         const SliceStat& worst = r.slices[0];
         return std::to_string(r.slices_examined) + " slices; worst '" +
                worst.description + "' rate=" + F(worst.metric_value) +
                " overall=" + F(r.overall_metric) +
                " gap=" + F(worst.gap_to_overall);
       }});

  return reg;
}

}  // namespace

const std::vector<ApproachDescriptor>& ApproachRegistry() {
  static const std::vector<ApproachDescriptor>* registry =
      new std::vector<ApproachDescriptor>(BuildRegistry());
  return *registry;
}

}  // namespace xfair
