// Executable registry of every implemented explaining-unfairness approach.
//
// Each entry carries (a) the Table I classification of the surveyed method
// along the taxonomy axes and (b) a runner that executes this library's
// implementation on the standard synthetic fixtures and returns a one-line
// measured summary. bench_table1 walks the registry to regenerate Table I
// with a live "measured" column.

#ifndef XFAIR_CORE_REGISTRY_H_
#define XFAIR_CORE_REGISTRY_H_

#include <functional>
#include <string>

#include "src/causal/worlds.h"
#include "src/core/taxonomy.h"
#include "src/data/generators.h"
#include "src/graph/sbm.h"
#include "src/graph/sgc.h"
#include "src/model/logistic_regression.h"
#include "src/rec/interactions.h"

namespace xfair {

/// Shared fixtures every registry runner executes against. Built once and
/// reused: a planted-bias credit dataset + trained model, the canonical
/// causal world, a biased recommendation world, and a homophilous graph
/// with a fitted SGC.
struct RunContext {
  Dataset credit;
  LogisticRegression credit_model;
  CausalWorld world = MakeCreditWorld(1.0);
  Dataset world_data;
  LogisticRegression world_model;
  RecWorld rec;
  GraphData graph;
  SgcModel sgc;
  uint64_t seed = 0;

  /// Builds all fixtures deterministically from `seed`.
  static RunContext Make(uint64_t seed);
};

/// One registered approach.
struct ApproachDescriptor {
  std::string citation;  ///< Table I row key, e.g. "[72]".
  std::string name;      ///< Human name, e.g. "CERTIFAI burden".
  bool in_table1 = true; ///< False for §IV-text methods Table I omits.

  // Figure 2 classification.
  ExplanationStage stage = ExplanationStage::kPostHoc;
  ModelAccess access = ModelAccess::kBlackBox;
  Agnosticism agnostic = Agnosticism::kAgnostic;
  Coverage coverage = Coverage::kGlobal;
  std::string explanation_type;  ///< "CFE", "Shapley", "Recourse", ...
  std::string output;            ///< Table I "Output" column.

  // Figure 1 classification.
  FairnessLevel level = FairnessLevel::kGroup;
  std::string fairness_type;  ///< Table I "Type" column.
  FairnessTask task = FairnessTask::kClassification;
  Goals goals;

  /// Runs this library's implementation on the fixtures; returns a short
  /// measured summary for the live Table I column.
  std::function<std::string(const RunContext&)> runner;
};

/// All registered approaches, in Table I row order followed by the
/// §IV-text extras.
const std::vector<ApproachDescriptor>& ApproachRegistry();

}  // namespace xfair

#endif  // XFAIR_CORE_REGISTRY_H_
