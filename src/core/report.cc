#include "src/core/report.h"

#include <algorithm>

#include "src/fairness/group_metrics.h"
#include "src/fairness/tradeoff.h"
#include "src/unfair/burden.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/util/table.h"

namespace xfair {

std::string WriteAuditReport(const Model& model, const Dataset& data,
                             const AuditReportOptions& options) {
  std::string out = "# xfair audit report\n\n";
  out += "Model: " + model.name() + "; instances: " +
         std::to_string(data.size()) + "; protected share: " +
         FormatDouble(static_cast<double>(data.GroupIndices(1).size()) /
                          std::max<size_t>(1, data.size()),
                      3) +
         "\n\n";

  // Group fairness metrics.
  const GroupFairnessReport group = EvaluateGroupFairness(model, data);
  out += "## Group fairness (Figure 1 metrics)\n\n";
  out += group.ToString();
  const bool fails_80 = group.disparate_impact_ratio < 0.8;
  out += std::string("\nVerdict: disparate impact ") +
         FormatDouble(group.disparate_impact_ratio) +
         (fails_80 ? " FAILS" : " passes") + " the 80% rule.\n\n";

  // Effort disparity (burden).
  if (options.include_counterfactual_sections) {
    Rng rng(options.seed);
    const BurdenReport burden =
        ComputeBurden(model, data, BurdenScope::kAllNegatives, {}, &rng);
    out += "## Counterfactual burden [72]\n\n";
    out += "Protected group burden " +
           FormatDouble(burden.burden_protected) + " vs non-protected " +
           FormatDouble(burden.burden_non_protected) + " (gap " +
           FormatDouble(burden.burden_gap) + "; " +
           std::to_string(burden.failures) + " searches failed).\n\n";
  }

  // Feature attribution of the gap, decomposed slice-scale in one
  // FairnessShapBatch call (identical to ExplainParityWithShapley over
  // the whole dataset, routed through the batched audit path).
  {
    FairnessShapOptions shap_opts;
    shap_opts.seed = options.seed;
    std::vector<size_t> all(data.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    const auto shap = FairnessShapBatch(model, data, all, shap_opts);
    out += "## Parity-gap contributors (fairness Shapley [81])\n\n";
    AsciiTable t({"feature", "contribution"});
    const size_t k =
        std::min(options.top_contributors, shap.ranked_features.size());
    for (size_t i = 0; i < k; ++i) {
      const size_t c = shap.ranked_features[i];
      t.AddRow({shap.feature_names[c],
                FormatDouble(shap.contributions[c])});
    }
    out += t.ToString() + "\n";
  }

  // Subgroup recourse bias.
  if (options.include_counterfactual_sections) {
    FactsOptions facts_opts;
    facts_opts.top_k = options.top_subgroups;
    const auto facts = RunFacts(model, data, facts_opts);
    out += "## Recourse-bias subgroups (FACTS [77])\n\n";
    if (facts.ranked_subgroups.empty()) {
      out += "No auditable subgroups (too few denied instances).\n\n";
    } else {
      AsciiTable t({"subgroup", "eff G+", "eff G-", "unfairness"});
      for (const auto& sg : facts.ranked_subgroups) {
        t.AddRow({sg.description,
                  FormatDouble(sg.best_effectiveness_protected),
                  FormatDouble(sg.best_effectiveness_non_protected),
                  FormatDouble(sg.unfairness)});
      }
      out += t.ToString() + "\n";
    }
  }

  // Combined tradeoff.
  const TradeoffScore score = EvaluateTradeoff(model, data);
  out += "## Utility / fairness / explainability tradeoff\n\n";
  out += "utility " + FormatDouble(score.utility) + ", fairness " +
         FormatDouble(score.fairness) + ", explainability " +
         FormatDouble(score.explainability) + " -> combined " +
         FormatDouble(score.combined) + "\n";
  return out;
}

}  // namespace xfair
