// One-call audit report: runs the standard fairness audit plus the three
// §IV explanation directions on a (model, dataset) pair and renders a
// single markdown-ish document. This is the "communicate fairness issues
// to stakeholders" objective the paper's introduction lists ([10]'s first
// objective), packaged as an API.

#ifndef XFAIR_CORE_REPORT_H_
#define XFAIR_CORE_REPORT_H_

#include <string>

#include "src/data/dataset.h"
#include "src/model/model.h"

namespace xfair {

/// Options for WriteAuditReport.
struct AuditReportOptions {
  /// Seed for the stochastic components (CF search, Shapley sampling).
  uint64_t seed = 2024;
  /// Number of parity-gap contributors to list.
  size_t top_contributors = 3;
  /// Number of FACTS subgroups to list.
  size_t top_subgroups = 3;
  /// Skip the counterfactual sections (burden, FACTS) for very large
  /// datasets where CF search is too slow.
  bool include_counterfactual_sections = true;
};

/// Renders a complete fairness audit of `model` on `data` as a markdown
/// document: group metrics, counterfactual burden, the top parity-gap
/// contributors (fairness Shapley), the worst recourse-bias subgroups
/// (FACTS), and the utility-fairness-explainability tradeoff score.
std::string WriteAuditReport(const Model& model, const Dataset& data,
                             const AuditReportOptions& options = {});

}  // namespace xfair

#endif  // XFAIR_CORE_REPORT_H_
