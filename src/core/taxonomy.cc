#include "src/core/taxonomy.h"

namespace xfair {

std::string Goals::ToString() const {
  std::string out;
  auto add = [&out](const char* tag) {
    if (!out.empty()) out += ", ";
    out += tag;
  };
  if (enhance_metrics) add("E");
  if (understand_causes) add("U");
  if (mitigate) add("M");
  return out.empty() ? "-" : out;
}

const char* ToString(ExplanationStage v) {
  switch (v) {
    case ExplanationStage::kIntrinsic:
      return "Intrinsic";
    case ExplanationStage::kPreprocess:
      return "Pre";
    case ExplanationStage::kPostHoc:
      return "Post";
  }
  return "?";
}

const char* ToString(ModelAccess v) {
  switch (v) {
    case ModelAccess::kWhiteBox:
      return "W";
    case ModelAccess::kGradient:
      return "G";
    case ModelAccess::kBlackBox:
      return "B";
  }
  return "?";
}

const char* ToString(Agnosticism v) {
  switch (v) {
    case Agnosticism::kAgnostic:
      return "A";
    case Agnosticism::kSpecific:
      return "S";
  }
  return "?";
}

const char* ToString(Coverage v) {
  switch (v) {
    case Coverage::kGlobal:
      return "G";
    case Coverage::kLocal:
      return "L";
    case Coverage::kBoth:
      return "Both";
  }
  return "?";
}

const char* ToString(FairnessLevel v) {
  switch (v) {
    case FairnessLevel::kIndividual:
      return "Individual";
    case FairnessLevel::kGroup:
      return "Group";
    case FairnessLevel::kBoth:
      return "Both";
  }
  return "?";
}

const char* ToString(FairnessCriterion v) {
  switch (v) {
    case FairnessCriterion::kObservational:
      return "Observational";
    case FairnessCriterion::kCausal:
      return "Causal";
  }
  return "?";
}

const char* ToString(MitigationStage v) {
  switch (v) {
    case MitigationStage::kPre:
      return "Pre-processing";
    case MitigationStage::kIn:
      return "In-processing";
    case MitigationStage::kPost:
      return "Post-processing";
    case MitigationStage::kNone:
      return "-";
  }
  return "?";
}

const char* ToString(FairnessTask v) {
  switch (v) {
    case FairnessTask::kClassification:
      return "Clf";
    case FairnessTask::kRecommendation:
      return "Recs";
    case FairnessTask::kRanking:
      return "Rank";
    case FairnessTask::kGraph:
      return "Graph";
  }
  return "?";
}

}  // namespace xfair
