// The paper's two taxonomies (Figure 1: fairness; Figure 2: explanations)
// as types, so the approach registry can classify every implemented method
// along the same axes as Table I and the benches can regenerate the
// figures as executable artifacts.

#ifndef XFAIR_CORE_TAXONOMY_H_
#define XFAIR_CORE_TAXONOMY_H_

#include <string>

namespace xfair {

// --- Figure 2 axes: explanations ---

/// Pipeline stage of the explanation method.
enum class ExplanationStage { kIntrinsic, kPreprocess, kPostHoc };

/// Model-access tier the method needs.
enum class ModelAccess { kWhiteBox, kGradient, kBlackBox };

/// Whether the method applies to any model family.
enum class Agnosticism { kAgnostic, kSpecific };

/// Scope of the produced explanation.
enum class Coverage { kGlobal, kLocal, kBoth };

// --- Figure 1 axes: fairness ---

/// Whose fairness the method reasons about.
enum class FairnessLevel { kIndividual, kGroup, kBoth };

/// Fairness criterion family.
enum class FairnessCriterion { kObservational, kCausal };

/// Mitigation stage (Figure 1 "stage of fairness").
enum class MitigationStage { kPre, kIn, kPost, kNone };

/// Task the method targets.
enum class FairnessTask { kClassification, kRecommendation, kRanking,
                          kGraph };

/// The paper's three goals for explanations-for-fairness (§IV).
struct Goals {
  bool enhance_metrics = false;   ///< (E) new/extended fairness metrics.
  bool understand_causes = false; ///< (U) identify causes of unfairness.
  bool mitigate = false;          ///< (M) design mitigation.

  /// Table I shorthand, e.g. "E, U".
  std::string ToString() const;
};

const char* ToString(ExplanationStage v);
const char* ToString(ModelAccess v);
const char* ToString(Agnosticism v);
const char* ToString(Coverage v);
const char* ToString(FairnessLevel v);
const char* ToString(FairnessCriterion v);
const char* ToString(MitigationStage v);
const char* ToString(FairnessTask v);

}  // namespace xfair

#endif  // XFAIR_CORE_TAXONOMY_H_
