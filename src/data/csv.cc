#include "src/data/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <vector>

namespace xfair {
namespace {

/// Splits one CSV record per RFC 4180: fields separated by commas, a field
/// may be double-quoted, and a quoted field may contain commas and escaped
/// quotes (""). A trailing CR (from CRLF line endings) is stripped before
/// parsing. Malformed quoting — an unterminated quoted field, or a quote
/// inside an unquoted field — is an InvalidArgument; callers append the
/// line number.
Result<std::vector<std::string>> SplitCsvLine(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> out;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';  // Escaped quote inside a quoted field.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      if (!cell.empty() || cell_was_quoted) {
        return Status::InvalidArgument(
            "unexpected '\"' inside unquoted field");
      }
      in_quotes = true;
      cell_was_quoted = true;
    } else if (ch == ',') {
      out.push_back(std::move(cell));
      cell.clear();
      cell_was_quoted = false;
    } else {
      if (cell_was_quoted) {
        return Status::InvalidArgument(
            "unexpected character after closing '\"'");
      }
      cell += ch;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  out.push_back(std::move(cell));
  return out;
}

Result<double> ParseDouble(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse '" + s + "' as double");
  }
  return v;
}

}  // namespace

namespace {

/// Quotes a header cell when it contains a comma, quote, or CR/LF, per
/// RFC 4180, so WriteCsv output always round-trips through ReadCsv.
std::string QuoteIfNeeded(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  for (size_t c = 0; c < data.num_features(); ++c)
    out << QuoteIfNeeded(data.schema().feature(c).name) << ",";
  out << "label,group\n";
  for (size_t r = 0; r < data.size(); ++r) {
    for (size_t c = 0; c < data.num_features(); ++c)
      out << data.x().At(r, c) << ",";
    out << data.label(r) << "," << data.group(r) << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV: " + path);
  const size_t expected = schema.num_features() + 2;
  Result<std::vector<std::string>> header = SplitCsvLine(line);
  if (!header.ok()) {
    return Status::InvalidArgument(header.status().message() +
                                   " at line 1 in " + path);
  }
  if (header->size() != expected) {
    return Status::InvalidArgument("header width mismatch in " + path);
  }

  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line == "\r") continue;
    Result<std::vector<std::string>> split = SplitCsvLine(line);
    if (!split.ok()) {
      return Status::InvalidArgument(split.status().message() + " at line " +
                                     std::to_string(lineno));
    }
    const std::vector<std::string>& cells = *split;
    if (cells.size() != expected) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(lineno));
    }
    Vector row(schema.num_features());
    for (size_t c = 0; c < schema.num_features(); ++c) {
      Result<double> v = ParseDouble(cells[c]);
      if (!v.ok()) return v.status();
      row[c] = *v;
    }
    Result<double> yv = ParseDouble(cells[expected - 2]);
    Result<double> gv = ParseDouble(cells[expected - 1]);
    if (!yv.ok()) return yv.status();
    if (!gv.ok()) return gv.status();
    if ((*yv != 0.0 && *yv != 1.0) || (*gv != 0.0 && *gv != 1.0)) {
      return Status::InvalidArgument("label/group must be 0/1 at line " +
                                     std::to_string(lineno));
    }
    rows.push_back(std::move(row));
    labels.push_back(static_cast<int>(*yv));
    groups.push_back(static_cast<int>(*gv));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);
  return Dataset(schema, Matrix::FromRows(rows), std::move(labels),
                 std::move(groups));
}

Result<Schema> InferSchemaFromCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV: " + path);
  Result<std::vector<std::string>> header_r = SplitCsvLine(line);
  if (!header_r.ok()) {
    return Status::InvalidArgument(header_r.status().message() +
                                   " at line 1 in " + path);
  }
  const std::vector<std::string>& header = *header_r;
  if (header.size() < 3 || header[header.size() - 2] != "label" ||
      header.back() != "group") {
    return Status::InvalidArgument(
        "header must end with 'label,group' in " + path);
  }
  const size_t d = header.size() - 2;

  std::vector<double> lo(d, 1e300), hi(d, -1e300);
  std::vector<bool> binary(d, true);
  size_t lineno = 1;
  size_t rows = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line == "\r") continue;
    Result<std::vector<std::string>> split = SplitCsvLine(line);
    if (!split.ok()) {
      return Status::InvalidArgument(split.status().message() + " at line " +
                                     std::to_string(lineno));
    }
    const std::vector<std::string>& cells = *split;
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(lineno));
    }
    for (size_t c = 0; c < d; ++c) {
      Result<double> v = ParseDouble(cells[c]);
      if (!v.ok()) return v.status();
      lo[c] = std::min(lo[c], *v);
      hi[c] = std::max(hi[c], *v);
      if (*v != 0.0 && *v != 1.0) binary[c] = false;
    }
    ++rows;
  }
  if (rows == 0) return Status::InvalidArgument("no data rows in " + path);

  std::vector<FeatureSpec> specs(d);
  int sensitive = -1;
  for (size_t c = 0; c < d; ++c) {
    specs[c].name = header[c];
    specs[c].kind = binary[c] ? FeatureKind::kBinary : FeatureKind::kNumeric;
    specs[c].actionability = Actionability::kAny;
    const double pad = binary[c] ? 0.0 : 0.1 * (hi[c] - lo[c]);
    specs[c].lower = lo[c] - pad;
    specs[c].upper = hi[c] + pad;
    if (header[c] == "protected") {
      sensitive = static_cast<int>(c);
      specs[c].actionability = Actionability::kImmutable;
    }
  }
  return Schema(std::move(specs), sensitive);
}

}  // namespace xfair
