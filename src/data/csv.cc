#include "src/data/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace xfair {
namespace {

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

Result<double> ParseDouble(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse '" + s + "' as double");
  }
  return v;
}

}  // namespace

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  for (size_t c = 0; c < data.num_features(); ++c)
    out << data.schema().feature(c).name << ",";
  out << "label,group\n";
  for (size_t r = 0; r < data.size(); ++r) {
    for (size_t c = 0; c < data.num_features(); ++c)
      out << data.x().At(r, c) << ",";
    out << data.label(r) << "," << data.group(r) << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV: " + path);
  const size_t expected = schema.num_features() + 2;
  if (SplitComma(line).size() != expected) {
    return Status::InvalidArgument("header width mismatch in " + path);
  }

  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = SplitComma(line);
    if (cells.size() != expected) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(lineno));
    }
    Vector row(schema.num_features());
    for (size_t c = 0; c < schema.num_features(); ++c) {
      Result<double> v = ParseDouble(cells[c]);
      if (!v.ok()) return v.status();
      row[c] = *v;
    }
    Result<double> yv = ParseDouble(cells[expected - 2]);
    Result<double> gv = ParseDouble(cells[expected - 1]);
    if (!yv.ok()) return yv.status();
    if (!gv.ok()) return gv.status();
    if ((*yv != 0.0 && *yv != 1.0) || (*gv != 0.0 && *gv != 1.0)) {
      return Status::InvalidArgument("label/group must be 0/1 at line " +
                                     std::to_string(lineno));
    }
    rows.push_back(std::move(row));
    labels.push_back(static_cast<int>(*yv));
    groups.push_back(static_cast<int>(*gv));
  }
  if (rows.empty()) return Status::InvalidArgument("no data rows in " + path);
  return Dataset(schema, Matrix::FromRows(rows), std::move(labels),
                 std::move(groups));
}

Result<Schema> InferSchemaFromCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line))
    return Status::InvalidArgument("empty CSV: " + path);
  auto header = SplitComma(line);
  if (header.size() < 3 || header[header.size() - 2] != "label" ||
      header.back() != "group") {
    return Status::InvalidArgument(
        "header must end with 'label,group' in " + path);
  }
  const size_t d = header.size() - 2;

  std::vector<double> lo(d, 1e300), hi(d, -1e300);
  std::vector<bool> binary(d, true);
  size_t lineno = 1;
  size_t rows = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = SplitComma(line);
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(lineno));
    }
    for (size_t c = 0; c < d; ++c) {
      Result<double> v = ParseDouble(cells[c]);
      if (!v.ok()) return v.status();
      lo[c] = std::min(lo[c], *v);
      hi[c] = std::max(hi[c], *v);
      if (*v != 0.0 && *v != 1.0) binary[c] = false;
    }
    ++rows;
  }
  if (rows == 0) return Status::InvalidArgument("no data rows in " + path);

  std::vector<FeatureSpec> specs(d);
  int sensitive = -1;
  for (size_t c = 0; c < d; ++c) {
    specs[c].name = header[c];
    specs[c].kind = binary[c] ? FeatureKind::kBinary : FeatureKind::kNumeric;
    specs[c].actionability = Actionability::kAny;
    const double pad = binary[c] ? 0.0 : 0.1 * (hi[c] - lo[c]);
    specs[c].lower = lo[c] - pad;
    specs[c].upper = hi[c] + pad;
    if (header[c] == "protected") {
      sensitive = static_cast<int>(c);
      specs[c].actionability = Actionability::kImmutable;
    }
  }
  return Schema(std::move(specs), sensitive);
}

}  // namespace xfair
