// CSV import/export for Dataset, so users can run xfair on their own
// tabular data (e.g. the real COMPAS/Adult extracts the surveyed papers
// use).

#ifndef XFAIR_DATA_CSV_H_
#define XFAIR_DATA_CSV_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace xfair {

/// Writes `data` as CSV: one header row of feature names plus "label" and
/// "group" columns.
Status WriteCsv(const Dataset& data, const std::string& path);

/// Reads a CSV previously produced by WriteCsv (or hand-built with the same
/// layout): the header must end with "label,group", all cells must parse as
/// doubles, labels/groups must be 0/1, and column count must match
/// `schema`. Fields follow RFC 4180: a field may be double-quoted and then
/// contain commas and escaped quotes (""), and CRLF line endings are
/// accepted. Malformed quoting yields an InvalidArgument naming the line.
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

/// Infers a workable schema from a CSV in WriteCsv layout: feature names
/// from the header, kBinary for columns whose values are all 0/1 and
/// kNumeric otherwise, bounds from the observed min/max (padded 10%), all
/// features actionable, and the sensitive index set to a feature named
/// "protected" if present (else -1). Intended for auditing external data
/// where no hand-written schema exists; tighten the result by hand for
/// recourse work.
Result<Schema> InferSchemaFromCsv(const std::string& path);

}  // namespace xfair

#endif  // XFAIR_DATA_CSV_H_
