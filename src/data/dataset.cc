#include "src/data/dataset.h"

#include "src/util/check.h"

namespace xfair {

Dataset::Dataset(Schema schema, Matrix x, std::vector<int> labels,
                 std::vector<int> groups)
    : schema_(std::move(schema)),
      x_(std::move(x)),
      labels_(std::move(labels)),
      groups_(std::move(groups)) {
  XFAIR_CHECK(x_.rows() == labels_.size());
  XFAIR_CHECK(x_.rows() == groups_.size());
  XFAIR_CHECK(x_.cols() == schema_.num_features());
  for (int y : labels_) XFAIR_CHECK(y == 0 || y == 1);
  for (int g : groups_) XFAIR_CHECK(g == 0 || g == 1);
}

int Dataset::label(size_t i) const {
  XFAIR_CHECK(i < labels_.size());
  return labels_[i];
}

int Dataset::group(size_t i) const {
  XFAIR_CHECK(i < groups_.size());
  return groups_[i];
}

std::vector<size_t> Dataset::GroupIndices(int g) const {
  XFAIR_CHECK(g == 0 || g == 1);
  std::vector<size_t> out;
  for (size_t i = 0; i < groups_.size(); ++i)
    if (groups_[i] == g) out.push_back(i);
  return out;
}

double Dataset::BaseRate(int g) const {
  size_t n = 0, pos = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (groups_[i] != g) continue;
    ++n;
    pos += static_cast<size_t>(labels_[i]);
  }
  if (n == 0) return 0.0;
  return static_cast<double>(pos) / static_cast<double>(n);
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Matrix x(indices.size(), num_features());
  std::vector<int> labels(indices.size()), groups(indices.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    const size_t src = indices[r];
    XFAIR_CHECK(src < size());
    x.SetRow(r, x_.Row(src));
    labels[r] = labels_[src];
    groups[r] = groups_[src];
  }
  return Dataset(schema_, std::move(x), std::move(labels),
                 std::move(groups));
}

Dataset Dataset::WithoutFeature(size_t i) const {
  XFAIR_CHECK(i < num_features());
  Matrix x(size(), num_features() - 1);
  for (size_t r = 0; r < size(); ++r) {
    size_t out_c = 0;
    for (size_t c = 0; c < num_features(); ++c) {
      if (c == i) continue;
      x.At(r, out_c++) = x_.At(r, c);
    }
  }
  return Dataset(schema_.WithoutFeature(i), std::move(x), labels_, groups_);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  XFAIR_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  XFAIR_CHECK(rng != nullptr);
  std::vector<size_t> idx(size());
  for (size_t i = 0; i < size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  const size_t n_train = std::max<size_t>(
      1, static_cast<size_t>(train_fraction * static_cast<double>(size())));
  XFAIR_CHECK_MSG(n_train < size(), "split leaves empty test set");
  std::vector<size_t> train_idx(idx.begin(),
                                idx.begin() + static_cast<long>(n_train));
  std::vector<size_t> test_idx(idx.begin() + static_cast<long>(n_train),
                               idx.end());
  return {Subset(train_idx), Subset(test_idx)};
}

}  // namespace xfair
