// Tabular dataset: instance-major feature matrix, binary labels, and the
// protected-group membership every fairness metric conditions on.

#ifndef XFAIR_DATA_DATASET_H_
#define XFAIR_DATA_DATASET_H_

#include <utility>
#include <vector>

#include "src/data/schema.h"
#include "src/util/matrix.h"
#include "src/util/rng.h"

namespace xfair {

/// A supervised tabular dataset for binary classification with a binary
/// protected attribute.
///
/// Row i of `x()` is instance i; `label(i)` is its ground-truth class
/// (1 = favorable); `group(i)` is 1 for the protected group G+ and 0 for
/// the non-protected group G-. The group vector is always materialized even
/// when the sensitive attribute is also a feature column, so that the
/// sensitive column can be dropped from training (implicit-bias studies)
/// without losing group membership.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, Matrix x, std::vector<int> labels,
          std::vector<int> groups);

  const Schema& schema() const { return schema_; }
  const Matrix& x() const { return x_; }
  size_t size() const { return x_.rows(); }
  size_t num_features() const { return x_.cols(); }

  Vector instance(size_t i) const { return x_.Row(i); }
  int label(size_t i) const;
  int group(size_t i) const;
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& groups() const { return groups_; }

  /// Indices of instances in the protected (g=1) or non-protected (g=0)
  /// group.
  std::vector<size_t> GroupIndices(int g) const;

  /// Fraction of instances with label 1 within group g (the base rate).
  double BaseRate(int g) const;

  /// New dataset containing rows `indices` in order.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// New dataset with feature column `i` removed (see
  /// Schema::WithoutFeature).
  Dataset WithoutFeature(size_t i) const;

  /// Deterministic shuffled split; `train_fraction` in (0, 1).
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

 private:
  Schema schema_;
  Matrix x_;
  std::vector<int> labels_;
  std::vector<int> groups_;
};

}  // namespace xfair

#endif  // XFAIR_DATA_DATASET_H_
