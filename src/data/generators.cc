#include "src/data/generators.h"

#include <algorithm>
#include <cmath>

namespace xfair {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

/// Draws the final label: thresholds the latent probability, then applies
/// group-dependent label bias and symmetric noise.
int DrawLabel(double p_favorable, int group, const BiasConfig& cfg,
              Rng* rng) {
  int y = rng->Bernoulli(p_favorable) ? 1 : 0;
  if (y == 1 && group == 1 && rng->Bernoulli(cfg.label_bias)) y = 0;
  if (rng->Bernoulli(cfg.label_noise)) y = 1 - y;
  return y;
}

}  // namespace

Schema CreditGen::MakeSchema() {
  std::vector<FeatureSpec> f;
  f.push_back({"protected", FeatureKind::kBinary, 0, Actionability::kImmutable,
               0.0, 1.0});
  f.push_back(
      {"age", FeatureKind::kNumeric, 0, Actionability::kImmutable, 18.0, 90.0});
  f.push_back({"income", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 0.0, 20.0});
  f.push_back({"savings", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 0.0, 30.0});
  f.push_back({"employment_years", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 0.0, 50.0});
  f.push_back({"debt", FeatureKind::kNumeric, 0, Actionability::kDecreaseOnly,
               0.0, 30.0});
  f.push_back({"loan_duration", FeatureKind::kNumeric, 0,
               Actionability::kDecreaseOnly, 6.0, 72.0});
  f.push_back({"zip_risk", FeatureKind::kNumeric, 0, Actionability::kAny, 0.0,
               10.0});
  return Schema(std::move(f), /*sensitive_index=*/0);
}

Dataset CreditGen::Generate(size_t n, uint64_t seed) const {
  Rng rng(seed);
  Schema schema = MakeSchema();
  Matrix x(n, schema.num_features());
  std::vector<int> labels(n), groups(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = rng.Bernoulli(config_.protected_fraction) ? 1 : 0;
    const double age = Clamp(rng.Normal(40.0, 12.0), 18.0, 90.0);
    // Income and savings are mildly depressed for the protected group:
    // historical disparity flows into observable qualifications.
    const double income =
        Clamp(rng.Normal(6.0 - 0.8 * config_.qualification_gap * g, 2.0), 0.0, 20.0);
    const double savings = Clamp(rng.Normal(8.0 - config_.qualification_gap * g, 4.0), 0.0, 30.0);
    const double employment =
        Clamp(rng.Normal(8.0, 5.0) + 0.1 * (age - 40.0), 0.0, 50.0);
    const double debt = Clamp(rng.Normal(6.0, 3.0), 0.0, 30.0);
    const double duration = Clamp(rng.Normal(30.0, 12.0), 6.0, 72.0);
    // Proxy: zip risk mixes group membership with noise.
    const double zip_risk =
        Clamp(config_.proxy_strength * (3.0 + 4.0 * g) +
                  (1.0 - config_.proxy_strength) * rng.Uniform(0.0, 10.0) +
                  rng.Normal(0.0, 0.5),
              0.0, 10.0);
    x.At(i, 0) = g;
    x.At(i, 1) = age;
    x.At(i, 2) = income;
    x.At(i, 3) = savings;
    x.At(i, 4) = employment;
    x.At(i, 5) = debt;
    x.At(i, 6) = duration;
    x.At(i, 7) = zip_risk;

    // Latent creditworthiness; score_shift plants structural disparity.
    const double z = 0.45 * (income - 6.0) + 0.18 * (savings - 8.0) +
                     0.12 * (employment - 8.0) - 0.22 * (debt - 6.0) -
                     0.035 * (duration - 30.0) -
                     config_.score_shift * static_cast<double>(g) +
                     rng.Normal(0.0, 0.4);
    groups[i] = g;
    labels[i] = DrawLabel(Sigmoid(z), g, config_, &rng);
  }
  return Dataset(std::move(schema), std::move(x), std::move(labels),
                 std::move(groups));
}

Schema RecidivismGen::MakeSchema() {
  std::vector<FeatureSpec> f;
  f.push_back({"protected", FeatureKind::kBinary, 0, Actionability::kImmutable,
               0.0, 1.0});
  f.push_back(
      {"age", FeatureKind::kNumeric, 0, Actionability::kImmutable, 18.0, 80.0});
  f.push_back({"priors_count", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 0.0, 30.0});
  f.push_back({"juvenile_offenses", FeatureKind::kNumeric, 0,
               Actionability::kImmutable, 0.0, 10.0});
  f.push_back({"charge_degree", FeatureKind::kBinary, 0,
               Actionability::kImmutable, 0.0, 1.0});
  f.push_back({"employment_status", FeatureKind::kBinary, 0,
               Actionability::kAny, 0.0, 1.0});
  f.push_back({"neighborhood_arrests", FeatureKind::kNumeric, 0,
               Actionability::kAny, 0.0, 10.0});
  return Schema(std::move(f), /*sensitive_index=*/0);
}

Dataset RecidivismGen::Generate(size_t n, uint64_t seed) const {
  Rng rng(seed);
  Schema schema = MakeSchema();
  Matrix x(n, schema.num_features());
  std::vector<int> labels(n), groups(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = rng.Bernoulli(config_.protected_fraction) ? 1 : 0;
    const double age = Clamp(18.0 + rng.Normal(14.0, 10.0), 18.0, 80.0);
    // Over-policing: the protected group accumulates more recorded priors
    // at equal underlying behavior — a selection bias the explainers should
    // surface through the proxy chain.
    const double priors = Clamp(
        rng.Normal(2.0 + 1.5 * config_.proxy_strength * g, 2.0), 0.0, 30.0);
    const double juvenile =
        Clamp(rng.Normal(0.5 + 0.3 * config_.qualification_gap * g, 0.8), 0.0, 10.0);
    const double felony = rng.Bernoulli(0.4) ? 1.0 : 0.0;
    const double employed = rng.Bernoulli(0.6 - 0.1 * config_.qualification_gap * g) ? 1.0 : 0.0;
    const double neighborhood = Clamp(
        config_.proxy_strength * (2.5 + 4.5 * g) +
            (1.0 - config_.proxy_strength) * rng.Uniform(0.0, 10.0) +
            rng.Normal(0.0, 0.5),
        0.0, 10.0);
    x.At(i, 0) = g;
    x.At(i, 1) = age;
    x.At(i, 2) = priors;
    x.At(i, 3) = juvenile;
    x.At(i, 4) = felony;
    x.At(i, 5) = employed;
    x.At(i, 6) = neighborhood;

    // Favorable outcome (1) = does NOT recidivate. Younger age and priors
    // raise risk; employment lowers it; score_shift plants extra recorded
    // risk against the protected group.
    const double risk = 0.30 * (priors - 2.0) + 0.35 * (juvenile - 0.5) -
                        0.05 * (age - 32.0) + 0.3 * felony - 0.5 * employed +
                        config_.score_shift * static_cast<double>(g) +
                        rng.Normal(0.0, 0.4);
    groups[i] = g;
    labels[i] = DrawLabel(1.0 - Sigmoid(risk), g, config_, &rng);
  }
  return Dataset(std::move(schema), std::move(x), std::move(labels),
                 std::move(groups));
}

Schema IncomeGen::MakeSchema() {
  std::vector<FeatureSpec> f;
  f.push_back({"protected", FeatureKind::kBinary, 0, Actionability::kImmutable,
               0.0, 1.0});
  f.push_back(
      {"age", FeatureKind::kNumeric, 0, Actionability::kImmutable, 17.0, 90.0});
  f.push_back({"education_years", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 1.0, 21.0});
  f.push_back({"hours_per_week", FeatureKind::kNumeric, 0,
               Actionability::kAny, 1.0, 99.0});
  f.push_back({"capital_gain", FeatureKind::kNumeric, 0,
               Actionability::kIncreaseOnly, 0.0, 20.0});
  f.push_back({"occupation", FeatureKind::kCategorical, 5,
               Actionability::kAny, 0.0, 4.0});
  return Schema(std::move(f), /*sensitive_index=*/0);
}

Dataset IncomeGen::Generate(size_t n, uint64_t seed) const {
  Rng rng(seed);
  Schema schema = MakeSchema();
  Matrix x(n, schema.num_features());
  std::vector<int> labels(n), groups(n);
  // Occupation pay premium per category; the protected group is steered
  // toward low-premium categories with strength proxy_strength.
  const double kPremium[5] = {-0.8, -0.3, 0.0, 0.5, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const int g = rng.Bernoulli(config_.protected_fraction) ? 1 : 0;
    const double age = Clamp(rng.Normal(38.0, 13.0), 17.0, 90.0);
    const double edu = Clamp(rng.Normal(12.0, 3.0), 1.0, 21.0);
    const double hours =
        Clamp(rng.Normal(40.0 - 3.0 * config_.qualification_gap * g, 10.0), 1.0, 99.0);
    const double gain =
        std::max(0.0, rng.Normal(-3.0, 4.0));  // mostly zero, long tail
    std::vector<double> occ_weights(5);
    for (int c = 0; c < 5; ++c) {
      const double steer =
          (g == 1) ? -config_.proxy_strength * kPremium[c] : 0.0;
      occ_weights[c] = std::exp(steer);
    }
    const double occ = static_cast<double>(rng.Categorical(occ_weights));
    x.At(i, 0) = g;
    x.At(i, 1) = age;
    x.At(i, 2) = edu;
    x.At(i, 3) = hours;
    x.At(i, 4) = std::min(gain, 20.0);
    x.At(i, 5) = occ;

    const double z = 0.30 * (edu - 12.0) + 0.05 * (hours - 40.0) +
                     0.02 * (age - 38.0) + 0.35 * x.At(i, 4) +
                     0.8 * kPremium[static_cast<int>(occ)] -
                     config_.score_shift * static_cast<double>(g) - 0.4 +
                     rng.Normal(0.0, 0.5);
    groups[i] = g;
    labels[i] = DrawLabel(Sigmoid(z), g, config_, &rng);
  }
  return Dataset(std::move(schema), std::move(x), std::move(labels),
                 std::move(groups));
}

}  // namespace xfair
