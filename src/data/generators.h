// Synthetic biased-data generators.
//
// The surveyed methods are evaluated on COMPAS, Adult, and German credit.
// Those datasets cannot ship here, so each generator mirrors one dataset's
// schema and documented disparity direction while *planting* its bias with
// known ground truth: a tunable base-rate gap, a proxy feature correlated
// with group membership, and group-dependent label corruption. Planted bias
// is what makes the reproduction testable — an explanation method is correct
// iff it recovers the mechanism we injected.

#ifndef XFAIR_DATA_GENERATORS_H_
#define XFAIR_DATA_GENERATORS_H_

#include "src/data/dataset.h"

namespace xfair {

/// Shared bias knobs for all generators.
struct BiasConfig {
  /// P(instance belongs to protected group G+).
  double protected_fraction = 0.4;
  /// Additive shift of the latent qualification score against G+; drives a
  /// base-rate gap in ground-truth labels. 0 = no structural disparity.
  double score_shift = 0.8;
  /// Strength of the proxy feature's dependence on group membership in
  /// [0, 1]. 0 = proxy carries no group signal.
  double proxy_strength = 0.6;
  /// Probability of flipping a true favorable label of a protected
  /// individual to unfavorable (societal/label bias).
  double label_bias = 0.1;
  /// Multiplier on the generator's built-in depression of *observable
  /// qualifications* (income, savings, hours, employment) for the protected
  /// group. 1 = full historical disparity, 0 = groups identically
  /// qualified.
  double qualification_gap = 1.0;
  /// Symmetric label noise applied to everyone.
  double label_noise = 0.03;
};

/// German-credit-like loan dataset. Favorable label = creditworthy.
/// Sensitive attribute: column "protected" (e.g. gender). Proxy:
/// "zip_risk". Actionable features: income, savings, employment_years
/// (increase-only), debt, loan_duration (decrease-only).
class CreditGen {
 public:
  explicit CreditGen(BiasConfig config = {}) : config_(config) {}
  /// Generates n instances deterministically from `seed`.
  Dataset Generate(size_t n, uint64_t seed) const;
  /// The generator's schema (also the schema of Generate's output).
  static Schema MakeSchema();

 private:
  BiasConfig config_;
};

/// COMPAS-like recidivism dataset. Note the flipped polarity: the favorable
/// outcome (label 1) is "did NOT recidivate". Sensitive: "protected"
/// (race). Proxy: "neighborhood_arrests". Immutable: age, priors_count
/// cannot decrease.
class RecidivismGen {
 public:
  explicit RecidivismGen(BiasConfig config = {}) : config_(config) {}
  Dataset Generate(size_t n, uint64_t seed) const;
  static Schema MakeSchema();

 private:
  BiasConfig config_;
};

/// Adult-census-like income dataset. Favorable label = high income.
/// Sensitive: "protected" (sex). Proxy: categorical "occupation" whose
/// distribution depends on group.
class IncomeGen {
 public:
  explicit IncomeGen(BiasConfig config = {}) : config_(config) {}
  Dataset Generate(size_t n, uint64_t seed) const;
  static Schema MakeSchema();

 private:
  BiasConfig config_;
};

}  // namespace xfair

#endif  // XFAIR_DATA_GENERATORS_H_
