#include "src/data/scaler.h"

#include <cmath>

#include "src/util/stats.h"

namespace xfair {

void StandardScaler::Fit(const Dataset& data) {
  const size_t d = data.num_features();
  means_.assign(d, 0.0);
  stddevs_.assign(d, 1.0);
  scale_.assign(d, false);
  for (size_t c = 0; c < d; ++c) {
    if (data.schema().feature(c).kind != FeatureKind::kNumeric) continue;
    scale_[c] = true;
    Vector col = data.x().Col(c);
    means_[c] = Mean(col);
    const double sd = Stddev(col);
    stddevs_[c] = sd > 1e-12 ? sd : 1.0;
  }
  fitted_ = true;
}

Dataset StandardScaler::Transform(const Dataset& data) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(data.num_features() == means_.size());
  Matrix x(data.size(), data.num_features());
  for (size_t r = 0; r < data.size(); ++r)
    x.SetRow(r, TransformInstance(data.instance(r)));
  return Dataset(data.schema(), std::move(x), data.labels(), data.groups());
}

Vector StandardScaler::TransformInstance(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(x.size() == means_.size());
  Vector z(x.size());
  for (size_t c = 0; c < x.size(); ++c)
    z[c] = scale_[c] ? (x[c] - means_[c]) / stddevs_[c] : x[c];
  return z;
}

Vector StandardScaler::InverseInstance(const Vector& z) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(z.size() == means_.size());
  Vector x(z.size());
  for (size_t c = 0; c < z.size(); ++c)
    x[c] = scale_[c] ? z[c] * stddevs_[c] + means_[c] : z[c];
  return x;
}

}  // namespace xfair
