#include "src/data/scaler.h"

#include <cmath>

#include "src/util/kernels.h"

namespace xfair {

void StandardScaler::Fit(const Dataset& data) {
  const size_t d = data.num_features();
  const size_t n = data.size();
  means_.assign(d, 0.0);
  stddevs_.assign(d, 1.0);
  if (n == 0) {
    fitted_ = true;
    return;
  }
  // Row-major moment passes over the row storage — no Matrix::Col
  // copies. Each column's sums still accumulate in ascending row order,
  // so the learned moments match the former per-column Mean/Stddev
  // computation bit for bit.
  Vector sums(d, 0.0), m2(d, 0.0);
  for (size_t r = 0; r < n; ++r)
    kernels::Axpy(1.0, data.x().RowPtr(r), sums.data(), d);
  Vector mean(d, 0.0);
  for (size_t c = 0; c < d; ++c) mean[c] = sums[c] / static_cast<double>(n);
  for (size_t r = 0; r < n; ++r)
    kernels::AccumSquaredDiff(data.x().RowPtr(r), mean.data(), m2.data(), d);
  for (size_t c = 0; c < d; ++c) {
    if (data.schema().feature(c).kind != FeatureKind::kNumeric) continue;
    means_[c] = mean[c];
    const double sd =
        n < 2 ? 0.0 : std::sqrt(m2[c] / static_cast<double>(n - 1));
    stddevs_[c] = sd > 1e-12 ? sd : 1.0;
  }
  fitted_ = true;
}

Dataset StandardScaler::Transform(const Dataset& data) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(data.num_features() == means_.size());
  // Pass-through columns keep mean 0 / stddev 1, and (x - 0) / 1 == x
  // exactly in IEEE arithmetic, so one unconditional standardization
  // kernel per row replaces the per-element branch.
  Matrix x(data.size(), data.num_features());
  for (size_t r = 0; r < data.size(); ++r)
    kernels::Standardize(data.x().RowPtr(r), means_.data(),
                         stddevs_.data(), x.RowPtr(r), means_.size());
  return Dataset(data.schema(), std::move(x), data.labels(), data.groups());
}

Vector StandardScaler::TransformInstance(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(x.size() == means_.size());
  Vector z(x.size());
  kernels::Standardize(x.data(), means_.data(), stddevs_.data(), z.data(),
                       x.size());
  return z;
}

Vector StandardScaler::InverseInstance(const Vector& z) const {
  XFAIR_CHECK_MSG(fitted_, "scaler not fitted");
  XFAIR_CHECK(z.size() == means_.size());
  Vector x(z.size());
  for (size_t c = 0; c < z.size(); ++c)
    x[c] = z[c] * stddevs_[c] + means_[c];
  return x;
}

}  // namespace xfair
