// Per-feature standardization (z-scoring) with inverse transform, so
// counterfactual search can operate in normalized space and report actions
// back in original units.

#ifndef XFAIR_DATA_SCALER_H_
#define XFAIR_DATA_SCALER_H_

#include "src/data/dataset.h"

namespace xfair {

/// Standardizes numeric features to zero mean / unit variance. Binary and
/// categorical columns are passed through unchanged so coded categories
/// stay intact.
class StandardScaler {
 public:
  /// Learns means and standard deviations from `data`.
  void Fit(const Dataset& data);

  bool fitted() const { return fitted_; }

  /// Transforms a dataset (schema must match the one seen in Fit).
  Dataset Transform(const Dataset& data) const;
  /// Transforms a single instance.
  Vector TransformInstance(const Vector& x) const;
  /// Maps a standardized instance back to original units.
  Vector InverseInstance(const Vector& z) const;

  const Vector& means() const { return means_; }
  const Vector& stddevs() const { return stddevs_; }

 private:
  // Pass-through (binary/categorical) columns keep mean 0 / stddev 1,
  // which makes standardization an exact identity for them — no
  // per-column gating needed in the transform kernels.
  bool fitted_ = false;
  Vector means_;
  Vector stddevs_;
};

}  // namespace xfair

#endif  // XFAIR_DATA_SCALER_H_
