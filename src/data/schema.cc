#include "src/data/schema.h"

#include "src/util/check.h"

namespace xfair {

Schema::Schema(std::vector<FeatureSpec> features, int sensitive_index)
    : features_(std::move(features)), sensitive_index_(sensitive_index) {
  XFAIR_CHECK(sensitive_index_ >= -1 &&
              sensitive_index_ < static_cast<int>(features_.size()));
  for (const auto& f : features_) {
    if (f.kind == FeatureKind::kCategorical) XFAIR_CHECK(f.arity >= 2);
    XFAIR_CHECK(f.lower <= f.upper);
  }
}

const FeatureSpec& Schema::feature(size_t i) const {
  XFAIR_CHECK(i < features_.size());
  return features_[i];
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < features_.size(); ++i)
    if (features_[i].name == name) return i;
  return Status::NotFound("no feature named " + name);
}

Schema Schema::WithoutFeature(size_t i) const {
  XFAIR_CHECK(i < features_.size());
  std::vector<FeatureSpec> kept;
  kept.reserve(features_.size() - 1);
  for (size_t j = 0; j < features_.size(); ++j)
    if (j != i) kept.push_back(features_[j]);
  int sens = sensitive_index_;
  if (sens == static_cast<int>(i)) {
    sens = -1;
  } else if (sens > static_cast<int>(i)) {
    --sens;
  }
  return Schema(std::move(kept), sens);
}

bool Schema::MoveAllowed(size_t i, double delta) const {
  XFAIR_CHECK(i < features_.size());
  if (delta == 0.0) return true;
  switch (features_[i].actionability) {
    case Actionability::kAny:
      return true;
    case Actionability::kIncreaseOnly:
      return delta > 0.0;
    case Actionability::kDecreaseOnly:
      return delta < 0.0;
    case Actionability::kImmutable:
      return false;
  }
  return false;
}

}  // namespace xfair
