// Feature schema for tabular datasets.
//
// The schema carries the semantic metadata that fairness-aware explainers
// need beyond raw values: which features are immutable (race, age at
// offense), which are actionable and in which direction (income may go up,
// past convictions cannot go down), category arity, and value bounds.

#ifndef XFAIR_DATA_SCHEMA_H_
#define XFAIR_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace xfair {

/// Value domain of a feature. All values are stored as double; categorical
/// features are coded 0..arity-1.
enum class FeatureKind { kNumeric, kBinary, kCategorical };

/// Direction in which a recourse action may move a feature.
enum class Actionability {
  kAny,           ///< May increase or decrease.
  kIncreaseOnly,  ///< May only increase (e.g. education years).
  kDecreaseOnly,  ///< May only decrease (e.g. debt).
  kImmutable,     ///< May never change (e.g. protected attributes).
};

/// Metadata for one feature column.
struct FeatureSpec {
  std::string name;
  FeatureKind kind = FeatureKind::kNumeric;
  /// Number of categories for kCategorical (>= 2); ignored otherwise.
  int arity = 0;
  Actionability actionability = Actionability::kAny;
  /// Inclusive value bounds used by counterfactual search. For categorical
  /// features these are implied by arity and ignored.
  double lower = -1e30;
  double upper = 1e30;
};

/// Ordered collection of FeatureSpecs plus the index of the sensitive
/// (protected) attribute, if it is included as a column.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FeatureSpec> features,
                  int sensitive_index = -1);

  size_t num_features() const { return features_.size(); }
  const FeatureSpec& feature(size_t i) const;
  const std::vector<FeatureSpec>& features() const { return features_; }

  /// Index of the sensitive column, or -1 if the sensitive attribute is
  /// tracked outside the feature matrix.
  int sensitive_index() const { return sensitive_index_; }

  /// Index of the feature with the given name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Copy of this schema with feature `i` removed (sensitive_index is
  /// remapped, or set to -1 if `i` was the sensitive column).
  Schema WithoutFeature(size_t i) const;

  /// True if a recourse action may move feature `i` by `delta`.
  bool MoveAllowed(size_t i, double delta) const;

 private:
  std::vector<FeatureSpec> features_;
  int sensitive_index_ = -1;
};

}  // namespace xfair

#endif  // XFAIR_DATA_SCHEMA_H_
