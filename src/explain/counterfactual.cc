#include "src/explain/counterfactual.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/obs/obs.h"
#include "src/util/kdtree.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

/// Effective per-feature range used for normalization and step scaling.
double FeatureRange(const FeatureSpec& spec) {
  const double r = spec.upper - spec.lower;
  if (r <= 0.0 || r > 1e29) return 1.0;
  return r;
}

/// Per-feature ranges hoisted out of the per-candidate loops.
Vector FeatureRanges(const Schema& schema) {
  Vector ranges(schema.num_features());
  for (size_t c = 0; c < ranges.size(); ++c)
    ranges[c] = FeatureRange(schema.feature(c));
  return ranges;
}

/// Projects a candidate onto the feasible set: bounds, integrality of
/// binary/categorical features, and (optionally) actionability relative to
/// the factual x.
void Project(const Schema& schema, const Vector& x, bool actionable,
             Vector* cand) {
  for (size_t c = 0; c < cand->size(); ++c) {
    const FeatureSpec& spec = schema.feature(c);
    double v = (*cand)[c];
    if (actionable) {
      switch (spec.actionability) {
        case Actionability::kImmutable:
          v = x[c];
          break;
        case Actionability::kIncreaseOnly:
          v = std::max(v, x[c]);
          break;
        case Actionability::kDecreaseOnly:
          v = std::min(v, x[c]);
          break;
        case Actionability::kAny:
          break;
      }
    }
    v = std::min(std::max(v, spec.lower), spec.upper);
    if (spec.kind == FeatureKind::kBinary) {
      v = v >= 0.5 ? 1.0 : 0.0;
    } else if (spec.kind == FeatureKind::kCategorical) {
      v = std::round(v);
      v = std::min(std::max(v, 0.0), static_cast<double>(spec.arity - 1));
    }
    (*cand)[c] = v;
  }
}

/// Greedy sparsification: resets changed coordinates to their factual
/// value (smallest normalized change first) while the prediction stays at
/// the target class.
void Sparsify(const Model& model, const Schema& schema, const Vector& x,
              int target, Vector* cf) {
  std::vector<std::pair<double, size_t>> changes;
  for (size_t c = 0; c < x.size(); ++c) {
    const double delta =
        std::fabs((*cf)[c] - x[c]) / FeatureRange(schema.feature(c));
    if (delta > 1e-12) changes.emplace_back(delta, c);
  }
  std::sort(changes.begin(), changes.end());
  for (const auto& [delta, c] : changes) {
    const double saved = (*cf)[c];
    (*cf)[c] = x[c];
    if (model.Predict(*cf) != target) (*cf)[c] = saved;
  }
}

CounterfactualResult Finish(const Model& model, const Schema& schema,
                            const Vector& x, Vector cf, int target,
                            size_t iterations) {
  CounterfactualResult r;
  Sparsify(model, schema, x, target, &cf);
  r.valid = model.Predict(cf) == target;
  r.distance = NormalizedDistance(schema, x, cf);
  r.sparsity = NonZeroCount(Sub(cf, x), 1e-12);
  r.counterfactual = std::move(cf);
  r.iterations = iterations;
  return r;
}

CounterfactualResult Invalid(const Vector& x, size_t iterations) {
  CounterfactualResult r;
  r.counterfactual = x;
  r.valid = false;
  r.iterations = iterations;
  return r;
}

}  // namespace

double NormalizedDistance(const Schema& schema, const Vector& a,
                          const Vector& b) {
  XFAIR_CHECK(a.size() == b.size());
  XFAIR_CHECK(a.size() == schema.num_features());
  Vector inv(a.size());
  for (size_t c = 0; c < a.size(); ++c)
    inv[c] = 1.0 / FeatureRange(schema.feature(c));
  return std::sqrt(
      kernels::WeightedSquaredDistance(a.data(), b.data(), inv.data(),
                                       a.size()));
}

CounterfactualResult WachterCounterfactual(
    const GradientModel& model, const Schema& schema, const Vector& x,
    const CounterfactualConfig& config) {
  XFAIR_CHECK(x.size() == schema.num_features());
  XFAIR_SPAN("cf/wachter");
  const int target = config.target_class;
  if (model.Predict(x) == target) {
    CounterfactualResult r;
    r.counterfactual = x;
    r.valid = true;
    return r;
  }
  const double direction = target == 1 ? 1.0 : -1.0;
  Vector cf = x;
  size_t iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    if (model.Predict(cf) == target) break;
    Vector grad = model.ProbaGradient(cf);
    // Range-scale the step so features in large units move proportionally.
    double norm = 0.0;
    for (size_t c = 0; c < grad.size(); ++c) {
      grad[c] *= FeatureRange(schema.feature(c));
      norm = std::max(norm, std::fabs(grad[c]));
    }
    if (norm < 1e-12) return Invalid(x, iter);  // Flat region: stuck.
    for (size_t c = 0; c < cf.size(); ++c) {
      cf[c] += direction * config.step_size *
               FeatureRange(schema.feature(c)) * grad[c] / norm;
    }
    Project(schema, x, config.respect_actionability, &cf);
  }
  if (model.Predict(cf) != target) return Invalid(x, iter);

  // Shrink along the segment [x, cf]: binary search for the closest
  // feasible flip.
  double lo = 0.0, hi = 1.0;
  for (int step = 0; step < 20; ++step) {
    const double mid = 0.5 * (lo + hi);
    Vector cand(x.size());
    for (size_t c = 0; c < x.size(); ++c)
      cand[c] = x[c] + mid * (cf[c] - x[c]);
    Project(schema, x, config.respect_actionability, &cand);
    if (model.Predict(cand) == target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  Vector best(x.size());
  for (size_t c = 0; c < x.size(); ++c)
    best[c] = x[c] + hi * (cf[c] - x[c]);
  Project(schema, x, config.respect_actionability, &best);
  if (model.Predict(best) != target) best = cf;  // Rounding broke it: keep cf.
  return Finish(model, schema, x, std::move(best), target, iter);
}

CounterfactualResult GrowingSpheresCounterfactual(
    const Model& model, const Schema& schema, const Vector& x,
    const CounterfactualConfig& config, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(x.size() == schema.num_features());
  XFAIR_SPAN("cf/growing_spheres");
  const int target = config.target_class;
  if (model.Predict(x) == target) {
    CounterfactualResult r;
    r.counterfactual = x;
    r.valid = true;
    return r;
  }
  // Every candidate draws from a stream forked off one root, so the
  // sphere samples (and therefore the counterfactual) are identical for
  // every thread count; candidates within an iteration are scored in
  // parallel and the winner is the (distance, sample index) minimum.
  const Rng root = rng->Split();
  // Range scaling hoisted out of the sampling loops: one schema walk per
  // search instead of one virtual-ish accessor per sample per feature.
  const Vector ranges = FeatureRanges(schema);
  Vector inv_ranges(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c)
    inv_ranges[c] = 1.0 / ranges[c];
  double radius = config.initial_radius;
  size_t iter = 0;
  for (; iter < config.max_iterations; ++iter) {
    const size_t samples = config.samples_per_sphere;
    struct Best {
      Vector cand;
      double dist = 0.0;
      size_t sample = 0;
    };
    const std::vector<ChunkRange> chunks = DeterministicChunks(0, samples);
    std::vector<Best> bests(chunks.size());
    ParallelForChunks(0, samples, [&](const ChunkRange& chunk) {
      Best best;
      Vector dir(x.size());
      for (size_t s = chunk.begin; s < chunk.end; ++s) {
        Rng sample_rng = root.Fork(iter * samples + s);
        // Random direction on the unit sphere, scaled per-feature by
        // range: cand = x + (r / |dir|) * (range ⊙ dir).
        Vector cand = x;
        for (size_t c = 0; c < dir.size(); ++c) dir[c] = sample_rng.Normal();
        const double norm = std::sqrt(
            std::max(kernels::Dot(dir.data(), dir.data(), dir.size()),
                     1e-12));
        const double r = radius * (0.7 + 0.3 * sample_rng.Uniform());
        kernels::ScaledAxpy(r / norm, ranges.data(), dir.data(),
                            cand.data(), cand.size());
        Project(schema, x, config.respect_actionability, &cand);
        if (model.Predict(cand) == target) {
          const double dist = std::sqrt(kernels::WeightedSquaredDistance(
              x.data(), cand.data(), inv_ranges.data(), x.size()));
          if (best.cand.empty() || dist < best.dist) {
            best.cand = std::move(cand);
            best.dist = dist;
            best.sample = s;
          }
        }
      }
      bests[chunk.index] = std::move(best);
    });
    Vector best_cand;
    double best_dist = 0.0;
    size_t best_sample = 0;
    for (auto& b : bests) {
      if (b.cand.empty()) continue;
      if (best_cand.empty() || b.dist < best_dist ||
          (b.dist == best_dist && b.sample < best_sample)) {
        best_cand = std::move(b.cand);
        best_dist = b.dist;
        best_sample = b.sample;
      }
    }
    if (!best_cand.empty()) {
      XFAIR_COUNTER_ADD("cf/samples_evaluated", (iter + 1) * samples);
      XFAIR_HISTOGRAM_OBSERVE("cf/search_iterations", iter + 1);
      return Finish(model, schema, x, std::move(best_cand), target, iter);
    }
    radius *= config.radius_growth;
  }
  XFAIR_COUNTER_ADD("cf/samples_evaluated",
                    config.max_iterations * config.samples_per_sphere);
  XFAIR_HISTOGRAM_OBSERVE("cf/search_iterations", config.max_iterations);
  XFAIR_COUNTER_ADD("cf/search_failures", 1);
  return Invalid(x, iter);
}

GroupCounterfactuals CounterfactualsForNegatives(
    const Model& model, const Dataset& data,
    const CounterfactualConfig& config, Rng* rng) {
  XFAIR_SPAN("cf/group_search");
  GroupCounterfactuals out;
  // One batched pass finds the negatives; each then gets an independent
  // forked Rng stream keyed on its row index, so the per-instance
  // searches can run in parallel with thread-count-independent results.
  const std::vector<int> predictions = model.PredictBatch(data.x());
  for (size_t i = 0; i < data.size(); ++i) {
    if (predictions[i] != config.target_class) out.indices.push_back(i);
  }
  // Optional seeding: index the rows already predicted as the target
  // class in range-normalized coordinates (the units the sphere radius
  // lives in), so each search can skip spheres smaller than half the
  // distance to the nearest known flip.
  const size_t d = data.num_features();
  // Range normalization via the standardization kernel with zero means:
  // (x - 0) / range is exactly x / range.
  const Vector ranges = FeatureRanges(data.schema());
  const Vector zeros(d, 0.0);
  KdTree index;
  if (config.seed_radius_from_neighbors) {
    std::vector<size_t> targets;
    for (size_t i = 0; i < data.size(); ++i) {
      if (predictions[i] == config.target_class) targets.push_back(i);
    }
    if (!targets.empty()) {
      Matrix pts(targets.size(), d);
      for (size_t r = 0; r < targets.size(); ++r) {
        kernels::Standardize(data.x().RowPtr(targets[r]), zeros.data(),
                             ranges.data(), pts.RowPtr(r), d);
      }
      index = KdTree(pts);
    }
  }
  const Rng root = rng->Split();
  out.results.resize(out.indices.size());
  ParallelFor(0, out.indices.size(), [&](size_t k) {
    const size_t i = out.indices[k];
    Rng instance_rng = root.Fork(i);
    CounterfactualConfig cfg = config;
    if (!index.empty()) {
      Vector q(d);
      kernels::Standardize(data.x().RowPtr(i), zeros.data(), ranges.data(),
                           q.data(), d);
      const std::vector<size_t> nn = index.KNearest(q.data(), 1);
      const double dist = std::sqrt(index.SquaredDistance(q.data(), nn[0]));
      cfg.initial_radius = std::max(config.initial_radius, 0.5 * dist);
    }
    out.results[k] = GrowingSpheresCounterfactual(
        model, data.schema(), data.instance(i), cfg, &instance_rng);
  });
  return out;
}

}  // namespace xfair
