// Counterfactual explanation generation (paper §III, example-based; the
// engine behind most of §IV).
//
// Two generators matching the taxonomy's access tiers:
//  - WachterCounterfactual: gradient access; minimizes
//    (f(x') - target)^2 + lambda * ||x' - x||^2 with lambda annealed until
//    the class flips (Wachter et al. [15]).
//  - GrowingSpheresCounterfactual: black-box; samples on spheres of
//    growing radius until the class flips, then greedily sparsifies.
// Both respect Schema actionability (immutable features never move;
// directional features move one way) and value bounds, so the output is a
// *feasible* counterfactual in the sense of actionable recourse [78].

#ifndef XFAIR_EXPLAIN_COUNTERFACTUAL_H_
#define XFAIR_EXPLAIN_COUNTERFACTUAL_H_

#include "src/data/schema.h"
#include "src/model/model.h"
#include "src/util/rng.h"

namespace xfair {

/// Outcome of a counterfactual search.
struct CounterfactualResult {
  Vector counterfactual;  ///< The found point (== input when !valid).
  bool valid = false;     ///< True iff the predicted class flipped.
  double distance = 0.0;  ///< L2 distance from the factual input.
  size_t sparsity = 0;    ///< Number of features changed.
  size_t iterations = 0;  ///< Search iterations consumed.
};

/// Shared knobs for counterfactual generators.
struct CounterfactualConfig {
  /// Desired predicted class of the counterfactual (usually the favorable
  /// class 1 for an explainee mapped to 0).
  int target_class = 1;
  /// Enforce Schema actionability and bounds. When false only bounds
  /// apply (plain Wachter CFEs, not recourse).
  bool respect_actionability = true;
  size_t max_iterations = 300;
  /// Wachter: gradient step size.
  double step_size = 0.25;
  /// Growing spheres: initial radius and growth factor.
  double initial_radius = 0.1;
  double radius_growth = 1.3;
  /// Growing spheres: candidate points sampled per sphere.
  size_t samples_per_sphere = 40;
  /// CounterfactualsForNegatives only: seed each instance's initial
  /// radius at half its normalized distance to the nearest data row
  /// already predicted as the target class (KD-tree lookup), skipping the
  /// small spheres that cannot contain a class flip. Results may differ
  /// from the unseeded search (different spheres are sampled) but remain
  /// valid, feasible, and deterministic.
  bool seed_radius_from_neighbors = false;
};

/// Range-normalized L2 distance: each coordinate is divided by its schema
/// range (upper - lower, or 1 when unbounded) so "distance" is comparable
/// across features of different units. All CounterfactualResult distances
/// and the burden metrics use this.
double NormalizedDistance(const Schema& schema, const Vector& a,
                          const Vector& b);

/// Gradient-based counterfactual (needs the gradient tier).
CounterfactualResult WachterCounterfactual(const GradientModel& model,
                                           const Schema& schema,
                                           const Vector& x,
                                           const CounterfactualConfig& config);

/// Black-box counterfactual via growing spheres + greedy sparsification.
CounterfactualResult GrowingSpheresCounterfactual(
    const Model& model, const Schema& schema, const Vector& x,
    const CounterfactualConfig& config, Rng* rng);

/// Convenience: counterfactuals for every instance of `data` currently
/// predicted as 1 - target_class, using the growing-spheres generator.
/// Returns one result per such instance, along with the instance indices.
struct GroupCounterfactuals {
  std::vector<size_t> indices;
  std::vector<CounterfactualResult> results;
};
GroupCounterfactuals CounterfactualsForNegatives(
    const Model& model, const Dataset& data,
    const CounterfactualConfig& config, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_COUNTERFACTUAL_H_
