#include "src/explain/diverse.h"

#include <limits>

namespace xfair {

DiverseCounterfactuals GenerateDiverseCounterfactuals(
    const Model& model, const Schema& schema, const Vector& x,
    const DiverseCfOptions& options, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(options.k >= 1);
  DiverseCounterfactuals out;

  // Indices of features a recourse may move at all.
  std::vector<size_t> movable;
  for (size_t c = 0; c < schema.num_features(); ++c) {
    if (schema.feature(c).actionability != Actionability::kImmutable) {
      movable.push_back(c);
    }
  }

  while (out.results.size() < options.k) {
    bool accepted = false;
    for (size_t attempt = 0; attempt < options.attempts_per_slot;
         ++attempt) {
      // Route diversity: after the first counterfactual, randomly freeze
      // roughly half of the movable features so later searches are forced
      // through different recourse routes (the same idea as DiCE's
      // diversity term, realized as constraint resampling).
      Schema search_schema = schema;
      if (!out.results.empty() && movable.size() >= 2) {
        std::vector<FeatureSpec> specs = schema.features();
        size_t frozen = 0;
        for (size_t c : movable) {
          if (frozen + 1 < movable.size() && rng->Bernoulli(0.5)) {
            specs[c].actionability = Actionability::kImmutable;
            ++frozen;
          }
        }
        search_schema = Schema(std::move(specs), schema.sensitive_index());
      }
      CounterfactualConfig config = options.cf_config;
      config.initial_radius =
          options.cf_config.initial_radius * (1.0 + 0.5 * attempt);
      auto r = GrowingSpheresCounterfactual(model, search_schema, x,
                                            config, rng);
      if (!r.valid) continue;
      bool distinct = true;
      for (const auto& prev : out.results) {
        if (NormalizedDistance(schema, r.counterfactual,
                               prev.counterfactual) <
            options.min_separation) {
          distinct = false;
          break;
        }
      }
      if (!distinct) continue;
      out.results.push_back(std::move(r));
      accepted = true;
      break;
    }
    if (!accepted) break;  // No more diversity available near x.
  }

  if (out.results.size() >= 2) {
    double min_dist = std::numeric_limits<double>::max();
    for (size_t a = 0; a < out.results.size(); ++a) {
      for (size_t b = a + 1; b < out.results.size(); ++b) {
        min_dist = std::min(
            min_dist,
            NormalizedDistance(schema, out.results[a].counterfactual,
                               out.results[b].counterfactual));
      }
    }
    out.min_pairwise_distance = min_dist;
  }
  double cost = 0.0;
  for (const auto& r : out.results) cost += r.distance;
  out.mean_cost = out.results.empty()
                      ? 0.0
                      : cost / static_cast<double>(out.results.size());
  return out;
}

}  // namespace xfair
