// Diverse counterfactual explanations (paper §V: "methods with the
// capacity to generate diverse explanations ... empower users with a
// broader range of resources"). Generates k feasible counterfactuals per
// instance that are mutually distant in range-normalized space, so the
// user can pick the action set that suits them.

#ifndef XFAIR_EXPLAIN_DIVERSE_H_
#define XFAIR_EXPLAIN_DIVERSE_H_

#include "src/explain/counterfactual.h"

namespace xfair {

/// A set of mutually diverse counterfactuals for one instance.
struct DiverseCounterfactuals {
  std::vector<CounterfactualResult> results;  ///< Valid CFs found (<= k).
  /// Minimum pairwise normalized distance between the returned CFs; the
  /// diversity the set actually achieves.
  double min_pairwise_distance = 0.0;
  /// Mean distance from the factual input across the set.
  double mean_cost = 0.0;
};

/// Options for GenerateDiverseCounterfactuals.
struct DiverseCfOptions {
  size_t k = 3;  ///< Counterfactuals requested.
  /// Candidates closer than this (normalized) to an accepted CF are
  /// rejected, forcing spread.
  double min_separation = 0.15;
  /// Attempts per slot before giving up on more diversity.
  size_t attempts_per_slot = 8;
  CounterfactualConfig cf_config;
};

/// Generates up to k diverse feasible counterfactuals via repeated
/// growing-spheres searches with rejection of near-duplicates.
DiverseCounterfactuals GenerateDiverseCounterfactuals(
    const Model& model, const Schema& schema, const Vector& x,
    const DiverseCfOptions& options, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_DIVERSE_H_
