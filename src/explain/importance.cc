#include "src/explain/importance.h"

#include <algorithm>

#include "src/model/metrics.h"

namespace xfair {

Vector PermutationImportance(const Model& model, const Dataset& data,
                             size_t repeats, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(repeats > 0);
  const double baseline = Accuracy(model, data);
  const size_t d = data.num_features();
  Vector importance(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    double drop = 0.0;
    for (size_t rep = 0; rep < repeats; ++rep) {
      // Shuffle column c while keeping other columns and labels fixed.
      std::vector<size_t> perm(data.size());
      for (size_t i = 0; i < data.size(); ++i) perm[i] = i;
      rng->Shuffle(&perm);
      size_t correct = 0;
      for (size_t i = 0; i < data.size(); ++i) {
        Vector x = data.instance(i);
        x[c] = data.x().At(perm[i], c);
        correct += static_cast<size_t>(model.Predict(x) == data.label(i));
      }
      drop += baseline -
              static_cast<double>(correct) / static_cast<double>(data.size());
    }
    importance[c] = drop / static_cast<double>(repeats);
  }
  return importance;
}

PartialDependence ComputePartialDependence(const Model& model,
                                           const Dataset& data, size_t c,
                                           size_t grid) {
  XFAIR_CHECK(c < data.num_features());
  XFAIR_CHECK(grid >= 2);
  XFAIR_CHECK(data.size() > 0);
  Vector col = data.x().Col(c);
  const double lo = *std::min_element(col.begin(), col.end());
  const double hi = *std::max_element(col.begin(), col.end());
  PartialDependence pd;
  pd.grid_values.resize(grid);
  pd.mean_predictions.resize(grid);
  for (size_t g = 0; g < grid; ++g) {
    const double v =
        lo + (hi - lo) * static_cast<double>(g) /
                 static_cast<double>(grid - 1);
    pd.grid_values[g] = v;
    double acc = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      Vector x = data.instance(i);
      x[c] = v;
      acc += model.PredictProba(x);
    }
    pd.mean_predictions[g] = acc / static_cast<double>(data.size());
  }
  return pd;
}

}  // namespace xfair
