// Global feature-based explanations (paper §III): permutation feature
// importance [60] and partial dependence plots [61].

#ifndef XFAIR_EXPLAIN_IMPORTANCE_H_
#define XFAIR_EXPLAIN_IMPORTANCE_H_

#include "src/model/model.h"
#include "src/util/rng.h"

namespace xfair {

/// Permutation importance: drop in accuracy when feature c's column is
/// shuffled, averaged over `repeats` shuffles. One entry per feature;
/// larger = more important.
Vector PermutationImportance(const Model& model, const Dataset& data,
                             size_t repeats, Rng* rng);

/// Partial dependence of the model on feature c: mean prediction over the
/// data with x[c] clamped to each of `grid` equally spaced values between
/// the feature's observed min and max.
struct PartialDependence {
  Vector grid_values;       ///< The clamped values.
  Vector mean_predictions;  ///< Mean P(y=1) at each grid value.
};
PartialDependence ComputePartialDependence(const Model& model,
                                           const Dataset& data, size_t c,
                                           size_t grid = 20);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_IMPORTANCE_H_
