#include "src/explain/influence.h"

#include <cmath>

namespace xfair {
namespace {

/// Appends the bias coordinate: [x; 1].
Vector WithBias(const Vector& x) {
  Vector z = x;
  z.push_back(1.0);
  return z;
}

}  // namespace

InfluenceAnalyzer::InfluenceAnalyzer(const LogisticRegression* model,
                                     const Dataset* train,
                                     Matrix hessian_inverse)
    : model_(model),
      train_(train),
      hessian_inverse_(std::move(hessian_inverse)) {}

Result<InfluenceAnalyzer> InfluenceAnalyzer::Create(
    const LogisticRegression& model, const Dataset& train, double l2) {
  XFAIR_CHECK_MSG(model.fitted(), "model not fitted");
  XFAIR_CHECK(train.size() > 0);
  const size_t d = train.num_features();
  const size_t m = d + 1;
  Matrix hessian(m, m);
  for (size_t i = 0; i < train.size(); ++i) {
    const Vector z = WithBias(train.instance(i));
    const double p = model.PredictProba(train.instance(i));
    const double s = p * (1.0 - p);
    for (size_t a = 0; a < m; ++a)
      for (size_t b = 0; b < m; ++b)
        hessian.At(a, b) += s * z[a] * z[b];
  }
  const double n = static_cast<double>(train.size());
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) hessian.At(a, b) /= n;
    // L2 acts on weights only, plus a tiny floor on the bias entry.
    hessian.At(a, a) += (a < d ? l2 : 1e-9);
  }
  Result<Matrix> inv = Invert(hessian);
  if (!inv.ok()) return inv.status();
  return InfluenceAnalyzer(&model, &train, std::move(*inv));
}

Vector InfluenceAnalyzer::LossGradient(size_t i) const {
  XFAIR_CHECK(i < train_->size());
  const Vector x = train_->instance(i);
  const double err =
      model_->PredictProba(x) - static_cast<double>(train_->label(i));
  Vector g = WithBias(x);
  for (double& v : g) v *= err;
  return g;
}

double InfluenceAnalyzer::InfluenceOnPrediction(const Vector& x_test,
                                                size_t i) const {
  // Removing i shifts parameters by ~ H^{-1} g_i / n; the score on x_test
  // moves by sigma'(z_test) * [x_test; 1] . delta_theta.
  const Vector delta =
      hessian_inverse_.MatVec(LossGradient(i));
  const double p = model_->PredictProba(x_test);
  const Vector zt = WithBias(x_test);
  return p * (1.0 - p) * Dot(zt, delta) /
         static_cast<double>(train_->size());
}

Vector InfluenceAnalyzer::InfluenceOnParityGap(const Dataset& eval) const {
  const size_t m = train_->num_features() + 1;
  // Gradient of the score-space parity gap w.r.t. parameters.
  Vector v(m, 0.0);
  size_t n0 = 0, n1 = 0;
  for (size_t i = 0; i < eval.size(); ++i) {
    (eval.group(i) == 0 ? n0 : n1) += 1;
  }
  for (size_t i = 0; i < eval.size(); ++i) {
    const Vector x = eval.instance(i);
    const double p = model_->PredictProba(x);
    const double s = p * (1.0 - p);
    const Vector z = WithBias(x);
    const double sign =
        eval.group(i) == 0
            ? 1.0 / std::max<double>(1, static_cast<double>(n0))
            : -1.0 / std::max<double>(1, static_cast<double>(n1));
    for (size_t a = 0; a < m; ++a) v[a] += sign * s * z[a];
  }
  const Vector vh = hessian_inverse_.TransposeMatVec(v);
  Vector influence(train_->size());
  for (size_t i = 0; i < train_->size(); ++i) {
    influence[i] =
        Dot(vh, LossGradient(i)) / static_cast<double>(train_->size());
  }
  return influence;
}

}  // namespace xfair
