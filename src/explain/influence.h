// Influence functions for logistic regression (paper §III example-based,
// "influence-based" [63], [64]): which training instances most changed a
// prediction or a metric, estimated without retraining via the classic
// -grad_test^T H^{-1} grad_train approximation.

#ifndef XFAIR_EXPLAIN_INFLUENCE_H_
#define XFAIR_EXPLAIN_INFLUENCE_H_

#include "src/model/logistic_regression.h"

namespace xfair {

/// Precomputes the inverse Hessian of the training loss at the fitted
/// parameters; then answers influence queries cheaply.
class InfluenceAnalyzer {
 public:
  /// `model` must already be fitted on `train`. `l2` must match the
  /// training regularization (it keeps the Hessian well conditioned).
  /// Returns kFailedPrecondition if the Hessian is singular.
  static Result<InfluenceAnalyzer> Create(const LogisticRegression& model,
                                          const Dataset& train,
                                          double l2 = 1e-3);

  /// Approximate change in the model's score on `x_test` if training
  /// instance `i` were removed (positive = removal raises the score).
  double InfluenceOnPrediction(const Vector& x_test, size_t i) const;

  /// Influence of each training instance on the mean score difference
  /// between the two groups of `eval` (the parity gap in score space):
  /// positive = removing the instance widens the gap. This is the
  /// primitive that [90]-style training-attribution methods rank by.
  Vector InfluenceOnParityGap(const Dataset& eval) const;

 private:
  InfluenceAnalyzer(const LogisticRegression* model, const Dataset* train,
                    Matrix hessian_inverse);

  /// Per-instance loss gradient w.r.t. [w, b] at the fitted parameters.
  Vector LossGradient(size_t i) const;

  const LogisticRegression* model_;
  const Dataset* train_;
  Matrix hessian_inverse_;  // (d+1) x (d+1), includes the bias row.
};

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_INFLUENCE_H_
