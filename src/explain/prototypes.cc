#include "src/explain/prototypes.h"

#include <limits>

#include "src/util/check.h"

namespace xfair {

std::vector<size_t> ClassPrototypes(const Dataset& data, int label,
                                    size_t k, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  std::vector<size_t> members;
  for (size_t i = 0; i < data.size(); ++i)
    if (data.label(i) == label) members.push_back(i);
  XFAIR_CHECK_MSG(!members.empty(), "no instances with requested label");
  k = std::min(k, members.size());

  // Initialize medoids with a random subset; PAM-style improvement.
  auto init = rng->SampleWithoutReplacement(members.size(), k);
  std::vector<size_t> medoids(k);
  for (size_t m = 0; m < k; ++m) medoids[m] = members[init[m]];

  auto total_cost = [&](const std::vector<size_t>& meds) {
    double cost = 0.0;
    for (size_t i : members) {
      double best = std::numeric_limits<double>::max();
      for (size_t m : meds)
        best = std::min(best, Norm2(Sub(data.instance(i),
                                        data.instance(m))));
      cost += best;
    }
    return cost;
  };

  double cost = total_cost(medoids);
  bool improved = true;
  size_t rounds = 0;
  while (improved && rounds < 10) {
    improved = false;
    ++rounds;
    for (size_t m = 0; m < k; ++m) {
      for (size_t cand : members) {
        bool is_medoid = false;
        for (size_t mm : medoids) is_medoid |= (mm == cand);
        if (is_medoid) continue;
        std::vector<size_t> trial = medoids;
        trial[m] = cand;
        const double trial_cost = total_cost(trial);
        if (trial_cost + 1e-12 < cost) {
          medoids = std::move(trial);
          cost = trial_cost;
          improved = true;
        }
      }
    }
  }
  return medoids;
}

NeighborExplanation ExplainByNeighbors(const Dataset& data, const Vector& x,
                                       int predicted_label) {
  XFAIR_CHECK(data.size() > 0);
  NeighborExplanation out{};
  double best_same = std::numeric_limits<double>::max();
  double best_other = std::numeric_limits<double>::max();
  bool found_same = false, found_other = false;
  for (size_t i = 0; i < data.size(); ++i) {
    const double dist = Norm2(Sub(data.instance(i), x));
    if (data.label(i) == predicted_label) {
      if (dist < best_same) {
        best_same = dist;
        out.same_label_index = i;
        found_same = true;
      }
    } else if (dist < best_other) {
      best_other = dist;
      out.other_label_index = i;
      found_other = true;
    }
  }
  XFAIR_CHECK_MSG(found_same && found_other,
                  "data must contain both labels");
  out.same_label_distance = best_same;
  out.other_label_distance = best_other;
  return out;
}

}  // namespace xfair
