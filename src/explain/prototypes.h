// Example-based explanations (paper §III): class prototypes via k-medoids
// and nearest-neighbor justifications.

#ifndef XFAIR_EXPLAIN_PROTOTYPES_H_
#define XFAIR_EXPLAIN_PROTOTYPES_H_

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace xfair {

/// k representative training instances (medoids) of class `label`,
/// selected by PAM-style alternation. Returns dataset row indices.
std::vector<size_t> ClassPrototypes(const Dataset& data, int label,
                                    size_t k, Rng* rng);

/// Nearest-neighbor explanation of a prediction: the closest training
/// instance with the same predicted label (a "precedent") and the closest
/// with the opposite label (the contrast).
struct NeighborExplanation {
  size_t same_label_index;
  size_t other_label_index;
  double same_label_distance;
  double other_label_distance;
};

/// Requires `data` to contain at least one instance of each label.
NeighborExplanation ExplainByNeighbors(const Dataset& data, const Vector& x,
                                       int predicted_label);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_PROTOTYPES_H_
