#include "src/explain/rules.h"

#include <algorithm>
#include <map>

#include "src/util/table.h"

namespace xfair {

bool Condition::Matches(const Vector& x) const {
  XFAIR_CHECK(feature < x.size());
  return op == Op::kLe ? x[feature] <= threshold : x[feature] > threshold;
}

std::string Condition::ToString(const Schema& schema) const {
  return schema.feature(feature).name + (op == Op::kLe ? " <= " : " > ") +
         FormatDouble(threshold, 2);
}

bool Rule::Matches(const Vector& x) const {
  for (const auto& c : conditions)
    if (!c.Matches(x)) return false;
  return true;
}

std::string Rule::ToString(const Schema& schema) const {
  if (conditions.empty()) return "TRUE => " + FormatDouble(prediction, 2);
  std::string out;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conditions[i].ToString(schema);
  }
  out += " => " + FormatDouble(prediction, 2);
  return out;
}

std::vector<Rule> RulesFromTree(const DecisionTree& tree) {
  XFAIR_CHECK_MSG(tree.fitted(), "tree not fitted");
  const auto& nodes = tree.nodes();
  const double root_weight = std::max(nodes[0].weight, 1e-12);
  std::vector<Rule> rules;

  // DFS carrying the tightest bound per (feature, op).
  struct Frame {
    int node;
    std::map<std::pair<size_t, int>, double> bounds;
  };
  std::vector<Frame> stack = {{0, {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const TreeNode& n = nodes[static_cast<size_t>(f.node)];
    if (n.feature < 0) {
      Rule rule;
      for (const auto& [key, threshold] : f.bounds) {
        rule.conditions.push_back(
            {key.first,
             key.second == 0 ? Condition::Op::kLe : Condition::Op::kGt,
             threshold});
      }
      rule.prediction = n.proba;
      rule.support = n.weight / root_weight;
      rules.push_back(std::move(rule));
      continue;
    }
    const size_t feat = static_cast<size_t>(n.feature);
    // Left: feature <= threshold — keep the smallest upper bound.
    Frame left = f;
    auto [it_l, inserted_l] =
        left.bounds.try_emplace({feat, 0}, n.threshold);
    if (!inserted_l) it_l->second = std::min(it_l->second, n.threshold);
    left.node = n.left;
    stack.push_back(std::move(left));
    // Right: feature > threshold — keep the largest lower bound.
    Frame right = std::move(f);
    auto [it_r, inserted_r] =
        right.bounds.try_emplace({feat, 1}, n.threshold);
    if (!inserted_r) it_r->second = std::max(it_r->second, n.threshold);
    right.node = n.right;
    stack.push_back(std::move(right));
  }
  return rules;
}

double RuleCoverage(const Rule& rule, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  size_t matched = 0;
  for (size_t i = 0; i < data.size(); ++i)
    matched += static_cast<size_t>(rule.Matches(data.instance(i)));
  return static_cast<double>(matched) / static_cast<double>(data.size());
}

}  // namespace xfair
