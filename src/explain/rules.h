// Rule-based explanations (paper §III approximation-based): decision rules
// extracted from tree paths. Shared vocabulary for the rule-producing
// fairness explainers (FACTS subgroups, AReS recourse sets, Gopher
// patterns).

#ifndef XFAIR_EXPLAIN_RULES_H_
#define XFAIR_EXPLAIN_RULES_H_

#include <string>

#include "src/model/decision_tree.h"

namespace xfair {

/// One conjunct: feature `op` threshold.
struct Condition {
  size_t feature;
  enum class Op { kLe, kGt } op;
  double threshold;

  /// True iff `x` satisfies the condition.
  bool Matches(const Vector& x) const;
  /// e.g. "income <= 4.25".
  std::string ToString(const Schema& schema) const;
};

/// A conjunction of conditions with an associated prediction.
struct Rule {
  std::vector<Condition> conditions;
  double prediction = 0.0;  ///< Leaf P(y=1).
  double support = 0.0;     ///< Fraction of training weight in the leaf.

  bool Matches(const Vector& x) const;
  std::string ToString(const Schema& schema) const;
};

/// Extracts one rule per leaf of a fitted tree, with redundant conditions
/// on the same (feature, op) merged into the tightest bound.
std::vector<Rule> RulesFromTree(const DecisionTree& tree);

/// Fraction of `data` rows matched by `rule` (coverage).
double RuleCoverage(const Rule& rule, const Dataset& data);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_RULES_H_
