#include "src/explain/shap.h"

#include <cmath>

#include "src/explain/tree_shap.h"
#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

/// Packs a coalition mask into 64-bit words (the cache key).
std::vector<uint64_t> PackMask(const std::vector<bool>& mask) {
  std::vector<uint64_t> key((mask.size() + 63) / 64, 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) key[i / 64] |= uint64_t{1} << (i % 64);
  }
  return key;
}

}  // namespace

size_t CoalitionCache::KeyHash::operator()(
    const std::vector<uint64_t>& key) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t word : key) {
    h ^= word;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

CoalitionCache::CoalitionCache(CoalitionValue fn, size_t players)
    : fn_(std::move(fn)), players_(players) {
  XFAIR_CHECK(fn_ != nullptr);
  XFAIR_CHECK(players_ > 0);
}

double CoalitionCache::operator()(const std::vector<bool>& mask) {
  XFAIR_CHECK(mask.size() == players_);
  const std::vector<uint64_t> key = PackMask(mask);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      XFAIR_COUNTER_ADD("shap/coalition_cache_hit", 1);
      return it->second;
    }
  }
  XFAIR_COUNTER_ADD("shap/coalition_cache_miss", 1);
  // Compute outside the lock so expensive value functions (retraining a
  // coalition model, scoring a background batch) run concurrently. A
  // racing duplicate computes the identical value, so first-write-wins
  // keeps the cache deterministic.
  const double value = fn_(mask);
  std::lock_guard<std::mutex> guard(mutex_);
  ++evaluations_;
  cache_.emplace(key, value);
  return cache_.find(key)->second;
}

size_t CoalitionCache::unique_coalitions() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return cache_.size();
}

size_t CoalitionCache::evaluations() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return evaluations_;
}

CoalitionValue CoalitionCache::AsValue() {
  return [this](const std::vector<bool>& mask) { return (*this)(mask); };
}

Vector ExactShapley(const CoalitionValue& value, size_t d) {
  XFAIR_CHECK(d > 0);
  XFAIR_CHECK_MSG(d <= 20, "exact Shapley limited to 20 players");
  XFAIR_SPAN("shap/exact");
  const size_t num_subsets = size_t{1} << d;
  XFAIR_COUNTER_ADD("shap/coalitions_evaluated", num_subsets);

  // Evaluate every coalition once, fanned out across the pool. Each
  // subset writes its own slot, so the fill order is irrelevant.
  Vector v(num_subsets);
  ParallelForChunks(0, num_subsets, [&](const ChunkRange& chunk) {
    std::vector<bool> mask(d);
    for (size_t s = chunk.begin; s < chunk.end; ++s) {
      for (size_t i = 0; i < d; ++i) mask[i] = (s >> i) & 1;
      v[s] = value(mask);
    }
  });

  // Precompute weights w[k] = k! (d-k-1)! / d! for |S| = k.
  Vector log_fact(d + 1, 0.0);
  for (size_t k = 1; k <= d; ++k)
    log_fact[k] = log_fact[k - 1] + std::log(static_cast<double>(k));
  Vector weight(d);
  for (size_t k = 0; k < d; ++k) {
    weight[k] =
        std::exp(log_fact[k] + log_fact[d - k - 1] - log_fact[d]);
  }

  // One feature per task; each accumulates serially over subsets in
  // ascending order — the same order for every thread count.
  Vector phi(d, 0.0);
  ParallelFor(0, d, [&](size_t i) {
    double acc = 0.0;
    for (size_t s = 0; s < num_subsets; ++s) {
      if ((s >> i) & 1) continue;  // i must be outside S.
      const size_t k = static_cast<size_t>(__builtin_popcountll(s));
      acc += weight[k] * (v[s | (size_t{1} << i)] - v[s]);
    }
    phi[i] = acc;
  });
  return phi;
}

Vector SampledShapley(const CoalitionValue& value, size_t d,
                      size_t permutations, Rng* rng,
                      SampledShapleyInfo* info) {
  XFAIR_CHECK(d > 0 && permutations > 0);
  XFAIR_CHECK(rng != nullptr);
  XFAIR_SPAN("shap/sampled");
  XFAIR_COUNTER_ADD("shap/permutations", permutations);
  CoalitionCache cache(value, d);

  // Antithetic pairs: pair p walks permutation 2p forward and — if the
  // budget allows — its reverse as permutation 2p+1. Each pair owns a
  // forked Rng stream, so the permutations drawn do not depend on the
  // thread count or on chunk boundaries.
  const Rng root = rng->Split();
  const size_t pairs = (permutations + 1) / 2;

  Vector phi = ParallelReduceVector(
      0, pairs, d, [&](const ChunkRange& chunk, Vector* acc) {
        std::vector<size_t> perm(d);
        std::vector<bool> mask(d);
        auto walk = [&](const std::vector<size_t>& order) {
          std::fill(mask.begin(), mask.end(), false);
          double prev = cache(mask);
          for (size_t i : order) {
            mask[i] = true;
            const double cur = cache(mask);
            (*acc)[i] += cur - prev;
            prev = cur;
          }
        };
        for (size_t p = chunk.begin; p < chunk.end; ++p) {
          Rng pair_rng = root.Fork(p);
          for (size_t i = 0; i < d; ++i) perm[i] = i;
          pair_rng.Shuffle(&perm);
          walk(perm);
          if (2 * p + 1 < permutations) {
            const std::vector<size_t> rev(perm.rbegin(), perm.rend());
            walk(rev);
          }
        }
      });

  for (double& x : phi) x /= static_cast<double>(permutations);
  if (info != nullptr) {
    info->permutations_used = permutations;
    info->unique_coalitions = cache.unique_coalitions();
  }
  return phi;
}

namespace {

/// The generic masking-game explanation of one instance (the non-tree
/// path of ShapExplainInstance, shared with the batch entry point).
Vector GenericMaskingShap(const Model& model, const Dataset& background,
                          const Vector& x, size_t permutations, Rng* rng) {
  const size_t d = x.size();
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    // One batched prediction per coalition: background rows with the
    // coalition's features overwritten by x. The bit-packed mask is
    // widened to a byte mask once per coalition so the per-row assembly
    // is the branch-free MaskedBlend kernel.
    std::vector<uint8_t> keep(d);
    for (size_t c = 0; c < d; ++c) keep[c] = mask[c] ? 1 : 0;
    Matrix z(background.size(), d);
    for (size_t b = 0; b < background.size(); ++b) {
      kernels::MaskedBlend(x.data(), background.x().RowPtr(b), keep.data(),
                           z.RowPtr(b), d);
    }
    const Vector proba = model.PredictProbaBatch(z);
    double acc = 0.0;
    for (double p : proba) acc += p;
    return acc / static_cast<double>(background.size());
  };
  if (d <= 10) return ExactShapley(value, d);
  return SampledShapley(value, d, permutations, rng);
}

}  // namespace

Vector ShapExplainInstance(const Model& model, const Dataset& background,
                           const Vector& x, size_t permutations, Rng* rng) {
  XFAIR_CHECK(background.size() > 0);
  XFAIR_CHECK(x.size() == background.num_features());
  XFAIR_SPAN("shap/explain_instance");
  // Tree models admit an exact polynomial solution of this very masking
  // game — route them to interventional TreeSHAP (same semantics, exact
  // at any dimensionality, no coalition enumeration or sampling).
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    return InterventionalTreeShap(*tree, background.x(), x).phi;
  }
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return InterventionalTreeShap(*forest, background.x(), x).phi;
  }
  return GenericMaskingShap(model, background, x, permutations, rng);
}

Matrix ShapExplainBatch(const Model& model, const Dataset& background,
                        const Matrix& xs, size_t permutations, Rng* rng) {
  XFAIR_CHECK(background.size() > 0);
  XFAIR_CHECK(xs.cols() == background.num_features());
  XFAIR_SPAN("shap/explain_batch");
  XFAIR_COUNTER_ADD("shap/batch_instances", xs.rows());
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    return InterventionalTreeShapBatch(*tree, background.x(), xs).phi;
  }
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return InterventionalTreeShapBatch(*forest, background.x(), xs).phi;
  }
  // Generic path: one engine run per row, each on its own forked stream
  // so attributions do not depend on thread count or chunk boundaries.
  // Nested engine parallelism runs inline inside the per-row workers.
  XFAIR_CHECK(rng != nullptr);
  const size_t d = xs.cols();
  Matrix phi(xs.rows(), d);
  const Rng root = rng->Split();
  ParallelForChunks(0, xs.rows(), [&](const ChunkRange& chunk) {
    for (size_t i = chunk.begin; i < chunk.end; ++i) {
      Rng row_rng = root.Fork(i);
      const Vector row_phi = GenericMaskingShap(model, background, xs.Row(i),
                                                permutations, &row_rng);
      double* out = phi.RowPtr(i);
      for (size_t c = 0; c < d; ++c) out[c] = row_phi[c];
    }
  });
  return phi;
}

}  // namespace xfair
