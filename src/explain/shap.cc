#include "src/explain/shap.h"

#include <cmath>

namespace xfair {

Vector ExactShapley(const CoalitionValue& value, size_t d) {
  XFAIR_CHECK(d > 0);
  XFAIR_CHECK_MSG(d <= 20, "exact Shapley limited to 20 players");
  const size_t num_subsets = size_t{1} << d;

  // Evaluate every coalition once.
  Vector v(num_subsets);
  std::vector<bool> mask(d);
  for (size_t s = 0; s < num_subsets; ++s) {
    for (size_t i = 0; i < d; ++i) mask[i] = (s >> i) & 1;
    v[s] = value(mask);
  }

  // Precompute weights w[k] = k! (d-k-1)! / d! for |S| = k.
  Vector log_fact(d + 1, 0.0);
  for (size_t k = 1; k <= d; ++k)
    log_fact[k] = log_fact[k - 1] + std::log(static_cast<double>(k));
  Vector weight(d);
  for (size_t k = 0; k < d; ++k) {
    weight[k] =
        std::exp(log_fact[k] + log_fact[d - k - 1] - log_fact[d]);
  }

  Vector phi(d, 0.0);
  for (size_t s = 0; s < num_subsets; ++s) {
    const size_t k = static_cast<size_t>(__builtin_popcountll(s));
    for (size_t i = 0; i < d; ++i) {
      if ((s >> i) & 1) continue;  // i must be outside S.
      phi[i] += weight[k] * (v[s | (size_t{1} << i)] - v[s]);
    }
  }
  return phi;
}

Vector SampledShapley(const CoalitionValue& value, size_t d,
                      size_t permutations, Rng* rng) {
  XFAIR_CHECK(d > 0 && permutations > 0);
  XFAIR_CHECK(rng != nullptr);
  Vector phi(d, 0.0);
  std::vector<size_t> perm(d);
  for (size_t i = 0; i < d; ++i) perm[i] = i;
  size_t total = 0;

  auto accumulate = [&](const std::vector<size_t>& order) {
    std::vector<bool> mask(d, false);
    double prev = value(mask);
    for (size_t i : order) {
      mask[i] = true;
      const double cur = value(mask);
      phi[i] += cur - prev;
      prev = cur;
    }
    ++total;
  };

  for (size_t p = 0; p < (permutations + 1) / 2; ++p) {
    rng->Shuffle(&perm);
    accumulate(perm);
    // Antithetic pass: the reversed permutation.
    std::vector<size_t> rev(perm.rbegin(), perm.rend());
    accumulate(rev);
  }
  for (double& x : phi) x /= static_cast<double>(total);
  return phi;
}

Vector ShapExplainInstance(const Model& model, const Dataset& background,
                           const Vector& x, size_t permutations, Rng* rng) {
  XFAIR_CHECK(background.size() > 0);
  XFAIR_CHECK(x.size() == background.num_features());
  const size_t d = x.size();
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (size_t b = 0; b < background.size(); ++b) {
      Vector z = background.instance(b);
      for (size_t c = 0; c < d; ++c)
        if (mask[c]) z[c] = x[c];
      acc += model.PredictProba(z);
    }
    return acc / static_cast<double>(background.size());
  };
  if (d <= 10) return ExactShapley(value, d);
  return SampledShapley(value, d, permutations, rng);
}

}  // namespace xfair
