// Shapley-value attribution (paper §III feature-based; §IV-B uses the same
// machinery with a *fairness* value function instead of an accuracy one).
//
// The implementation is deliberately split: a generic Shapley engine over
// an arbitrary coalition value function (exact enumeration and permutation
// sampling), plus the standard model-output instance explainer built on
// top. The fairness explainers in src/unfair/ reuse the engine with their
// own value functions, exactly as [81] replaces f_S with a fairness value.

#ifndef XFAIR_EXPLAIN_SHAP_H_
#define XFAIR_EXPLAIN_SHAP_H_

#include <functional>

#include "src/model/model.h"
#include "src/util/rng.h"

namespace xfair {

/// Value of a coalition: the characteristic function v(S). The mask has
/// one entry per player (feature); true = in the coalition.
using CoalitionValue = std::function<double(const std::vector<bool>&)>;

/// Exact Shapley values by full subset enumeration. Cost O(2^d * d);
/// requires d <= 20. Each subset's value is evaluated exactly once.
Vector ExactShapley(const CoalitionValue& value, size_t d);

/// Monte Carlo Shapley via permutation sampling with antithetic pairs
/// (each sampled permutation is also used reversed, halving variance).
/// Cost O(permutations * d) value evaluations.
Vector SampledShapley(const CoalitionValue& value, size_t d,
                      size_t permutations, Rng* rng);

/// Standard SHAP-style instance explanation: the value of coalition S is
/// the mean model output with features in S fixed to x and the rest taken
/// from background rows. Returns one attribution per feature; they sum to
/// f(x) - E_background[f] (efficiency property).
Vector ShapExplainInstance(const Model& model, const Dataset& background,
                           const Vector& x, size_t permutations, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_SHAP_H_
