// Shapley-value attribution (paper §III feature-based; §IV-B uses the same
// machinery with a *fairness* value function instead of an accuracy one).
//
// The implementation is deliberately split: a generic Shapley engine over
// an arbitrary coalition value function (exact enumeration and permutation
// sampling), plus the standard model-output instance explainer built on
// top. The fairness explainers in src/unfair/ reuse the engine with their
// own value functions, exactly as [81] replaces f_S with a fairness value.
//
// Both engines run on the deterministic parallel runtime (src/util/
// parallel.h): coalition evaluations fan out across the thread pool, each
// sampled permutation draws from its own forked Rng stream, and partial
// attributions are combined in a fixed pairwise tree — so attributions
// are bit-identical for every XFAIR_THREADS setting. A shared
// CoalitionCache memoizes the (often expensive) value function on the
// coalition bitmask, so no coalition is ever evaluated twice per run.

#ifndef XFAIR_EXPLAIN_SHAP_H_
#define XFAIR_EXPLAIN_SHAP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "src/model/model.h"
#include "src/util/rng.h"

namespace xfair {

/// Value of a coalition: the characteristic function v(S). The mask has
/// one entry per player (feature); true = in the coalition. Value
/// functions handed to the engines must be pure (same mask -> same value)
/// and safe to call concurrently.
using CoalitionValue = std::function<double(const std::vector<bool>&)>;

/// Memoizes a CoalitionValue on the coalition's bitmask. Thread-safe:
/// lookups take a mutex, evaluation happens outside it (two threads
/// racing on the same new mask both compute the same value, so results
/// stay deterministic). Wrap a value function once and share the wrapper
/// across engine calls — e.g. exact enumeration followed by v(empty) /
/// v(full) queries — and nothing is recomputed.
class CoalitionCache {
 public:
  /// `fn` is the underlying value function over `players` players.
  CoalitionCache(CoalitionValue fn, size_t players);

  /// Cached v(mask). mask.size() must equal players().
  double operator()(const std::vector<bool>& mask);

  size_t players() const { return players_; }
  /// Distinct coalitions evaluated so far.
  size_t unique_coalitions() const;
  /// Underlying value-function invocations (== unique_coalitions except
  /// for benign compute races under parallel execution).
  size_t evaluations() const;

  /// A CoalitionValue view of this cache (borrows; cache must outlive it).
  CoalitionValue AsValue();

 private:
  struct KeyHash {
    size_t operator()(const std::vector<uint64_t>& key) const;
  };

  CoalitionValue fn_;
  size_t players_;
  mutable std::mutex mutex_;
  std::unordered_map<std::vector<uint64_t>, double, KeyHash> cache_;
  size_t evaluations_ = 0;
};

/// Accounting for one SampledShapley run.
struct SampledShapleyInfo {
  /// Permutations actually walked — always equal to the `permutations`
  /// argument (the antithetic pairing drops its mirror pass when the
  /// budget is odd rather than overshooting by one).
  size_t permutations_used = 0;
  /// Distinct coalitions the value function was consulted for.
  size_t unique_coalitions = 0;
};

/// Exact Shapley values by full subset enumeration. Cost O(2^d * d);
/// requires d <= 20. Each subset's value is evaluated exactly once, in
/// parallel across subsets.
Vector ExactShapley(const CoalitionValue& value, size_t d);

/// Monte Carlo Shapley via permutation sampling with antithetic pairs
/// (each sampled permutation is also used reversed, halving variance; an
/// odd budget runs a forward-only final pass so exactly `permutations`
/// permutations are walked). Cost O(permutations * d) coalition lookups,
/// memoized through a CoalitionCache. Consumes one value from `rng` and
/// forks an independent stream per antithetic pair, so results are
/// bit-identical for every thread count.
Vector SampledShapley(const CoalitionValue& value, size_t d,
                      size_t permutations, Rng* rng,
                      SampledShapleyInfo* info = nullptr);

/// Standard SHAP-style instance explanation: the value of coalition S is
/// the mean model output with features in S fixed to x and the rest taken
/// from background rows (evaluated through PredictProbaBatch). Returns
/// one attribution per feature; they sum to f(x) - E_background[f]
/// (efficiency property). Decision trees and random forests dispatch to
/// the exact polynomial-time interventional TreeSHAP of the same game
/// (src/explain/tree_shap.h); other models enumerate coalitions exactly
/// for d <= 10 and fall back to permutation sampling above that.
Vector ShapExplainInstance(const Model& model, const Dataset& background,
                           const Vector& x, size_t permutations, Rng* rng);

/// Batched instance explanation: row i of the result explains row i of
/// `xs` against the same background. Trees and forests route through the
/// batched interventional TreeSHAP engine (bit-identical to calling
/// ShapExplainInstance per row, at any thread count). Other models run
/// the generic engine once per row in parallel, each row on its own
/// stream forked from `rng` — deterministic for a fixed thread count and
/// Rng state, and identical across thread counts, though the sampled
/// (d > 10) path draws different permutations than a manual per-row
/// ShapExplainInstance loop would.
Matrix ShapExplainBatch(const Model& model, const Dataset& background,
                        const Matrix& xs, size_t permutations, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_SHAP_H_
