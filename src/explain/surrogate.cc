#include "src/explain/surrogate.h"

#include <cmath>

#include "src/util/stats.h"

namespace xfair {

LocalSurrogate FitLocalSurrogate(const Model& model, const Dataset& data,
                                 const Vector& x,
                                 const LocalSurrogateOptions& options,
                                 Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(x.size() == data.num_features());
  XFAIR_CHECK(options.num_samples >= x.size() + 2);
  const size_t d = x.size();
  const size_t n = options.num_samples;

  // Per-feature perturbation scales from the data distribution.
  Vector scales(d);
  for (size_t c = 0; c < d; ++c) {
    const double sd = Stddev(data.x().Col(c));
    scales[c] = (sd > 1e-12 ? sd : 1.0) * options.perturbation_scale;
  }

  // Sample perturbations, query the black box, compute kernel weights.
  Matrix z(n, d);
  Vector y(n), w(n);
  for (size_t i = 0; i < n; ++i) {
    Vector zi = x;
    double dist2 = 0.0;
    for (size_t c = 0; c < d; ++c) {
      const double delta = rng->Normal(0.0, scales[c]);
      zi[c] += delta;
      const double nd = delta / std::max(scales[c], 1e-12);
      dist2 += nd * nd;
    }
    z.SetRow(i, zi);
    y[i] = model.PredictProba(zi);
    w[i] = std::exp(-dist2 /
                    (2.0 * options.kernel_width * options.kernel_width *
                     static_cast<double>(d)));
  }

  // Weighted ridge regression with intercept: solve (A^T W A + rI) b =
  // A^T W y where A = [1 | z - x] (centering at x makes the intercept the
  // local prediction).
  Matrix xtx(d + 1, d + 1);
  Vector xty(d + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    Vector row(d + 1);
    row[0] = 1.0;
    for (size_t c = 0; c < d; ++c) row[c + 1] = z.At(i, c) - x[c];
    for (size_t a = 0; a <= d; ++a) {
      xty[a] += w[i] * row[a] * y[i];
      for (size_t b = 0; b <= d; ++b)
        xtx.At(a, b) += w[i] * row[a] * row[b];
    }
  }
  for (size_t a = 1; a <= d; ++a) xtx.At(a, a) += options.ridge;
  xtx.At(0, 0) += 1e-9;
  Result<Vector> beta = SolveLinearSystem(std::move(xtx), std::move(xty));
  LocalSurrogate out;
  out.coefficients.assign(d, 0.0);
  if (!beta.ok()) return out;  // Degenerate sample: all-zero explanation.
  out.intercept = (*beta)[0];
  for (size_t c = 0; c < d; ++c) out.coefficients[c] = (*beta)[c + 1];

  // Weighted R^2 fidelity.
  double wsum = 0.0, ymean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    wsum += w[i];
    ymean += w[i] * y[i];
  }
  ymean /= std::max(wsum, 1e-12);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pred = out.intercept;
    for (size_t c = 0; c < d; ++c)
      pred += out.coefficients[c] * (z.At(i, c) - x[c]);
    ss_res += w[i] * (y[i] - pred) * (y[i] - pred);
    ss_tot += w[i] * (y[i] - ymean) * (y[i] - ymean);
  }
  out.fidelity = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

GlobalSurrogate FitGlobalSurrogate(const Model& model, const Dataset& data,
                                   size_t max_depth) {
  // Relabel the data with the black-box's own predictions and fit a tree.
  std::vector<int> pseudo = model.PredictAll(data);
  Dataset distilled(data.schema(), data.x(), pseudo, data.groups());
  GlobalSurrogate out;
  DecisionTreeOptions opts;
  opts.max_depth = max_depth;
  opts.min_samples_leaf = 5;
  XFAIR_CHECK(out.tree.Fit(distilled, opts).ok());
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    agree += static_cast<size_t>(out.tree.Predict(data.instance(i)) ==
                                 pseudo[i]);
  }
  out.fidelity =
      static_cast<double>(agree) / static_cast<double>(data.size());
  return out;
}

}  // namespace xfair
