// Approximation-based explanations (paper §III): a LIME-style local linear
// surrogate fit around the explainee, and a global decision-tree surrogate
// distilled from black-box predictions, each with a fidelity score.

#ifndef XFAIR_EXPLAIN_SURROGATE_H_
#define XFAIR_EXPLAIN_SURROGATE_H_

#include "src/model/decision_tree.h"
#include "src/model/model.h"
#include "src/util/rng.h"

namespace xfair {

/// A fitted local linear surrogate g(z) = intercept + coeffs . z
/// approximating the black-box near one instance.
struct LocalSurrogate {
  Vector coefficients;  ///< One per feature; the local explanation.
  double intercept = 0.0;
  /// Weighted R^2 of the surrogate on its own perturbation sample — how
  /// faithful the explanation is locally.
  double fidelity = 0.0;
};

/// Options for FitLocalSurrogate.
struct LocalSurrogateOptions {
  size_t num_samples = 400;
  /// Perturbation scale as a fraction of each feature's observed stddev.
  double perturbation_scale = 0.5;
  /// Exponential kernel width (in units of perturbation distance).
  double kernel_width = 1.0;
  double ridge = 1e-3;
};

/// LIME-style explanation: samples Gaussian perturbations of `x`, weights
/// them by proximity, and fits a ridge regression to the black-box scores.
/// `data` supplies per-feature scales for perturbation.
LocalSurrogate FitLocalSurrogate(const Model& model, const Dataset& data,
                                 const Vector& x,
                                 const LocalSurrogateOptions& options,
                                 Rng* rng);

/// Global surrogate: a shallow decision tree trained to mimic the
/// black-box's hard predictions on `data`.
struct GlobalSurrogate {
  DecisionTree tree;
  /// Agreement rate between surrogate and black-box on `data`.
  double fidelity = 0.0;
};
GlobalSurrogate FitGlobalSurrogate(const Model& model, const Dataset& data,
                                   size_t max_depth = 4);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_SURROGATE_H_
