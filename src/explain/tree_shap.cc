#include "src/explain/tree_shap.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

// The thresholded sweep's compare-pack kernel gets an AVX2 body when SIMD
// is enabled (-DXFAIR_SIMD=ON -> XFAIR_SIMD_ENABLED) on an x86-64
// toolchain, selected at runtime via cpuid like src/util/kernels.cc. The
// kernel only packs boolean compare results into integer bitmasks — no
// floating-point arithmetic — so the scalar and AVX2 bodies are trivially
// bit-identical.
#if defined(XFAIR_SIMD_ENABLED) && defined(__x86_64__)
#define XFAIR_TREE_SHAP_AVX2 1
#include <immintrin.h>
#endif

namespace xfair {
namespace {

/// Paths may touch at most this many distinct features (factorial table
/// size; also keeps the closed-form weights inside double range).
constexpr size_t kMaxPathFeatures = 64;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Instances per SoA tile in the batch engine. Large enough to amortize
/// each tree walk's shared path bookkeeping across many instances, small
/// enough that a tile's columns and accumulators stay cache-resident.
constexpr size_t kBatchTile = 1024;

/// Leaf-delta memo width cap: tables are 2^m entries, so masks wider than
/// this fall back to direct per-instance computation.
constexpr size_t kMemoMaxBits = 12;

/// Node-conversion cache capacity (models, not nodes). Overflow clears
/// the whole map — simple, and refit churn past 64 live models means the
/// workload isn't explanation-serving anyway.
constexpr size_t kNodeCacheCap = 64;

/// Unified view of TreeNode / GbmNode for the walkers below.
struct ShapNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1, right = -1;
  double value = 0.0;  ///< Leaf output.
  double cover = 0.0;  ///< Training weight that reached the node.
};

std::vector<ShapNode> ToShapNodes(const std::vector<TreeNode>& nodes) {
  std::vector<ShapNode> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out[i] = {nodes[i].feature, nodes[i].threshold, nodes[i].left,
              nodes[i].right,   nodes[i].proba,     nodes[i].weight};
  }
  return out;
}

std::vector<ShapNode> ToShapNodes(const std::vector<GbmNode>& nodes) {
  std::vector<ShapNode> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out[i] = {nodes[i].feature, nodes[i].threshold, nodes[i].left,
              nodes[i].right,   nodes[i].value,     nodes[i].cover};
  }
  return out;
}

const double* Factorials() {
  static const std::array<double, kMaxPathFeatures + 1> table = [] {
    std::array<double, kMaxPathFeatures + 1> t{};
    t[0] = 1.0;
    for (size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] * static_cast<double>(i);
    }
    return t;
  }();
  return table.data();
}

/// w_m[j] = j! (m-1-j)! for j < m — the Shapley weight numerators for a
/// path of m unique features, packed per m (row m at offset m(m-1)/2) so
/// the per-leaf weight reduction is a plain kernels::Dot against a
/// contiguous constant table. Requires m >= 1.
const double* FactWeights(size_t m) {
  static const std::vector<double>* flat = [] {
    auto* t =
        new std::vector<double>(kMaxPathFeatures * (kMaxPathFeatures + 1) / 2);
    const double* fact = Factorials();
    for (size_t rows = 1; rows <= kMaxPathFeatures; ++rows) {
      double* w = t->data() + (rows - 1) * rows / 2;
      for (size_t j = 0; j < rows; ++j) w[j] = fact[j] * fact[rows - 1 - j];
    }
    return t;
  }();
  return flat->data() + (m - 1) * m / 2;
}

// ---------------------------------------------------------------------------
// Cached node conversion.
//
// Every explainer entry point used to rebuild the unified ShapNode arrays
// from the model's nodes on each call. The conversion (plus per-tree path
// statistics the arenas are sized from) now runs once per fitted model:
// the cache key is (model address, fit id), and fit ids are process-unique
// (NextModelFitId), so neither a refit nor an address reused by a new
// model object can ever observe a stale entry.
// ---------------------------------------------------------------------------

/// Immutable per-model data shared by every walker: converted trees plus
/// the path statistics that size scratch arenas up front.
struct ShapModel {
  uint64_t fit_id = 0;
  std::vector<std::vector<ShapNode>> trees;
  int max_feature = -1;
  size_t max_unique_path = 0;  ///< Max distinct features on a root-leaf path.
  size_t max_path_len = 0;     ///< Max edges on a root-leaf path.
  size_t max_nodes = 0;        ///< Largest single tree (node count).
};

using ShapModelPtr = std::shared_ptr<const ShapModel>;

void AnalyzePaths(const std::vector<ShapNode>& nodes, int id,
                  std::vector<int>* feats, size_t depth, ShapModel* m) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    m->max_unique_path = std::max(m->max_unique_path, feats->size());
    m->max_path_len = std::max(m->max_path_len, depth);
    return;
  }
  const bool fresh =
      std::find(feats->begin(), feats->end(), n.feature) == feats->end();
  if (fresh) feats->push_back(n.feature);
  AnalyzePaths(nodes, n.left, feats, depth + 1, m);
  AnalyzePaths(nodes, n.right, feats, depth + 1, m);
  if (fresh) feats->pop_back();
}

ShapModel BuildShapModel(std::vector<std::vector<ShapNode>> trees,
                         uint64_t fit_id) {
  ShapModel m;
  m.fit_id = fit_id;
  m.trees = std::move(trees);
  std::vector<int> feats;
  for (const std::vector<ShapNode>& nodes : m.trees) {
    XFAIR_CHECK(!nodes.empty() && nodes[0].cover > 0.0);
    for (const ShapNode& n : nodes) m.max_feature = std::max(m.max_feature, n.feature);
    m.max_nodes = std::max(m.max_nodes, nodes.size());
    AnalyzePaths(nodes, 0, &feats, 0, &m);
  }
  XFAIR_CHECK_MSG(m.max_unique_path <= kMaxPathFeatures,
                  "tree path too deep for TreeSHAP");
  return m;
}

ShapModelPtr CachedShapModel(const void* object, uint64_t fit_id,
                             const std::function<ShapModel()>& build) {
  static std::mutex mu;
  static auto* cache =
      new std::unordered_map<const void*, ShapModelPtr>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(object);
    if (it != cache->end() && it->second->fit_id == fit_id) {
      XFAIR_COUNTER_ADD("tree_shap/node_cache_hits", 1);
      return it->second;
    }
  }
  // Build outside the lock; concurrent first calls on the same model just
  // build twice and the last insert wins.
  auto built = std::make_shared<const ShapModel>(build());
  XFAIR_COUNTER_ADD("tree_shap/node_cache_builds", 1);
  std::lock_guard<std::mutex> lock(mu);
  if (cache->size() >= kNodeCacheCap) {
    XFAIR_COUNTER_ADD("tree_shap/node_cache_evictions", cache->size());
    cache->clear();
  }
  (*cache)[object] = built;
  return built;
}

ShapModelPtr ModelFor(const DecisionTree& tree) {
  return CachedShapModel(&tree, tree.fit_id(), [&tree] {
    std::vector<std::vector<ShapNode>> trees;
    trees.push_back(ToShapNodes(tree.nodes()));
    return BuildShapModel(std::move(trees), tree.fit_id());
  });
}

ShapModelPtr ModelFor(const RandomForest& forest) {
  return CachedShapModel(&forest, forest.fit_id(), [&forest] {
    std::vector<std::vector<ShapNode>> trees;
    trees.reserve(forest.trees().size());
    for (const DecisionTree& tree : forest.trees()) {
      trees.push_back(ToShapNodes(tree.nodes()));
    }
    return BuildShapModel(std::move(trees), forest.fit_id());
  });
}

ShapModelPtr ModelFor(const GradientBoostedTrees& gbm) {
  return CachedShapModel(&gbm, gbm.fit_id(), [&gbm] {
    std::vector<std::vector<ShapNode>> trees;
    trees.reserve(gbm.trees().size());
    for (const auto& tree : gbm.trees()) trees.push_back(ToShapNodes(tree));
    return BuildShapModel(std::move(trees), gbm.fit_id());
  });
}

// ---------------------------------------------------------------------------
// Path-dependent TreeSHAP.
//
// Per leaf, the EXPVALUE game restricted to the path's unique features is
//   v(S) = value * prod_f (f in S ? one_f : zero_f),
// with one_f = [x passes f's merged split interval] in {0, 1} and
// zero_f = product of f's cover ratios along the path (> 0). The Shapley
// weight sum for feature f needs the elementary symmetric polynomials of
// the *other* factors, obtained by convolving all factors once (O(m^2))
// and deconvolving one factor at a time (O(m) each).
// ---------------------------------------------------------------------------

/// One unique feature on the current root-to-node path.
struct PdEntry {
  int feature = -1;
  double lo = -kInf, hi = kInf;  ///< Pass iff lo < x[feature] <= hi.
  double zero = 1.0;             ///< Product of this feature's cover ratios.
};

struct PdScratch {
  std::vector<PdEntry> path;
  std::vector<double> ones;    ///< one_f per path entry, in path order.
  std::vector<double> c;       ///< Coefficients of prod (zero_f + one_f t).
  std::vector<double> cw;      ///< Coefficients with one factor removed.
  std::vector<double> deltas;  ///< Per-entry phi increment of one leaf.
};

/// Full product polynomial of the path factors, built factor by factor in
/// place: c[0..m] <- coefficients of prod_i (zero_i + one_i t).
void PdConv(const PdEntry* path, const double* ones, size_t m, double* c) {
  std::fill(c, c + m + 1, 0.0);
  c[0] = 1.0;
  for (size_t i = 0; i < m; ++i) {
    const double zero = path[i].zero;
    const double one = ones[i];
    for (size_t j = i + 2; j-- > 0;) {
      c[j] = zero * c[j] + (j > 0 ? one * c[j - 1] : 0.0);
    }
  }
}

/// Per-entry phi increments of one leaf given its convolved polynomial.
/// This is THE shared leaf arithmetic: the per-instance walker and the
/// batch engine both call it, so their attributions are bit-identical by
/// construction. The weight reduction runs through kernels::Dot (pinned
/// 4-lane order) against the packed factorial table.
void PdDeltas(double value, const PdEntry* path, const double* ones, size_t m,
              const double* c, double* cw, const double* fact, double* out) {
  const double inv_mfact = 1.0 / fact[m];
  const double* w = FactWeights(m);
  for (size_t i = 0; i < m; ++i) {
    const double zero = path[i].zero;
    const double one = ones[i];
    // Deconvolve factor i: c[j] = zero * cw[j] + one * cw[j-1].
    if (one == 0.0) {
      for (size_t j = 0; j < m; ++j) cw[j] = c[j] / zero;
    } else {
      cw[m - 1] = c[m];
      for (size_t j = m - 1; j-- > 0;) {
        cw[j] = c[j + 1] - zero * cw[j + 1];
      }
    }
    const double acc = kernels::Dot(cw, w, m);
    out[i] = value * (one - zero) * acc * inv_mfact;
  }
}

void PdLeaf(double value, const double* x, PdScratch* s, Vector* phi,
            double* base, const double* fact) {
  const std::vector<PdEntry>& path = s->path;
  const size_t m = path.size();
  XFAIR_CHECK_MSG(m <= kMaxPathFeatures, "tree path too deep for TreeSHAP");
  s->ones.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const PdEntry& e = path[i];
    s->ones[i] =
        (e.lo < x[e.feature] && x[e.feature] <= e.hi) ? 1.0 : 0.0;
  }
  s->c.resize(m + 1);
  PdConv(path.data(), s->ones.data(), m, s->c.data());
  *base += value * s->c[0];  // c[0] = prod zero_f = P(leaf | empty coalition).
  if (m == 0) return;
  s->cw.resize(m);
  s->deltas.resize(m);
  PdDeltas(value, path.data(), s->ones.data(), m, s->c.data(), s->cw.data(),
           fact, s->deltas.data());
  for (size_t i = 0; i < m; ++i) {
    (*phi)[static_cast<size_t>(path[i].feature)] += s->deltas[i];
  }
}

void PdWalk(const std::vector<ShapNode>& nodes, int id, const double* x,
            PdScratch* s, Vector* phi, double* base, const double* fact) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    PdLeaf(n.value, x, s, phi, base, fact);
    return;
  }
  auto descend = [&](int child, bool left_edge) {
    const double ratio = nodes[static_cast<size_t>(child)].cover / n.cover;
    size_t idx = 0;
    while (idx < s->path.size() && s->path[idx].feature != n.feature) ++idx;
    const bool existed = idx < s->path.size();
    if (!existed) s->path.push_back({n.feature, -kInf, kInf, 1.0});
    const PdEntry saved = s->path[idx];
    PdEntry& e = s->path[idx];
    if (left_edge) {
      e.hi = std::min(e.hi, n.threshold);
    } else {
      e.lo = std::max(e.lo, n.threshold);
    }
    e.zero = saved.zero * ratio;
    PdWalk(nodes, child, x, s, phi, base, fact);
    if (existed) {
      s->path[idx] = saved;
    } else {
      s->path.pop_back();
    }
  };
  descend(n.left, /*left_edge=*/true);
  descend(n.right, /*left_edge=*/false);
}

/// Adds one tree's path-dependent attributions into phi/base.
void PathDependentTree(const std::vector<ShapNode>& nodes, const double* x,
                       PdScratch* s, Vector* phi, double* base) {
  XFAIR_CHECK(!nodes.empty() && nodes[0].cover > 0.0);
  PdWalk(nodes, 0, x, s, phi, base, Factorials());
}

// ---------------------------------------------------------------------------
// Interventional TreeSHAP.
//
// For one explained row x and one background row z, a leaf's coalition
// indicator is [P subset of S][N disjoint from S], where P are the unique
// path features only x passes and N the ones only z passes (leaves with a
// feature neither passes are unreachable for every coalition and the
// descent prunes them). The Shapley value of that indicator game is the
// closed form (p-1)! q! / (p+q)! for f in P and -p! (q-1)! / (p+q)! for
// f in N; leaves with p == 0 contribute to the empty-coalition value.
// ---------------------------------------------------------------------------

struct IvEntry {
  int feature = -1;
  double lo = -kInf, hi = kInf;
};

/// Walks leaves reachable by some x/z hybrid, accumulating `weight`-scaled
/// attributions into phi (d slots) and the empty-coalition value into base.
void IvWalk(const ShapNode* nodes, int id, const double* x,
            const double* z, std::vector<IvEntry>* path, double weight,
            double* phi, double* base, const double* fact) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    const size_t m = path->size();
    XFAIR_CHECK_MSG(m <= kMaxPathFeatures, "tree path too deep for TreeSHAP");
    size_t p = 0, q = 0;
    for (const IvEntry& e : *path) {
      const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
      const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
      p += a && !b;
      q += !a && b;
    }
    if (p == 0) *base += weight * n.value;
    if (p + q == 0) return;
    const double inv = 1.0 / fact[p + q];
    const double w_pos = p > 0 ? fact[p - 1] * fact[q] * inv : 0.0;
    const double w_neg = q > 0 ? fact[p] * fact[q - 1] * inv : 0.0;
    // Folded into weight-independent per-leaf deltas so the batched
    // thresholded sweep can memoize them per coalition mask and still add
    // the identical doubles (the negation is exact, so += weight * d_neg
    // bit-matches the former -= weight * value * w_neg).
    const double d_pos = n.value * w_pos;
    const double d_neg = -(n.value * w_neg);
    for (const IvEntry& e : *path) {
      const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
      const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
      if (a && !b) {
        phi[static_cast<size_t>(e.feature)] += weight * d_pos;
      } else if (!a && b) {
        phi[static_cast<size_t>(e.feature)] += weight * d_neg;
      }
    }
    return;
  }
  auto descend = [&](int child, bool left_edge) {
    size_t idx = 0;
    while (idx < path->size() && (*path)[idx].feature != n.feature) ++idx;
    const bool existed = idx < path->size();
    if (!existed) path->push_back({n.feature, -kInf, kInf});
    const IvEntry saved = (*path)[idx];
    IvEntry& e = (*path)[idx];
    if (left_edge) {
      e.hi = std::min(e.hi, n.threshold);
    } else {
      e.lo = std::max(e.lo, n.threshold);
    }
    const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
    const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
    if (a || b) IvWalk(nodes, child, x, z, path, weight, phi, base, fact);
    if (existed) {
      (*path)[idx] = saved;
    } else {
      path->pop_back();
    }
  };
  descend(n.left, /*left_edge=*/true);
  descend(n.right, /*left_edge=*/false);
}

/// EXPVALUE reference game: descend x's branch for unmasked features,
/// cover-average both children for masked ones. Exponential when fed to
/// ExactShapley — the oracle the polynomial algorithms are tested against.
double ExpValue(const std::vector<ShapNode>& nodes, int id,
                const std::vector<bool>& mask, const Vector& x) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) return n.value;
  const size_t f = static_cast<size_t>(n.feature);
  if (mask[f]) {
    return ExpValue(nodes, x[f] <= n.threshold ? n.left : n.right, mask, x);
  }
  const ShapNode& l = nodes[static_cast<size_t>(n.left)];
  const ShapNode& r = nodes[static_cast<size_t>(n.right)];
  return (l.cover * ExpValue(nodes, n.left, mask, x) +
          r.cover * ExpValue(nodes, n.right, mask, x)) /
         n.cover;
}

// ---------------------------------------------------------------------------
// Scratch arenas.
//
// Every engine entry point draws its scratch from a thread-local arena
// that only ever grows, so the steady state (repeated calls of the same
// shape) allocates nothing: pool workers are long-lived, and so are their
// arenas. Ensure/Reserve track whether a call had to grow anything; the
// outermost ArenaCall on a thread reports one arena_reuses or arena_grows
// tick per engine entry, which is what the zero-alloc steady-state test
// asserts on.
// ---------------------------------------------------------------------------

struct ShapArena {
  // Per-instance walker scratch.
  PdScratch pd;
  std::vector<IvEntry> iv_path;
  std::vector<ShapNode> thresholded;
  // Batch engine buffers (see PathDependentBatch for layouts).
  std::vector<double> cols, partial, pair, memo_vals;
  std::vector<double> miss_ones, miss_c, miss_cw, miss_deltas;
  std::vector<uint8_t> saved_bits;
  std::vector<uint64_t> masks, memo_epoch;
  std::vector<PdEntry> bpath;
  // Thresholded-sweep buffers: per-tile slice partials (caller-owned,
  // workers write disjoint tiles), the background's per-edge saved
  // coalition bits, and the tile-bitvector state — per-path-entry pass
  // indicators (pbits), their per-edge-depth saves (psave), and the
  // per-depth active-instance bitvectors (alive_bits), all stride
  // kTileBlocks words per row (one bit per tile lane).
  std::vector<double> slice_partial;
  std::vector<uint8_t> zbits_saved;
  std::vector<uint64_t> pbits, psave, alive_bits;
  uint64_t epoch = 0;  ///< Monotonic leaf counter stamping memo entries.
  int call_depth = 0;
  bool grew = false;

  /// Grows v to hold at least n elements (never shrinks).
  template <typename V>
  void Ensure(V* v, size_t n) {
    if (v->size() >= n) return;
    if (v->capacity() < n) grew = true;
    v->resize(n);
  }

  /// Capacity-only variant for vectors managed by push/pop.
  template <typename V>
  void Reserve(V* v, size_t n) {
    if (v->capacity() >= n) return;
    grew = true;
    v->reserve(n);
  }

  /// Sizes the per-instance path-dependent scratch for paths of up to
  /// `max_unique` distinct features.
  void EnsurePd(size_t max_unique) {
    Reserve(&pd.path, max_unique + 1);
    Reserve(&pd.ones, max_unique + 1);
    Reserve(&pd.c, max_unique + 2);
    Reserve(&pd.cw, max_unique + 1);
    Reserve(&pd.deltas, max_unique + 1);
  }
};

ShapArena& LocalArena() {
  static thread_local ShapArena arena;
  return arena;
}

/// RAII growth accounting for one engine entry on one thread. Nested
/// scopes (an engine call fanning out to inline chunk bodies) report once.
class ArenaCall {
 public:
  explicit ArenaCall(ShapArena* arena) : arena_(arena) {
    if (arena_->call_depth++ == 0) arena_->grew = false;
  }
  ~ArenaCall() {
    if (--arena_->call_depth != 0) return;
    if (arena_->grew) {
      XFAIR_COUNTER_ADD("tree_shap/arena_grows", 1);
    } else {
      XFAIR_COUNTER_ADD("tree_shap/arena_reuses", 1);
    }
  }
  ArenaCall(const ArenaCall&) = delete;
  ArenaCall& operator=(const ArenaCall&) = delete;

 private:
  ShapArena* arena_;
};

// ---------------------------------------------------------------------------
// Batched path-dependent engine.
//
// One DFS per (tree, instance tile) instead of per (tree, instance). The
// tile is laid out structure-of-arrays (cols[f * tile + i]), so the split
// test a node contributes to every instance's coalition indicator is one
// contiguous compare over the tile. Each instance carries one packed
// coalition mask whose bit `idx` answers "does this instance pass path
// entry idx's merged interval?"; the masks are maintained incrementally
// at descend edges, since the merged-interval test is exactly the AND of
// the edge conditions along the path.
//
// At a leaf, the phi increments are a pure function of (leaf, coalition
// mask), so they are computed once per distinct mask via PdDeltas — the
// same routine the per-instance walker calls — and memoized in an
// epoch-stamped table. Each instance then adds the *same doubles in the
// same DFS order* as its per-instance walk would, which is the whole
// bit-identity argument: batching changes how often numbers are computed,
// never which numbers are added or in which order.
// ---------------------------------------------------------------------------

struct BatchCtx {
  const ShapNode* nodes = nullptr;
  const double* cols = nullptr;  ///< SoA tile: cols[f * tile + i].
  size_t tile = 0;
  size_t dim = 0;        ///< d + 1; slot d of each row is the base value.
  double* acc = nullptr; ///< tile x dim accumulator (one row per instance).
  double base_acc = 0.0; ///< Scalar base partial (instance-independent).
  PdEntry* path = nullptr;
  size_t path_len = 0;
  uint8_t* saved_bits = nullptr;  ///< [edge depth][instance], stride tile.
  uint64_t* masks = nullptr;      ///< Packed coalition mask per instance.
  size_t m_cap = 0;
  double* memo_vals = nullptr;    ///< [mask][k], stride m_cap.
  uint64_t* memo_epoch = nullptr;
  uint64_t* epoch = nullptr;
  const double* fact = nullptr;
  double* miss_ones = nullptr;
  double* miss_c = nullptr;
  double* miss_cw = nullptr;
  double* miss_deltas = nullptr;
  size_t memo_hits = 0, memo_misses = 0;
};

void PdLeafBatch(BatchCtx* ctx, double value) {
  const size_t m = ctx->path_len;
  const size_t tile = ctx->tile;
  const size_t dim = ctx->dim;
  // The conv polynomial's constant term is coalition-independent — just
  // the running product of the zero factors in path order — so the base
  // contribution is the same scalar for every instance. Every instance's
  // base partial is therefore the identical DFS-ordered sum of these
  // scalars; accumulate it once and broadcast after the tree chunk. The
  // loop repeats PdConv's constant-lane arithmetic exactly
  // (c[0] = zero * c[0]).
  double c0 = 1.0;
  for (size_t i = 0; i < m; ++i) c0 = ctx->path[i].zero * c0;
  ctx->base_acc += value * c0;
  if (m == 0) return;
  if (m <= ctx->m_cap) {
    const uint64_t epoch = ++*ctx->epoch;
    for (size_t i = 0; i < tile; ++i) {
      const uint64_t mask = ctx->masks[i];
      double* vals = ctx->memo_vals + mask * ctx->m_cap;
      if (ctx->memo_epoch[mask] != epoch) {
        ctx->memo_epoch[mask] = epoch;
        ++ctx->memo_misses;
        for (size_t k = 0; k < m; ++k) {
          ctx->miss_ones[k] = ((mask >> k) & 1) != 0 ? 1.0 : 0.0;
        }
        PdConv(ctx->path, ctx->miss_ones, m, ctx->miss_c);
        PdDeltas(value, ctx->path, ctx->miss_ones, m, ctx->miss_c,
                 ctx->miss_cw, ctx->fact, vals);
      } else {
        ++ctx->memo_hits;
      }
      double* row = ctx->acc + i * dim;
      for (size_t k = 0; k < m; ++k) {
        row[static_cast<size_t>(ctx->path[k].feature)] += vals[k];
      }
    }
  } else {
    // Path wider than the memo: compute each instance directly from its
    // mask bits (still the shared PdConv/PdDeltas arithmetic).
    for (size_t i = 0; i < tile; ++i) {
      const uint64_t mask = ctx->masks[i];
      for (size_t k = 0; k < m; ++k) {
        ctx->miss_ones[k] = ((mask >> k) & 1) != 0 ? 1.0 : 0.0;
      }
      PdConv(ctx->path, ctx->miss_ones, m, ctx->miss_c);
      PdDeltas(value, ctx->path, ctx->miss_ones, m, ctx->miss_c, ctx->miss_cw,
               ctx->fact, ctx->miss_deltas);
      double* row = ctx->acc + i * dim;
      for (size_t k = 0; k < m; ++k) {
        row[static_cast<size_t>(ctx->path[k].feature)] += ctx->miss_deltas[k];
      }
    }
  }
}

void PdWalkBatch(BatchCtx* ctx, int id, size_t depth) {
  const ShapNode& n = ctx->nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    PdLeafBatch(ctx, n.value);
    return;
  }
  const size_t tile = ctx->tile;
  const double* xcol = ctx->cols + static_cast<size_t>(n.feature) * tile;
  const double thr = n.threshold;
  // Both edges share the same path slot, so the entry search, the saved
  // state, and the mask bit are hoisted; the left unwind fuses with the
  // right set into a single tile pass (three passes per node, not four).
  size_t idx = 0;
  while (idx < ctx->path_len && ctx->path[idx].feature != n.feature) ++idx;
  const bool existed = idx < ctx->path_len;
  if (!existed) ctx->path[ctx->path_len++] = {n.feature, -kInf, kInf, 1.0};
  const PdEntry saved = ctx->path[idx];
  const double ratio_l = ctx->nodes[static_cast<size_t>(n.left)].cover / n.cover;
  const double ratio_r =
      ctx->nodes[static_cast<size_t>(n.right)].cover / n.cover;
  const uint64_t bit = uint64_t{1} << idx;
  uint8_t* save = ctx->saved_bits + depth * tile;
  // Left edge: x <= thr.
  {
    PdEntry& e = ctx->path[idx];
    e.hi = std::min(saved.hi, thr);
    e.zero = saved.zero * ratio_l;
  }
  if (!existed) {
    // Fresh entry: the indicator so far is just this edge's condition.
    for (size_t i = 0; i < tile; ++i) {
      if (xcol[i] <= thr) ctx->masks[i] |= bit;
    }
  } else {
    // Revisited feature: AND this edge's condition into the running
    // indicator bit, saving the previous bit for the transitions below.
    for (size_t i = 0; i < tile; ++i) {
      const uint64_t mask = ctx->masks[i];
      save[i] = static_cast<uint8_t>((mask >> idx) & 1);
      if (!(xcol[i] <= thr)) ctx->masks[i] = mask & ~bit;
    }
  }
  PdWalkBatch(ctx, n.left, depth + 1);
  // Right edge: x > thr. One pass rewrites the entry's bit from the
  // pre-descend value (set or saved) AND the right condition.
  {
    PdEntry& e = ctx->path[idx];
    e.lo = std::max(saved.lo, thr);
    e.hi = saved.hi;
    e.zero = saved.zero * ratio_r;
  }
  if (!existed) {
    for (size_t i = 0; i < tile; ++i) {
      ctx->masks[i] =
          (ctx->masks[i] & ~bit) | (xcol[i] > thr ? bit : uint64_t{0});
    }
  } else {
    for (size_t i = 0; i < tile; ++i) {
      const uint64_t restored = static_cast<uint64_t>(save[i]) << idx;
      ctx->masks[i] =
          (ctx->masks[i] & ~bit) | (xcol[i] > thr ? restored : uint64_t{0});
    }
  }
  PdWalkBatch(ctx, n.right, depth + 1);
  if (!existed) {
    for (size_t i = 0; i < tile; ++i) ctx->masks[i] &= ~bit;
    --ctx->path_len;
  } else {
    for (size_t i = 0; i < tile; ++i) {
      ctx->masks[i] =
          (ctx->masks[i] & ~bit) | (static_cast<uint64_t>(save[i]) << idx);
    }
    ctx->path[idx] = saved;
  }
}

/// How batch outputs are finalized from the raw tree-sum, mirroring the
/// matching per-instance entry point's epilogue exactly.
enum class BatchMode { kTree, kForestMean, kGbmMargin };

void PathDependentBatch(const ShapModelPtr& model, BatchMode mode,
                        double scale, double bias, const Matrix& xs,
                        Matrix* phi, Vector* base) {
  const size_t n = xs.rows();
  const size_t d = xs.cols();
  XFAIR_CHECK(model->max_feature < static_cast<int>(d));
  XFAIR_CHECK(phi != nullptr && base != nullptr);
  if (phi->rows() != n || phi->cols() != d) *phi = Matrix(n, d);
  if (base->size() != n) base->assign(n, 0.0);
  const size_t dim = d + 1;
  // Replicate the per-instance tree reduction: same chunks, same pairwise
  // combine, per instance.
  const std::vector<ChunkRange> tchunks =
      DeterministicChunks(0, model->trees.size());
  const size_t nchunks = tchunks.size();
  const size_t m_cap = std::min(model->max_unique_path, kMemoMaxBits);
  // Parallelize over whole tiles, not raw instance ranges: the leaf memo
  // amortizes one PdConv/PdDeltas per distinct coalition mask across the
  // tile, so a full-width tile is what makes batching pay. Instance
  // decomposition cannot affect results — each instance's phi is
  // independent, and all order-sensitive reductions are within-instance.
  const size_t ntiles = (n + kBatchTile - 1) / kBatchTile;
  ParallelForChunks(0, ntiles, [&](const ChunkRange& ichunk) {
    ShapArena& arena = LocalArena();
    ArenaCall call(&arena);
    // Size everything for a full tile regardless of this chunk's length,
    // so every worker's arena converges to the same steady-state shape.
    arena.Ensure(&arena.cols, d * kBatchTile);
    arena.Ensure(&arena.saved_bits, (model->max_path_len + 1) * kBatchTile);
    arena.Ensure(&arena.masks, kBatchTile);
    arena.Ensure(&arena.bpath, model->max_unique_path + 1);
    arena.Ensure(&arena.partial, nchunks * kBatchTile * dim);
    arena.Ensure(&arena.pair, nchunks);
    arena.Ensure(&arena.memo_vals,
                 (uint64_t{1} << m_cap) * std::max<size_t>(m_cap, 1));
    arena.Ensure(&arena.memo_epoch, uint64_t{1} << m_cap);
    arena.Ensure(&arena.miss_ones, model->max_unique_path + 1);
    arena.Ensure(&arena.miss_c, model->max_unique_path + 2);
    arena.Ensure(&arena.miss_cw, model->max_unique_path + 1);
    arena.Ensure(&arena.miss_deltas, model->max_unique_path + 1);
    BatchCtx ctx;
    ctx.dim = dim;
    ctx.path = arena.bpath.data();
    ctx.saved_bits = arena.saved_bits.data();
    ctx.masks = arena.masks.data();
    ctx.m_cap = m_cap;
    ctx.memo_vals = arena.memo_vals.data();
    ctx.memo_epoch = arena.memo_epoch.data();
    ctx.epoch = &arena.epoch;
    ctx.fact = Factorials();
    ctx.miss_ones = arena.miss_ones.data();
    ctx.miss_c = arena.miss_c.data();
    ctx.miss_cw = arena.miss_cw.data();
    ctx.miss_deltas = arena.miss_deltas.data();
    for (size_t ti = ichunk.begin; ti < ichunk.end; ++ti) {
      const size_t at = ti * kBatchTile;
      const size_t tile = std::min(kBatchTile, n - at);
      ctx.tile = tile;
      double* cols = arena.cols.data();
      for (size_t i = 0; i < tile; ++i) {
        const double* row = xs.RowPtr(at + i);
        for (size_t f = 0; f < d; ++f) cols[f * tile + i] = row[f];
      }
      ctx.cols = cols;
      for (size_t k = 0; k < nchunks; ++k) {
        double* part = arena.partial.data() + k * kBatchTile * dim;
        std::fill(part, part + tile * dim, 0.0);
        ctx.acc = part;
        ctx.base_acc = 0.0;
        for (size_t t = tchunks[k].begin; t < tchunks[k].end; ++t) {
          ctx.nodes = model->trees[t].data();
          ctx.path_len = 0;
          std::fill(arena.masks.data(), arena.masks.data() + tile,
                    uint64_t{0});
          PdWalkBatch(&ctx, 0, 0);
        }
        for (size_t i = 0; i < tile; ++i) {
          part[i * dim + dim - 1] = ctx.base_acc;
        }
      }
      for (size_t i = 0; i < tile; ++i) {
        double* out_row = phi->RowPtr(at + i);
        for (size_t c = 0; c < dim; ++c) {
          for (size_t k = 0; k < nchunks; ++k) {
            arena.pair[k] = arena.partial[k * kBatchTile * dim + i * dim + c];
          }
          const double acc = PairwiseSumInPlace(arena.pair.data(), nchunks);
          if (c < d) {
            out_row[c] = mode == BatchMode::kTree ? acc : acc * scale;
          } else {
            (*base)[at + i] = mode == BatchMode::kTree ? acc
                              : mode == BatchMode::kForestMean
                                  ? acc * scale
                                  : bias + scale * acc;
          }
        }
      }
    }
    XFAIR_COUNTER_ADD("tree_shap/leaf_memo_hits", ctx.memo_hits);
    XFAIR_COUNTER_ADD("tree_shap/leaf_memo_misses", ctx.memo_misses);
  });
}

/// Batched interventional engine: instances fan out over chunks, and each
/// instance replays the per-instance background-chunk pairwise reduction
/// exactly (same chunks, same tree order, same combine, same scaling).
void InterventionalBatch(const ShapModelPtr& model, const Matrix& background,
                         const Matrix& xs, Matrix* phi, Vector* base) {
  const size_t n = xs.rows();
  const size_t d = xs.cols();
  XFAIR_CHECK(background.rows() > 0);
  XFAIR_CHECK(background.cols() == d);
  XFAIR_CHECK(model->max_feature < static_cast<int>(d));
  XFAIR_CHECK(phi != nullptr && base != nullptr);
  if (phi->rows() != n || phi->cols() != d) *phi = Matrix(n, d);
  if (base->size() != n) base->assign(n, 0.0);
  const std::vector<ChunkRange> bchunks =
      DeterministicChunks(0, background.rows());
  const size_t nchunks = bchunks.size();
  const size_t dim = d + 1;
  const double inv = 1.0 / (static_cast<double>(background.rows()) *
                            static_cast<double>(model->trees.size()));
  const double* fact = Factorials();
  ParallelForChunks(0, n, [&](const ChunkRange& ichunk) {
    ShapArena& arena = LocalArena();
    ArenaCall call(&arena);
    arena.Reserve(&arena.iv_path, model->max_unique_path + 1);
    arena.Ensure(&arena.partial, nchunks * dim);
    arena.Ensure(&arena.pair, nchunks);
    for (size_t i = ichunk.begin; i < ichunk.end; ++i) {
      const double* x = xs.RowPtr(i);
      for (size_t k = 0; k < nchunks; ++k) {
        double* part = arena.partial.data() + k * dim;
        std::fill(part, part + dim, 0.0);
        for (size_t b = bchunks[k].begin; b < bchunks[k].end; ++b) {
          for (const std::vector<ShapNode>& nodes : model->trees) {
            IvWalk(nodes.data(), 0, x, background.RowPtr(b), &arena.iv_path,
                   1.0, part, &part[d], fact);
          }
        }
      }
      double* out_row = phi->RowPtr(i);
      for (size_t c = 0; c < dim; ++c) {
        for (size_t k = 0; k < nchunks; ++k) {
          arena.pair[k] = arena.partial[k * dim + c];
        }
        const double acc = PairwiseSumInPlace(arena.pair.data(), nchunks);
        if (c < d) {
          out_row[c] = acc * inv;
        } else {
          (*base)[i] = acc * inv;
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Batched thresholded interventional sweep (the fairness fast path).
//
// One DFS per (thresholded tree, instance tile) instead of per instance.
// The tile's coalition state is kept *transposed*: instead of one packed
// mask per instance, path entry idx owns a pass-indicator bitvector
// pbits[idx] over the tile (bit i answers "does instance i pass entry
// idx's merged interval?", one kTileBlocks-word row per entry). A descend
// edge then costs one compare-pack per 64-lane block (compare the SoA
// column against the threshold, movemask the results into a word) plus a
// couple of word-wide AND/saves — the per-instance bookkeeping of the
// old per-lane mask updates collapses into whole-word set algebra. The
// single background row z keeps the scalar analogue (zbits + a per-edge
// saved bit).
//
// The interventional game prunes: an instance whose merged interval is
// passed by neither x nor z reaches no leaf below, so the DFS carries a
// per-depth *active-instance bitvector* (alive, kTileBlocks words),
// replicating the per-row walk's a||b descend guard per instance. A
// non-z edge derives the child's aliveness as alive & pbits[idx] word by
// word; when the background passes, the child inherits the parent's
// bitvector by pointer (everyone stays active). Dead blocks (word == 0)
// and subtrees whose bitvector empties are skipped outright. Fresh path
// entries use write semantics (pbits[idx] is overwritten, never merged),
// so unwinding a fresh entry is free: a stale row is rewritten by the
// next fresh push before any leaf can read it (leaves read rows
// 0..path_len-1 only, and an instance is only alive below an edge that
// wrote its row).
//
// At a leaf everything IvWalk derives from the merged intervals is a
// pure function of (mask, zbits). The leaf partitions the alive set with
// word algebra over the entry rows — p0 (no mask bit outside zb, the
// p == 0 base-add set) and a0 (mask == zb, nothing further to add) —
// then walks only the instances that owe per-entry increments,
// reassembling each one's packed mask from the entry rows. The
// increments collapse to two doubles (value * w_pos and
// -(value * w_neg)) memoized per distinct mask in the epoch-stamped
// table. Each instance adds the same doubles in the same DFS order as
// its per-row IvWalk would — including the ±0.0 adds at value-zero
// leaves, which keep signed zeros bit-identical. (Base and per-entry
// adds land in disjoint accumulator slots, so splitting them into two
// scans preserves every slot's add sequence.)
// ---------------------------------------------------------------------------

constexpr size_t kBlockLanes = 64;  ///< Instances per bitvector word.
constexpr size_t kTileBlocks = kBatchTile / kBlockLanes;

struct IvBatchCtx {
  const ShapNode* nodes = nullptr;
  const double* cols = nullptr;     ///< SoA tile: cols[f * kBatchTile + i].
  const double* z = nullptr;        ///< Single background row.
  const double* weights = nullptr;  ///< Per-instance game weights.
  size_t tile = 0;
  size_t nblk = 0;        ///< ceil(tile / kBlockLanes) words in play.
  size_t dim = 0;         ///< d + 1; slot d of each row is the base value.
  double* acc = nullptr;  ///< tile x dim accumulator (one row per instance).
  PdEntry* path = nullptr;  ///< Only .feature is read at leaves.
  size_t path_len = 0;
  uint64_t* pbits = nullptr;  ///< [entry idx][block] pass indicators.
  uint64_t* psave = nullptr;  ///< [edge depth][block] saved entry row.
  uint8_t* zsaved = nullptr;  ///< [edge depth] saved background bit.
  uint64_t zbits = 0;         ///< Background's packed coalition mask.
  uint64_t* alive = nullptr;  ///< [depth][block] active-instance bits.
  size_t m_cap = 0;
  double* memo_vals = nullptr;  ///< [mask][2]: {value*w_pos, -(value*w_neg)}.
  uint64_t* memo_epoch = nullptr;
  uint64_t* epoch = nullptr;
  const double* fact = nullptr;
  size_t memo_hits = 0, memo_misses = 0;
};

/// Per-leaf deltas from the coalition counts, IvWalk's arithmetic verbatim.
inline void IvDeltas(double value, uint64_t mask, uint64_t zb, uint64_t mbits,
                     const double* fact, double* vals) {
  const size_t p = static_cast<size_t>(__builtin_popcountll(mask & ~zb));
  const size_t q =
      static_cast<size_t>(__builtin_popcountll(~mask & zb & mbits));
  const double inv = 1.0 / fact[p + q];
  const double w_pos = p > 0 ? fact[p - 1] * fact[q] * inv : 0.0;
  const double w_neg = q > 0 ? fact[p] * fact[q - 1] * inv : 0.0;
  vals[0] = value * w_pos;
  vals[1] = -(value * w_neg);
}

void IvLeafBatch(IvBatchCtx* ctx, double value, const uint64_t* alive) {
  const size_t m = ctx->path_len;
  const size_t dim = ctx->dim;
  if (m == 0) {
    // Root-leaf tree: the empty-path game (p == 0) for every instance.
    for (size_t b = 0; b < ctx->nblk; ++b) {
      for (uint64_t w = alive[b]; w != 0; w &= w - 1) {
        const size_t i =
            b * kBlockLanes + static_cast<size_t>(__builtin_ctzll(w));
        ctx->acc[i * dim + dim - 1] += ctx->weights[i] * value;
      }
    }
    return;
  }
  const uint64_t mbits = m >= 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  const uint64_t zb = ctx->zbits & mbits;
  const bool memoize = m <= ctx->m_cap;
  const uint64_t epoch = memoize ? ++*ctx->epoch : 0;
  double direct[2];
  for (size_t b = 0; b < ctx->nblk; ++b) {
    const uint64_t av = alive[b];
    if (av == 0) continue;
    // Word algebra over the entry rows: p0 keeps instances whose mask has
    // no bit outside zb (the p == 0 base-add set); a0 keeps mask == zb
    // (alive, but nothing beyond the base add to do).
    uint64_t p0 = av;
    uint64_t a0 = av;
    const uint64_t* pb = ctx->pbits + b;
    for (size_t k = 0; k < m; ++k) {
      const uint64_t pk = pb[k * kTileBlocks];
      if ((zb >> k) & 1) {
        a0 &= pk;
      } else {
        p0 &= ~pk;
        a0 &= ~pk;
      }
    }
    // Base adds (slot dim-1; disjoint from the per-entry slots below, so
    // running them first preserves every slot's add order).
    for (uint64_t w = p0; w != 0; w &= w - 1) {
      const size_t i =
          b * kBlockLanes + static_cast<size_t>(__builtin_ctzll(w));
      ctx->acc[i * dim + dim - 1] += ctx->weights[i] * value;
    }
    // Per-entry increments for instances with act = mask ^ zb != 0; the
    // packed mask is reassembled from the entry rows' lane bits.
    for (uint64_t w = av & ~a0; w != 0; w &= w - 1) {
      const size_t lane = static_cast<size_t>(__builtin_ctzll(w));
      const size_t i = b * kBlockLanes + lane;
      uint64_t mask = 0;
      for (size_t k = 0; k < m; ++k) {
        mask |= ((pb[k * kTileBlocks] >> lane) & 1) << k;
      }
      // Aliveness already encodes reachability (every edge above held
      // x-or-z on its merged interval, so every bit of mask|zb is set);
      // the per-row walk's prune test survives as a never-taken guard.
      if ((mask | zb) != mbits) continue;
      const double wt = ctx->weights[i];
      double* row = ctx->acc + i * dim;
      const uint64_t act = mask ^ zb;
      const double* vals;
      if (memoize) {
        double* slot = ctx->memo_vals + mask * 2;
        if (ctx->memo_epoch[mask] != epoch) {
          ctx->memo_epoch[mask] = epoch;
          ++ctx->memo_misses;
          IvDeltas(value, mask, zb, mbits, ctx->fact, slot);
        } else {
          ++ctx->memo_hits;
        }
        vals = slot;
      } else {
        IvDeltas(value, mask, zb, mbits, ctx->fact, direct);
        vals = direct;
      }
      // Ascending entry order == the per-row walk's path iteration order.
      for (uint64_t a = act; a != 0; a &= a - 1) {
        const size_t k = static_cast<size_t>(__builtin_ctzll(a));
        const size_t f = static_cast<size_t>(ctx->path[k].feature);
        row[f] += wt * vals[(mask >> k) & 1 ? 0 : 1];
      }
    }
  }
}

void IvWalkBatch(IvBatchCtx* ctx, int id, size_t depth,
                 const uint64_t* alive);

/// Packs one 64-lane block's edge-condition results into a word, lane i
/// -> bit i. The booleans are the exact double compares IvWalk performs,
/// so the packed bits are integer-identical to the per-row walk's
/// branches (NaN lanes pack 0 on both sides, like the scalar compares).
template <bool kLE>
inline uint64_t IvPackCmpScalar(const double* __restrict xc, double thr) {
  uint64_t bits = 0;
  for (size_t i = 0; i < kBlockLanes; ++i) {
    const bool pass = kLE ? xc[i] <= thr : xc[i] > thr;
    bits |= static_cast<uint64_t>(pass) << i;
  }
  return bits;
}

#if XFAIR_TREE_SHAP_AVX2
__attribute__((target("avx2"))) uint64_t IvPackCmpLeAvx2(
    const double* __restrict xc, double thr) {
  const __m256d t = _mm256_set1_pd(thr);
  uint64_t bits = 0;
  for (size_t i = 0; i < kBlockLanes; i += 4) {
    const __m256d c = _mm256_cmp_pd(_mm256_loadu_pd(xc + i), t, _CMP_LE_OQ);
    bits |= static_cast<uint64_t>(_mm256_movemask_pd(c)) << i;
  }
  return bits;
}

__attribute__((target("avx2"))) uint64_t IvPackCmpGtAvx2(
    const double* __restrict xc, double thr) {
  const __m256d t = _mm256_set1_pd(thr);
  uint64_t bits = 0;
  for (size_t i = 0; i < kBlockLanes; i += 4) {
    const __m256d c = _mm256_cmp_pd(_mm256_loadu_pd(xc + i), t, _CMP_GT_OQ);
    bits |= static_cast<uint64_t>(_mm256_movemask_pd(c)) << i;
  }
  return bits;
}

bool DetectTreeShapAvx2() { return __builtin_cpu_supports("avx2") != 0; }
const bool kTreeShapAvx2 = DetectTreeShapAvx2();
#endif  // XFAIR_TREE_SHAP_AVX2

template <bool kLE>
inline uint64_t IvPackCmp(const double* xc, double thr) {
#if XFAIR_TREE_SHAP_AVX2
  if (kTreeShapAvx2) {
    return kLE ? IvPackCmpLeAvx2(xc, thr) : IvPackCmpGtAvx2(xc, thr);
  }
#endif
  return IvPackCmpScalar<kLE>(xc, thr);
}

/// One descend edge: refreshes entry idx's pass row over the parent's
/// live blocks, derives the child's aliveness (unless z passes, in which
/// case the child inherits the parent's bitvector by pointer), and
/// recurses.
template <bool kLE>
void IvEdgeBatch(IvBatchCtx* ctx, int child_id, size_t depth,
                 const uint64_t* alive, const double* xcol, double thr,
                 size_t idx, bool existed, bool fill_save, bool zpass) {
  uint64_t* prow = ctx->pbits + idx * kTileBlocks;
  uint64_t* sv = ctx->psave + depth * kTileBlocks;
  uint64_t* calive = ctx->alive + (depth + 1) * kTileBlocks;
  bool any = zpass;
  for (size_t b = 0; b < ctx->nblk; ++b) {
    const uint64_t av = alive[b];
    if (av == 0) {
      if (!zpass) calive[b] = 0;
      continue;
    }
    const uint64_t cmp = IvPackCmp<kLE>(xcol + b * kBlockLanes, thr);
    uint64_t np;
    if (!existed) {
      np = cmp;  // Fresh row: write semantics, nothing stale is merged.
    } else {
      // First edge to touch an existing entry stashes the pre-descend
      // row; the second edge rebuilds from the stash. Both AND in the
      // edge condition (the merged-interval narrowing).
      const uint64_t prev = fill_save ? prow[b] : sv[b];
      if (fill_save) sv[b] = prev;
      np = prev & cmp;
    }
    prow[b] = np;
    if (!zpass) {
      const uint64_t ca = av & np;
      calive[b] = ca;
      any = any || ca != 0;
    }
  }
  if (!any) return;
  IvWalkBatch(ctx, child_id, depth + 1, zpass ? alive : calive);
}

void IvWalkBatch(IvBatchCtx* ctx, int id, size_t depth,
                 const uint64_t* alive) {
  const ShapNode& n = ctx->nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    IvLeafBatch(ctx, n.value, alive);
    return;
  }
  const double* xcol = ctx->cols + static_cast<size_t>(n.feature) * kBatchTile;
  const double thr = n.threshold;
  const double zval = ctx->z[static_cast<size_t>(n.feature)];
  size_t idx = 0;
  while (idx < ctx->path_len && ctx->path[idx].feature != n.feature) ++idx;
  const bool existed = idx < ctx->path_len;
  if (!existed) ctx->path[ctx->path_len++] = {n.feature, -kInf, kInf, 1.0};
  const uint64_t bit = uint64_t{1} << idx;
  const uint8_t zprev = static_cast<uint8_t>((ctx->zbits >> idx) & 1);
  if (existed) ctx->zsaved[depth] = zprev;
  // Dead subtrees (every leaf value 0.0) are skipped outright: their adds
  // are all ±0.0 no-ops in the per-row walk, and nothing below them reads
  // the edge's entry row. At least one child of a live node is live.
  const bool llive = ctx->nodes[static_cast<size_t>(n.left)].cover != 0.0;
  const bool rlive = ctx->nodes[static_cast<size_t>(n.right)].cover != 0.0;
  if (llive) {
    const bool zpass = zval <= thr && (!existed || zprev != 0);
    ctx->zbits = (ctx->zbits & ~bit) | (zpass ? bit : uint64_t{0});
    IvEdgeBatch<true>(ctx, n.left, depth, alive, xcol, thr, idx, existed,
                      /*fill_save=*/existed, zpass);
  }
  if (rlive) {
    const bool zpass = zval > thr && (!existed || zprev != 0);
    ctx->zbits = (ctx->zbits & ~bit) | (zpass ? bit : uint64_t{0});
    // When the left edge was skipped (dead left child), this edge is the
    // entry's first touch and must fill the stash for the unwind.
    IvEdgeBatch<false>(ctx, n.right, depth, alive, xcol, thr, idx, existed,
                       /*fill_save=*/existed && !llive, zpass);
  }
  if (!existed) {
    // No clear pass: write semantics above make the stale row
    // unreadable (same for the background's zbits slot).
    --ctx->path_len;
  } else {
    // The stash was filled by whichever edge ran first (a live node has
    // at least one live child), over exactly the parent's live blocks.
    uint64_t* prow = ctx->pbits + idx * kTileBlocks;
    const uint64_t* sv = ctx->psave + depth * kTileBlocks;
    for (size_t b = 0; b < ctx->nblk; ++b) {
      if (alive[b] != 0) prow[b] = sv[b];
    }
    ctx->zbits = (ctx->zbits & ~bit) |
                 (static_cast<uint64_t>(ctx->zsaved[depth]) << idx);
  }
}

/// Marks each thresholded node's `cover` 1.0 when its subtree holds any
/// nonzero leaf, 0.0 otherwise. Zero subtrees only ever add ±0.0 to the
/// sweep's accumulators, and += (±0.0) cannot change a slot that started
/// at +0.0 (in round-to-nearest, a += can only yield -0.0 from two -0.0
/// operands, so no slot is ever -0.0) — the batch skips them wholesale
/// and stays bit-identical to the per-row walk that still visits them.
double MarkLive(ShapNode* nodes, int id) {
  ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    n.cover = n.value != 0.0 ? 1.0 : 0.0;
  } else {
    const double l = MarkLive(nodes, n.left);
    const double r = MarkLive(nodes, n.right);
    n.cover = (l != 0.0 || r != 0.0) ? 1.0 : 0.0;
  }
  return n.cover;
}

/// Hard-thresholds `src` into the caller's arena (value >= tau -> 1 else
/// 0) and marks live subtrees; workers read it, only the caller sizes it.
ShapNode* ThresholdInto(ShapArena* arena, const std::vector<ShapNode>& src,
                        double tau) {
  arena->Ensure(&arena->thresholded, src.size());
  ShapNode* thresholded = arena->thresholded.data();
  for (size_t i = 0; i < src.size(); ++i) {
    thresholded[i] = src[i];
    thresholded[i].value = src[i].value >= tau ? 1.0 : 0.0;
  }
  MarkLive(thresholded, 0);
  return thresholded;
}

/// Shared epilogue of the two thresholded entry points: combine the
/// per-tile partials per coordinate with the fixed pairwise tree.
Vector CombineTilePartials(ShapArena* arena, size_t ntiles, size_t d) {
  const size_t dim = d + 1;
  const double* tile_partial = arena->slice_partial.data();
  Vector out(d);
  for (size_t c = 0; c < d; ++c) {
    for (size_t k = 0; k < ntiles; ++k) {
      arena->pair[k] = tile_partial[k * dim + c];
    }
    out[c] = PairwiseSumInPlace(arena->pair.data(), ntiles);
  }
  return out;
}

void CountBatch(size_t instances) {
  XFAIR_COUNTER_ADD("tree_shap/batch_calls", 1);
  XFAIR_COUNTER_ADD("tree_shap/batch_instances", instances);
}

}  // namespace

TreeShapExplanation PathDependentTreeShap(const DecisionTree& tree,
                                          const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const ShapModelPtr model = ModelFor(tree);
  XFAIR_CHECK(model->max_feature < static_cast<int>(x.size()));
  TreeShapExplanation out;
  out.phi.assign(x.size(), 0.0);
  ShapArena& arena = LocalArena();
  ArenaCall call(&arena);
  arena.EnsurePd(model->max_unique_path);
  PathDependentTree(model->trees[0], x.data(), &arena.pd, &out.phi,
                    &out.base_value);
  return out;
}

TreeShapExplanation PathDependentTreeShap(const RandomForest& forest,
                                          const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const ShapModelPtr model = ModelFor(forest);
  const size_t d = x.size();
  XFAIR_CHECK(model->max_feature < static_cast<int>(d));
  const size_t num_trees = model->trees.size();
  // Slot d carries the base value so one reduction covers everything.
  Vector acc = ParallelReduceVector(
      0, num_trees, d + 1, [&](const ChunkRange& chunk, Vector* out) {
        ShapArena& arena = LocalArena();
        ArenaCall call(&arena);
        arena.EnsurePd(model->max_unique_path);
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          PathDependentTree(model->trees[t], x.data(), &arena.pd, out,
                            &(*out)[d]);
        }
      });
  const double inv = 1.0 / static_cast<double>(num_trees);
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

TreeShapExplanation PathDependentTreeShapMargin(
    const GradientBoostedTrees& gbm, const Vector& x) {
  XFAIR_CHECK_MSG(gbm.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const ShapModelPtr model = ModelFor(gbm);
  const size_t d = x.size();
  XFAIR_CHECK(model->max_feature < static_cast<int>(d));
  Vector acc = ParallelReduceVector(
      0, model->trees.size(), d + 1,
      [&](const ChunkRange& chunk, Vector* out) {
        ShapArena& arena = LocalArena();
        ArenaCall call(&arena);
        arena.EnsurePd(model->max_unique_path);
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          PathDependentTree(model->trees[t], x.data(), &arena.pd, out,
                            &(*out)[d]);
        }
      });
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= gbm.learning_rate();
  out.base_value = gbm.bias() + gbm.learning_rate() * acc[d];
  return out;
}

void TreeShapBatchInto(const DecisionTree& tree, const Matrix& xs,
                       Matrix* phi, Vector* base_values) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/batch");
  XFAIR_LATENCY_NS("latency/tree_shap_batch_ns");
  CountBatch(xs.rows());
  PathDependentBatch(ModelFor(tree), BatchMode::kTree, 1.0, 0.0, xs, phi,
                     base_values);
}

void TreeShapBatchInto(const RandomForest& forest, const Matrix& xs,
                       Matrix* phi, Vector* base_values) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/batch");
  XFAIR_LATENCY_NS("latency/tree_shap_batch_ns");
  CountBatch(xs.rows());
  const ShapModelPtr model = ModelFor(forest);
  const double inv = 1.0 / static_cast<double>(model->trees.size());
  PathDependentBatch(model, BatchMode::kForestMean, inv, 0.0, xs, phi,
                     base_values);
}

void TreeShapBatchMarginInto(const GradientBoostedTrees& gbm,
                             const Matrix& xs, Matrix* phi,
                             Vector* base_values) {
  XFAIR_CHECK_MSG(gbm.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/batch");
  XFAIR_LATENCY_NS("latency/tree_shap_batch_ns");
  CountBatch(xs.rows());
  PathDependentBatch(ModelFor(gbm), BatchMode::kGbmMargin,
                     gbm.learning_rate(), gbm.bias(), xs, phi, base_values);
}

TreeShapBatchExplanation TreeShapBatch(const DecisionTree& tree,
                                       const Matrix& xs) {
  TreeShapBatchExplanation out;
  TreeShapBatchInto(tree, xs, &out.phi, &out.base_values);
  return out;
}

TreeShapBatchExplanation TreeShapBatch(const RandomForest& forest,
                                       const Matrix& xs) {
  TreeShapBatchExplanation out;
  TreeShapBatchInto(forest, xs, &out.phi, &out.base_values);
  return out;
}

TreeShapBatchExplanation TreeShapBatchMargin(const GradientBoostedTrees& gbm,
                                             const Matrix& xs) {
  TreeShapBatchExplanation out;
  TreeShapBatchMarginInto(gbm, xs, &out.phi, &out.base_values);
  return out;
}

TreeShapExplanation InterventionalTreeShap(const DecisionTree& tree,
                                           const Matrix& background,
                                           const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_CHECK(background.rows() > 0);
  XFAIR_CHECK(x.size() == background.cols());
  XFAIR_SPAN("tree_shap/interventional");
  XFAIR_COUNTER_ADD("tree_shap/interventional_calls", 1);
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  const ShapModelPtr model = ModelFor(tree);
  XFAIR_CHECK(model->max_feature < static_cast<int>(x.size()));
  const size_t d = x.size();
  Vector acc = ParallelReduceVector(
      0, background.rows(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        ShapArena& arena = LocalArena();
        ArenaCall call(&arena);
        arena.Reserve(&arena.iv_path, model->max_unique_path + 1);
        for (size_t b = chunk.begin; b < chunk.end; ++b) {
          IvWalk(model->trees[0].data(), 0, x.data(), background.RowPtr(b),
                 &arena.iv_path, 1.0, out->data(), &(*out)[d], Factorials());
        }
      });
  const double inv = 1.0 / static_cast<double>(background.rows());
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

TreeShapExplanation InterventionalTreeShap(const RandomForest& forest,
                                           const Matrix& background,
                                           const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_CHECK(background.rows() > 0);
  XFAIR_CHECK(x.size() == background.cols());
  XFAIR_SPAN("tree_shap/interventional");
  XFAIR_COUNTER_ADD("tree_shap/interventional_calls", 1);
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  const size_t d = x.size();
  const ShapModelPtr model = ModelFor(forest);
  XFAIR_CHECK(model->max_feature < static_cast<int>(d));
  Vector acc = ParallelReduceVector(
      0, background.rows(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        ShapArena& arena = LocalArena();
        ArenaCall call(&arena);
        arena.Reserve(&arena.iv_path, model->max_unique_path + 1);
        for (size_t b = chunk.begin; b < chunk.end; ++b) {
          for (const std::vector<ShapNode>& nodes : model->trees) {
            IvWalk(nodes.data(), 0, x.data(), background.RowPtr(b),
                   &arena.iv_path, 1.0, out->data(), &(*out)[d],
                   Factorials());
          }
        }
      });
  const double inv = 1.0 / (static_cast<double>(background.rows()) *
                            static_cast<double>(model->trees.size()));
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

void InterventionalTreeShapBatchInto(const DecisionTree& tree,
                                     const Matrix& background,
                                     const Matrix& xs, Matrix* phi,
                                     Vector* base_values) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/batch_interventional");
  CountBatch(xs.rows());
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  InterventionalBatch(ModelFor(tree), background, xs, phi, base_values);
}

void InterventionalTreeShapBatchInto(const RandomForest& forest,
                                     const Matrix& background,
                                     const Matrix& xs, Matrix* phi,
                                     Vector* base_values) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/batch_interventional");
  CountBatch(xs.rows());
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  InterventionalBatch(ModelFor(forest), background, xs, phi, base_values);
}

TreeShapBatchExplanation InterventionalTreeShapBatch(const DecisionTree& tree,
                                                     const Matrix& background,
                                                     const Matrix& xs) {
  TreeShapBatchExplanation out;
  InterventionalTreeShapBatchInto(tree, background, xs, &out.phi,
                                  &out.base_values);
  return out;
}

TreeShapBatchExplanation InterventionalTreeShapBatch(
    const RandomForest& forest, const Matrix& background, const Matrix& xs) {
  TreeShapBatchExplanation out;
  InterventionalTreeShapBatchInto(forest, background, xs, &out.phi,
                                  &out.base_values);
  return out;
}

Vector InterventionalTreeShapThresholded(const DecisionTree& tree,
                                         const Matrix& xs,
                                         const std::vector<size_t>& rows,
                                         const Vector& weights,
                                         const Vector& z, double tau) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_CHECK(rows.size() == weights.size());
  XFAIR_CHECK(z.size() == xs.cols());
  XFAIR_SPAN("tree_shap/thresholded");
  XFAIR_COUNTER_ADD("tree_shap/thresholded_calls", 1);
  const ShapModelPtr model = ModelFor(tree);
  XFAIR_CHECK(model->max_feature < static_cast<int>(z.size()));
  const size_t d = z.size();
  if (rows.empty()) return Vector(d, 0.0);
  const size_t dim = d + 1;
  ShapArena& caller_arena = LocalArena();
  ArenaCall caller_call(&caller_arena);
  ShapNode* thresholded = ThresholdInto(&caller_arena, model->trees[0], tau);
  const size_t ntiles = (rows.size() + kBatchTile - 1) / kBatchTile;
  caller_arena.Ensure(&caller_arena.slice_partial, ntiles * dim);
  caller_arena.Ensure(&caller_arena.pair, ntiles);
  double* tile_partial = caller_arena.slice_partial.data();
  const size_t m_cap = std::min(model->max_unique_path, kMemoMaxBits);
  ParallelForChunks(0, ntiles, [&](const ChunkRange& ichunk) {
    ShapArena& arena = LocalArena();
    ArenaCall call(&arena);
    // Size everything for a full tile regardless of this chunk's length,
    // so every worker's arena converges to the same steady-state shape.
    arena.Ensure(&arena.cols, d * kBatchTile);
    arena.Ensure(&arena.pbits, (model->max_unique_path + 1) * kTileBlocks);
    arena.Ensure(&arena.psave, (model->max_path_len + 1) * kTileBlocks);
    arena.Ensure(&arena.zbits_saved, model->max_path_len + 1);
    arena.Ensure(&arena.alive_bits, (model->max_path_len + 2) * kTileBlocks);
    arena.Ensure(&arena.bpath, model->max_unique_path + 1);
    arena.Ensure(&arena.partial, kBatchTile * dim);
    arena.Ensure(&arena.memo_vals, (uint64_t{1} << m_cap) * 2);
    arena.Ensure(&arena.memo_epoch, uint64_t{1} << m_cap);
    IvBatchCtx ctx;
    ctx.nodes = thresholded;
    ctx.z = z.data();
    ctx.dim = dim;
    ctx.path = arena.bpath.data();
    ctx.pbits = arena.pbits.data();
    ctx.psave = arena.psave.data();
    ctx.zsaved = arena.zbits_saved.data();
    ctx.alive = arena.alive_bits.data();
    ctx.m_cap = m_cap;
    ctx.memo_vals = arena.memo_vals.data();
    ctx.memo_epoch = arena.memo_epoch.data();
    ctx.epoch = &arena.epoch;
    ctx.fact = Factorials();
    for (size_t ti = ichunk.begin; ti < ichunk.end; ++ti) {
      const size_t at = ti * kBatchTile;
      const size_t tile = std::min(kBatchTile, rows.size() - at);
      ctx.tile = tile;
      ctx.nblk = (tile + kBlockLanes - 1) / kBlockLanes;
      double* cols = arena.cols.data();
      for (size_t i = 0; i < tile; ++i) {
        const double* row = xs.RowPtr(rows[at + i]);
        for (size_t f = 0; f < d; ++f) cols[f * kBatchTile + i] = row[f];
      }
      ctx.cols = cols;
      ctx.weights = weights.data() + at;
      double* acc = arena.partial.data();
      std::fill(acc, acc + tile * dim, 0.0);
      ctx.acc = acc;
      ctx.path_len = 0;
      ctx.zbits = 0;
      // Depth-0 aliveness: every instance in the tile (trailing lanes of
      // a ragged tile's last word stay dead — packs may compute over
      // them but nothing reads those lanes). Entry rows need no reset:
      // fresh-row write semantics rewrite a row before any read. A tree
      // with no nonzero leaf contributes only ±0.0 no-op adds.
      if (thresholded[0].cover != 0.0) {
        uint64_t* alive0 = arena.alive_bits.data();
        for (size_t b = 0; b < ctx.nblk; ++b) {
          const size_t lanes = std::min(kBlockLanes, tile - b * kBlockLanes);
          alive0[b] = lanes == kBlockLanes ? ~uint64_t{0}
                                           : (uint64_t{1} << lanes) - 1;
        }
        IvWalkBatch(&ctx, 0, 0, alive0);
      }
      // Tile partial: ascending-row serial sum per coordinate — the exact
      // combine the looped entry point applies to its per-row vectors.
      double* part = tile_partial + ti * dim;
      for (size_t c = 0; c < dim; ++c) {
        double s = 0.0;
        for (size_t i = 0; i < tile; ++i) s += acc[i * dim + c];
        part[c] = s;
      }
    }
    XFAIR_COUNTER_ADD("tree_shap/leaf_memo_hits", ctx.memo_hits);
    XFAIR_COUNTER_ADD("tree_shap/leaf_memo_misses", ctx.memo_misses);
  });
  return CombineTilePartials(&caller_arena, ntiles, d);
}

Vector InterventionalTreeShapThresholdedLooped(const DecisionTree& tree,
                                               const Matrix& xs,
                                               const std::vector<size_t>& rows,
                                               const Vector& weights,
                                               const Vector& z, double tau) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_CHECK(rows.size() == weights.size());
  XFAIR_CHECK(z.size() == xs.cols());
  XFAIR_SPAN("tree_shap/thresholded_looped");
  XFAIR_COUNTER_ADD("tree_shap/thresholded_calls", 1);
  const ShapModelPtr model = ModelFor(tree);
  XFAIR_CHECK(model->max_feature < static_cast<int>(z.size()));
  const size_t d = z.size();
  if (rows.empty()) return Vector(d, 0.0);
  const size_t dim = d + 1;
  ShapArena& caller_arena = LocalArena();
  ArenaCall caller_call(&caller_arena);
  ShapNode* thresholded = ThresholdInto(&caller_arena, model->trees[0], tau);
  // Same tiling and combine as the batched sweep so the two entry points
  // are comparable bit for bit; only the per-tile inner loop differs (one
  // independent IvWalk per row here).
  const size_t ntiles = (rows.size() + kBatchTile - 1) / kBatchTile;
  caller_arena.Ensure(&caller_arena.slice_partial, ntiles * dim);
  caller_arena.Ensure(&caller_arena.pair, ntiles);
  double* tile_partial = caller_arena.slice_partial.data();
  ParallelForChunks(0, ntiles, [&](const ChunkRange& ichunk) {
    ShapArena& arena = LocalArena();
    ArenaCall call(&arena);
    arena.Reserve(&arena.iv_path, model->max_unique_path + 1);
    arena.Ensure(&arena.partial, dim);
    for (size_t ti = ichunk.begin; ti < ichunk.end; ++ti) {
      const size_t at = ti * kBatchTile;
      const size_t tile = std::min(kBatchTile, rows.size() - at);
      double* part = tile_partial + ti * dim;
      std::fill(part, part + dim, 0.0);
      double* v = arena.partial.data();
      for (size_t i = 0; i < tile; ++i) {
        std::fill(v, v + dim, 0.0);
        IvWalk(thresholded, 0, xs.RowPtr(rows[at + i]), z.data(),
               &arena.iv_path, weights[at + i], v, &v[d], Factorials());
        for (size_t c = 0; c < dim; ++c) part[c] += v[c];
      }
    }
  });
  return CombineTilePartials(&caller_arena, ntiles, d);
}

CoalitionValue PathDependentGame(const DecisionTree& tree, const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  const ShapModelPtr model = ModelFor(tree);
  return [model, x](const std::vector<bool>& mask) {
    return ExpValue(model->trees[0], 0, mask, x);
  };
}

CoalitionValue PathDependentGame(const RandomForest& forest, const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  const ShapModelPtr model = ModelFor(forest);
  return [model, x](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (const std::vector<ShapNode>& nodes : model->trees) {
      acc += ExpValue(nodes, 0, mask, x);
    }
    return acc / static_cast<double>(model->trees.size());
  };
}

CoalitionValue PathDependentGameMargin(const GradientBoostedTrees& gbm,
                                       const Vector& x) {
  XFAIR_CHECK_MSG(gbm.fitted(), "model not fitted");
  const ShapModelPtr model = ModelFor(gbm);
  const double lr = gbm.learning_rate();
  const double bias = gbm.bias();
  return [model, x, lr, bias](const std::vector<bool>& mask) {
    double acc = bias;
    for (const std::vector<ShapNode>& nodes : model->trees) {
      acc += lr * ExpValue(nodes, 0, mask, x);
    }
    return acc;
  };
}

}  // namespace xfair
