#include "src/explain/tree_shap.h"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

/// Paths may touch at most this many distinct features (factorial table
/// size; also keeps the closed-form weights inside double range).
constexpr size_t kMaxPathFeatures = 64;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Unified view of TreeNode / GbmNode for the walkers below.
struct ShapNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1, right = -1;
  double value = 0.0;  ///< Leaf output.
  double cover = 0.0;  ///< Training weight that reached the node.
};

std::vector<ShapNode> ToShapNodes(const std::vector<TreeNode>& nodes) {
  std::vector<ShapNode> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out[i] = {nodes[i].feature, nodes[i].threshold, nodes[i].left,
              nodes[i].right,   nodes[i].proba,     nodes[i].weight};
  }
  return out;
}

std::vector<ShapNode> ToShapNodes(const std::vector<GbmNode>& nodes) {
  std::vector<ShapNode> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    out[i] = {nodes[i].feature, nodes[i].threshold, nodes[i].left,
              nodes[i].right,   nodes[i].value,     nodes[i].cover};
  }
  return out;
}

int MaxFeature(const std::vector<ShapNode>& nodes) {
  int mf = -1;
  for (const ShapNode& n : nodes) mf = std::max(mf, n.feature);
  return mf;
}

const double* Factorials() {
  static const std::array<double, kMaxPathFeatures + 1> table = [] {
    std::array<double, kMaxPathFeatures + 1> t{};
    t[0] = 1.0;
    for (size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] * static_cast<double>(i);
    }
    return t;
  }();
  return table.data();
}

// ---------------------------------------------------------------------------
// Path-dependent TreeSHAP.
//
// Per leaf, the EXPVALUE game restricted to the path's unique features is
//   v(S) = value * prod_f (f in S ? one_f : zero_f),
// with one_f = [x passes f's merged split interval] in {0, 1} and
// zero_f = product of f's cover ratios along the path (> 0). The Shapley
// weight sum for feature f needs the elementary symmetric polynomials of
// the *other* factors, obtained by convolving all factors once (O(m^2))
// and deconvolving one factor at a time (O(m) each).
// ---------------------------------------------------------------------------

/// One unique feature on the current root-to-node path.
struct PdEntry {
  int feature = -1;
  double lo = -kInf, hi = kInf;  ///< Pass iff lo < x[feature] <= hi.
  double zero = 1.0;             ///< Product of this feature's cover ratios.
};

struct PdScratch {
  std::vector<PdEntry> path;
  std::vector<double> ones;  ///< one_f per path entry, in path order.
  std::vector<double> c;     ///< Coefficients of prod (zero_f + one_f t).
  std::vector<double> cw;    ///< Coefficients with one factor removed.
};

void PdLeaf(double value, const double* x, PdScratch* s, Vector* phi,
            double* base, const double* fact) {
  const std::vector<PdEntry>& path = s->path;
  const size_t m = path.size();
  XFAIR_CHECK_MSG(m <= kMaxPathFeatures, "tree path too deep for TreeSHAP");
  s->ones.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const PdEntry& e = path[i];
    s->ones[i] =
        (e.lo < x[e.feature] && x[e.feature] <= e.hi) ? 1.0 : 0.0;
  }

  // Full product polynomial, built factor by factor in place.
  std::vector<double>& c = s->c;
  c.assign(m + 1, 0.0);
  c[0] = 1.0;
  for (size_t i = 0; i < m; ++i) {
    const double zero = path[i].zero;
    const double one = s->ones[i];
    for (size_t j = i + 2; j-- > 0;) {
      c[j] = zero * c[j] + (j > 0 ? one * c[j - 1] : 0.0);
    }
  }
  *base += value * c[0];  // c[0] = prod zero_f = P(leaf | empty coalition).
  if (m == 0) return;

  std::vector<double>& cw = s->cw;
  cw.assign(m, 0.0);
  const double inv_mfact = 1.0 / fact[m];
  for (size_t i = 0; i < m; ++i) {
    const double zero = path[i].zero;
    const double one = s->ones[i];
    // Deconvolve factor i: c[j] = zero * cw[j] + one * cw[j-1].
    if (one == 0.0) {
      for (size_t j = 0; j < m; ++j) cw[j] = c[j] / zero;
    } else {
      cw[m - 1] = c[m];
      for (size_t j = m - 1; j-- > 0;) {
        cw[j] = c[j + 1] - zero * cw[j + 1];
      }
    }
    double acc = 0.0;
    for (size_t j = 0; j < m; ++j) acc += cw[j] * fact[j] * fact[m - 1 - j];
    (*phi)[static_cast<size_t>(path[i].feature)] +=
        value * (one - zero) * acc * inv_mfact;
  }
}

void PdWalk(const std::vector<ShapNode>& nodes, int id, const double* x,
            PdScratch* s, Vector* phi, double* base, const double* fact) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    PdLeaf(n.value, x, s, phi, base, fact);
    return;
  }
  auto descend = [&](int child, bool left_edge) {
    const double ratio = nodes[static_cast<size_t>(child)].cover / n.cover;
    size_t idx = 0;
    while (idx < s->path.size() && s->path[idx].feature != n.feature) ++idx;
    const bool existed = idx < s->path.size();
    if (!existed) s->path.push_back({n.feature, -kInf, kInf, 1.0});
    const PdEntry saved = s->path[idx];
    PdEntry& e = s->path[idx];
    if (left_edge) {
      e.hi = std::min(e.hi, n.threshold);
    } else {
      e.lo = std::max(e.lo, n.threshold);
    }
    e.zero = saved.zero * ratio;
    PdWalk(nodes, child, x, s, phi, base, fact);
    if (existed) {
      s->path[idx] = saved;
    } else {
      s->path.pop_back();
    }
  };
  descend(n.left, /*left_edge=*/true);
  descend(n.right, /*left_edge=*/false);
}

/// Adds one tree's path-dependent attributions into phi/base.
void PathDependentTree(const std::vector<ShapNode>& nodes, const double* x,
                       PdScratch* s, Vector* phi, double* base) {
  XFAIR_CHECK(!nodes.empty() && nodes[0].cover > 0.0);
  PdWalk(nodes, 0, x, s, phi, base, Factorials());
}

// ---------------------------------------------------------------------------
// Interventional TreeSHAP.
//
// For one explained row x and one background row z, a leaf's coalition
// indicator is [P subset of S][N disjoint from S], where P are the unique
// path features only x passes and N the ones only z passes (leaves with a
// feature neither passes are unreachable for every coalition and the
// descent prunes them). The Shapley value of that indicator game is the
// closed form (p-1)! q! / (p+q)! for f in P and -p! (q-1)! / (p+q)! for
// f in N; leaves with p == 0 contribute to the empty-coalition value.
// ---------------------------------------------------------------------------

struct IvEntry {
  int feature = -1;
  double lo = -kInf, hi = kInf;
};

/// Walks leaves reachable by some x/z hybrid, accumulating `weight`-scaled
/// attributions into phi and the empty-coalition value into base.
void IvWalk(const std::vector<ShapNode>& nodes, int id, const double* x,
            const double* z, std::vector<IvEntry>* path, double weight,
            Vector* phi, double* base, const double* fact) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) {
    const size_t m = path->size();
    XFAIR_CHECK_MSG(m <= kMaxPathFeatures, "tree path too deep for TreeSHAP");
    size_t p = 0, q = 0;
    for (const IvEntry& e : *path) {
      const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
      const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
      p += a && !b;
      q += !a && b;
    }
    if (p == 0) *base += weight * n.value;
    if (p + q == 0) return;
    const double inv = 1.0 / fact[p + q];
    const double w_pos = p > 0 ? fact[p - 1] * fact[q] * inv : 0.0;
    const double w_neg = q > 0 ? fact[p] * fact[q - 1] * inv : 0.0;
    for (const IvEntry& e : *path) {
      const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
      const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
      if (a && !b) {
        (*phi)[static_cast<size_t>(e.feature)] += weight * n.value * w_pos;
      } else if (!a && b) {
        (*phi)[static_cast<size_t>(e.feature)] -= weight * n.value * w_neg;
      }
    }
    return;
  }
  auto descend = [&](int child, bool left_edge) {
    size_t idx = 0;
    while (idx < path->size() && (*path)[idx].feature != n.feature) ++idx;
    const bool existed = idx < path->size();
    if (!existed) path->push_back({n.feature, -kInf, kInf});
    const IvEntry saved = (*path)[idx];
    IvEntry& e = (*path)[idx];
    if (left_edge) {
      e.hi = std::min(e.hi, n.threshold);
    } else {
      e.lo = std::max(e.lo, n.threshold);
    }
    const bool a = e.lo < x[e.feature] && x[e.feature] <= e.hi;
    const bool b = e.lo < z[e.feature] && z[e.feature] <= e.hi;
    if (a || b) IvWalk(nodes, child, x, z, path, weight, phi, base, fact);
    if (existed) {
      (*path)[idx] = saved;
    } else {
      path->pop_back();
    }
  };
  descend(n.left, /*left_edge=*/true);
  descend(n.right, /*left_edge=*/false);
}

/// EXPVALUE reference game: descend x's branch for unmasked features,
/// cover-average both children for masked ones. Exponential when fed to
/// ExactShapley — the oracle the polynomial algorithms are tested against.
double ExpValue(const std::vector<ShapNode>& nodes, int id,
                const std::vector<bool>& mask, const Vector& x) {
  const ShapNode& n = nodes[static_cast<size_t>(id)];
  if (n.feature < 0) return n.value;
  const size_t f = static_cast<size_t>(n.feature);
  if (mask[f]) {
    return ExpValue(nodes, x[f] <= n.threshold ? n.left : n.right, mask, x);
  }
  const ShapNode& l = nodes[static_cast<size_t>(n.left)];
  const ShapNode& r = nodes[static_cast<size_t>(n.right)];
  return (l.cover * ExpValue(nodes, n.left, mask, x) +
          r.cover * ExpValue(nodes, n.right, mask, x)) /
         n.cover;
}

}  // namespace

TreeShapExplanation PathDependentTreeShap(const DecisionTree& tree,
                                          const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const std::vector<ShapNode> nodes = ToShapNodes(tree.nodes());
  XFAIR_CHECK(MaxFeature(nodes) < static_cast<int>(x.size()));
  TreeShapExplanation out;
  out.phi.assign(x.size(), 0.0);
  PdScratch scratch;
  PathDependentTree(nodes, x.data(), &scratch, &out.phi, &out.base_value);
  return out;
}

TreeShapExplanation PathDependentTreeShap(const RandomForest& forest,
                                          const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const std::vector<DecisionTree>& trees = forest.trees();
  const size_t d = x.size();
  const size_t num_trees = trees.size();
  // Slot d carries the base value so one reduction covers everything.
  Vector acc = ParallelReduceVector(
      0, num_trees, d + 1, [&](const ChunkRange& chunk, Vector* out) {
        PdScratch scratch;
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          const std::vector<ShapNode> nodes = ToShapNodes(trees[t].nodes());
          XFAIR_CHECK(MaxFeature(nodes) < static_cast<int>(d));
          PathDependentTree(nodes, x.data(), &scratch, out, &(*out)[d]);
        }
      });
  const double inv = 1.0 / static_cast<double>(num_trees);
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

TreeShapExplanation PathDependentTreeShapMargin(
    const GradientBoostedTrees& gbm, const Vector& x) {
  XFAIR_CHECK_MSG(gbm.fitted(), "model not fitted");
  XFAIR_SPAN("tree_shap/path_dependent");
  XFAIR_COUNTER_ADD("tree_shap/path_dependent_calls", 1);
  const auto& trees = gbm.trees();
  const size_t d = x.size();
  Vector acc = ParallelReduceVector(
      0, trees.size(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        PdScratch scratch;
        for (size_t t = chunk.begin; t < chunk.end; ++t) {
          const std::vector<ShapNode> nodes = ToShapNodes(trees[t]);
          XFAIR_CHECK(MaxFeature(nodes) < static_cast<int>(d));
          PathDependentTree(nodes, x.data(), &scratch, out, &(*out)[d]);
        }
      });
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= gbm.learning_rate();
  out.base_value = gbm.bias() + gbm.learning_rate() * acc[d];
  return out;
}

TreeShapExplanation InterventionalTreeShap(const DecisionTree& tree,
                                           const Matrix& background,
                                           const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_CHECK(background.rows() > 0);
  XFAIR_CHECK(x.size() == background.cols());
  XFAIR_SPAN("tree_shap/interventional");
  XFAIR_COUNTER_ADD("tree_shap/interventional_calls", 1);
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  const std::vector<ShapNode> nodes = ToShapNodes(tree.nodes());
  XFAIR_CHECK(MaxFeature(nodes) < static_cast<int>(x.size()));
  const size_t d = x.size();
  Vector acc = ParallelReduceVector(
      0, background.rows(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        std::vector<IvEntry> path;
        for (size_t b = chunk.begin; b < chunk.end; ++b) {
          IvWalk(nodes, 0, x.data(), background.RowPtr(b), &path, 1.0, out,
                 &(*out)[d], Factorials());
        }
      });
  const double inv = 1.0 / static_cast<double>(background.rows());
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

TreeShapExplanation InterventionalTreeShap(const RandomForest& forest,
                                           const Matrix& background,
                                           const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  XFAIR_CHECK(background.rows() > 0);
  XFAIR_CHECK(x.size() == background.cols());
  XFAIR_SPAN("tree_shap/interventional");
  XFAIR_COUNTER_ADD("tree_shap/interventional_calls", 1);
  XFAIR_COUNTER_ADD("tree_shap/background_rows", background.rows());
  const size_t d = x.size();
  std::vector<std::vector<ShapNode>> all;
  all.reserve(forest.trees().size());
  for (const DecisionTree& tree : forest.trees()) {
    all.push_back(ToShapNodes(tree.nodes()));
    XFAIR_CHECK(MaxFeature(all.back()) < static_cast<int>(d));
  }
  Vector acc = ParallelReduceVector(
      0, background.rows(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        std::vector<IvEntry> path;
        for (size_t b = chunk.begin; b < chunk.end; ++b) {
          for (const std::vector<ShapNode>& nodes : all) {
            IvWalk(nodes, 0, x.data(), background.RowPtr(b), &path, 1.0, out,
                   &(*out)[d], Factorials());
          }
        }
      });
  const double inv = 1.0 / (static_cast<double>(background.rows()) *
                            static_cast<double>(all.size()));
  TreeShapExplanation out;
  out.phi.assign(acc.begin(), acc.begin() + static_cast<long>(d));
  for (double& v : out.phi) v *= inv;
  out.base_value = acc[d] * inv;
  return out;
}

Vector InterventionalTreeShapThresholded(const DecisionTree& tree,
                                         const Matrix& xs,
                                         const std::vector<size_t>& rows,
                                         const Vector& weights,
                                         const Vector& z, double tau) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  XFAIR_CHECK(rows.size() == weights.size());
  XFAIR_CHECK(z.size() == xs.cols());
  XFAIR_SPAN("tree_shap/thresholded");
  XFAIR_COUNTER_ADD("tree_shap/thresholded_calls", 1);
  std::vector<ShapNode> nodes = ToShapNodes(tree.nodes());
  XFAIR_CHECK(MaxFeature(nodes) < static_cast<int>(z.size()));
  for (ShapNode& n : nodes) n.value = n.value >= tau ? 1.0 : 0.0;
  const size_t d = z.size();
  Vector acc = ParallelReduceVector(
      0, rows.size(), d + 1, [&](const ChunkRange& chunk, Vector* out) {
        std::vector<IvEntry> path;
        for (size_t i = chunk.begin; i < chunk.end; ++i) {
          IvWalk(nodes, 0, xs.RowPtr(rows[i]), z.data(), &path, weights[i],
                 out, &(*out)[d], Factorials());
        }
      });
  acc.resize(d);  // Drop the empty-coalition slot; callers track their own.
  return acc;
}

CoalitionValue PathDependentGame(const DecisionTree& tree, const Vector& x) {
  XFAIR_CHECK_MSG(tree.fitted(), "model not fitted");
  auto nodes =
      std::make_shared<const std::vector<ShapNode>>(ToShapNodes(tree.nodes()));
  return [nodes, x](const std::vector<bool>& mask) {
    return ExpValue(*nodes, 0, mask, x);
  };
}

CoalitionValue PathDependentGame(const RandomForest& forest, const Vector& x) {
  XFAIR_CHECK_MSG(forest.fitted(), "model not fitted");
  auto all = std::make_shared<std::vector<std::vector<ShapNode>>>();
  for (const DecisionTree& tree : forest.trees()) {
    all->push_back(ToShapNodes(tree.nodes()));
  }
  return [all, x](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (const std::vector<ShapNode>& nodes : *all) {
      acc += ExpValue(nodes, 0, mask, x);
    }
    return acc / static_cast<double>(all->size());
  };
}

CoalitionValue PathDependentGameMargin(const GradientBoostedTrees& gbm,
                                       const Vector& x) {
  XFAIR_CHECK_MSG(gbm.fitted(), "model not fitted");
  auto all = std::make_shared<std::vector<std::vector<ShapNode>>>();
  for (const auto& tree : gbm.trees()) all->push_back(ToShapNodes(tree));
  const double lr = gbm.learning_rate();
  const double bias = gbm.bias();
  return [all, x, lr, bias](const std::vector<bool>& mask) {
    double acc = bias;
    for (const std::vector<ShapNode>& nodes : *all) {
      acc += lr * ExpValue(nodes, 0, mask, x);
    }
    return acc;
  };
}

}  // namespace xfair
