// Polynomial-time SHAP for tree models (Lundberg et al.'s TreeSHAP family,
// derived here from the subset-polynomial form).
//
// The exponential Shapley engines in shap.h enumerate (or sample) 2^d
// coalitions and re-evaluate the model for each. For trees the coalition
// game factors over root-to-leaf paths, which admits two exact
// polynomial-time algorithms:
//
// - **Path-dependent** (`PathDependentTreeShap`): absent features are
//   marginalized with the training covers stored in the nodes — the
//   EXPVALUE game. Per leaf, the game restricted to the path's unique
//   features is a product of factors (zero_f + one_f * t), where one_f
//   indicates x satisfies the merged split interval of f and zero_f is the
//   product of f's cover ratios along the path. Convolving the factors and
//   deconvolving one feature at a time yields every Shapley weight in
//   O(leaves * depth^2) — no model evaluations at all.
// - **Interventional** (`InterventionalTreeShap`): absent features come
//   from explicit background rows — *exactly* the masking game
//   ShapExplainInstance evaluates, so its results are interchangeable with
//   ExactShapley over that game (up to float roundoff). Per background row
//   and leaf, only the features where x and the background row disagree on
//   the merged interval matter (p features only x passes, q features only
//   the background passes), and the Shapley weight has the closed form
//   (p-1)! q! / (p+q)! — O(background * paths * depth) total.
//
// Both run on the deterministic parallel runtime: background rows (or
// trees) fan out over DeterministicChunks and partial attributions merge
// in a fixed pairwise tree, so attributions are bit-identical for every
// XFAIR_THREADS setting.
//
// **Batched engine** (`TreeShapBatch` / `InterventionalTreeShapBatch`):
// explains a whole Matrix of instances in one call. The batch sweeps every
// tree once per instance tile with the instances laid out
// structure-of-arrays (contiguous per-feature columns), memoizes the
// per-leaf Shapley deltas by coalition mask, parallelizes over instance
// chunks, and keeps all scratch in reusable per-thread arenas so the
// steady state allocates nothing. Results are bit-identical (0 ulp) to
// looping the matching per-instance entry point over the rows, at any
// thread count and with SIMD on or off — both paths share the same leaf
// arithmetic and replicate the same chunked pairwise reductions. See
// DESIGN.md §9 for the layout, the arena contract, and the determinism
// argument.
//
// GBMs are additive in *margin* space only — sigmoid(sum of trees) does
// not factor — so the GBM entry point explains the margin; probability-
// space attributions for GBMs stay on the generic engines.
//
// The `PathDependentGame` helpers expose the EXPVALUE coalition game so
// tests and benches can pit these algorithms against ExactShapley as the
// reference oracle.

#ifndef XFAIR_EXPLAIN_TREE_SHAP_H_
#define XFAIR_EXPLAIN_TREE_SHAP_H_

#include <vector>

#include "src/explain/shap.h"
#include "src/model/decision_tree.h"
#include "src/model/gbm.h"
#include "src/model/random_forest.h"

namespace xfair {

/// Attributions plus the value the attributions are measured against:
/// phi sums to f(x) - base_value (efficiency).
struct TreeShapExplanation {
  Vector phi;               ///< One attribution per feature.
  double base_value = 0.0;  ///< E[f] under the algorithm's background.
};

/// Path-dependent TreeSHAP: exact Shapley values of the cover-weighted
/// EXPVALUE game. base_value is the cover-weighted mean prediction.
/// O(leaves * depth^2); requires every split-path to touch <= 64 distinct
/// features.
TreeShapExplanation PathDependentTreeShap(const DecisionTree& tree,
                                          const Vector& x);
/// Forest variant: attributions of the tree-mean output (trees reduce in
/// a fixed pairwise order — thread-count invariant).
TreeShapExplanation PathDependentTreeShap(const RandomForest& forest,
                                          const Vector& x);
/// GBM variant in margin space: phi explains bias + lr * sum_t tree_t(x).
TreeShapExplanation PathDependentTreeShapMargin(
    const GradientBoostedTrees& gbm, const Vector& x);

/// Interventional TreeSHAP: exact Shapley values of the masking game over
/// `background` rows — the same game ShapExplainInstance uses, evaluated
/// in closed form instead of by coalition enumeration. base_value is the
/// mean background prediction.
TreeShapExplanation InterventionalTreeShap(const DecisionTree& tree,
                                           const Matrix& background,
                                           const Vector& x);
TreeShapExplanation InterventionalTreeShap(const RandomForest& forest,
                                           const Matrix& background,
                                           const Vector& x);

/// Fairness fast path (fairness_shap kMask mode): exact Shapley values of
/// the game sum_i weights[i] * [tree(r_i with coalition features kept,
/// others masked to z) >= tau], where r_i is row rows[i] of xs. By
/// linearity this is the weighted sum of per-row interventional SHAP on
/// the {0,1}-thresholded tree. Returns the attribution vector (the game's
/// empty-coalition value is weights-weighted [tree(z) >= tau], which the
/// caller already tracks as its baseline gap).
///
/// Runs as one SoA tile sweep per thresholded tree (DESIGN §10):
/// incremental coalition masks, per-mask leaf-delta memoization, and
/// grow-only arenas, bit-identical (0 ulp) to the Looped reference below
/// at any thread count and SIMD setting.
Vector InterventionalTreeShapThresholded(const DecisionTree& tree,
                                         const Matrix& xs,
                                         const std::vector<size_t>& rows,
                                         const Vector& weights,
                                         const Vector& z, double tau);

/// Reference implementation of the same game: one independent IvWalk per
/// row, with the batched sweep's tiling and cross-tile combine. Used by
/// the 0-ulp golden tests and as the looped baseline for the
/// audit-rows/sec benchmark.
Vector InterventionalTreeShapThresholdedLooped(const DecisionTree& tree,
                                               const Matrix& xs,
                                               const std::vector<size_t>& rows,
                                               const Vector& weights,
                                               const Vector& z, double tau);

/// A batch of explanations: row i of `phi` explains instance i.
struct TreeShapBatchExplanation {
  Matrix phi;          ///< rows x features attribution matrix.
  Vector base_values;  ///< One base value per row.
};

/// Batched path-dependent TreeSHAP: one SHAP vector per row of `xs`,
/// bit-identical (0 ulp) to calling the per-instance overload on every
/// row, at any thread count. Instances fan out over DeterministicChunks;
/// within a chunk the engine walks each tree once per SoA instance tile
/// and memoizes leaf deltas by coalition mask. The `Into` forms reuse the
/// caller's buffers (resized only when the shape changes); per-thread
/// scratch arenas make repeated same-shape calls allocation-free.
void TreeShapBatchInto(const DecisionTree& tree, const Matrix& xs,
                       Matrix* phi, Vector* base_values);
void TreeShapBatchInto(const RandomForest& forest, const Matrix& xs,
                       Matrix* phi, Vector* base_values);
/// GBM batch in margin space (see PathDependentTreeShapMargin).
void TreeShapBatchMarginInto(const GradientBoostedTrees& gbm,
                             const Matrix& xs, Matrix* phi,
                             Vector* base_values);

TreeShapBatchExplanation TreeShapBatch(const DecisionTree& tree,
                                       const Matrix& xs);
TreeShapBatchExplanation TreeShapBatch(const RandomForest& forest,
                                       const Matrix& xs);
TreeShapBatchExplanation TreeShapBatchMargin(const GradientBoostedTrees& gbm,
                                             const Matrix& xs);

/// Batched interventional TreeSHAP: per row of `xs`, bit-identical to the
/// per-instance overload with the same `background`. Parallel over
/// instances (each instance replays the per-instance background-chunk
/// reduction exactly), with node conversion cached and path scratch
/// arena-backed.
void InterventionalTreeShapBatchInto(const DecisionTree& tree,
                                     const Matrix& background,
                                     const Matrix& xs, Matrix* phi,
                                     Vector* base_values);
void InterventionalTreeShapBatchInto(const RandomForest& forest,
                                     const Matrix& background,
                                     const Matrix& xs, Matrix* phi,
                                     Vector* base_values);
TreeShapBatchExplanation InterventionalTreeShapBatch(const DecisionTree& tree,
                                                     const Matrix& background,
                                                     const Matrix& xs);
TreeShapBatchExplanation InterventionalTreeShapBatch(
    const RandomForest& forest, const Matrix& background, const Matrix& xs);

/// The EXPVALUE coalition game (exponential reference for the
/// path-dependent algorithm): v(S) descends x's branch for features in S
/// and cover-averages both children otherwise. Captures copies of the
/// model's nodes and of x; safe to call concurrently.
CoalitionValue PathDependentGame(const DecisionTree& tree, const Vector& x);
CoalitionValue PathDependentGame(const RandomForest& forest, const Vector& x);
/// Margin-space game for GBMs: bias + lr * sum_t EXPVALUE_t(S).
CoalitionValue PathDependentGameMargin(const GradientBoostedTrees& gbm,
                                       const Vector& x);

}  // namespace xfair

#endif  // XFAIR_EXPLAIN_TREE_SHAP_H_
