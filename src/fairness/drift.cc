#include "src/fairness/drift.h"

#include <cmath>

namespace xfair {

double FairnessDriftMonitor::ObserveBatch(const Model& model,
                                          const Dataset& batch) {
  const double gap = StatisticalParityDifference(model, batch);
  history_.push_back(gap);
  if (std::fabs(gap) > options_.tolerance) {
    ++consecutive_;
    if (consecutive_ >= options_.patience) alarm_ = true;
  } else {
    consecutive_ = 0;
  }
  return gap;
}

double FairnessDriftMonitor::TrendSlope() const {
  const size_t n = history_.size();
  if (n < 2) return 0.0;
  // Least squares of gap on batch index.
  double mean_x = static_cast<double>(n - 1) / 2.0;
  double mean_y = 0.0;
  for (double g : history_) mean_y += g;
  mean_y /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    sxy += dx * (history_[i] - mean_y);
    sxx += dx * dx;
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

}  // namespace xfair
