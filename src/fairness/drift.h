// Dynamic fairness monitoring (paper §V: "fairness metrics and
// explanations that are responsive to the changing landscape of data and
// demographics"). Tracks a fairness metric over data batches, estimates
// its trend, and raises an alarm when the gap stays beyond a tolerance
// for several consecutive batches.

#ifndef XFAIR_FAIRNESS_DRIFT_H_
#define XFAIR_FAIRNESS_DRIFT_H_

#include "src/fairness/group_metrics.h"

namespace xfair {

/// Options for FairnessDriftMonitor.
struct DriftMonitorOptions {
  /// |gap| above this counts as a violation.
  double tolerance = 0.1;
  /// Alarm after this many consecutive violating batches.
  size_t patience = 3;
};

/// Streaming monitor over batch-wise statistical parity differences.
class FairnessDriftMonitor {
 public:
  explicit FairnessDriftMonitor(DriftMonitorOptions options = {})
      : options_(options) {}

  /// Evaluates `model` on one incoming batch and folds the result in.
  /// Returns the batch's parity gap.
  double ObserveBatch(const Model& model, const Dataset& batch);

  size_t num_batches() const { return history_.size(); }
  const Vector& history() const { return history_; }

  /// Least-squares slope of the gap over batch index: the drift rate.
  /// 0 with fewer than two batches.
  double TrendSlope() const;

  /// True once `patience` consecutive batches violated the tolerance.
  bool alarm() const { return alarm_; }
  /// Consecutive violating batches ending at the latest one.
  size_t consecutive_violations() const { return consecutive_; }

 private:
  DriftMonitorOptions options_;
  Vector history_;
  size_t consecutive_ = 0;
  bool alarm_ = false;
};

}  // namespace xfair

#endif  // XFAIR_FAIRNESS_DRIFT_H_
