#include "src/fairness/group_metrics.h"

#include <cmath>

#include "src/util/table.h"

namespace xfair {

namespace {

/// Confusion restricted to group g; empty groups yield empty counts
/// (EvaluateConfusion would otherwise treat an empty index list as "all
/// rows").
Confusion GroupConfusion(const Model& model, const Dataset& data, int g) {
  const auto indices = data.GroupIndices(g);
  if (indices.empty()) return Confusion{};
  return EvaluateConfusion(model, data, indices);
}

/// Group-restricted ECE; 0 for an empty group.
double GroupEce(const Model& model, const Dataset& data, int g,
                size_t bins) {
  const auto indices = data.GroupIndices(g);
  if (indices.empty()) return 0.0;
  return ExpectedCalibrationError(model, data, bins, indices);
}

/// A dataset where one group is absent has no between-group comparison to
/// make. Every metric returns its "fair" sentinel in that case (0 for
/// differences, 1 for the impact ratio) rather than comparing a real rate
/// against an empty group's vacuous 0 — which used to make the parity
/// difference report the present group's full rate as "unfairness".
bool SingleGroup(const Confusion& g0, const Confusion& g1) {
  return g0.total() == 0 || g1.total() == 0;
}

}  // namespace


double StatisticalParityDifference(const Model& model, const Dataset& data) {
  const Confusion g1 = GroupConfusion(model, data, 1);
  const Confusion g0 = GroupConfusion(model, data, 0);
  if (SingleGroup(g0, g1)) return 0.0;
  return g0.positive_rate() - g1.positive_rate();
}

double DisparateImpactRatio(const Model& model, const Dataset& data) {
  const Confusion g1 = GroupConfusion(model, data, 1);
  const Confusion g0 = GroupConfusion(model, data, 0);
  if (SingleGroup(g0, g1)) return 1.0;
  const double denom = g0.positive_rate();
  if (denom <= 0.0) return 1.0;
  return g1.positive_rate() / denom;
}

double EqualOpportunityDifference(const Model& model, const Dataset& data) {
  const Confusion g1 = GroupConfusion(model, data, 1);
  const Confusion g0 = GroupConfusion(model, data, 0);
  if (SingleGroup(g0, g1)) return 0.0;
  return g0.tpr() - g1.tpr();
}

double EqualizedOddsDifference(const Model& model, const Dataset& data) {
  const Confusion g1 = GroupConfusion(model, data, 1);
  const Confusion g0 = GroupConfusion(model, data, 0);
  if (SingleGroup(g0, g1)) return 0.0;
  return std::max(std::fabs(g0.tpr() - g1.tpr()),
                  std::fabs(g0.fpr() - g1.fpr()));
}

double PredictiveParityDifference(const Model& model, const Dataset& data) {
  const Confusion g1 = GroupConfusion(model, data, 1);
  const Confusion g0 = GroupConfusion(model, data, 0);
  if (SingleGroup(g0, g1)) return 0.0;
  return g0.precision() - g1.precision();
}

double CalibrationGap(const Model& model, const Dataset& data, size_t bins) {
  if (data.GroupIndices(0).empty() || data.GroupIndices(1).empty()) {
    return 0.0;
  }
  const double e1 = GroupEce(model, data, 1, bins);
  const double e0 = GroupEce(model, data, 0, bins);
  return std::fabs(e1 - e0);
}

GroupFairnessReport EvaluateGroupFairness(const Model& model,
                                          const Dataset& data) {
  GroupFairnessReport r;
  r.protected_group = GroupConfusion(model, data, 1);
  r.non_protected_group = GroupConfusion(model, data, 0);
  const Confusion& g1 = r.protected_group;
  const Confusion& g0 = r.non_protected_group;
  if (!SingleGroup(g0, g1)) {
    r.statistical_parity_difference =
        g0.positive_rate() - g1.positive_rate();
    r.disparate_impact_ratio = g0.positive_rate() <= 0.0
                                   ? 1.0
                                   : g1.positive_rate() / g0.positive_rate();
    r.equal_opportunity_difference = g0.tpr() - g1.tpr();
    r.equalized_odds_difference = std::max(std::fabs(g0.tpr() - g1.tpr()),
                                           std::fabs(g0.fpr() - g1.fpr()));
    r.predictive_parity_difference = g0.precision() - g1.precision();
    r.calibration_gap = CalibrationGap(model, data);
  }
  const size_t n = g0.total() + g1.total();
  r.accuracy =
      n == 0 ? 0.0
             : static_cast<double>(g0.tp + g0.tn + g1.tp + g1.tn) /
                   static_cast<double>(n);
  return r;
}

std::string GroupFairnessReport::ToString() const {
  AsciiTable t({"metric", "value"});
  t.AddRow({"accuracy", FormatDouble(accuracy)});
  t.AddRow({"statistical_parity_diff",
            FormatDouble(statistical_parity_difference)});
  t.AddRow({"disparate_impact_ratio", FormatDouble(disparate_impact_ratio)});
  t.AddRow({"equal_opportunity_diff",
            FormatDouble(equal_opportunity_difference)});
  t.AddRow({"equalized_odds_diff", FormatDouble(equalized_odds_difference)});
  t.AddRow({"predictive_parity_diff",
            FormatDouble(predictive_parity_difference)});
  t.AddRow({"calibration_gap", FormatDouble(calibration_gap)});
  return t.ToString();
}

}  // namespace xfair
