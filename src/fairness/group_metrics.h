// Group fairness metrics (paper §II, Figure 1 "group level").
//
// All metrics compare the protected group G+ (group == 1) against the
// non-protected group G- (group == 0). Signed differences are reported as
// (G- value) - (G+ value) for rates where higher is better for the
// individual, so a positive value always reads "the protected group is
// worse off".
//
// Single-group datasets (either group empty) have no between-group
// comparison to make: every difference metric returns 0, the disparate
// impact ratio returns 1, and the calibration gap returns 0 — the "fair"
// sentinels — instead of comparing a real rate against an empty group's
// vacuous zero.

#ifndef XFAIR_FAIRNESS_GROUP_METRICS_H_
#define XFAIR_FAIRNESS_GROUP_METRICS_H_

#include "src/model/metrics.h"

namespace xfair {

/// Base rates: P(yhat=1 | G-) - P(yhat=1 | G+). Statistical parity holds
/// iff this is 0.
double StatisticalParityDifference(const Model& model, const Dataset& data);

/// Disparate impact ratio P(yhat=1 | G+) / P(yhat=1 | G-). The legal
/// "80% rule" flags values below 0.8. Returns 1 if the denominator is 0.
double DisparateImpactRatio(const Model& model, const Dataset& data);

/// Accuracy-based: TPR(G-) - TPR(G+). Equal opportunity holds iff 0.
double EqualOpportunityDifference(const Model& model, const Dataset& data);

/// Accuracy-based: max(|TPR gap|, |FPR gap|). Equalized odds holds iff 0.
double EqualizedOddsDifference(const Model& model, const Dataset& data);

/// Accuracy-based: precision(G-) - precision(G+) (predictive parity).
double PredictiveParityDifference(const Model& model, const Dataset& data);

/// Calibration-based: |ECE(G+) - ECE(G-)| with `bins` probability bins.
double CalibrationGap(const Model& model, const Dataset& data,
                      size_t bins = 10);

/// Everything at once, plus the per-group confusions they derive from.
struct GroupFairnessReport {
  Confusion protected_group;      ///< Confusion on G+.
  Confusion non_protected_group;  ///< Confusion on G-.
  double statistical_parity_difference = 0.0;
  double disparate_impact_ratio = 1.0;
  double equal_opportunity_difference = 0.0;
  double equalized_odds_difference = 0.0;
  double predictive_parity_difference = 0.0;
  double calibration_gap = 0.0;
  double accuracy = 0.0;  ///< Overall accuracy, for tradeoff reporting.

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Evaluates the full report in one pass over `data`.
GroupFairnessReport EvaluateGroupFairness(const Model& model,
                                          const Dataset& data);

}  // namespace xfair

#endif  // XFAIR_FAIRNESS_GROUP_METRICS_H_
