#include "src/fairness/individual_metrics.h"

#include <cmath>

#include "src/model/knn.h"

namespace xfair {

double LipschitzViolationRate(const Model& model, const Dataset& data,
                              double lipschitz, size_t num_pairs, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(lipschitz >= 0.0);
  if (data.size() < 2 || num_pairs == 0) return 0.0;
  size_t violations = 0;
  for (size_t p = 0; p < num_pairs; ++p) {
    const size_t i = rng->Below(data.size());
    size_t j = rng->Below(data.size() - 1);
    if (j >= i) ++j;  // Distinct pair.
    const Vector xi = data.instance(i), xj = data.instance(j);
    const double dist = Norm2(Sub(xi, xj));
    const double gap =
        std::fabs(model.PredictProba(xi) - model.PredictProba(xj));
    if (gap > lipschitz * dist + 1e-12) ++violations;
  }
  return static_cast<double>(violations) / static_cast<double>(num_pairs);
}

double KnnConsistency(const Model& model, const Dataset& data, size_t k) {
  XFAIR_CHECK(k > 0);
  if (data.size() <= k) return 1.0;
  KnnClassifier knn(k);
  XFAIR_CHECK(knn.Fit(data).ok());
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Vector xi = data.instance(i);
    // k+1 neighbors: the nearest is the point itself; skip it.
    auto nn = knn.Neighbors(xi, std::min(k + 1, data.size()));
    double mean_pred = 0.0;
    size_t used = 0;
    for (size_t j : nn) {
      if (j == i) continue;
      mean_pred += static_cast<double>(model.Predict(data.instance(j)));
      ++used;
    }
    if (used == 0) continue;
    mean_pred /= static_cast<double>(used);
    total += std::fabs(static_cast<double>(model.Predict(xi)) - mean_pred);
  }
  return 1.0 - total / static_cast<double>(data.size());
}

double CounterfactualFairnessGap(const Model& model,
                                 const CausalWorld& world, size_t n,
                                 uint64_t seed) {
  XFAIR_CHECK(n > 0);
  Rng rng(seed);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double g = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const Vector x = world.scm.SampleDo({{world.sensitive, g}}, &rng);
    const Vector cf =
        world.scm.Counterfactual(x, {{world.sensitive, 1.0 - g}});
    total += std::fabs(model.PredictProba(x) - model.PredictProba(cf));
  }
  return total / static_cast<double>(n);
}

}  // namespace xfair
