// Individual fairness metrics (Figure 1 "individual level"):
// distance-based Lipschitz consistency [19] and SCM-based counterfactual
// fairness [20].

#ifndef XFAIR_FAIRNESS_INDIVIDUAL_METRICS_H_
#define XFAIR_FAIRNESS_INDIVIDUAL_METRICS_H_

#include "src/causal/worlds.h"
#include "src/model/model.h"

namespace xfair {

/// Dwork-style individual fairness: fraction of sampled instance pairs
/// violating |f(x) - f(x')| <= lipschitz * ||x - x'||_2. Pairs are drawn
/// uniformly from `data` using `rng`. Run on standardized features so the
/// distance is meaningful.
double LipschitzViolationRate(const Model& model, const Dataset& data,
                              double lipschitz, size_t num_pairs, Rng* rng);

/// k-NN consistency in [0, 1]: 1 - mean_i |yhat(x_i) - mean yhat over
/// the k nearest neighbors of x_i|. 1 means identical treatment of
/// similars.
double KnnConsistency(const Model& model, const Dataset& data, size_t k);

/// Counterfactual fairness gap [20]: mean over `n` sampled individuals of
/// |f(x) - f(x_cf)| where x_cf is the SCM counterfactual with the
/// sensitive attribute flipped. 0 means the model is counterfactually
/// fair w.r.t. the world's causal mechanism.
double CounterfactualFairnessGap(const Model& model,
                                 const CausalWorld& world, size_t n,
                                 uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_FAIRNESS_INDIVIDUAL_METRICS_H_
