#include "src/fairness/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/stats.h"

namespace xfair {
namespace {

/// Every ranked item id must index into `item_groups`; a miss is a caller
/// bug surfaced as a Status (not an abort) because rankings often come
/// from external data.
Status ValidateRanking(const std::vector<size_t>& ranking,
                       const std::vector<int>& item_groups) {
  for (size_t r = 0; r < ranking.size(); ++r) {
    if (ranking[r] >= item_groups.size()) {
      return Status::InvalidArgument(
          "ranking item " + std::to_string(ranking[r]) + " at rank " +
          std::to_string(r) + " is outside item_groups (size " +
          std::to_string(item_groups.size()) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

double PositionBias(size_t rank) {
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

Result<double> ExposureShare(const std::vector<size_t>& ranking,
                             const std::vector<int>& item_groups) {
  Status valid = ValidateRanking(ranking, item_groups);
  if (!valid.ok()) return valid;
  double total = 0.0, g1 = 0.0;
  for (size_t r = 0; r < ranking.size(); ++r) {
    const double w = PositionBias(r);
    total += w;
    if (item_groups[ranking[r]] == 1) g1 += w;
  }
  return total > 0.0 ? g1 / total : 0.0;
}

Result<double> ExposureGap(const std::vector<size_t>& ranking,
                           const std::vector<int>& item_groups) {
  Status valid = ValidateRanking(ranking, item_groups);
  if (!valid.ok()) return valid;
  if (ranking.empty()) return 0.0;
  size_t n1 = 0;
  for (size_t item : ranking) {
    n1 += static_cast<size_t>(item_groups[item] == 1);
  }
  const double representation =
      static_cast<double>(n1) / static_cast<double>(ranking.size());
  Result<double> share = ExposureShare(ranking, item_groups);
  if (!share.ok()) return share.status();
  return *share - representation;
}

Result<double> FairPrefixPValue(const std::vector<size_t>& ranking,
                                const std::vector<int>& item_groups,
                                size_t min_prefix) {
  Status valid = ValidateRanking(ranking, item_groups);
  if (!valid.ok()) return valid;
  if (ranking.empty()) return 1.0;
  size_t n1 = 0;
  for (size_t item : ranking) {
    n1 += static_cast<size_t>(item_groups[item] == 1);
  }
  const double p =
      static_cast<double>(n1) / static_cast<double>(ranking.size());
  if (p <= 0.0 || p >= 1.0) return 1.0;  // Single-group list: nothing to test.

  double min_tail = 1.0;
  size_t seen1 = 0;
  for (size_t k = 0; k < ranking.size(); ++k) {
    seen1 += static_cast<size_t>(item_groups[ranking[k]] == 1);
    const size_t prefix = k + 1;
    if (prefix < min_prefix) continue;
    // P(X <= seen1) = 1 - P(X >= seen1 + 1) for X ~ Bin(prefix, p):
    // small when the prefix has suspiciously few protected items.
    const double tail =
        1.0 - BinomialTailProb(prefix, seen1 + 1, p);
    min_tail = std::min(min_tail, tail);
  }
  return min_tail;
}

}  // namespace xfair
