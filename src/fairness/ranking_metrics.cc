#include "src/fairness/ranking_metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace xfair {

double PositionBias(size_t rank) {
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double ExposureShare(const std::vector<size_t>& ranking,
                     const std::vector<int>& item_groups) {
  double total = 0.0, g1 = 0.0;
  for (size_t r = 0; r < ranking.size(); ++r) {
    XFAIR_CHECK(ranking[r] < item_groups.size());
    const double w = PositionBias(r);
    total += w;
    if (item_groups[ranking[r]] == 1) g1 += w;
  }
  return total > 0.0 ? g1 / total : 0.0;
}

double ExposureGap(const std::vector<size_t>& ranking,
                   const std::vector<int>& item_groups) {
  if (ranking.empty()) return 0.0;
  size_t n1 = 0;
  for (size_t item : ranking) {
    XFAIR_CHECK(item < item_groups.size());
    n1 += static_cast<size_t>(item_groups[item] == 1);
  }
  const double representation =
      static_cast<double>(n1) / static_cast<double>(ranking.size());
  return ExposureShare(ranking, item_groups) - representation;
}

double FairPrefixPValue(const std::vector<size_t>& ranking,
                        const std::vector<int>& item_groups,
                        size_t min_prefix) {
  if (ranking.empty()) return 1.0;
  size_t n1 = 0;
  for (size_t item : ranking) {
    XFAIR_CHECK(item < item_groups.size());
    n1 += static_cast<size_t>(item_groups[item] == 1);
  }
  const double p =
      static_cast<double>(n1) / static_cast<double>(ranking.size());
  if (p <= 0.0 || p >= 1.0) return 1.0;  // Single-group list: nothing to test.

  double min_tail = 1.0;
  size_t seen1 = 0;
  for (size_t k = 0; k < ranking.size(); ++k) {
    seen1 += static_cast<size_t>(item_groups[ranking[k]] == 1);
    const size_t prefix = k + 1;
    if (prefix < min_prefix) continue;
    // P(X <= seen1) = 1 - P(X >= seen1 + 1) for X ~ Bin(prefix, p):
    // small when the prefix has suspiciously few protected items.
    const double tail =
        1.0 - BinomialTailProb(prefix, seen1 + 1, p);
    min_tail = std::min(min_tail, tail);
  }
  return min_tail;
}

}  // namespace xfair
