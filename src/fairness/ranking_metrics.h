// Ranking/recommendation fairness (paper §II "other tasks"): exposure-based
// metrics with logarithmic position bias, and the probability-based fair
// ranking test that asks whether each ranking prefix could plausibly have
// come from an unbiased process.

#ifndef XFAIR_FAIRNESS_RANKING_METRICS_H_
#define XFAIR_FAIRNESS_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

#include "src/util/status.h"

namespace xfair {

/// Position-bias weight of rank r (0-based): 1 / log2(r + 2), the standard
/// DCG discount.
double PositionBias(size_t rank);

/// Share of total exposure received by items of group 1.
/// `ranking[r]` is the item at rank r; `item_groups[item]` in {0, 1}.
/// An item id outside `item_groups` is an InvalidArgument naming the rank.
/// An empty ranking has no exposure to share: returns 0.
Result<double> ExposureShare(const std::vector<size_t>& ranking,
                             const std::vector<int>& item_groups);

/// Exposure gap: (share of exposure of group 1) - (share of items of
/// group 1 in the ranked list). 0 means exposure proportional to
/// representation; negative means group 1 is pushed down the list.
/// An item id outside `item_groups` is an InvalidArgument naming the rank.
/// An empty or single-group ranking is trivially proportional: returns 0.
Result<double> ExposureGap(const std::vector<size_t>& ranking,
                           const std::vector<int>& item_groups);

/// Probability-based fairness: for every prefix of the ranking, computes
/// the binomial tail probability of seeing at most the observed number of
/// protected items if every rank were filled by a coin flip with
/// P(protected) = overall protected share. Returns the minimum tail
/// probability over prefixes of length >= `min_prefix` — a small value
/// means some prefix under-represents the protected group beyond chance.
/// An item id outside `item_groups` is an InvalidArgument naming the rank.
/// An empty or single-group ranking gives the test nothing to reject:
/// returns 1.
Result<double> FairPrefixPValue(const std::vector<size_t>& ranking,
                                const std::vector<int>& item_groups,
                                size_t min_prefix = 3);

}  // namespace xfair

#endif  // XFAIR_FAIRNESS_RANKING_METRICS_H_
