#include "src/fairness/tradeoff.h"

#include <algorithm>
#include <cmath>

#include "src/explain/surrogate.h"
#include "src/fairness/group_metrics.h"

namespace xfair {

TradeoffScore EvaluateTradeoff(const Model& model, const Dataset& data,
                               const TradeoffWeights& weights) {
  XFAIR_CHECK(weights.utility >= 0.0 && weights.fairness >= 0.0 &&
              weights.explainability >= 0.0);
  TradeoffScore score;
  score.utility = Accuracy(model, data);
  score.fairness = std::max(
      0.0, 1.0 - std::fabs(StatisticalParityDifference(model, data)));
  score.explainability = FitGlobalSurrogate(model, data).fidelity;

  const double total =
      weights.utility + weights.fairness + weights.explainability;
  if (total <= 0.0) return score;  // combined stays 0: nothing weighted.
  // Weighted geometric mean; a zeroed axis with positive weight zeroes
  // the aggregate.
  const double eps = 1e-12;
  const double log_mean =
      (weights.utility * std::log(std::max(score.utility, eps)) +
       weights.fairness * std::log(std::max(score.fairness, eps)) +
       weights.explainability *
           std::log(std::max(score.explainability, eps))) /
      total;
  score.combined = std::exp(log_mean);
  return score;
}

}  // namespace xfair
