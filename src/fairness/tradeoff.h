// Combined utility-fairness-explainability score (paper §V: "new metrics
// that provide insights into the combined trade-offs between the utility,
// fairness, and explainability of models"). Scores a model on all three
// axes at once so candidate models can be compared on a single frontier.

#ifndef XFAIR_FAIRNESS_TRADEOFF_H_
#define XFAIR_FAIRNESS_TRADEOFF_H_

#include "src/model/model.h"

namespace xfair {

/// The three axes plus their weighted aggregate, each in [0, 1].
struct TradeoffScore {
  double utility = 0.0;         ///< Accuracy.
  double fairness = 0.0;        ///< 1 - |statistical parity difference|.
  double explainability = 0.0;  ///< Global-surrogate fidelity.
  double combined = 0.0;        ///< Weighted geometric mean of the three.
};

/// Axis weights (need not sum to 1; normalized internally). A zero weight
/// removes the axis from the aggregate.
struct TradeoffWeights {
  double utility = 1.0;
  double fairness = 1.0;
  double explainability = 1.0;
};

/// Evaluates the combined score of `model` on `data`. The geometric mean
/// makes the aggregate collapse when any weighted axis collapses — a
/// model cannot buy fairness points with accuracy alone.
TradeoffScore EvaluateTradeoff(const Model& model, const Dataset& data,
                               const TradeoffWeights& weights = {});

}  // namespace xfair

#endif  // XFAIR_FAIRNESS_TRADEOFF_H_
