#include "src/graph/graph.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace xfair {

void Graph::AddEdge(size_t u, size_t v) {
  XFAIR_CHECK(u < num_nodes() && v < num_nodes());
  XFAIR_CHECK_MSG(u != v, "self-loops are implicit in propagation");
  if (HasEdge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void Graph::RemoveEdge(size_t u, size_t v) {
  XFAIR_CHECK(u < num_nodes() && v < num_nodes());
  auto erase_from = [](std::vector<size_t>* list, size_t x) {
    auto it = std::find(list->begin(), list->end(), x);
    if (it != list->end()) list->erase(it);
  };
  erase_from(&adj_[u], v);
  erase_from(&adj_[v], u);
  const auto key = std::make_pair(std::min(u, v), std::max(u, v));
  auto it = std::find(edges_.begin(), edges_.end(), key);
  if (it != edges_.end()) edges_.erase(it);
}

bool Graph::HasEdge(size_t u, size_t v) const {
  XFAIR_CHECK(u < num_nodes() && v < num_nodes());
  const auto& list = adj_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

const std::vector<size_t>& Graph::Neighbors(size_t u) const {
  XFAIR_CHECK(u < num_nodes());
  return adj_[u];
}

Matrix PropagateFeatures(const Graph& graph, const Matrix& features,
                         size_t hops) {
  XFAIR_CHECK(features.rows() == graph.num_nodes());
  const size_t n = graph.num_nodes();
  const size_t d = features.cols();
  Vector inv_sqrt_deg(n);
  for (size_t u = 0; u < n; ++u) {
    inv_sqrt_deg[u] =
        1.0 / std::sqrt(static_cast<double>(graph.Degree(u)) + 1.0);
  }
  Matrix h = features;
  for (size_t hop = 0; hop < hops; ++hop) {
    Matrix next(n, d);
    for (size_t u = 0; u < n; ++u) {
      // Self-loop term.
      const double self_w = inv_sqrt_deg[u] * inv_sqrt_deg[u];
      for (size_t c = 0; c < d; ++c)
        next.At(u, c) = self_w * h.At(u, c);
      for (size_t v : graph.Neighbors(u)) {
        const double w = inv_sqrt_deg[u] * inv_sqrt_deg[v];
        const double* row = h.RowPtr(v);
        double* out = next.RowPtr(u);
        for (size_t c = 0; c < d; ++c) out[c] += w * row[c];
      }
    }
    h = std::move(next);
  }
  return h;
}

}  // namespace xfair
