// Undirected graph substrate for the GNN-fairness methods (paper §IV-C).
// Adjacency is stored as sorted edge lists; graphs here are small
// (hundreds to thousands of nodes) so no CSR packing is needed.

#ifndef XFAIR_GRAPH_GRAPH_H_
#define XFAIR_GRAPH_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/matrix.h"

namespace xfair {

/// Simple undirected graph with stable node ids [0, n).
class Graph {
 public:
  explicit Graph(size_t num_nodes = 0) : adj_(num_nodes) {}

  size_t num_nodes() const { return adj_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge (idempotent; self-loops rejected by CHECK).
  void AddEdge(size_t u, size_t v);
  /// Removes the edge if present.
  void RemoveEdge(size_t u, size_t v);
  bool HasEdge(size_t u, size_t v) const;

  const std::vector<size_t>& Neighbors(size_t u) const;
  size_t Degree(size_t u) const { return Neighbors(u).size(); }

  /// All edges as (u, v) with u < v.
  const std::vector<std::pair<size_t, size_t>>& Edges() const {
    return edges_;
  }

 private:
  std::vector<std::vector<size_t>> adj_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

/// A node-attributed graph for node classification: features, binary
/// labels, and protected-group membership per node.
struct GraphData {
  Graph graph;
  Matrix features;          ///< Row per node.
  std::vector<int> labels;  ///< 0/1 per node.
  std::vector<int> groups;  ///< 0/1 per node.
};

/// Symmetric-normalized feature propagation with self-loops (the SGC /
/// GCN aggregation): H = (D^-1/2 (A + I) D^-1/2)^hops X.
Matrix PropagateFeatures(const Graph& graph, const Matrix& features,
                         size_t hops);

}  // namespace xfair

#endif  // XFAIR_GRAPH_GRAPH_H_
