#include "src/graph/sbm.h"

#include <cmath>

namespace xfair {

GraphData GenerateSbm(const SbmConfig& config, uint64_t seed) {
  XFAIR_CHECK(config.num_nodes >= 2);
  XFAIR_CHECK(config.num_features >= 1);
  Rng rng(seed);
  GraphData data;
  const size_t n = config.num_nodes;
  data.graph = Graph(n);
  data.groups.resize(n);
  data.labels.resize(n);
  data.features = Matrix(n, config.num_features);

  for (size_t u = 0; u < n; ++u) {
    data.groups[u] = rng.Bernoulli(config.protected_fraction) ? 1 : 0;
  }
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      const double p = data.groups[u] == data.groups[v] ? config.p_intra
                                                        : config.p_inter;
      if (rng.Bernoulli(p)) data.graph.AddEdge(u, v);
    }
  }
  for (size_t u = 0; u < n; ++u) {
    // Latent quality drives both features and label; the protected group's
    // label propensity is shifted down.
    const double quality = rng.Normal();
    for (size_t c = 0; c < config.num_features; ++c) {
      data.features.At(u, c) =
          config.feature_signal * quality / std::sqrt(2.0) + rng.Normal();
    }
    const double z = 1.2 * quality -
                     config.label_shift * static_cast<double>(data.groups[u]);
    data.labels[u] = rng.Bernoulli(1.0 / (1.0 + std::exp(-z))) ? 1 : 0;
  }
  return data;
}

}  // namespace xfair
