// Stochastic-block-model generator with planted group homophily — the
// "topologically biased structure" of paper §II: nodes of the same
// protected group link preferentially, so message passing leaks group
// membership into predictions even when features are mildly informative.

#ifndef XFAIR_GRAPH_SBM_H_
#define XFAIR_GRAPH_SBM_H_

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace xfair {

/// Knobs for the biased SBM.
struct SbmConfig {
  size_t num_nodes = 300;
  double protected_fraction = 0.5;
  /// Edge probability within a group.
  double p_intra = 0.08;
  /// Edge probability across groups; homophily bias = p_intra - p_inter.
  double p_inter = 0.01;
  size_t num_features = 4;
  /// How strongly node features carry the label signal.
  double feature_signal = 1.0;
  /// Additive shift of label propensity against the protected group.
  double label_shift = 0.8;
};

/// Samples a GraphData with planted homophily and label bias.
GraphData GenerateSbm(const SbmConfig& config, uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_GRAPH_SBM_H_
