#include "src/graph/sgc.h"

namespace xfair {
namespace {

/// Wraps propagated node features as a Dataset for the logistic head.
Dataset AsDataset(const Matrix& propagated, const std::vector<int>& labels,
                  const std::vector<int>& groups) {
  std::vector<FeatureSpec> specs(propagated.cols());
  for (size_t c = 0; c < specs.size(); ++c) {
    specs[c].name = "h" + std::to_string(c);
    specs[c].lower = -1e6;
    specs[c].upper = 1e6;
  }
  return Dataset(Schema(std::move(specs), -1), propagated, labels, groups);
}

}  // namespace

Status SgcModel::Fit(const GraphData& data, const SgcOptions& options) {
  if (data.features.rows() != data.graph.num_nodes() ||
      data.labels.size() != data.graph.num_nodes() ||
      data.groups.size() != data.graph.num_nodes()) {
    return Status::InvalidArgument("graph/feature/label size mismatch");
  }
  hops_ = options.hops;
  Matrix propagated = PropagateFeatures(data.graph, data.features, hops_);
  propagated_ = AsDataset(propagated, data.labels, data.groups);
  XFAIR_RETURN_IF_ERROR(head_.Fit(propagated_, options.logistic));
  fitted_ = true;
  return Status::OK();
}

Vector SgcModel::ScoreAll() const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  return head_.PredictProbaAll(propagated_);
}

std::vector<int> SgcModel::PredictAll() const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  return head_.PredictAll(propagated_);
}

double SgcModel::ScoreOnGraph(const Graph& graph, const Matrix& features,
                              size_t u) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(u < graph.num_nodes());
  Matrix propagated = PropagateFeatures(graph, features, hops_);
  return head_.PredictProba(propagated.Row(u));
}

double SgcModel::ParityGapOnGraph(const Graph& graph, const Matrix& features,
                                  const std::vector<int>& groups) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  Matrix propagated = PropagateFeatures(graph, features, hops_);
  double pos[2] = {0, 0};
  size_t count[2] = {0, 0};
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    const int pred = head_.Predict(propagated.Row(u));
    pos[groups[u]] += static_cast<double>(pred);
    ++count[groups[u]];
  }
  const double r0 = count[0] ? pos[0] / static_cast<double>(count[0]) : 0.0;
  const double r1 = count[1] ? pos[1] / static_cast<double>(count[1]) : 0.0;
  return r0 - r1;
}

double SgcParityGap(const SgcModel& model, const std::vector<int>& groups) {
  const std::vector<int> preds = model.PredictAll();
  XFAIR_CHECK(preds.size() == groups.size());
  double pos[2] = {0, 0};
  size_t count[2] = {0, 0};
  for (size_t u = 0; u < preds.size(); ++u) {
    pos[groups[u]] += static_cast<double>(preds[u]);
    ++count[groups[u]];
  }
  const double r0 = count[0] ? pos[0] / static_cast<double>(count[0]) : 0.0;
  const double r1 = count[1] ? pos[1] / static_cast<double>(count[1]) : 0.0;
  return r0 - r1;
}

}  // namespace xfair
