// Simplified Graph Convolution node classifier: k hops of normalized
// feature propagation followed by logistic regression. Linear message
// passing keeps the computation graph exact and inspectable, which is
// precisely what the structural-bias explainers ([89], [90]) operate on.

#ifndef XFAIR_GRAPH_SGC_H_
#define XFAIR_GRAPH_SGC_H_

#include "src/data/dataset.h"
#include "src/graph/graph.h"
#include "src/model/logistic_regression.h"

namespace xfair {

/// Options for SgcModel::Fit.
struct SgcOptions {
  size_t hops = 2;
  LogisticRegressionOptions logistic;
};

/// SGC node classifier over a fixed graph.
class SgcModel {
 public:
  /// Propagates `data.features` over `data.graph` and fits the logistic
  /// head on all nodes.
  Status Fit(const GraphData& data, const SgcOptions& options = {});

  bool fitted() const { return fitted_; }
  size_t hops() const { return hops_; }
  const LogisticRegression& head() const { return head_; }

  /// Per-node scores using the stored propagated features.
  Vector ScoreAll() const;
  /// Hard predictions per node.
  std::vector<int> PredictAll() const;

  /// Score of node u if the features were propagated over `graph` instead
  /// of the training graph (used by edge-perturbation explainers; the
  /// logistic head is kept fixed).
  double ScoreOnGraph(const Graph& graph, const Matrix& features,
                      size_t u) const;
  /// Statistical parity gap of the fixed head over an alternative graph:
  /// P(favorable | G-) - P(favorable | G+).
  double ParityGapOnGraph(const Graph& graph, const Matrix& features,
                          const std::vector<int>& groups) const;

  /// The dataset view (propagated features + labels + groups) the head
  /// was trained on; useful for influence analysis.
  const Dataset& propagated_dataset() const { return propagated_; }

 private:
  bool fitted_ = false;
  size_t hops_ = 2;
  LogisticRegression head_;
  Dataset propagated_;
};

/// Parity gap of hard SGC predictions: P(yhat=1 | G-) - P(yhat=1 | G+).
double SgcParityGap(const SgcModel& model, const std::vector<int>& groups);

}  // namespace xfair

#endif  // XFAIR_GRAPH_SGC_H_
