#include "src/mitigate/counterfactual_fair.h"

#include <algorithm>

namespace xfair {

double FeatureSubsetModel::PredictProba(const Vector& x) const {
  Vector selected(columns_.size());
  for (size_t k = 0; k < columns_.size(); ++k) {
    XFAIR_CHECK(columns_[k] < x.size());
    selected[k] = x[columns_[k]];
  }
  return inner_.PredictProba(selected);
}

Result<FeatureSubsetModel> TrainCounterfactuallyFairModel(
    const CausalWorld& world, const Dataset& data,
    const LogisticRegressionOptions& options) {
  if (data.num_features() != world.scm.num_vars()) {
    return Status::InvalidArgument(
        "dataset columns must align with the world's SCM nodes");
  }
  const auto descendants = world.scm.dag().Descendants(world.sensitive);
  std::vector<size_t> safe;
  for (size_t c = 0; c < data.num_features(); ++c) {
    if (c == world.sensitive) continue;
    if (std::find(descendants.begin(), descendants.end(), c) !=
        descendants.end()) {
      continue;
    }
    safe.push_back(c);
  }
  if (safe.empty()) {
    return Status::FailedPrecondition(
        "every feature is a descendant of the sensitive attribute");
  }

  // Project the training data onto the safe columns.
  Matrix x(data.size(), safe.size());
  std::vector<FeatureSpec> specs;
  for (size_t k = 0; k < safe.size(); ++k) {
    specs.push_back(data.schema().feature(safe[k]));
    for (size_t i = 0; i < data.size(); ++i)
      x.At(i, k) = data.x().At(i, safe[k]);
  }
  Dataset projected(Schema(std::move(specs), -1), std::move(x),
                    data.labels(), data.groups());
  LogisticRegression inner;
  XFAIR_RETURN_IF_ERROR(inner.Fit(projected, options));
  return FeatureSubsetModel(std::move(inner), std::move(safe));
}

}  // namespace xfair
