// Counterfactually fair training via causal feature selection (the
// construction behind counterfactual fairness [20]): a predictor that
// uses only *non-descendants* of the sensitive attribute in the causal
// graph is counterfactually fair by design — flipping S in the
// counterfactual world cannot move any of its inputs.

#ifndef XFAIR_MITIGATE_COUNTERFACTUAL_FAIR_H_
#define XFAIR_MITIGATE_COUNTERFACTUAL_FAIR_H_

#include "src/causal/worlds.h"
#include "src/model/logistic_regression.h"

namespace xfair {

/// A model reading only a fixed subset of the feature columns.
class FeatureSubsetModel final : public Model {
 public:
  FeatureSubsetModel(LogisticRegression inner, std::vector<size_t> columns)
      : inner_(std::move(inner)), columns_(std::move(columns)) {}

  double PredictProba(const Vector& x) const override;
  std::string name() const override { return "logreg-subset"; }

  const std::vector<size_t>& columns() const { return columns_; }

 private:
  LogisticRegression inner_;
  std::vector<size_t> columns_;
};

/// Trains a logistic model on exactly the features of `data` whose SCM
/// nodes are neither S nor descendants of S in `world`'s graph (dataset
/// columns must align with SCM node order, as CausalWorld::GenerateDataset
/// produces). Returns kFailedPrecondition if no such feature exists (every
/// input is causally downstream of the sensitive attribute).
Result<FeatureSubsetModel> TrainCounterfactuallyFairModel(
    const CausalWorld& world, const Dataset& data,
    const LogisticRegressionOptions& options = {});

}  // namespace xfair

#endif  // XFAIR_MITIGATE_COUNTERFACTUAL_FAIR_H_
