#include "src/mitigate/inprocess.h"

#include <cmath>

namespace xfair {
namespace {

double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Result<LogisticRegression> TrainFairLogisticRegression(
    const Dataset& data, const FairTrainingOptions& options) {
  const size_t n = data.size();
  const size_t d = data.num_features();
  if (n == 0) return Status::InvalidArgument("empty training set");
  if (data.GroupIndices(0).empty() || data.GroupIndices(1).empty()) {
    return Status::InvalidArgument("both groups must be present");
  }

  // Standardize internally (as LogisticRegression::Fit does).
  Vector mean(d, 0.0), stddev(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) m += data.x().At(i, c);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double delta = data.x().At(i, c) - m;
      var += delta * delta;
    }
    mean[c] = m;
    stddev[c] = var / static_cast<double>(n) > 1e-12
                    ? std::sqrt(var / static_cast<double>(n))
                    : 1.0;
  }
  auto standardized = [&](size_t i, size_t c) {
    return (data.x().At(i, c) - mean[c]) / stddev[c];
  };

  Vector w(d, 0.0);
  double b = 0.0;
  Vector z(n), p(n);
  Rng pair_rng(options.pair_seed);  // For the kIndividual pair sampler.
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      double zi = b;
      for (size_t c = 0; c < d; ++c) zi += w[c] * standardized(i, c);
      z[i] = zi;
      p[i] = Sigmoid(zi);
    }

    // Accuracy gradient.
    Vector grad_w(d, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double err = p[i] - static_cast<double>(data.label(i));
      for (size_t c = 0; c < d; ++c) grad_w[c] += err * standardized(i, c);
      grad_b += err;
    }
    for (size_t c = 0; c < d; ++c)
      grad_w[c] = grad_w[c] / static_cast<double>(n) + options.l2 * w[c];
    grad_b /= static_cast<double>(n);

    // Fairness penalty gradient.
    if (options.lambda > 0.0) {
      Vector pen_w(d, 0.0);
      double pen_b = 0.0;
      if (options.penalty == FairPenalty::kParity) {
        // gap = mean_{G1} p - mean_{G0} p; penalty = gap^2.
        double sum_p[2] = {0, 0};
        size_t cnt[2] = {0, 0};
        for (size_t i = 0; i < n; ++i) {
          sum_p[data.group(i)] += p[i];
          ++cnt[data.group(i)];
        }
        const double gap = sum_p[1] / static_cast<double>(cnt[1]) -
                           sum_p[0] / static_cast<double>(cnt[0]);
        for (size_t i = 0; i < n; ++i) {
          const double sign = data.group(i) == 1
                                  ? 1.0 / static_cast<double>(cnt[1])
                                  : -1.0 / static_cast<double>(cnt[0]);
          const double s = 2.0 * gap * sign * p[i] * (1.0 - p[i]);
          for (size_t c = 0; c < d; ++c) pen_w[c] += s * standardized(i, c);
          pen_b += s;
        }
      } else if (options.penalty == FairPenalty::kIndividual) {
        // Lipschitz surrogate on sampled pairs: penalize
        // (|p_i - p_j| - L * dist)^2 where positive, with distances in
        // the standardized feature space.
        for (size_t pair = 0; pair < options.pairs_per_iter; ++pair) {
          const size_t i = pair_rng.Below(n);
          size_t j = pair_rng.Below(n - 1);
          if (j >= i) ++j;
          double dist2 = 0.0;
          for (size_t c = 0; c < d; ++c) {
            const double delta = standardized(i, c) - standardized(j, c);
            dist2 += delta * delta;
          }
          const double excess = std::fabs(p[i] - p[j]) -
                                options.lipschitz * std::sqrt(dist2);
          if (excess <= 0.0) continue;
          const double sign = p[i] >= p[j] ? 1.0 : -1.0;
          const double scale = 2.0 * excess * sign /
                               static_cast<double>(options.pairs_per_iter);
          const double si = p[i] * (1.0 - p[i]);
          const double sj = p[j] * (1.0 - p[j]);
          for (size_t c = 0; c < d; ++c) {
            pen_w[c] += scale * (si * standardized(i, c) -
                                 sj * standardized(j, c));
          }
          pen_b += scale * (si - sj);
        }
      } else {
        // Recourse equalization: soft-denied weighted mean margin per
        // group; the denial weights (1 - p) are treated as constants.
        double wm[2] = {0, 0}, wsum[2] = {0, 0};
        for (size_t i = 0; i < n; ++i) {
          const double denial = 1.0 - p[i];
          wm[data.group(i)] += denial * z[i];
          wsum[data.group(i)] += denial;
        }
        if (wsum[0] > 1e-9 && wsum[1] > 1e-9) {
          const double gap = wm[1] / wsum[1] - wm[0] / wsum[0];
          for (size_t i = 0; i < n; ++i) {
            const double denial = 1.0 - p[i];
            const double sign = data.group(i) == 1 ? denial / wsum[1]
                                                   : -denial / wsum[0];
            const double s = 2.0 * gap * sign;
            for (size_t c = 0; c < d; ++c)
              pen_w[c] += s * standardized(i, c);
            pen_b += s;
          }
        }
      }
      for (size_t c = 0; c < d; ++c) grad_w[c] += options.lambda * pen_w[c];
      grad_b += options.lambda * pen_b;
    }

    // Clip the combined gradient: the recourse penalty acts on unbounded
    // margins and can otherwise blow up early in training.
    const double kClip = 5.0;
    for (size_t c = 0; c < d; ++c) {
      grad_w[c] = std::min(std::max(grad_w[c], -kClip), kClip);
      w[c] -= options.learning_rate * grad_w[c];
    }
    grad_b = std::min(std::max(grad_b, -kClip), kClip);
    b -= options.learning_rate * grad_b;
  }

  // Fold standardization back into original-space parameters.
  for (size_t c = 0; c < d; ++c) {
    w[c] /= stddev[c];
    b -= w[c] * mean[c];
  }
  LogisticRegression model;
  model.SetParameters(std::move(w), b);
  return model;
}

}  // namespace xfair
