// In-processing mitigation: penalized logistic training.
//  - kParity: penalizes the squared gap in mean predicted score between
//    groups (a differentiable statistical-parity surrogate).
//  - kRecourse: penalizes the squared gap in mean *margin* between
//    groups' soft-denied members, the differentiable form of "equalizing
//    recourse across groups" [79] — denied members of both groups should
//    sit equally far from the boundary.

#ifndef XFAIR_MITIGATE_INPROCESS_H_
#define XFAIR_MITIGATE_INPROCESS_H_

#include "src/model/logistic_regression.h"

namespace xfair {

/// Which fairness surrogate the penalty targets.
enum class FairPenalty {
  kParity,      ///< Squared gap in mean group scores (group level).
  kRecourse,    ///< Squared gap in soft-denied mean margins [79].
  kIndividual,  ///< Lipschitz surrogate: squared excess of score
                ///< differences over lipschitz * distance on sampled
                ///< pairs (individual level, Dwork-style [19]).
};

/// Options for TrainFairLogisticRegression.
struct FairTrainingOptions {
  FairPenalty penalty = FairPenalty::kParity;
  /// Penalty strength; 0 recovers plain logistic regression.
  double lambda = 1.0;
  size_t max_iters = 800;
  double learning_rate = 0.3;
  double l2 = 1e-3;
  /// kIndividual only: the Lipschitz constant of the constraint and the
  /// number of random pairs sampled per iteration.
  double lipschitz = 0.3;
  size_t pairs_per_iter = 200;
  uint64_t pair_seed = 29;
};

/// Trains logistic regression with the chosen fairness penalty. The
/// returned model is a plain LogisticRegression (white-box access
/// preserved). Returns kInvalidArgument if a group is empty.
Result<LogisticRegression> TrainFairLogisticRegression(
    const Dataset& data, const FairTrainingOptions& options);

}  // namespace xfair

#endif  // XFAIR_MITIGATE_INPROCESS_H_
