#include "src/mitigate/postprocess.h"

#include <cmath>

namespace xfair {

GroupThresholdModel::GroupThresholdModel(const Model* base,
                                         size_t sensitive_index,
                                         double threshold_non_protected,
                                         double threshold_protected)
    : base_(base),
      sensitive_index_(sensitive_index),
      threshold_non_protected_(threshold_non_protected),
      threshold_protected_(threshold_protected) {
  XFAIR_CHECK(base != nullptr);
}

double GroupThresholdModel::PredictProba(const Vector& x) const {
  return base_->PredictProba(x);
}

int GroupThresholdModel::Predict(const Vector& x) const {
  XFAIR_CHECK(sensitive_index_ < x.size());
  const double t = x[sensitive_index_] >= 0.5 ? threshold_protected_
                                              : threshold_non_protected_;
  return base_->PredictProba(x) >= t ? 1 : 0;
}

Vector GroupThresholdModel::PredictProbaBatch(const Matrix& x) const {
  return base_->PredictProbaBatch(x);
}

std::vector<int> GroupThresholdModel::PredictBatch(const Matrix& x) const {
  XFAIR_CHECK(sensitive_index_ < x.cols());
  const Vector scores = base_->PredictProbaBatch(x);
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double t = x.At(i, sensitive_index_) >= 0.5
                         ? threshold_protected_
                         : threshold_non_protected_;
    out[i] = scores[i] >= t ? 1 : 0;
  }
  return out;
}

namespace {

/// Counters for one (group, threshold) evaluation.
struct GroupRates {
  double positive_rate = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double correct = 0.0;  ///< Correct decisions (for accuracy).
};

GroupRates RatesAtThreshold(const Vector& scores,
                            const std::vector<int>& labels,
                            const std::vector<size_t>& members, double t) {
  GroupRates r;
  size_t pos = 0, tp = 0, fp = 0, label_pos = 0, correct = 0;
  for (size_t i : members) {
    const int pred = scores[i] >= t ? 1 : 0;
    pos += static_cast<size_t>(pred);
    label_pos += static_cast<size_t>(labels[i]);
    tp += static_cast<size_t>(pred == 1 && labels[i] == 1);
    fp += static_cast<size_t>(pred == 1 && labels[i] == 0);
    correct += static_cast<size_t>(pred == labels[i]);
  }
  const double n = static_cast<double>(members.size());
  const size_t label_neg = members.size() - label_pos;
  r.positive_rate = pos / n;
  r.tpr = label_pos ? static_cast<double>(tp) /
                          static_cast<double>(label_pos)
                    : 0.0;
  r.fpr = label_neg ? static_cast<double>(fp) /
                          static_cast<double>(label_neg)
                    : 0.0;
  r.correct = static_cast<double>(correct);
  return r;
}

}  // namespace

Result<GroupThresholdModel> FitGroupThresholds(
    const Model& base, const Dataset& data,
    const ThresholdSearchOptions& options) {
  const int sens = data.schema().sensitive_index();
  if (sens < 0) {
    return Status::FailedPrecondition(
        "dataset schema must carry its sensitive column");
  }
  const auto g0 = data.GroupIndices(0);
  const auto g1 = data.GroupIndices(1);
  if (g0.empty() || g1.empty()) {
    return Status::InvalidArgument("both groups must be present");
  }
  const Vector scores = base.PredictProbaAll(data);
  const std::vector<int>& labels = data.labels();

  double best_gap = 1e30, best_correct = -1.0;
  double best_t0 = 0.5, best_t1 = 0.5;
  for (size_t a = 1; a < options.grid; ++a) {
    const double t0 = static_cast<double>(a) /
                      static_cast<double>(options.grid);
    const GroupRates r0 = RatesAtThreshold(scores, labels, g0, t0);
    for (size_t b = 1; b < options.grid; ++b) {
      const double t1 = static_cast<double>(b) /
                        static_cast<double>(options.grid);
      const GroupRates r1 = RatesAtThreshold(scores, labels, g1, t1);
      double gap = 0.0;
      switch (options.criterion) {
        case ThresholdCriterion::kStatisticalParity:
          gap = std::fabs(r0.positive_rate - r1.positive_rate);
          break;
        case ThresholdCriterion::kEqualOpportunity:
          gap = std::fabs(r0.tpr - r1.tpr);
          break;
        case ThresholdCriterion::kEqualizedOdds:
          gap = std::max(std::fabs(r0.tpr - r1.tpr),
                         std::fabs(r0.fpr - r1.fpr));
          break;
      }
      const double correct = r0.correct + r1.correct;
      // Prefer feasible pairs; among them maximize accuracy; otherwise
      // minimize the gap.
      const bool feasible = gap <= options.max_gap;
      const bool best_feasible = best_gap <= options.max_gap;
      bool better = false;
      if (feasible && best_feasible) {
        better = correct > best_correct;
      } else if (feasible != best_feasible) {
        better = feasible;
      } else {
        better = gap < best_gap;
      }
      if (better) {
        best_gap = gap;
        best_correct = correct;
        best_t0 = t0;
        best_t1 = t1;
      }
    }
  }
  return GroupThresholdModel(&base, static_cast<size_t>(sens), best_t0,
                             best_t1);
}

}  // namespace xfair
