// Post-processing mitigation: per-group decision thresholds searched to
// close a chosen fairness gap at minimal accuracy cost, wrapping any
// fitted score model. Reads group membership from the sensitive feature
// column at prediction time.

#ifndef XFAIR_MITIGATE_POSTPROCESS_H_
#define XFAIR_MITIGATE_POSTPROCESS_H_

#include "src/model/model.h"
#include "src/util/status.h"

namespace xfair {

/// Which gap the threshold search closes.
enum class ThresholdCriterion {
  kStatisticalParity,
  kEqualOpportunity,
  kEqualizedOdds,
};

/// A base model deciding with group-specific thresholds.
class GroupThresholdModel final : public Model {
 public:
  /// `base` must outlive this wrapper; `sensitive_index` is the feature
  /// column carrying group membership (value >= 0.5 means protected).
  GroupThresholdModel(const Model* base, size_t sensitive_index,
                      double threshold_non_protected,
                      double threshold_protected);

  double PredictProba(const Vector& x) const override;
  int Predict(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  std::vector<int> PredictBatch(const Matrix& x) const override;
  std::string name() const override {
    return base_->name() + "+group-thresholds";
  }

  double threshold_protected() const { return threshold_protected_; }
  double threshold_non_protected() const {
    return threshold_non_protected_;
  }

 private:
  const Model* base_;
  size_t sensitive_index_;
  double threshold_non_protected_;
  double threshold_protected_;
};

/// Options for FitGroupThresholds.
struct ThresholdSearchOptions {
  ThresholdCriterion criterion = ThresholdCriterion::kStatisticalParity;
  /// Grid resolution per group.
  size_t grid = 40;
  /// Candidate pairs whose gap exceeds this are rejected outright.
  double max_gap = 0.03;
};

/// Grid-searches per-group thresholds on `data` (validation split),
/// minimizing the criterion gap and, among near-feasible pairs, maximizing
/// accuracy. Requires the dataset's schema to carry its sensitive column.
Result<GroupThresholdModel> FitGroupThresholds(
    const Model& base, const Dataset& data,
    const ThresholdSearchOptions& options);

}  // namespace xfair

#endif  // XFAIR_MITIGATE_POSTPROCESS_H_
