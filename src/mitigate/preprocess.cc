#include "src/mitigate/preprocess.h"

#include <algorithm>

namespace xfair {

Vector ReweighingWeights(const Dataset& data) {
  const double n = static_cast<double>(data.size());
  XFAIR_CHECK(data.size() > 0);
  double count_g[2] = {0, 0}, count_y[2] = {0, 0};
  double count_gy[2][2] = {{0, 0}, {0, 0}};
  for (size_t i = 0; i < data.size(); ++i) {
    ++count_g[data.group(i)];
    ++count_y[data.label(i)];
    ++count_gy[data.group(i)][data.label(i)];
  }
  Vector weights(data.size(), 1.0);
  for (size_t i = 0; i < data.size(); ++i) {
    const int g = data.group(i), y = data.label(i);
    if (count_gy[g][y] <= 0.0) continue;
    weights[i] = (count_g[g] / n) * (count_y[y] / n) /
                 (count_gy[g][y] / n);
  }
  return weights;
}

Dataset MassageLabels(const Dataset& data, const Model& ranker,
                      size_t max_flips) {
  // Promotion candidates: protected negatives, highest score first.
  // Demotion candidates: non-protected positives, lowest score first.
  std::vector<std::pair<double, size_t>> promote, demote;
  for (size_t i = 0; i < data.size(); ++i) {
    const double score = ranker.PredictProba(data.instance(i));
    if (data.group(i) == 1 && data.label(i) == 0) {
      promote.emplace_back(-score, i);  // Sort descending by score.
    } else if (data.group(i) == 0 && data.label(i) == 1) {
      demote.emplace_back(score, i);  // Sort ascending by score.
    }
  }
  std::sort(promote.begin(), promote.end());
  std::sort(demote.begin(), demote.end());
  std::vector<int> labels = data.labels();
  const size_t flips =
      std::min({max_flips, promote.size(), demote.size()});
  for (size_t k = 0; k < flips; ++k) {
    labels[promote[k].second] = 1;
    labels[demote[k].second] = 0;
  }
  return Dataset(data.schema(), data.x(), std::move(labels), data.groups());
}

}  // namespace xfair
