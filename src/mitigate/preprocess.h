// Pre-processing mitigation (paper §II "stage of fairness"): transform the
// training data so any downstream learner is fairer.
//  - Reweighing (Kamiran & Calders): weight each (group, label) cell by
//    P(g)P(y) / P(g, y) so group and label become statistically
//    independent under the weighted empirical distribution.
//  - Massaging: flip the labels of the most promising protected negatives
//    and the most marginal non-protected positives, equalizing base rates
//    with minimal label damage.

#ifndef XFAIR_MITIGATE_PREPROCESS_H_
#define XFAIR_MITIGATE_PREPROCESS_H_

#include "src/data/dataset.h"
#include "src/model/model.h"

namespace xfair {

/// Instance weights that make group membership independent of the label.
/// Cells with no mass get weight 1.
Vector ReweighingWeights(const Dataset& data);

/// Massaging: returns a copy of `data` with up to `max_flips` label pairs
/// flipped (one promotion in G+, one demotion in G- per pair, chosen by
/// `ranker` score). `ranker` should be a model trained on the original
/// data; the instances closest to the boundary are flipped first.
Dataset MassageLabels(const Dataset& data, const Model& ranker,
                      size_t max_flips);

}  // namespace xfair

#endif  // XFAIR_MITIGATE_PREPROCESS_H_
