#include "src/model/calibration.h"

#include <cmath>

#include "src/util/check.h"

namespace xfair {

Status PlattCalibrator::Fit(const Dataset& calibration_data) {
  XFAIR_CHECK(base_ != nullptr);
  const size_t n = calibration_data.size();
  if (n == 0) return Status::InvalidArgument("empty calibration set");
  Vector scores = base_->PredictProbaAll(calibration_data);
  // 1-D logistic regression of labels on scores via gradient descent.
  double a = 1.0, b = 0.0;
  const double lr = 0.5;
  for (int iter = 0; iter < 2000; ++iter) {
    double ga = 0.0, gb = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double z = a * scores[i] + b;
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - static_cast<double>(calibration_data.label(i));
      ga += err * scores[i];
      gb += err;
    }
    ga /= static_cast<double>(n);
    gb /= static_cast<double>(n);
    a -= lr * ga;
    b -= lr * gb;
    if (std::fabs(ga) < 1e-7 && std::fabs(gb) < 1e-7) break;
  }
  a_ = a;
  b_ = b;
  fitted_ = true;
  return Status::OK();
}

double PlattCalibrator::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "calibrator not fitted");
  const double s = base_->PredictProba(x);
  return 1.0 / (1.0 + std::exp(-(a_ * s + b_)));
}

}  // namespace xfair
