// Platt scaling: post-hoc probability calibration. Needed by the
// calibration-based group-fairness metrics of Figure 1, which only make
// sense for reasonably calibrated scores.

#ifndef XFAIR_MODEL_CALIBRATION_H_
#define XFAIR_MODEL_CALIBRATION_H_

#include <memory>

#include "src/model/model.h"
#include "src/util/status.h"

namespace xfair {

/// Wraps a base model and remaps its scores through a fitted sigmoid
/// sigma(a * score + b).
class PlattCalibrator final : public Model {
 public:
  /// `base` must outlive this calibrator.
  explicit PlattCalibrator(const Model* base) : base_(base) {}

  /// Fits (a, b) on a held-out calibration set by logistic regression of
  /// labels on base scores.
  Status Fit(const Dataset& calibration_data);

  double PredictProba(const Vector& x) const override;
  std::string name() const override { return base_->name() + "+platt"; }

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  const Model* base_;
  bool fitted_ = false;
  double a_ = 1.0;
  double b_ = 0.0;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_CALIBRATION_H_
