#include "src/model/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

/// Gini impurity of a weighted binary label distribution.
double Gini(double pos_weight, double total_weight) {
  if (total_weight <= 0.0) return 0.0;
  const double p = pos_weight / total_weight;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const Dataset& data,
                         const DecisionTreeOptions& options,
                         const Vector& instance_weights) {
  XFAIR_SPAN("model/fit/decision_tree");
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "decision_tree"},
               {"rows", std::to_string(data.size())}});
  if (!instance_weights.empty() && instance_weights.size() != data.size()) {
    return Status::InvalidArgument("instance_weights size mismatch");
  }
  Vector weights = instance_weights;
  if (weights.empty()) weights.assign(data.size(), 1.0);
  nodes_.clear();
  std::vector<size_t> indices;
  indices.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i)
    if (weights[i] > 0.0) indices.push_back(i);
  if (indices.empty())
    return Status::InvalidArgument("all instance weights are zero");
  Rng rng(options.feature_seed);
  Build(data, weights, indices, 0, options, &rng);
  flat_ = FlatTree::FromNodes(nodes_,
                              [](const TreeNode& n) { return n.proba; });
  fit_id_ = NextModelFitId();
  return Status::OK();
}

int DecisionTree::Build(const Dataset& data, const Vector& weights,
                        std::vector<size_t>& indices, size_t depth,
                        const DecisionTreeOptions& options, Rng* rng) {
  double total = 0.0, pos = 0.0;
  for (size_t i : indices) {
    total += weights[i];
    pos += weights[i] * static_cast<double>(data.label(i));
  }
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].proba = total > 0.0 ? pos / total : 0.0;
  nodes_[node_id].weight = total;

  const bool pure = pos <= 1e-12 || pos >= total - 1e-12;
  if (depth >= options.max_depth || pure ||
      indices.size() < 2 * options.min_samples_leaf) {
    return node_id;
  }

  // Candidate features: all, or a random subset for forests.
  std::vector<size_t> features;
  const size_t d = data.num_features();
  if (options.max_features > 0 && options.max_features < d) {
    features = rng->SampleWithoutReplacement(d, options.max_features);
  } else {
    features.resize(d);
    for (size_t c = 0; c < d; ++c) features[c] = c;
  }

  const double parent_impurity = Gini(pos, total);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  // Sort-and-scan for the best split per candidate feature.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(indices.size());
  for (size_t f : features) {
    order.clear();
    for (size_t i : indices) order.emplace_back(data.x().At(i, f), i);
    std::sort(order.begin(), order.end());
    double left_total = 0.0, left_pos = 0.0;
    size_t left_count = 0;
    for (size_t k = 0; k + 1 < order.size(); ++k) {
      const size_t i = order[k].second;
      left_total += weights[i];
      left_pos += weights[i] * static_cast<double>(data.label(i));
      ++left_count;
      if (order[k].first == order[k + 1].first) continue;  // No cut here.
      if (left_count < options.min_samples_leaf ||
          order.size() - left_count < options.min_samples_leaf) {
        continue;
      }
      const double right_total = total - left_total;
      const double right_pos = pos - left_pos;
      const double child_impurity =
          (left_total * Gini(left_pos, left_total) +
           right_total * Gini(right_pos, right_total)) /
          total;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (order[k].first + order[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // No useful split found.

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (data.x().At(i, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(data, weights, left_idx, depth + 1, options, rng);
  nodes_[node_id].left = left;
  const int right = Build(data, weights, right_idx, depth + 1, options, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictProba(const Vector& x) const {
  return nodes_[static_cast<size_t>(LeafIndex(x))].proba;
}

double DecisionTree::PredictProbaRow(const double* row, size_t dim) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  XFAIR_CHECK(flat_.max_feature() < static_cast<int>(dim));
  return flat_.PredictRow(row);
}

Vector DecisionTree::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  XFAIR_CHECK(flat_.max_feature() < static_cast<int>(x.cols()));
  XFAIR_LATENCY_NS("latency/predict_batch/decision_tree");
  Vector out(x.rows());
  // Chunk-granular dispatch: each out[i] is an independent pure function
  // of row i (no reduction), so chunking is thread-count invariant, and
  // the tight inner loop avoids a per-row std::function call that costs
  // more than the tree walk itself.
  ParallelForChunks(0, x.rows(), [&](const ChunkRange& chunk) {
    for (size_t i = chunk.begin; i < chunk.end; ++i) {
      out[i] = flat_.PredictRow(x.RowPtr(i));
    }
  });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

int DecisionTree::LeafIndex(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  int node = 0;
  for (;;) {
    const TreeNode& n = nodes_[static_cast<size_t>(node)];
    if (n.feature < 0) return node;
    XFAIR_CHECK(static_cast<size_t>(n.feature) < x.size());
    node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                            : n.right;
  }
}

}  // namespace xfair
