// CART decision-tree classifier (binary splits on feature <= threshold,
// Gini impurity). The tree structure is public so rule-based explainers can
// walk it.

#ifndef XFAIR_MODEL_DECISION_TREE_H_
#define XFAIR_MODEL_DECISION_TREE_H_

#include "src/model/flat_tree.h"
#include "src/model/model.h"
#include "src/util/status.h"

namespace xfair {

/// Training options for DecisionTree.
struct DecisionTreeOptions {
  size_t max_depth = 6;
  size_t min_samples_leaf = 5;
  /// If > 0, consider only this many features (chosen at random with
  /// `feature_seed`) at each split — enables random-forest use.
  size_t max_features = 0;
  uint64_t feature_seed = 0;
};

/// One node of a fitted tree. Leaves have feature == -1.
struct TreeNode {
  int feature = -1;        ///< Split feature, or -1 for a leaf.
  double threshold = 0.0;  ///< Goes left iff x[feature] <= threshold.
  int left = -1;           ///< Index of left child in nodes().
  int right = -1;          ///< Index of right child in nodes().
  double proba = 0.0;      ///< Leaf value: weighted P(y=1).
  double weight = 0.0;     ///< Total training weight that reached the node.
};

/// CART classifier.
class DecisionTree final : public Model {
 public:
  DecisionTree() = default;

  /// Fits the tree; optional per-instance weights as in LogisticRegression.
  Status Fit(const Dataset& data, const DecisionTreeOptions& options = {},
             const Vector& instance_weights = {});

  double PredictProba(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  std::string name() const override { return "tree"; }

  bool fitted() const { return !nodes_.empty(); }
  /// Process-unique id of the last successful Fit (0 = never fitted).
  /// Lets explainer caches detect refits; see NextModelFitId.
  uint64_t fit_id() const { return fit_id_; }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  /// Branchless structure-of-arrays copy of the fitted tree, rebuilt at
  /// the end of Fit. All batched prediction routes through it.
  const FlatTree& flat() const { return flat_; }
  /// Index of the leaf that `x` routes to.
  int LeafIndex(const Vector& x) const;
  /// Leaf probability for a raw row of `dim` features (no Vector copy);
  /// the building block of batched ensemble prediction. Uses the flat
  /// branchless layout.
  double PredictProbaRow(const double* row, size_t dim) const;

 private:
  int Build(const Dataset& data, const Vector& weights,
            std::vector<size_t>& indices, size_t depth,
            const DecisionTreeOptions& options, Rng* rng);

  std::vector<TreeNode> nodes_;
  FlatTree flat_;
  uint64_t fit_id_ = 0;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_DECISION_TREE_H_
