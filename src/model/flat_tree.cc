#include "src/model/flat_tree.h"

namespace xfair {

size_t FlatTree::ComputeDepth(int32_t node) const {
  const size_t i = static_cast<size_t>(node);
  // Self-looped leaves terminate the recursion.
  if (left_[i] == node && right_[i] == node) return 0;
  return 1 + std::max(ComputeDepth(left_[i]), ComputeDepth(right_[i]));
}

void FlatForest::Add(FlatTree tree) {
  max_feature_ = std::max(max_feature_, tree.max_feature());
  trees_.push_back(std::move(tree));
}

}  // namespace xfair
