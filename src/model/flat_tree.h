// Structure-of-arrays tree inference.
//
// Fitted trees are stored as arrays of pointer-linked nodes (TreeNode /
// GbmNode) because the explainers walk them structurally. For *inference*
// that layout is slow: every row chases 40-byte nodes through memory and
// takes an unpredictable branch per level. FlatTree re-packs a fitted tree
// once into parallel arrays (feature, threshold, left, right, value) and
// self-loops its leaves (feature 0, threshold +inf, left = right = self),
// so traversal becomes a fixed-trip-count loop of depth() conditional
// moves with no leaf test and no branch misprediction. The leaf reached —
// and therefore the returned value — is bit-identical to the recursive
// walk; FlatTree is a pure drop-in under every batched entry point.
//
// FlatForest concatenates the flat trees of an ensemble and accumulates
// per-row values in ascending tree order, matching the serial summation
// order of the pointer-chasing baselines exactly.

#ifndef XFAIR_MODEL_FLAT_TREE_H_
#define XFAIR_MODEL_FLAT_TREE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/check.h"

namespace xfair {

/// One fitted binary tree re-packed for branchless traversal.
class FlatTree {
 public:
  FlatTree() = default;

  /// Re-packs `nodes` (any node type with .feature, .threshold, .left,
  /// .right members and a leaf value returned by `leaf_value`). Leaves are
  /// detected by feature < 0.
  template <typename Node, typename LeafValue>
  static FlatTree FromNodes(const std::vector<Node>& nodes,
                            LeafValue leaf_value) {
    FlatTree t;
    const size_t n = nodes.size();
    t.feature_.resize(n);
    t.threshold_.resize(n);
    t.left_.resize(n);
    t.right_.resize(n);
    t.value_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      t.value_[i] = leaf_value(node);
      if (node.feature < 0) {
        // Self-looping leaf: any comparison outcome stays put, so the
        // traversal can run a fixed number of iterations.
        t.feature_[i] = 0;
        t.threshold_[i] = kInf;
        t.left_[i] = static_cast<int32_t>(i);
        t.right_[i] = static_cast<int32_t>(i);
      } else {
        t.feature_[i] = node.feature;
        t.threshold_[i] = node.threshold;
        t.left_[i] = node.left;
        t.right_[i] = node.right;
        t.max_feature_ = std::max(t.max_feature_, node.feature);
      }
    }
    if (n > 0) t.depth_ = t.ComputeDepth(0);
    return t;
  }

  bool empty() const { return feature_.empty(); }
  size_t num_nodes() const { return feature_.size(); }
  /// Length of the longest root-to-leaf path (0 for a root-only tree).
  size_t depth() const { return depth_; }
  /// Largest split feature index (-1 if the tree is a single leaf).
  int max_feature() const { return max_feature_; }

  /// Leaf value for a raw feature row. The row must hold more than
  /// max_feature() entries (checked once by the batch callers).
  double PredictRow(const double* row) const {
    const int32_t* feature = feature_.data();
    const double* threshold = threshold_.data();
    const int32_t* left = left_.data();
    const int32_t* right = right_.data();
    int32_t node = 0;
    for (size_t level = 0; level < depth_; ++level) {
      const int32_t l = left[node];
      const int32_t r = right[node];
      node = row[feature[node]] <= threshold[node] ? l : r;
    }
    return value_[node];
  }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  size_t ComputeDepth(int32_t node) const;

  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<double> value_;
  size_t depth_ = 0;
  int max_feature_ = -1;
};

/// Flat trees of an ensemble, accumulated in ascending tree order.
class FlatForest {
 public:
  FlatForest() = default;

  void Clear() { trees_.clear(); }
  void Add(FlatTree tree);

  size_t num_trees() const { return trees_.size(); }
  bool empty() const { return trees_.empty(); }
  int max_feature() const { return max_feature_; }

  /// Sum over trees of tree value for `row` (serial ascending order).
  double SumRow(const double* row) const {
    double acc = 0.0;
    for (const FlatTree& t : trees_) acc += t.PredictRow(row);
    return acc;
  }

  /// scale * sum_t tree_t(row) accumulated as acc += scale * value per
  /// tree — the exact arithmetic of the GBM margin recursion.
  double ScaledSumRow(const double* row, double scale, double bias) const {
    double acc = bias;
    for (const FlatTree& t : trees_) acc += scale * t.PredictRow(row);
    return acc;
  }

  /// Mean over trees of tree value for `row`.
  double MeanRow(const double* row) const {
    XFAIR_CHECK(!trees_.empty());
    return SumRow(row) / static_cast<double>(trees_.size());
  }

 private:
  std::vector<FlatTree> trees_;
  int max_feature_ = -1;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_FLAT_TREE_H_
