#include "src/model/gbm.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Builds one variance-reduction regression tree on `targets` and returns
/// its node array. Leaf values use the Newton step for logistic loss:
/// sum(residual) / sum(p(1-p)).
struct TreeBuilder {
  const Dataset& data;
  const Vector& residuals;  // y - p per instance.
  const Vector& hessians;   // p (1 - p) per instance.
  const GbmOptions& options;
  std::vector<GbmNode> nodes;

  int Build(std::vector<size_t>& indices, size_t depth) {
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    double grad_sum = 0.0, hess_sum = 0.0;
    for (size_t i : indices) {
      grad_sum += residuals[i];
      hess_sum += hessians[i];
    }
    nodes[id].value = grad_sum / std::max(hess_sum, 1e-12);
    nodes[id].cover = static_cast<double>(indices.size());

    if (depth >= options.max_depth ||
        indices.size() < 2 * options.min_samples_leaf) {
      return id;
    }

    // Best split by squared-residual variance reduction.
    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;
    std::vector<std::pair<double, size_t>> order;
    order.reserve(indices.size());
    const double total_sum = grad_sum;
    const double total_n = static_cast<double>(indices.size());
    for (size_t f = 0; f < data.num_features(); ++f) {
      order.clear();
      for (size_t i : indices) order.emplace_back(data.x().At(i, f), i);
      std::sort(order.begin(), order.end());
      double left_sum = 0.0;
      size_t left_n = 0;
      for (size_t k = 0; k + 1 < order.size(); ++k) {
        left_sum += residuals[order[k].second];
        ++left_n;
        if (order[k].first == order[k + 1].first) continue;
        if (left_n < options.min_samples_leaf ||
            order.size() - left_n < options.min_samples_leaf) {
          continue;
        }
        const double right_sum = total_sum - left_sum;
        const double right_n = total_n - static_cast<double>(left_n);
        const double gain =
            left_sum * left_sum / static_cast<double>(left_n) +
            right_sum * right_sum / right_n -
            total_sum * total_sum / total_n;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (order[k].first + order[k + 1].first);
        }
      }
    }
    if (best_feature < 0) return id;

    std::vector<size_t> left_idx, right_idx;
    for (size_t i : indices) {
      (data.x().At(i, static_cast<size_t>(best_feature)) <= best_threshold
           ? left_idx
           : right_idx)
          .push_back(i);
    }
    if (left_idx.empty() || right_idx.empty()) return id;
    nodes[id].feature = best_feature;
    nodes[id].threshold = best_threshold;
    const int l = Build(left_idx, depth + 1);
    nodes[id].left = l;
    const int r = Build(right_idx, depth + 1);
    nodes[id].right = r;
    return id;
  }
};

double TreeValue(const std::vector<GbmNode>& nodes, const double* x) {
  int id = 0;
  for (;;) {
    const GbmNode& n = nodes[static_cast<size_t>(id)];
    if (n.feature < 0) return n.value;
    id = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                          : n.right;
  }
}

}  // namespace

Status GradientBoostedTrees::Fit(const Dataset& data,
                                 const GbmOptions& options) {
  XFAIR_SPAN("model/fit/gbm");
  const size_t n = data.size();
  if (n == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "gbm"}, {"rows", std::to_string(n)}});
  if (options.num_rounds == 0) {
    return Status::InvalidArgument("num_rounds must be positive");
  }
  learning_rate_ = options.learning_rate;
  trees_.clear();

  // Bias: log-odds of the base rate (clamped away from infinities).
  double pos = 0.0;
  for (size_t i = 0; i < n; ++i) pos += data.label(i);
  const double rate =
      std::min(std::max(pos / static_cast<double>(n), 1e-6), 1.0 - 1e-6);
  bias_ = std::log(rate / (1.0 - rate));

  Vector margins(n, bias_), residuals(n), hessians(n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;

  for (size_t round = 0; round < options.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margins[i]);
      residuals[i] = static_cast<double>(data.label(i)) - p;
      hessians[i] = std::max(p * (1.0 - p), 1e-6);
    }
    TreeBuilder builder{data, residuals, hessians, options, {}};
    std::vector<size_t> indices = all;
    builder.Build(indices, 0);
    for (size_t i = 0; i < n; ++i) {
      margins[i] +=
          learning_rate_ * TreeValue(builder.nodes, data.x().RowPtr(i));
    }
    trees_.push_back(std::move(builder.nodes));
  }
  flat_.Clear();
  for (const auto& tree : trees_) {
    flat_.Add(
        FlatTree::FromNodes(tree, [](const GbmNode& n) { return n.value; }));
  }
  fitted_ = true;
  fit_id_ = NextModelFitId();
  return Status::OK();
}

double GradientBoostedTrees::Margin(const Vector& x) const {
  return MarginRow(x.data());
}

double GradientBoostedTrees::MarginRow(const double* row) const {
  double m = bias_;
  for (const auto& tree : trees_) m += learning_rate_ * TreeValue(tree, row);
  return m;
}

double GradientBoostedTrees::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  return Sigmoid(Margin(x));
}

Vector GradientBoostedTrees::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(flat_.max_feature() < static_cast<int>(x.cols()));
  XFAIR_LATENCY_NS("latency/predict_batch/gbm");
  XFAIR_COUNTER_ADD("flat_tree/batch_rows", x.rows());
  Vector out(x.rows());
  ParallelFor(0, x.rows(), [&](size_t i) {
    out[i] = Sigmoid(flat_.ScaledSumRow(x.RowPtr(i), learning_rate_, bias_));
  });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

}  // namespace xfair
