// Gradient-boosted trees for binary classification (logistic loss,
// shallow regression trees on gradient residuals). The strongest tabular
// black-box in the library — the kind of opaque production model the
// surveyed post-hoc explainers exist for.

#ifndef XFAIR_MODEL_GBM_H_
#define XFAIR_MODEL_GBM_H_

#include "src/model/flat_tree.h"
#include "src/model/model.h"
#include "src/util/status.h"

namespace xfair {

/// Training options for GradientBoostedTrees.
struct GbmOptions {
  size_t num_rounds = 60;
  size_t max_depth = 3;
  size_t min_samples_leaf = 5;
  double learning_rate = 0.2;
};

/// One node of an internal regression tree (leaves have feature == -1).
struct GbmNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1, right = -1;
  double value = 0.0;  ///< Leaf output (margin-space step).
  double cover = 0.0;  ///< Training rows that reached the node (TreeSHAP).
};

/// Boosted ensemble: margin(x) = bias + lr * sum_t tree_t(x);
/// P(y=1|x) = sigmoid(margin).
class GradientBoostedTrees final : public Model {
 public:
  GradientBoostedTrees() = default;

  Status Fit(const Dataset& data, const GbmOptions& options = {});

  double PredictProba(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  std::string name() const override { return "gbm"; }

  bool fitted() const { return fitted_; }
  /// Process-unique id of the last successful Fit (0 = never fitted).
  uint64_t fit_id() const { return fit_id_; }
  size_t num_trees() const { return trees_.size(); }
  /// The fitted regression trees (margin-space; for TreeSHAP).
  const std::vector<std::vector<GbmNode>>& trees() const { return trees_; }
  double bias() const { return bias_; }
  double learning_rate() const { return learning_rate_; }

 private:
  double Margin(const Vector& x) const;
  double MarginRow(const double* row) const;

  bool fitted_ = false;
  uint64_t fit_id_ = 0;
  double bias_ = 0.0;
  double learning_rate_ = 0.2;
  std::vector<std::vector<GbmNode>> trees_;
  /// Branchless copies of the regression trees; batched margins traverse
  /// these instead of the node arrays.
  FlatForest flat_;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_GBM_H_
