#include "src/model/knn.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {

Status KnnClassifier::Fit(const Dataset& data) {
  XFAIR_SPAN("model/fit/knn");
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "knn"}, {"rows", std::to_string(data.size())}});
  if (k_ == 0) return Status::InvalidArgument("k must be positive");
  if (k_ > data.size()) {
    return Status::InvalidArgument("k exceeds training-set size");
  }
  data_ = data;
  index_ = KdTree(data_.x());
  fitted_ = true;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(const Vector& x,
                                             size_t k) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.size() == data_.num_features());
  return index_.KNearest(x.data(), k);
}

std::vector<size_t> KnnClassifier::NeighborsBruteForce(const Vector& x,
                                                       size_t k) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(k > 0 && k <= data_.size());
  XFAIR_CHECK(x.size() == data_.num_features());
  const Matrix& pts = data_.x();
  // Squared distances in place against the row storage — no per-candidate
  // temporaries. The same pinned-order kernel as KdTree::SquaredDistance,
  // so both paths produce identical floating-point sums (and therefore
  // identical neighbor orderings under distance ties).
  std::vector<std::pair<double, size_t>> dist(pts.rows());
  for (size_t i = 0; i < pts.rows(); ++i) {
    dist[i] = {kernels::SquaredDistance(pts.RowPtr(i), x.data(), pts.cols()),
               i};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

double KnnClassifier::ProbaFromRow(const double* row) const {
  const auto nn = index_.KNearest(row, k_);
  double pos = 0.0;
  for (size_t i : nn) pos += static_cast<double>(data_.label(i));
  return pos / static_cast<double>(nn.size());
}

double KnnClassifier::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.size() == data_.num_features());
  return ProbaFromRow(x.data());
}

Vector KnnClassifier::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.cols() == data_.num_features());
  XFAIR_LATENCY_NS("latency/predict_batch/knn");
  Vector out(x.rows());
  ParallelFor(0, x.rows(),
              [&](size_t i) { out[i] = ProbaFromRow(x.RowPtr(i)); });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

}  // namespace xfair
