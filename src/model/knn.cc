#include "src/model/knn.h"

#include <algorithm>

#include "src/util/parallel.h"

namespace xfair {

Status KnnClassifier::Fit(const Dataset& data) {
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  if (k_ == 0) return Status::InvalidArgument("k must be positive");
  if (k_ > data.size()) {
    return Status::InvalidArgument("k exceeds training-set size");
  }
  data_ = data;
  fitted_ = true;
  return Status::OK();
}

std::vector<size_t> KnnClassifier::Neighbors(const Vector& x,
                                             size_t k) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(k > 0 && k <= data_.size());
  std::vector<std::pair<double, size_t>> dist(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    dist[i] = {Norm2(Sub(data_.instance(i), x)), i};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

double KnnClassifier::PredictProba(const Vector& x) const {
  const auto nn = Neighbors(x, k_);
  double pos = 0.0;
  for (size_t i : nn) pos += static_cast<double>(data_.label(i));
  return pos / static_cast<double>(nn.size());
}

Vector KnnClassifier::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  Vector out(x.rows());
  ParallelFor(0, x.rows(),
              [&](size_t i) { out[i] = PredictProba(x.Row(i)); });
  return out;
}

}  // namespace xfair
