// k-nearest-neighbor classifier. Doubles as the library's similarity oracle
// for individual-fairness checks and nearest-neighbor explanations.

#ifndef XFAIR_MODEL_KNN_H_
#define XFAIR_MODEL_KNN_H_

#include "src/model/model.h"
#include "src/util/kdtree.h"
#include "src/util/status.h"

namespace xfair {

/// k-NN with Euclidean distance over (typically standardized) features.
/// Queries go through a KD-tree built at fit time; `NeighborsBruteForce`
/// keeps the O(n*d) scan as a reference (both return identical index
/// sets — ties break by ascending training-row index).
class KnnClassifier final : public Model {
 public:
  explicit KnnClassifier(size_t k = 5) : k_(k) {}

  /// Stores the training set and builds the neighbor index.
  /// Requires k <= data.size().
  Status Fit(const Dataset& data);

  double PredictProba(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  std::string name() const override { return "knn"; }

  bool fitted() const { return fitted_; }

  /// Indices (into the training set) of the k nearest neighbors of x,
  /// closest first; ties broken by ascending row index.
  std::vector<size_t> Neighbors(const Vector& x, size_t k) const;

  /// Reference O(n*d) scan; returns exactly what Neighbors returns.
  std::vector<size_t> NeighborsBruteForce(const Vector& x, size_t k) const;

  const Dataset& training_data() const { return data_; }

 private:
  double ProbaFromRow(const double* row) const;

  size_t k_;
  bool fitted_ = false;
  Dataset data_;
  KdTree index_;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_KNN_H_
