#include "src/model/logistic_regression.h"

#include <cmath>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Dataset& data,
                               const LogisticRegressionOptions& options,
                               const Vector& instance_weights) {
  XFAIR_SPAN("model/fit/logistic_regression");
  const size_t n = data.size();
  const size_t d = data.num_features();
  if (n == 0) return Status::InvalidArgument("empty training set");
  if (!instance_weights.empty() && instance_weights.size() != n) {
    return Status::InvalidArgument("instance_weights size mismatch");
  }
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i)
    total_weight += instance_weights.empty() ? 1.0 : instance_weights[i];
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("instance weights sum to zero");
  }

  // Internally standardize features so plain gradient descent is well
  // conditioned on any input scale; parameters are folded back to the
  // original space below.
  Vector mean(d, 0.0), std(d, 1.0);
  for (size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) m += data.x().At(i, c);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double delta = data.x().At(i, c) - m;
      var += delta * delta;
    }
    var /= static_cast<double>(n);
    mean[c] = m;
    std[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  Vector w(d, 0.0);
  double b = 0.0;
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    Vector grad_w(d, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double wi = instance_weights.empty() ? 1.0 : instance_weights[i];
      if (wi == 0.0) continue;
      const double* row = data.x().RowPtr(i);
      double z = b;
      for (size_t c = 0; c < d; ++c)
        z += w[c] * (row[c] - mean[c]) / std[c];
      const double err = Sigmoid(z) - static_cast<double>(data.label(i));
      const double scaled = wi * err;
      for (size_t c = 0; c < d; ++c)
        grad_w[c] += scaled * (row[c] - mean[c]) / std[c];
      grad_b += scaled;
    }
    double max_abs = std::fabs(grad_b / total_weight);
    for (size_t c = 0; c < d; ++c) {
      grad_w[c] = grad_w[c] / total_weight + options.l2 * w[c];
      max_abs = std::max(max_abs, std::fabs(grad_w[c]));
    }
    grad_b /= total_weight;
    for (size_t c = 0; c < d; ++c) w[c] -= options.learning_rate * grad_w[c];
    b -= options.learning_rate * grad_b;
    if (max_abs < options.tolerance) break;
  }

  // Fold standardization into the parameters: w.(x-mu)/sd + b =
  // (w/sd).x + (b - w.mu/sd).
  for (size_t c = 0; c < d; ++c) {
    w[c] /= std[c];
    b -= w[c] * mean[c];
  }
  weights_ = std::move(w);
  bias_ = b;
  fitted_ = true;
  return Status::OK();
}

double LogisticRegression::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.size() == weights_.size());
  return Sigmoid(Dot(weights_, x) + bias_);
}

Vector LogisticRegression::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.cols() == weights_.size());
  const size_t d = weights_.size();
  Vector out(x.rows());
  ParallelFor(0, x.rows(), [&](size_t i) {
    // Same accumulation order as PredictProba (dot first, bias last) so
    // batch and row-by-row scores are bit-identical.
    const double* row = x.RowPtr(i);
    double z = 0.0;
    for (size_t c = 0; c < d; ++c) z += weights_[c] * row[c];
    out[i] = Sigmoid(z + bias_);
  });
  return out;
}

Vector LogisticRegression::ProbaGradient(const Vector& x) const {
  const double p = PredictProba(x);
  return Scale(p * (1.0 - p), weights_);
}

void LogisticRegression::SetParameters(Vector weights, double bias) {
  weights_ = std::move(weights);
  bias_ = bias;
  fitted_ = true;
}

double LogisticRegression::Margin(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  return Dot(weights_, x) + bias_;
}

double LogisticRegression::DistanceToBoundary(const Vector& x) const {
  const double wnorm = Norm2(weights_);
  if (wnorm < 1e-12) return 0.0;
  const double logit_t =
      std::log(threshold_ / (1.0 - threshold_));  // threshold in margin space
  return std::fabs(Margin(x) - logit_t) / wnorm;
}

}  // namespace xfair
