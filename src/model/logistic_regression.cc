#include "src/model/logistic_regression.h"

#include <cmath>

#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {

using kernels::Sigmoid;

Status LogisticRegression::Fit(const Dataset& data,
                               const LogisticRegressionOptions& options,
                               const Vector& instance_weights) {
  XFAIR_SPAN("model/fit/logistic_regression");
  const size_t n = data.size();
  const size_t d = data.num_features();
  if (n == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "logistic_regression"}, {"rows", std::to_string(n)}});
  if (!instance_weights.empty() && instance_weights.size() != n) {
    return Status::InvalidArgument("instance_weights size mismatch");
  }
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i)
    total_weight += instance_weights.empty() ? 1.0 : instance_weights[i];
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("instance weights sum to zero");
  }

  // Internally standardize features so plain gradient descent is well
  // conditioned on any input scale; parameters are folded back to the
  // original space below. Column moments are accumulated row-major (one
  // streaming pass per moment, no Matrix::Col copies) — per-column sums
  // still run in ascending row order, so the moments are unchanged.
  Vector mean(d, 0.0), std(d, 1.0);
  for (size_t i = 0; i < n; ++i)
    kernels::Axpy(1.0, data.x().RowPtr(i), mean.data(), d);
  for (size_t c = 0; c < d; ++c) mean[c] /= static_cast<double>(n);
  Vector var(d, 0.0);
  for (size_t i = 0; i < n; ++i)
    kernels::AccumSquaredDiff(data.x().RowPtr(i), mean.data(), var.data(),
                              d);
  for (size_t c = 0; c < d; ++c) {
    std[c] = var[c] / static_cast<double>(n) > 1e-12
                 ? std::sqrt(var[c] / static_cast<double>(n))
                 : 1.0;
  }

  // Standardize once up front: the gradient loop then runs pure dense
  // kernels on the pre-scaled rows instead of re-deriving
  // (x - mean) / std per element per iteration.
  Matrix xs(n, d);
  for (size_t i = 0; i < n; ++i)
    kernels::Standardize(data.x().RowPtr(i), mean.data(), std.data(),
                         xs.RowPtr(i), d);

  Vector w(d, 0.0);
  double b = 0.0;
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    Vector grad_w(d, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double wi = instance_weights.empty() ? 1.0 : instance_weights[i];
      if (wi == 0.0) continue;
      const double* row = xs.RowPtr(i);
      const double z = b + kernels::Dot(w.data(), row, d);
      const double err = Sigmoid(z) - static_cast<double>(data.label(i));
      const double scaled = wi * err;
      kernels::Axpy(scaled, row, grad_w.data(), d);
      grad_b += scaled;
    }
    double max_abs = std::fabs(grad_b / total_weight);
    for (size_t c = 0; c < d; ++c) {
      grad_w[c] = grad_w[c] / total_weight + options.l2 * w[c];
      max_abs = std::max(max_abs, std::fabs(grad_w[c]));
    }
    grad_b /= total_weight;
    for (size_t c = 0; c < d; ++c) w[c] -= options.learning_rate * grad_w[c];
    b -= options.learning_rate * grad_b;
    if (max_abs < options.tolerance) break;
  }

  // Fold standardization into the parameters: w.(x-mu)/sd + b =
  // (w/sd).x + (b - w.mu/sd).
  for (size_t c = 0; c < d; ++c) {
    w[c] /= std[c];
    b -= w[c] * mean[c];
  }
  weights_ = std::move(w);
  bias_ = b;
  fitted_ = true;
  return Status::OK();
}

double LogisticRegression::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.size() == weights_.size());
  return Sigmoid(Dot(weights_, x) + bias_);
}

Vector LogisticRegression::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.cols() == weights_.size());
  XFAIR_LATENCY_NS("latency/predict_batch/logistic_regression");
  const size_t d = weights_.size();
  Vector out(x.rows());
  // Blocked Gemv + fused sigmoid per chunk. Each row's score is the
  // pinned-order dot plus the bias — the exact arithmetic of
  // PredictProba — so batch and row-by-row results are bit-identical at
  // any chunking or thread count.
  ParallelForChunks(0, x.rows(), [&](const ChunkRange& chunk) {
    const size_t rows = chunk.end - chunk.begin;
    kernels::Gemv(x.RowPtr(chunk.begin), rows, d, weights_.data(), bias_,
                  out.data() + chunk.begin);
    kernels::SigmoidBatch(out.data() + chunk.begin, out.data() + chunk.begin,
                          rows);
  });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

Vector LogisticRegression::ProbaGradient(const Vector& x) const {
  const double p = PredictProba(x);
  return Scale(p * (1.0 - p), weights_);
}

void LogisticRegression::SetParameters(Vector weights, double bias) {
  weights_ = std::move(weights);
  bias_ = bias;
  fitted_ = true;
}

double LogisticRegression::Margin(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  return Dot(weights_, x) + bias_;
}

double LogisticRegression::DistanceToBoundary(const Vector& x) const {
  const double wnorm = Norm2(weights_);
  if (wnorm < 1e-12) return 0.0;
  const double logit_t =
      std::log(threshold_ / (1.0 - threshold_));  // threshold in margin space
  return std::fabs(Margin(x) - logit_t) / wnorm;
}

}  // namespace xfair
