// L2-regularized logistic regression trained by full-batch gradient
// descent. The white-box workhorse of the library: it exposes weights (for
// white-box explainers and influence functions) and input gradients (for
// Wachter-style counterfactual search).

#ifndef XFAIR_MODEL_LOGISTIC_REGRESSION_H_
#define XFAIR_MODEL_LOGISTIC_REGRESSION_H_

#include "src/model/model.h"
#include "src/util/status.h"

namespace xfair {

/// Training options for LogisticRegression.
struct LogisticRegressionOptions {
  size_t max_iters = 500;
  double learning_rate = 0.5;
  double l2 = 1e-3;
  /// Stop when the gradient's infinity norm falls below this.
  double tolerance = 1e-6;
};

/// Binary logistic regression: P(y=1|x) = sigmoid(w.x + b).
class LogisticRegression final : public GradientModel {
 public:
  LogisticRegression() = default;

  /// Trains on `data`; `instance_weights` (if non-empty) must have one
  /// weight per row and is how pre-processing mitigation (reweighing)
  /// plugs in. Returns kInvalidArgument on shape errors.
  Status Fit(const Dataset& data,
             const LogisticRegressionOptions& options = {},
             const Vector& instance_weights = {});

  double PredictProba(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  Vector ProbaGradient(const Vector& x) const override;
  std::string name() const override { return "logreg"; }

  bool fitted() const { return fitted_; }
  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Installs externally-trained parameters (used by in-processing
  /// mitigation which runs its own penalized training loop).
  void SetParameters(Vector weights, double bias);

  /// Decision-function margin w.x + b (signed distance up to ||w||).
  double Margin(const Vector& x) const;

  /// Euclidean distance of x from the decision boundary at the model's
  /// threshold: |w.x + b - logit(threshold)| / ||w||.
  double DistanceToBoundary(const Vector& x) const;

 private:
  bool fitted_ = false;
  Vector weights_;
  double bias_ = 0.0;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_LOGISTIC_REGRESSION_H_
