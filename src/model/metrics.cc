#include "src/model/metrics.h"

#include <algorithm>
#include <cmath>

namespace xfair {

double Confusion::accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double Confusion::tpr() const {
  const size_t pos = tp + fn;
  return pos == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(pos);
}

double Confusion::fpr() const {
  const size_t neg = fp + tn;
  return neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(neg);
}

double Confusion::fnr() const {
  const size_t pos = tp + fn;
  return pos == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(pos);
}

double Confusion::precision() const {
  const size_t pred_pos = tp + fp;
  return pred_pos == 0
             ? 0.0
             : static_cast<double>(tp) / static_cast<double>(pred_pos);
}

double Confusion::positive_rate() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + fp) / static_cast<double>(n);
}

Confusion EvaluateConfusion(const Model& model, const Dataset& data,
                            const std::vector<size_t>& indices) {
  Confusion c;
  auto eval_one = [&](size_t i) {
    const int pred = model.Predict(data.instance(i));
    const int truth = data.label(i);
    if (pred == 1 && truth == 1) ++c.tp;
    if (pred == 1 && truth == 0) ++c.fp;
    if (pred == 0 && truth == 0) ++c.tn;
    if (pred == 0 && truth == 1) ++c.fn;
  };
  if (indices.empty()) {
    for (size_t i = 0; i < data.size(); ++i) eval_one(i);
  } else {
    for (size_t i : indices) eval_one(i);
  }
  return c;
}

double Accuracy(const Model& model, const Dataset& data) {
  return EvaluateConfusion(model, data).accuracy();
}

double Auc(const Model& model, const Dataset& data) {
  std::vector<std::pair<double, int>> scored(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    scored[i] = {model.PredictProba(data.instance(i)), data.label(i)};
  }
  std::sort(scored.begin(), scored.end());
  // Rank-sum (Mann-Whitney) with midranks for ties.
  size_t n_pos = 0, n_neg = 0;
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double midrank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (size_t k = i; k < j; ++k) {
      if (scored[k].second == 1) {
        ++n_pos;
        rank_sum_pos += midrank;
      } else {
        ++n_neg;
      }
    }
    i = j;
  }
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) *
                       (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double ExpectedCalibrationError(const Model& model, const Dataset& data,
                                size_t bins,
                                const std::vector<size_t>& indices) {
  XFAIR_CHECK(bins > 0);
  std::vector<size_t> rows = indices;
  if (rows.empty()) {
    rows.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) rows[i] = i;
  }
  std::vector<double> conf_sum(bins, 0.0), label_sum(bins, 0.0);
  std::vector<size_t> count(bins, 0);
  for (size_t i : rows) {
    const double p = model.PredictProba(data.instance(i));
    size_t b = std::min(bins - 1, static_cast<size_t>(p * static_cast<double>(
                                                              bins)));
    conf_sum[b] += p;
    label_sum[b] += static_cast<double>(data.label(i));
    ++count[b];
  }
  double ece = 0.0;
  const double n = static_cast<double>(rows.size());
  for (size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    const double cb = static_cast<double>(count[b]);
    ece += (cb / n) * std::fabs(conf_sum[b] / cb - label_sum[b] / cb);
  }
  return ece;
}

}  // namespace xfair
