// Classification quality metrics (accuracy, confusion counts, AUC). The
// fairness layer conditions these on group membership; this header is the
// unconditioned substrate.

#ifndef XFAIR_MODEL_METRICS_H_
#define XFAIR_MODEL_METRICS_H_

#include "src/data/dataset.h"
#include "src/model/model.h"

namespace xfair {

/// Confusion-matrix counts for binary classification.
struct Confusion {
  size_t tp = 0, fp = 0, tn = 0, fn = 0;

  size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  /// True positive rate (recall); 0 if no positives.
  double tpr() const;
  /// False positive rate; 0 if no negatives.
  double fpr() const;
  /// False negative rate; 0 if no positives.
  double fnr() const;
  /// Precision (positive predictive value); 0 if no predicted positives.
  double precision() const;
  /// Rate of predicted-favorable outcomes, P(y_hat = 1).
  double positive_rate() const;
};

/// Confusion counts of `model` on `data` (optionally restricted to
/// `indices`; empty = all rows).
Confusion EvaluateConfusion(const Model& model, const Dataset& data,
                            const std::vector<size_t>& indices = {});

/// Plain accuracy of `model` on `data`.
double Accuracy(const Model& model, const Dataset& data);

/// Area under the ROC curve of `model` scores on `data` (rank-based;
/// 0.5 if one class is absent).
double Auc(const Model& model, const Dataset& data);

/// Expected calibration error with `bins` equal-width probability bins,
/// optionally restricted to `indices`.
double ExpectedCalibrationError(const Model& model, const Dataset& data,
                                size_t bins = 10,
                                const std::vector<size_t>& indices = {});

}  // namespace xfair

#endif  // XFAIR_MODEL_METRICS_H_
