#include "src/model/model.h"

#include <atomic>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {

uint64_t NextModelFitId() {
  // Starts at 1 so 0 always reads "never fitted" to cache lookups.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Vector Model::PredictProbaBatch(const Matrix& x) const {
  Vector out(x.rows());
  ParallelFor(0, x.rows(),
              [&](size_t i) { out[i] = PredictProba(x.Row(i)); });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

std::vector<int> Model::PredictBatch(const Matrix& x) const {
  const Vector proba = PredictProbaBatch(x);
  std::vector<int> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i)
    out[i] = proba[i] >= threshold_ ? 1 : 0;
  return out;
}

std::vector<int> Model::PredictAll(const Dataset& data) const {
  return PredictBatch(data.x());
}

Vector Model::PredictProbaAll(const Dataset& data) const {
  return PredictProbaBatch(data.x());
}

}  // namespace xfair
