#include "src/model/model.h"

namespace xfair {

std::vector<int> Model::PredictAll(const Dataset& data) const {
  std::vector<int> out(data.size());
  for (size_t i = 0; i < data.size(); ++i) out[i] = Predict(data.instance(i));
  return out;
}

Vector Model::PredictProbaAll(const Dataset& data) const {
  Vector out(data.size());
  for (size_t i = 0; i < data.size(); ++i)
    out[i] = PredictProba(data.instance(i));
  return out;
}

}  // namespace xfair
