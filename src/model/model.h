// Model interfaces with explicit access tiers.
//
// The explanation taxonomy (paper §III) distinguishes black-box access
// (predictions only), gradient access, and white-box access. These tiers
// are modeled as interfaces: every explainer declares the weakest tier it
// needs by the parameter type it takes.

#ifndef XFAIR_MODEL_MODEL_H_
#define XFAIR_MODEL_MODEL_H_

#include <memory>
#include <string>

#include "src/data/dataset.h"
#include "src/util/matrix.h"

namespace xfair {

/// Process-unique id stamped onto a model by each successful Fit.
/// Explainer-side caches (e.g. the TreeSHAP node-conversion cache in
/// src/explain/tree_shap.cc) key on (model address, fit id): the id
/// changes on refit and is never reused, so a stale entry can't survive
/// either a refit or an address reused by a new model object.
uint64_t NextModelFitId();

/// Black-box tier: a trained binary classifier exposing only scores.
class Model {
 public:
  virtual ~Model() = default;

  /// P(y = 1 | x). Must be in [0, 1].
  virtual double PredictProba(const Vector& x) const = 0;

  /// Hard decision at the model's threshold (default 0.5).
  virtual int Predict(const Vector& x) const {
    return PredictProba(x) >= threshold_ ? 1 : 0;
  }

  /// P(y = 1 | row) for every row of `x` in one call. The batched entry
  /// point every hot path (Shapley coalition evaluation, Gopher scans,
  /// counterfactual search) goes through: overrides amortize virtual
  /// dispatch, read rows in place via Matrix::RowPtr instead of copying
  /// them into Vectors, and may parallelize across rows (each output is
  /// written exactly once, so results are deterministic). The default
  /// falls back to row-by-row PredictProba.
  virtual Vector PredictProbaBatch(const Matrix& x) const;

  /// Hard decisions for every row of `x`. The default thresholds
  /// PredictProbaBatch; models with a custom Predict rule (e.g. per-group
  /// thresholds) must override to match it.
  virtual std::vector<int> PredictBatch(const Matrix& x) const;

  /// Hard decisions for every row of `data`.
  std::vector<int> PredictAll(const Dataset& data) const;
  /// Scores for every row of `data`.
  Vector PredictProbaAll(const Dataset& data) const;

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Short human-readable model family name, e.g. "logreg".
  virtual std::string name() const = 0;

 protected:
  double threshold_ = 0.5;
};

/// Gradient tier: models that can differentiate their score w.r.t. input.
class GradientModel : public Model {
 public:
  /// d PredictProba(x) / d x.
  virtual Vector ProbaGradient(const Vector& x) const = 0;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_MODEL_H_
