#include "src/model/random_forest.h"

#include <cmath>

#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {

Status RandomForest::Fit(const Dataset& data,
                         const RandomForestOptions& options) {
  XFAIR_SPAN("model/fit/random_forest");
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "random_forest"},
               {"rows", std::to_string(data.size())}});
  if (options.num_trees == 0)
    return Status::InvalidArgument("num_trees must be positive");
  trees_.clear();
  const size_t n = data.size();
  size_t max_features = options.max_features;
  if (max_features == 0) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(
               std::sqrt(static_cast<double>(data.num_features()))));
  }
  // Every tree draws its bootstrap and split randomness from its own
  // forked stream, so the fitted forest is identical no matter how many
  // threads fit it (or in which order the trees finish).
  const Rng root(options.seed);
  std::vector<DecisionTree> trees(options.num_trees);
  std::vector<Status> statuses(options.num_trees, Status::OK());
  ParallelFor(0, options.num_trees, [&](size_t t) {
    Rng tree_rng = root.Fork(t);
    // Bootstrap resample expressed as instance weights (multiplicities).
    Vector weights(n, 0.0);
    for (size_t i = 0; i < n; ++i) weights[tree_rng.Below(n)] += 1.0;
    DecisionTreeOptions tree_opts;
    tree_opts.max_depth = options.max_depth;
    tree_opts.min_samples_leaf = options.min_samples_leaf;
    tree_opts.max_features = max_features;
    tree_opts.feature_seed = tree_rng.Next();
    statuses[t] = trees[t].Fit(data, tree_opts, weights);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  trees_ = std::move(trees);
  flat_.Clear();
  for (const DecisionTree& tree : trees_) flat_.Add(tree.flat());
  fit_id_ = NextModelFitId();
  return Status::OK();
}

double RandomForest::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.PredictProba(x);
  return acc / static_cast<double>(trees_.size());
}

Vector RandomForest::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  XFAIR_CHECK(flat_.max_feature() < static_cast<int>(x.cols()));
  XFAIR_LATENCY_NS("latency/predict_batch/random_forest");
  XFAIR_COUNTER_ADD("flat_tree/batch_rows", x.rows());
  Vector out(x.rows());
  ParallelFor(0, x.rows(),
              [&](size_t i) { out[i] = flat_.MeanRow(x.RowPtr(i)); });
  XFAIR_MONITOR_PREDICTIONS(out.data(), out.size(), threshold_);
  return out;
}

}  // namespace xfair
