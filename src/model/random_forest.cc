#include "src/model/random_forest.h"

#include <cmath>

namespace xfair {

Status RandomForest::Fit(const Dataset& data,
                         const RandomForestOptions& options) {
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  if (options.num_trees == 0)
    return Status::InvalidArgument("num_trees must be positive");
  trees_.clear();
  trees_.reserve(options.num_trees);
  Rng rng(options.seed);
  const size_t n = data.size();
  size_t max_features = options.max_features;
  if (max_features == 0) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(
               std::sqrt(static_cast<double>(data.num_features()))));
  }
  for (size_t t = 0; t < options.num_trees; ++t) {
    // Bootstrap resample expressed as instance weights (multiplicities).
    Vector weights(n, 0.0);
    for (size_t i = 0; i < n; ++i) weights[rng.Below(n)] += 1.0;
    DecisionTreeOptions tree_opts;
    tree_opts.max_depth = options.max_depth;
    tree_opts.min_samples_leaf = options.min_samples_leaf;
    tree_opts.max_features = max_features;
    tree_opts.feature_seed = rng.Next();
    DecisionTree tree;
    XFAIR_RETURN_IF_ERROR(tree.Fit(data, tree_opts, weights));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted(), "model not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.PredictProba(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace xfair
