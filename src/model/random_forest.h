// Bagged ensemble of CART trees with per-split feature subsampling — the
// canonical opaque model the black-box explainers are pointed at in tests
// and benches.

#ifndef XFAIR_MODEL_RANDOM_FOREST_H_
#define XFAIR_MODEL_RANDOM_FOREST_H_

#include "src/model/decision_tree.h"

namespace xfair {

/// Training options for RandomForest.
struct RandomForestOptions {
  size_t num_trees = 25;
  size_t max_depth = 8;
  size_t min_samples_leaf = 3;
  /// Features considered per split; 0 = sqrt(num_features).
  size_t max_features = 0;
  uint64_t seed = 7;
};

/// Random forest classifier (probability = mean of tree leaf frequencies).
class RandomForest final : public Model {
 public:
  RandomForest() = default;

  Status Fit(const Dataset& data, const RandomForestOptions& options = {});

  double PredictProba(const Vector& x) const override;
  Vector PredictProbaBatch(const Matrix& x) const override;
  std::string name() const override { return "forest"; }

  bool fitted() const { return !trees_.empty(); }
  /// Process-unique id of the last successful Fit (0 = never fitted).
  uint64_t fit_id() const { return fit_id_; }
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  std::vector<DecisionTree> trees_;
  uint64_t fit_id_ = 0;
  /// Concatenated branchless copies of all trees, rebuilt at the end of
  /// Fit; PredictProbaBatch traverses these instead of the node arrays.
  FlatForest flat_;
};

}  // namespace xfair

#endif  // XFAIR_MODEL_RANDOM_FOREST_H_
