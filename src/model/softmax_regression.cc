#include "src/model/softmax_regression.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {

Status SoftmaxRegression::Fit(const Matrix& x,
                              const std::vector<int>& labels,
                              size_t num_classes,
                              const SoftmaxRegressionOptions& options) {
  XFAIR_SPAN("model/fit/softmax_regression");
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0) return Status::InvalidArgument("empty training set");
  XFAIR_EVENT(kInfo, "model", "fit",
              {{"model", "softmax_regression"}, {"rows", std::to_string(n)}});
  if (labels.size() != n) {
    return Status::InvalidArgument("labels size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  for (int y : labels) {
    if (y < 0 || y >= static_cast<int>(num_classes)) {
      return Status::InvalidArgument("label out of range");
    }
  }

  // Internal standardization (same rationale as LogisticRegression):
  // row-major moment passes, then one standardized copy so the gradient
  // loop below is pure dense kernels.
  Vector mean(d, 0.0), std(d, 1.0);
  for (size_t i = 0; i < n; ++i)
    kernels::Axpy(1.0, x.RowPtr(i), mean.data(), d);
  for (size_t c = 0; c < d; ++c) mean[c] /= static_cast<double>(n);
  Vector var(d, 0.0);
  for (size_t i = 0; i < n; ++i)
    kernels::AccumSquaredDiff(x.RowPtr(i), mean.data(), var.data(), d);
  for (size_t c = 0; c < d; ++c) {
    std[c] = var[c] / static_cast<double>(n) > 1e-12
                 ? std::sqrt(var[c] / static_cast<double>(n))
                 : 1.0;
  }
  Matrix xs(n, d);
  for (size_t i = 0; i < n; ++i)
    kernels::Standardize(x.RowPtr(i), mean.data(), std.data(),
                         xs.RowPtr(i), d);

  Matrix w(num_classes, d);
  Vector b(num_classes, 0.0);
  Vector probs(num_classes);
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    Matrix grad_w(num_classes, d);
    Vector grad_b(num_classes, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = xs.RowPtr(i);
      kernels::GemvBias(w.RowPtr(0), num_classes, d, row, b.data(),
                        probs.data());
      kernels::SoftmaxRow(probs.data(), num_classes);
      for (size_t k = 0; k < num_classes; ++k) {
        const double err =
            probs[k] - (labels[i] == static_cast<int>(k) ? 1.0 : 0.0);
        kernels::Axpy(err, row, grad_w.RowPtr(k), d);
        grad_b[k] += err;
      }
    }
    for (size_t k = 0; k < num_classes; ++k) {
      const double* gw = grad_w.RowPtr(k);
      double* wk = w.RowPtr(k);
      for (size_t c = 0; c < d; ++c) {
        const double g =
            gw[c] / static_cast<double>(n) + options.l2 * wk[c];
        wk[c] -= options.learning_rate * g;
      }
      b[k] -= options.learning_rate * grad_b[k] / static_cast<double>(n);
    }
  }

  // Fold standardization back into the parameters.
  for (size_t k = 0; k < num_classes; ++k) {
    for (size_t c = 0; c < d; ++c) {
      w.At(k, c) /= std[c];
      b[k] -= w.At(k, c) * mean[c];
    }
  }
  weights_ = std::move(w);
  biases_ = std::move(b);
  num_classes_ = num_classes;
  fitted_ = true;
  return Status::OK();
}

Vector SoftmaxRegression::PredictProba(const Vector& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.size() == weights_.cols());
  Vector logits(num_classes_);
  ProbaFromRow(x.data(), logits.data());
  return logits;
}

/// Shared kernel path: logits = biases + W x (pinned per-class dots, no
/// weight-row copies), normalized in place. Single-row and batched
/// predictions are bit-identical because both end here.
void SoftmaxRegression::ProbaFromRow(const double* row, double* probs) const {
  kernels::GemvBias(weights_.RowPtr(0), num_classes_, weights_.cols(), row,
                    biases_.data(), probs);
  kernels::SoftmaxRow(probs, num_classes_);
}

int SoftmaxRegression::Predict(const Vector& x) const {
  const Vector probs = PredictProba(x);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

Matrix SoftmaxRegression::PredictProbaBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.cols() == weights_.cols());
  XFAIR_LATENCY_NS("latency/predict_batch/softmax_regression");
  Matrix out(x.rows(), num_classes_);
  ParallelFor(0, x.rows(),
              [&](size_t i) { ProbaFromRow(x.RowPtr(i), out.RowPtr(i)); });
  // Binary softmax streams into an attached fairness monitor like the
  // Vector-returning models: score = P(class 1), hard decision = argmax
  // (class 0 wins probability ties, matching Predict).
  if (XFAIR_MONITOR_ACTIVE(x.rows()) && num_classes_ == 2) {
    std::vector<double> p1(x.rows());
    std::vector<int> pred(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      p1[i] = out.At(i, 1);
      pred[i] = out.At(i, 1) > out.At(i, 0) ? 1 : 0;
    }
    obs::MonitorPredictionBatch(p1.data(), pred.data(), x.rows());
  }
  return out;
}

std::vector<int> SoftmaxRegression::PredictBatch(const Matrix& x) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(x.cols() == weights_.cols());
  std::vector<int> out(x.rows());
  ParallelFor(0, x.rows(), [&](size_t i) {
    Vector probs(num_classes_);
    ProbaFromRow(x.RowPtr(i), probs.data());
    out[i] = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  });
  return out;
}

Vector MulticlassParityProfile(const SoftmaxRegression& model,
                               const Matrix& x,
                               const std::vector<int>& groups) {
  XFAIR_CHECK(x.rows() == groups.size());
  const size_t k = model.num_classes();
  Vector count_g0(k, 0.0), count_g1(k, 0.0);
  size_t n0 = 0, n1 = 0;
  const std::vector<int> preds = model.PredictBatch(x);
  for (size_t i = 0; i < x.rows(); ++i) {
    const int pred = preds[i];
    if (groups[i] == 0) {
      count_g0[static_cast<size_t>(pred)] += 1.0;
      ++n0;
    } else {
      count_g1[static_cast<size_t>(pred)] += 1.0;
      ++n1;
    }
  }
  Vector profile(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const double r0 = n0 ? count_g0[c] / static_cast<double>(n0) : 0.0;
    const double r1 = n1 ? count_g1[c] / static_cast<double>(n1) : 0.0;
    profile[c] = r0 - r1;
  }
  return profile;
}

double MulticlassParityGap(const SoftmaxRegression& model, const Matrix& x,
                           const std::vector<int>& groups) {
  double gap = 0.0;
  for (double p : MulticlassParityProfile(model, x, groups)) {
    gap = std::max(gap, std::fabs(p));
  }
  return gap;
}

double MulticlassAccuracy(const SoftmaxRegression& model, const Matrix& x,
                          const std::vector<int>& labels) {
  XFAIR_CHECK(x.rows() == labels.size());
  if (x.rows() == 0) return 0.0;
  size_t correct = 0;
  const std::vector<int> preds = model.PredictBatch(x);
  for (size_t i = 0; i < x.rows(); ++i) {
    correct += static_cast<size_t>(preds[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

MulticlassCredit GenerateMulticlassCredit(size_t n, double score_shift,
                                          uint64_t seed) {
  Rng rng(seed);
  MulticlassCredit out;
  out.x = Matrix(n, 4);
  out.labels.resize(n);
  out.groups.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = rng.Bernoulli(0.4) ? 1 : 0;
    const double income =
        rng.Normal(6.0 - 0.4 * score_shift * g, 2.0);
    const double savings = rng.Normal(8.0, 3.0);
    const double debt = rng.Normal(6.0, 2.5);
    out.x.At(i, 0) = g;
    out.x.At(i, 1) = income;
    out.x.At(i, 2) = savings;
    out.x.At(i, 3) = debt;
    const double z = 0.5 * (income - 6.0) + 0.2 * (savings - 8.0) -
                     0.3 * (debt - 6.0) -
                     score_shift * static_cast<double>(g) +
                     rng.Normal(0.0, 0.6);
    // Three tiers: deny (0) / manual review (1) / approve (2).
    out.labels[i] = z < -0.5 ? 0 : (z < 0.5 ? 1 : 2);
    out.groups[i] = g;
  }
  return out;
}

}  // namespace xfair
