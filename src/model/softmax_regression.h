// Multiclass softmax regression plus multiclass fairness metrics —
// the paper's §V names multiclass classification as an open gap for
// explaining-unfairness work; this is the substrate that closes it here.
//
// Multiclass data does not fit the binary Dataset (its labels are checked
// to be 0/1), so this module works on a raw (features, labels, groups)
// triple.

#ifndef XFAIR_MODEL_SOFTMAX_REGRESSION_H_
#define XFAIR_MODEL_SOFTMAX_REGRESSION_H_

#include "src/util/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace xfair {

/// Options for SoftmaxRegression::Fit.
struct SoftmaxRegressionOptions {
  size_t max_iters = 400;
  double learning_rate = 0.5;
  double l2 = 1e-3;
};

/// K-class linear classifier: P(y=k|x) = softmax(W x + b)_k.
class SoftmaxRegression {
 public:
  /// Fits on rows of `x` with labels in [0, num_classes). Labels must
  /// cover a contiguous range; groups are not used in training.
  Status Fit(const Matrix& x, const std::vector<int>& labels,
             size_t num_classes, const SoftmaxRegressionOptions& options = {});

  bool fitted() const { return fitted_; }
  size_t num_classes() const { return num_classes_; }

  /// Class probability vector (sums to 1).
  Vector PredictProba(const Vector& x) const;
  /// Row-per-instance class probabilities for every row of `x` in one
  /// batched (and row-parallel) call; row i equals PredictProba(row i).
  Matrix PredictProbaBatch(const Matrix& x) const;
  /// Argmax class.
  int Predict(const Vector& x) const;
  /// Argmax class for every row of `x`.
  std::vector<int> PredictBatch(const Matrix& x) const;

 private:
  /// Writes the num_classes() probabilities for one feature row into
  /// `probs` — the single kernel-backed path all predictions go through.
  void ProbaFromRow(const double* row, double* probs) const;

  bool fitted_ = false;
  size_t num_classes_ = 0;
  Matrix weights_;  // num_classes x d.
  Vector biases_;
};

/// Multiclass statistical parity: max over classes of
/// |P(yhat=c | G-) - P(yhat=c | G+)|. 0 iff the predicted class
/// distribution is identical across groups.
double MulticlassParityGap(const SoftmaxRegression& model, const Matrix& x,
                           const std::vector<int>& groups);

/// Multiclass accuracy.
double MulticlassAccuracy(const SoftmaxRegression& model, const Matrix& x,
                          const std::vector<int>& labels);

/// Per-class group rate difference P(yhat=c|G-) - P(yhat=c|G+), one entry
/// per class — the multiclass analogue of the parity *profile*, telling
/// which outcome tier drives the disparity.
Vector MulticlassParityProfile(const SoftmaxRegression& model,
                               const Matrix& x,
                               const std::vector<int>& groups);

/// Synthetic 3-tier credit decision data (deny / manual review / approve)
/// with a planted score shift against the protected group. Returns
/// features (sensitive column 0 + 3 numeric), labels in {0,1,2}, groups.
struct MulticlassCredit {
  Matrix x;
  std::vector<int> labels;
  std::vector<int> groups;
};
MulticlassCredit GenerateMulticlassCredit(size_t n, double score_shift,
                                          uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_MODEL_SOFTMAX_REGRESSION_H_
