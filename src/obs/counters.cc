#include "src/obs/counters.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

namespace xfair::obs {
namespace {

/// Name-interning registries. Entries are heap-allocated and never freed
/// so the references handed out stay valid for the process lifetime (the
/// usual pattern for function-local-static counter caches).
template <typename T>
class Registry {
 public:
  T& GetOrCreate(std::string_view name) {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& e : entries_) {
      if (e->name() == name) return *e;
    }
    entries_.emplace_back(new T(std::string(name)));
    return *entries_.back();
  }

  /// Calls fn(entry) for every registered entry, sorted by name.
  template <typename Fn>
  void ForEachSorted(Fn fn) {
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<T*> sorted;
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(e.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const T* a, const T* b) { return a->name() < b->name(); });
    for (T* e : sorted) fn(*e);
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<T>> entries_;
};

Registry<Counter>& CounterRegistry() {
  static Registry<Counter>* r = new Registry<Counter>();
  return *r;
}

Registry<Histogram>& HistogramRegistry() {
  static Registry<Histogram>* r = new Registry<Histogram>();
  return *r;
}

}  // namespace

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramQuantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(h.count);
  double cum = 0.0;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    const double cb = static_cast<double>(h.buckets[b]);
    if (cum + cb < target) {
      cum += cb;
      continue;
    }
    const uint64_t width = Histogram::BucketWidth(b);
    const double lo = static_cast<double>(Histogram::BucketLow(b));
    if (width == 1) return lo;  // Exact bucket: the recorded value itself.
    const double frac =
        cb == 0.0 ? 0.0 : std::min(1.0, std::max(0.0, (target - cum) / cb));
    return lo + frac * static_cast<double>(width);
  }
  // All mass consumed (q == 1 with rounding): the top occupied bucket.
  for (size_t b = h.buckets.size(); b-- > 0;) {
    if (h.buckets[b] != 0) {
      const uint64_t width = Histogram::BucketWidth(b);
      return static_cast<double>(Histogram::BucketLow(b)) +
             (width == 1 ? 0.0 : static_cast<double>(width));
    }
  }
  return 0.0;
}

std::array<uint64_t, 65> LegacyPowerOfTwoBuckets(const HistogramSnapshot& h) {
  std::array<uint64_t, 65> out{};
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    const uint64_t low = Histogram::BucketLow(b);
    // Every value in a log-linear bucket shares low's bit width (the
    // bucket never straddles an octave edge), so the fold is exact.
    const size_t w =
        low == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(low));
    out[w] += h.buckets[b];
  }
  return out;
}

Counter& GetCounter(std::string_view name) {
  return CounterRegistry().GetOrCreate(name);
}

Histogram& GetHistogram(std::string_view name) {
  return HistogramRegistry().GetOrCreate(name);
}

std::vector<CounterSnapshot> SnapshotCounters() {
  std::vector<CounterSnapshot> out;
  CounterRegistry().ForEachSorted(
      [&out](Counter& c) { out.push_back({c.name(), c.value()}); });
  return out;
}

std::vector<HistogramSnapshot> SnapshotHistograms() {
  std::vector<HistogramSnapshot> out;
  HistogramRegistry().ForEachSorted([&out](Histogram& h) {
    out.push_back({h.name(), h.count(), h.sum(), h.BucketCounts()});
  });
  return out;
}

void ResetAllCounters() {
  CounterRegistry().ForEachSorted([](Counter& c) { c.Reset(); });
  HistogramRegistry().ForEachSorted([](Histogram& h) { h.Reset(); });
}

}  // namespace xfair::obs
