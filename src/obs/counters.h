// Named monotonic counters and histograms for hot-path instrumentation.
//
// Counters are process-global, created on first use and interned by name
// (stable addresses for the lifetime of the process). Increments are
// relaxed atomic adds, so instrumented code stays bit-identical — the
// counters observe the computation without participating in it — and the
// per-increment cost is a single uncontended atomic RMW. The intended
// usage pattern caches the lookup in a function-local static:
//
//   XFAIR_COUNTER_ADD("kdtree/nodes_visited", visited);   // from obs.h
//
// Histograms bucket observations by power of two (bucket i holds values
// v with bit_width(v) == i), which is enough resolution for "how many
// nodes did a query visit" distributions at near-counter cost.
//
// Snapshots sort by name, so exports are deterministic for a given set
// of counter values regardless of creation order.

#ifndef XFAIR_OBS_COUNTERS_H_
#define XFAIR_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xfair::obs {

/// A named monotonic counter. Obtain via GetCounter; never destroyed.
class Counter {
 public:
  /// Relaxed atomic increment; safe from any thread.
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  /// Construction is reserved for the registry; use GetCounter.
  explicit Counter(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// A named histogram over uint64 observations with power-of-two buckets:
/// bucket i counts values whose bit width is i (bucket 0 is exactly 0).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  /// Relaxed atomic observation; safe from any thread.
  void Observe(uint64_t v) {
    const size_t b = v == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(v));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean observation; 0 when empty.
  double mean() const;
  /// Per-bucket counts, index = bit width of the observed value.
  std::array<uint64_t, kBuckets> BucketCounts() const;
  void Reset();
  const std::string& name() const { return name_; }

  /// Construction is reserved for the registry; use GetHistogram.
  explicit Histogram(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Interns and returns the counter named `name`. The reference stays
/// valid for the process lifetime; repeated calls return the same object.
Counter& GetCounter(std::string_view name);

/// Interns and returns the histogram named `name` (process lifetime).
Histogram& GetHistogram(std::string_view name);

/// One counter's value at snapshot time.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

/// One histogram's aggregate at snapshot time.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
};

/// Quantile estimate from a power-of-two histogram snapshot: finds the
/// bucket holding rank q * count and interpolates linearly inside its
/// value range ([2^(i-1), 2^i) for bucket i >= 1; bucket 0 is exactly
/// 0). Within one bucket the estimate is off by at most the bucket
/// width, which is the resolution these histograms promise. Returns 0
/// for an empty histogram; q is clamped to [0, 1].
double HistogramQuantile(const HistogramSnapshot& h, double q);

/// All registered counters, sorted by name (deterministic export order).
std::vector<CounterSnapshot> SnapshotCounters();

/// All registered histograms, sorted by name.
std::vector<HistogramSnapshot> SnapshotHistograms();

/// Zeroes every registered counter and histogram. Counter identities are
/// preserved (the registry is never shrunk).
void ResetAllCounters();

}  // namespace xfair::obs

#endif  // XFAIR_OBS_COUNTERS_H_
