// Named monotonic counters and histograms for hot-path instrumentation.
//
// Counters are process-global, created on first use and interned by name
// (stable addresses for the lifetime of the process). Increments are
// relaxed atomic adds, so instrumented code stays bit-identical — the
// counters observe the computation without participating in it — and the
// per-increment cost is a single uncontended atomic RMW. The intended
// usage pattern caches the lookup in a function-local static:
//
//   XFAIR_COUNTER_ADD("kdtree/nodes_visited", visited);   // from obs.h
//
// Histograms use HDR-style log-linear buckets: each power-of-two octave
// is subdivided into 64 linear sub-buckets, so every recorded value is
// reconstructible to within 1/64 (~1.6%) relative error — values below
// 128 are stored exactly — at the same near-counter cost as the old
// power-of-two layout (one bit-scan + three relaxed RMWs per Observe).
// That resolution makes the p50/p95/p99/p999 latency quantiles in
// CountersToJson and the Prometheus exposition meaningful, not
// octave-wide guesses.
//
// Snapshots sort by name, so exports are deterministic for a given set
// of counter values regardless of creation order.

#ifndef XFAIR_OBS_COUNTERS_H_
#define XFAIR_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xfair::obs {

/// A named monotonic counter. Obtain via GetCounter; never destroyed.
class Counter {
 public:
  /// Relaxed atomic increment; safe from any thread.
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  /// Construction is reserved for the registry; use GetCounter.
  explicit Counter(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// A named histogram over uint64 observations with log-linear (HDR-style)
/// buckets: 64 linear sub-buckets per power-of-two octave.
///
/// Layout: values below 64 land in their own bucket (index == value).
/// A larger value with bit width w >= 7 is shifted down to its top seven
/// bits (a "mantissa" in [64, 128)) and indexed as
///
///   bucket = (w - 7) * 64 + (v >> (w - 7))
///
/// so bucket width doubles per octave while staying <= low/64. Values in
/// [64, 128) have shift 0 and are therefore also exact; the first lossy
/// bucket starts at 128 with width 2.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 64;
  /// 64 exact small-value buckets + 58 octaves (bit widths 7..64) of 64.
  static constexpr size_t kBuckets = kSubBuckets + 58 * kSubBuckets;

  /// Bucket index of a value (see layout above).
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const unsigned w = 64u - static_cast<unsigned>(__builtin_clzll(v));
    return static_cast<size_t>(w - 7) * kSubBuckets +
           static_cast<size_t>(v >> (w - 7));
  }

  /// Smallest value mapping to bucket `b` (inclusive lower edge).
  static constexpr uint64_t BucketLow(size_t b) {
    if (b < 2 * kSubBuckets) return static_cast<uint64_t>(b);
    const unsigned octave = static_cast<unsigned>(b / kSubBuckets - 1);
    return static_cast<uint64_t>(kSubBuckets + b % kSubBuckets) << octave;
  }

  /// Number of distinct values mapping to bucket `b` (1 below 128).
  static constexpr uint64_t BucketWidth(size_t b) {
    return b < 2 * kSubBuckets
               ? uint64_t{1}
               : uint64_t{1} << static_cast<unsigned>(b / kSubBuckets - 1);
  }

  /// Relaxed atomic observation; safe from any thread.
  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean observation; 0 when empty.
  double mean() const;
  /// Per-bucket counts in the log-linear layout (kBuckets entries).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();
  const std::string& name() const { return name_; }

  /// Construction is reserved for the registry; use GetHistogram.
  explicit Histogram(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// RAII latency sampler: observes the elapsed steady-clock nanoseconds
/// of its scope into a histogram at destruction. Two clock reads per
/// scope; use via XFAIR_LATENCY_NS (obs.h), which compiles away under
/// -DXFAIR_OBS=OFF.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h)
      : h_(&h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    h_->Observe(ns < 0 ? 0u : static_cast<uint64_t>(ns));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// Interns and returns the counter named `name`. The reference stays
/// valid for the process lifetime; repeated calls return the same object.
Counter& GetCounter(std::string_view name);

/// Interns and returns the histogram named `name` (process lifetime).
Histogram& GetHistogram(std::string_view name);

/// One counter's value at snapshot time.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

/// One histogram's aggregate at snapshot time.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  ///< Histogram::kBuckets entries.
};

/// Quantile estimate from a log-linear histogram snapshot: finds the
/// bucket holding rank q * count. Exact (width-1) buckets — every value
/// below 128 — return their value outright; wider buckets interpolate
/// linearly inside [low, low + width), bounding the error by the bucket
/// width, i.e. a relative error of at most 1/64 (~1.6%). Returns 0 for
/// an empty histogram; q is clamped to [0, 1].
double HistogramQuantile(const HistogramSnapshot& h, double q);

/// Deprecation shim for one PR (remove after PR 10 consumers migrate):
/// folds the log-linear buckets into the pre-PR-10 65-bucket
/// power-of-two layout, where bucket i counted values with bit width i.
/// Exact — every log-linear bucket lies entirely inside one octave.
std::array<uint64_t, 65> LegacyPowerOfTwoBuckets(const HistogramSnapshot& h);

/// All registered counters, sorted by name (deterministic export order).
std::vector<CounterSnapshot> SnapshotCounters();

/// All registered histograms, sorted by name.
std::vector<HistogramSnapshot> SnapshotHistograms();

/// Zeroes every registered counter and histogram. Counter identities are
/// preserved (the registry is never shrunk).
void ResetAllCounters();

}  // namespace xfair::obs

#endif  // XFAIR_OBS_COUNTERS_H_
