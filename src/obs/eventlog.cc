#include "src/obs/eventlog.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace xfair::obs {
namespace {

[[maybe_unused]] constexpr size_t kDefaultCapacity = 65536;

struct LogState {
  std::mutex mutex;
  std::deque<EventRecord> records;
  size_t capacity = kDefaultCapacity;
  uint64_t next_seq = 0;
  uint64_t dropped = 0;
};

[[maybe_unused]] LogState& GlobalLog() {
  static LogState* s = new LogState();
  return *s;
}

std::atomic<bool> g_enabled{[] {
#ifdef XFAIR_OBS_DISABLED
  return false;
#else
  const char* env = std::getenv("XFAIR_EVENTLOG");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
#endif
}()};

[[maybe_unused]] std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

bool EventLogEnabled() {
#ifdef XFAIR_OBS_DISABLED
  return false;
#else
  return g_enabled.load(std::memory_order_relaxed);
#endif
}

void SetEventLogEnabled(bool enabled) {
#ifdef XFAIR_OBS_DISABLED
  (void)enabled;
#else
  g_enabled.store(enabled, std::memory_order_relaxed);
#endif
}

void SetEventLogCapacity(size_t capacity) {
#ifdef XFAIR_OBS_DISABLED
  (void)capacity;
#else
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  log.capacity = std::max<size_t>(1, capacity);
  while (log.records.size() > log.capacity) {
    log.records.pop_front();
    ++log.dropped;
  }
#endif
}

void EmitEvent(Severity severity, std::string_view component,
               std::string_view event,
               std::initializer_list<std::pair<std::string_view, std::string>>
                   fields) {
#ifdef XFAIR_OBS_DISABLED
  (void)severity;
  (void)component;
  (void)event;
  (void)fields;
#else
  if (!EventLogEnabled()) return;
  EventRecord rec;
  rec.severity = severity;
  rec.component = std::string(component);
  rec.event = std::string(event);
  rec.fields.reserve(fields.size());
  for (const auto& [k, v] : fields) {
    rec.fields.emplace_back(std::string(k), v);
  }
  std::sort(rec.fields.begin(), rec.fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  rec.seq = log.next_seq++;
  log.records.push_back(std::move(rec));
  while (log.records.size() > log.capacity) {
    log.records.pop_front();
    ++log.dropped;
  }
#endif
}

std::vector<EventRecord> SnapshotEvents() {
#ifdef XFAIR_OBS_DISABLED
  return {};
#else
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  return std::vector<EventRecord>(log.records.begin(), log.records.end());
#endif
}

std::vector<EventRecord> DrainEvents() {
#ifdef XFAIR_OBS_DISABLED
  return {};
#else
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  std::vector<EventRecord> out(log.records.begin(), log.records.end());
  log.records.clear();
  return out;
#endif
}

uint64_t EventsDropped() {
#ifdef XFAIR_OBS_DISABLED
  return 0;
#else
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  return log.dropped;
#endif
}

void ResetEventLog() {
#ifdef XFAIR_OBS_DISABLED
#else
  LogState& log = GlobalLog();
  std::lock_guard<std::mutex> guard(log.mutex);
  log.records.clear();
  log.next_seq = 0;
  log.dropped = 0;
#endif
}

std::string EventsToJsonl(const std::vector<EventRecord>& records) {
#ifdef XFAIR_OBS_DISABLED
  (void)records;
  return "";
#else
  std::string out;
  for (const EventRecord& r : records) {
    out += "{\"component\":\"" + JsonEscape(r.component) +
           "\",\"event\":\"" + JsonEscape(r.event) + "\",\"fields\":{";
    for (size_t i = 0; i < r.fields.size(); ++i) {
      if (i != 0) out += ',';
      out += "\"" + JsonEscape(r.fields[i].first) + "\":\"" +
             JsonEscape(r.fields[i].second) + "\"";
    }
    out += "},\"seq\":" + std::to_string(r.seq) + ",\"severity\":\"" +
           SeverityName(r.severity) + "\"}\n";
  }
  return out;
#endif
}

}  // namespace xfair::obs
