// Structured JSONL event log for lifecycle events.
//
// Models, explainers, and the fairness monitor emit coarse lifecycle
// events (fit finished, batch explained, drift alarm raised) into one
// process-global bounded log. The rendered JSONL is deterministic
// byte-for-byte at any XFAIR_THREADS setting because the log records no
// timestamps and emission happens only at API boundaries on the calling
// thread — never inside parallel regions — so the monotonic sequence
// number is assigned in program order. Each line renders its top-level
// keys and its field keys in sorted order:
//
//   {"component":"model","event":"fit","fields":{"name":"logistic_regression",
//    "rows":"1200"},"seq":0,"severity":"info"}
//
// Emission is gated on EventLogEnabled() (off by default; XFAIR_EVENTLOG
// env or SetEventLogEnabled) and the XFAIR_EVENT macro in obs.h skips
// argument evaluation entirely when the log is off. Under
// -DXFAIR_OBS=OFF every function here compiles to a no-op, so the log —
// like the rest of the observability layer — vanishes from opted-out
// builds while still linking.
//
// The log is bounded (default 65536 records): when full, the oldest
// records are dropped and counted, never blocking the emitter. This is
// lifecycle-event cadence — one mutex acquisition per emit is fine; hot
// loops use spans/counters, not events.

#ifndef XFAIR_OBS_EVENTLOG_H_
#define XFAIR_OBS_EVENTLOG_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xfair::obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lowercase wire name ("debug" | "info" | "warn" | "error").
const char* SeverityName(Severity s);

/// One emitted event. `fields` is sorted by key at emission time.
struct EventRecord {
  uint64_t seq = 0;
  Severity severity = Severity::kInfo;
  std::string component;
  std::string event;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// True when EmitEvent records (one relaxed load). Off by default unless
/// the XFAIR_EVENTLOG environment variable is set to a nonzero value at
/// first use. Always false under -DXFAIR_OBS=OFF.
bool EventLogEnabled();
void SetEventLogEnabled(bool enabled);

/// Caps the number of retained records; older records are dropped (and
/// counted) past the cap. Applies immediately.
void SetEventLogCapacity(size_t capacity);

/// Appends one event with the next sequence number. Field values are
/// stored verbatim and JSON-escaped at render time; callers format
/// numbers themselves (std::to_string) so rendering stays deterministic.
/// No-op when the log is disabled.
void EmitEvent(Severity severity, std::string_view component,
               std::string_view event,
               std::initializer_list<std::pair<std::string_view, std::string>>
                   fields = {});

/// Retained records in seq order, without consuming them (bundle dumps
/// observe; they must not erase the evidence).
std::vector<EventRecord> SnapshotEvents();

/// Retained records in seq order, consuming them.
std::vector<EventRecord> DrainEvents();

/// Records dropped to the capacity bound since the last reset.
uint64_t EventsDropped();

/// Clears retained records, the dropped count, and the sequence counter.
void ResetEventLog();

/// Renders records as JSONL: one JSON object per line, top-level keys
/// and field keys sorted, no timestamps — byte-identical for identical
/// records.
std::string EventsToJsonl(const std::vector<EventRecord>& records);

}  // namespace xfair::obs

#endif  // XFAIR_OBS_EVENTLOG_H_
