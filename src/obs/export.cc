#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>

namespace xfair::obs {
namespace {

/// JSON string escaping for span/counter names (quotes, backslashes,
/// control characters).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans) {
  // total = sum of span durations; self = total minus durations of
  // direct children (same thread, parent linkage), so nested stages do
  // not double-count their parents' exclusive time.
  std::map<std::string, StageStat> by_name;
  std::map<std::pair<uint32_t, uint64_t>, double> child_ns;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0) {
      child_ns[{s.thread_ordinal, s.parent_id}] +=
          static_cast<double>(s.end_ns - s.start_ns);
    }
  }
  for (const SpanRecord& s : spans) {
    StageStat& stat = by_name[s.name];
    stat.name = s.name;
    ++stat.count;
    const double dur_ns = static_cast<double>(s.end_ns - s.start_ns);
    stat.total_ms += dur_ns / 1e6;
    const auto it = child_ns.find({s.thread_ordinal, s.id});
    const double children = it == child_ns.end() ? 0.0 : it->second;
    stat.self_ms += (dur_ns - children) / 1e6;
  }
  std::vector<StageStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  return out;
}

std::string SpansToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  JsonEscape(s.name).c_str(), s.thread_ordinal,
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    out += buf;
    if (i + 1 < spans.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& spans) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path);
  }
  const std::string doc = SpansToChromeTraceJson(spans);
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

std::string CountersToJson() {
  std::string out = "{\n  \"counters\": {";
  const auto counters = SnapshotCounters();
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counters[i].name) +
           "\": " + std::to_string(counters[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  const auto histograms = SnapshotHistograms();
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    const double mean =
        h.count == 0
            ? 0.0
            : static_cast<double>(h.sum) / static_cast<double>(h.count);
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"mean\": " + FormatMs(mean) +
           ", \"p50\": " + FormatMs(HistogramQuantile(h, 0.50)) +
           ", \"p95\": " + FormatMs(HistogramQuantile(h, 0.95)) +
           ", \"p99\": " + FormatMs(HistogramQuantile(h, 0.99)) +
           ", \"p999\": " + FormatMs(HistogramQuantile(h, 0.999)) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string StagesToJson(const std::vector<StageStat>& stages) {
  std::string out = "[";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageStat& s = stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(s.name) +
           "\", \"count\": " + std::to_string(s.count) +
           ", \"total_ms\": " + FormatMs(s.total_ms) +
           ", \"self_ms\": " + FormatMs(s.self_ms) + "}";
  }
  out += "\n  ]";
  return out;
}

}  // namespace xfair::obs
