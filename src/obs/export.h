// Exporters for the observability layer: Chrome trace-event JSON for
// span timelines (load chrome://tracing or https://ui.perfetto.dev), a
// flat JSON dump of counters/histograms, and per-stage aggregation used
// by the bench harness to embed stage breakdowns in BENCH_*.json.

#ifndef XFAIR_OBS_EXPORT_H_
#define XFAIR_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace xfair::obs {

/// Wall time and invocation count aggregated over all spans of one name.
struct StageStat {
  std::string name;
  uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;  ///< total minus time in same-thread child spans.
};

/// Aggregates spans by name, sorted by name (deterministic).
std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans);

/// Chrome trace-event JSON ("X" complete events; ts/dur in microseconds,
/// tid = thread ordinal). Returns the full document.
std::string SpansToChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Writes SpansToChromeTraceJson(spans) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanRecord>& spans);

/// JSON object with every registered counter value and histogram summary
/// (count/sum/mean plus log-linear p50/p95/p99/p999 estimates), keys
/// sorted by name.
std::string CountersToJson();

/// JSON fragment (an array) for a stage breakdown; used by bench_json.h
/// and RunReport. Example element:
///   {"name": "shap/exact", "count": 3, "total_ms": 1.204, "self_ms": 0.9}
std::string StagesToJson(const std::vector<StageStat>& stages);

}  // namespace xfair::obs

#endif  // XFAIR_OBS_EXPORT_H_
