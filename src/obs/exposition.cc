#include "src/obs/exposition.h"

#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

#include "src/obs/counters.h"

namespace xfair::obs {
namespace {

[[maybe_unused]] std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
[[maybe_unused]] std::string LabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string RenderPrometheusText() {
#ifdef XFAIR_OBS_DISABLED
  return "";
#else
  std::string out;

  const auto counters = SnapshotCounters();
  out += "# HELP xfair_counter_total Monotonic xfair counters.\n";
  out += "# TYPE xfair_counter_total counter\n";
  for (const CounterSnapshot& c : counters) {
    out += "xfair_counter_total{name=\"" + LabelEscape(c.name) + "\"} " +
           std::to_string(c.value) + "\n";
  }

  const auto histograms = SnapshotHistograms();
  out += "# HELP xfair_histogram Log-linear xfair histograms "
         "(quantiles are bucket estimates, <=1/64 relative error).\n";
  out += "# TYPE xfair_histogram summary\n";
  for (const HistogramSnapshot& h : histograms) {
    const std::string name = LabelEscape(h.name);
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "0.5"},
          {0.95, "0.95"},
          {0.99, "0.99"},
          {0.999, "0.999"}}) {
      out += "xfair_histogram{name=\"" + name + "\",quantile=\"" + label +
             "\"} " + Num(HistogramQuantile(h, q)) + "\n";
    }
    out += "xfair_histogram_sum{name=\"" + name + "\"} " +
           std::to_string(h.sum) + "\n";
    out += "xfair_histogram_count{name=\"" + name + "\"} " +
           std::to_string(h.count) + "\n";
  }

  const auto monitors = RegisteredMonitors();
  out += "# HELP xfair_monitor_events_total Events processed per "
         "monitor and group.\n";
  out += "# TYPE xfair_monitor_events_total counter\n";
  for (const FairnessMonitor* m : monitors) {
    const std::string mon = LabelEscape(m->name());
    for (int g = 0; g < FairnessMonitor::kMaxGroups; ++g) {
      const GroupAggregate& agg = m->aggregates()[static_cast<size_t>(g)];
      if (agg.events == 0) continue;
      out += "xfair_monitor_events_total{monitor=\"" + mon +
             "\",group=\"" + std::to_string(g) + "\"} " +
             std::to_string(agg.events) + "\n";
    }
  }
  out += "# HELP xfair_monitor_group Per-group online aggregates.\n";
  out += "# TYPE xfair_monitor_group gauge\n";
  for (const FairnessMonitor* m : monitors) {
    const std::string mon = LabelEscape(m->name());
    for (int g = 0; g < FairnessMonitor::kMaxGroups; ++g) {
      const GroupAggregate& agg = m->aggregates()[static_cast<size_t>(g)];
      if (agg.events == 0) continue;
      const std::string labels =
          "{monitor=\"" + mon + "\",group=\"" + std::to_string(g) + "\",";
      out += "xfair_monitor_group" + labels + "stat=\"positive_rate\"} " +
             Num(agg.positive_rate()) + "\n";
      out += "xfair_monitor_group" + labels + "stat=\"tpr\"} " +
             Num(agg.tpr()) + "\n";
      out += "xfair_monitor_group" + labels + "stat=\"fpr\"} " +
             Num(agg.fpr()) + "\n";
      out += "xfair_monitor_group" + labels + "stat=\"score_mean\"} " +
             Num(agg.score_mean) + "\n";
      out += "xfair_monitor_group" + labels + "stat=\"score_variance\"} " +
             Num(agg.score_variance()) + "\n";
    }
  }
  out += "# HELP xfair_monitor_window_gap Sliding-window group fairness "
         "gaps.\n";
  out += "# TYPE xfair_monitor_window_gap gauge\n";
  for (const FairnessMonitor* m : monitors) {
    const std::string mon = LabelEscape(m->name());
    const WindowedMetrics wm = m->Windowed();
    out += "xfair_monitor_window_gap{monitor=\"" + mon +
           "\",metric=\"demographic_parity\"} " +
           Num(wm.demographic_parity_diff) + "\n";
    out += "xfair_monitor_window_gap{monitor=\"" + mon +
           "\",metric=\"equalized_odds\"} " + Num(wm.equalized_odds_diff) +
           "\n";
    out += "xfair_monitor_window_gap{monitor=\"" + mon +
           "\",metric=\"calibration\"} " + Num(wm.calibration_gap) + "\n";
    out += "xfair_monitor_window_events{monitor=\"" + mon + "\"} " +
           std::to_string(wm.events) + "\n";
  }
  out += "# HELP xfair_monitor_alarms_total Drift alarms raised per "
         "monitor, metric, and detector.\n";
  out += "# TYPE xfair_monitor_alarms_total counter\n";
  for (const FairnessMonitor* m : monitors) {
    const std::string mon = LabelEscape(m->name());
    // (metric, detector) -> (count, last seq), ordered by key.
    std::map<std::pair<std::string, std::string>,
             std::pair<uint64_t, uint64_t>>
        tally;
    for (const DriftAlarm& a : m->alarms()) {
      auto& entry = tally[{a.metric, a.detector}];
      ++entry.first;
      entry.second = a.seq;
    }
    for (const auto& [key, entry] : tally) {
      const std::string labels = "{monitor=\"" + mon + "\",metric=\"" +
                                 key.first + "\",detector=\"" +
                                 key.second + "\"} ";
      out += "xfair_monitor_alarms_total" + labels +
             std::to_string(entry.first) + "\n";
      out += "xfair_monitor_last_alarm_seq" + labels +
             std::to_string(entry.second) + "\n";
    }
  }
  return out;
#endif
}

std::string MonitorsToJson() {
#ifdef XFAIR_OBS_DISABLED
  return "{}";
#else
  std::string out = "{\n  \"monitors\": {";
  const auto monitors = RegisteredMonitors();
  for (size_t i = 0; i < monitors.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    // Indent the monitor's own snapshot two levels.
    std::string snap = monitors[i]->SnapshotJson();
    std::string indented;
    indented.reserve(snap.size());
    for (char c : snap) {
      indented += c;
      if (c == '\n') indented += "    ";
    }
    out += "    \"" + monitors[i]->name() + "\": " + indented;
  }
  out += monitors.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
#endif
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace xfair::obs
