// Metrics exposition: Prometheus-style text rendering and JSON
// snapshots of the whole observability state — counters, histograms
// (with p50/p95/p99 estimates), and every registered fairness monitor.
//
// The text format follows the Prometheus exposition conventions: one
// `# TYPE` header per metric family, one sample per line, labels in
// `{key="value"}` form. Hierarchical xfair names ("kdtree/queries") are
// carried in a `name` label rather than mangled into the metric name,
// so the family set is fixed and the label values stay greppable.
// Output order is deterministic: families in fixed order, series sorted
// by name within each family, doubles rendered with %.12g — two renders
// of identical state are byte-identical.
//
// Under -DXFAIR_OBS=OFF both renderers return their empty forms ("" /
// "{}"): the layer compiles and links, but exposes nothing.

#ifndef XFAIR_OBS_EXPOSITION_H_
#define XFAIR_OBS_EXPOSITION_H_

#include <string>

#include "src/obs/monitor.h"
#include "src/util/status.h"

namespace xfair::obs {

/// Renders every counter, histogram, and monitor as Prometheus text.
/// Families:
///   xfair_counter_total{name="..."}
///   xfair_histogram_{count,sum}{name="..."} and
///   xfair_histogram{name="...",quantile="0.5|0.95|0.99"}
///   xfair_monitor_events_total{monitor="...",group="g"}
///   xfair_monitor_{positive_rate,tpr,fpr,score_mean}{monitor,group}
///   xfair_monitor_window_gap{monitor="...",metric="..."}
///   xfair_monitor_window_events{monitor="..."}
///   xfair_monitor_alarms_total{monitor="...",metric="...",detector="..."}
///   xfair_monitor_last_alarm_seq{monitor="...",metric="...",detector="..."}
std::string RenderPrometheusText();

/// JSON object {"monitors": {name: snapshot, ...}} over every
/// registered monitor, names and keys sorted.
std::string MonitorsToJson();

/// Writes `content` to `path` (the WriteChromeTrace contract).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace xfair::obs

#endif  // XFAIR_OBS_EXPOSITION_H_
