#include "src/obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "src/obs/eventlog.h"

namespace xfair::obs {

namespace detail {

double PageHinkleyState::Update(double x, double delta, double lambda) {
  ++n;
  mean += (x - mean) / static_cast<double>(n);
  inc += x - mean - delta;
  inc_min = std::min(inc_min, inc);
  dec += x - mean + delta;
  dec_max = std::max(dec_max, dec);
  if (inc - inc_min > lambda) return inc - inc_min;
  if (dec_max - dec > lambda) return dec_max - dec;
  return 0.0;
}

double CusumState::Update(double x, double k, double h) {
  ++n;
  mean += (x - mean) / static_cast<double>(n);
  pos = std::max(0.0, pos + x - mean - k);
  neg = std::max(0.0, neg + mean - x - k);
  if (pos > h) return pos;
  if (neg > h) return neg;
  return 0.0;
}

}  // namespace detail

/// Per-thread event storage, the trace.cc ThreadBuffer design: the
/// owning thread appends without a lock (block addresses are stable, the
/// entry count is release-published), a tiny mutex guards only the block
/// list; the drainer reads under that mutex once ingestion has quiesced.
struct FairnessMonitor::EventBuffer {
  static constexpr size_t kBlockSize = 1024;
  using Block = std::array<MonitorEvent, kBlockSize>;

  uint32_t ordinal = 0;  ///< Registration index, for duplicate-seq ties.
  std::atomic<size_t> size{0};
  std::mutex block_mutex;
  std::vector<std::unique_ptr<Block>> blocks;

  void Append(const MonitorEvent& event) {
    const size_t idx = size.load(std::memory_order_relaxed);
    if (idx / kBlockSize >= blocks.size()) {
      std::lock_guard<std::mutex> guard(block_mutex);
      blocks.emplace_back(new Block());
    }
    (*blocks[idx / kBlockSize])[idx % kBlockSize] = event;
    size.store(idx + 1, std::memory_order_release);
  }
};

namespace {

std::atomic<uint64_t> g_next_monitor_uid{1};

std::atomic<bool> g_monitoring_enabled{[] {
  const char* env = std::getenv("XFAIR_MONITOR");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

/// The thread's per-monitor buffers, keyed by monitor uid (uids are
/// never reused, so stale entries for destroyed monitors are inert).
struct ThreadBufferCache {
  uint64_t last_uid = 0;
  FairnessMonitor::EventBuffer* last_buffer = nullptr;
  std::unordered_map<uint64_t,
                     std::shared_ptr<FairnessMonitor::EventBuffer>>
      by_uid;
};

[[maybe_unused]] ThreadBufferCache& LocalCache() {
  thread_local ThreadBufferCache cache;
  return cache;
}

/// The group/label arrays MonitorPredictionBatch joins against, per
/// thread (see ScopedStreamContext).
struct StreamContext {
  FairnessMonitor* monitor = nullptr;
  const int* groups = nullptr;
  const int* labels = nullptr;
  size_t n = 0;
};

StreamContext& LocalStreamContext() {
  thread_local StreamContext ctx;
  return ctx;
}

[[maybe_unused]] std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

bool MonitoringEnabled() {
  return g_monitoring_enabled.load(std::memory_order_relaxed);
}

void SetMonitoringEnabled(bool enabled) {
  g_monitoring_enabled.store(enabled, std::memory_order_relaxed);
}

FairnessMonitor::FairnessMonitor(std::string name, MonitorOptions options)
    : uid_(g_next_monitor_uid.fetch_add(1, std::memory_order_relaxed)),
      name_(std::move(name)),
      options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.detector_stride == 0) options_.detector_stride = 1;
  if (options_.calibration_bins == 0) options_.calibration_bins = 1;
  ring_.resize(options_.window);
  detectors_[0].metric = "demographic_parity";
  detectors_[1].metric = "equalized_odds";
  detectors_[2].metric = "calibration";
}

FairnessMonitor::EventBuffer& FairnessMonitor::LocalBuffer() {
  ThreadBufferCache& cache = LocalCache();
  if (cache.last_uid == uid_) return *cache.last_buffer;
  auto it = cache.by_uid.find(uid_);
  if (it == cache.by_uid.end()) {
    auto buffer = std::make_shared<EventBuffer>();
    {
      std::lock_guard<std::mutex> guard(buffers_mutex_);
      buffer->ordinal = static_cast<uint32_t>(buffers_.size());
      buffers_.push_back(buffer);
    }
    it = cache.by_uid.emplace(uid_, std::move(buffer)).first;
  }
  cache.last_uid = uid_;
  cache.last_buffer = it->second.get();
  return *cache.last_buffer;
}

void FairnessMonitor::Ingest(const MonitorEvent& event) {
#ifdef XFAIR_OBS_DISABLED
  (void)event;
#else
  LocalBuffer().Append(event);
#endif
}

size_t FairnessMonitor::Drain() {
#ifdef XFAIR_OBS_DISABLED
  return 0;
#else
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  {
    std::lock_guard<std::mutex> guard(buffers_mutex_);
    buffers = buffers_;
  }
  // (seq, buffer ordinal, in-buffer index) keys the processing order.
  // Sequence numbers alone define it for well-behaved producers; the
  // ordinal/index tiebreak only matters for duplicate seqs.
  struct Keyed {
    MonitorEvent event;
    uint32_t ordinal;
    size_t index;
  };
  std::vector<Keyed> drained;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> guard(buf->block_mutex);
    const size_t n = buf->size.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      drained.push_back(
          {(*buf->blocks[i / EventBuffer::kBlockSize])[i %
                                                       EventBuffer::kBlockSize],
           buf->ordinal, i});
    }
    buf->size.store(0, std::memory_order_release);
  }
  std::sort(drained.begin(), drained.end(),
            [](const Keyed& a, const Keyed& b) {
              if (a.event.seq != b.event.seq) return a.event.seq < b.event.seq;
              if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
              return a.index < b.index;
            });
  for (const Keyed& k : drained) Process(k.event);
  return drained.size();
#endif
}

void FairnessMonitor::Process(const MonitorEvent& event) {
  if (event.group < 0 || event.group >= kMaxGroups) {
    ++events_dropped_;
    return;
  }
  ring_[ring_pos_] = event;
  ring_pos_ = (ring_pos_ + 1) % options_.window;
  if (ring_size_ < options_.window) ++ring_size_;

  GroupAggregate& agg = aggregates_[static_cast<size_t>(event.group)];
  ++agg.events;
  if (event.prediction == 1) ++agg.predicted_positive;
  if (event.label >= 0) {
    ++agg.labeled;
    if (event.prediction == 1 && event.label == 1) ++agg.tp;
    if (event.prediction == 1 && event.label == 0) ++agg.fp;
    if (event.prediction == 0 && event.label == 0) ++agg.tn;
    if (event.prediction == 0 && event.label == 1) ++agg.fn;
  }
  const double d1 = event.score - agg.score_mean;
  agg.score_mean += d1 / static_cast<double>(agg.events);
  agg.score_m2 += d1 * (event.score - agg.score_mean);

  ++events_processed_;
  const uint64_t warmup =
      options_.warmup == 0 ? options_.window : options_.warmup;
  if (events_processed_ >= warmup &&
      events_processed_ % options_.detector_stride == 0) {
    UpdateDetectors(event.seq);
  }
}

void FairnessMonitor::UpdateDetectors(uint64_t seq) {
  const WindowedMetrics wm = Windowed();
  const double values[3] = {wm.demographic_parity_diff,
                            wm.equalized_odds_diff, wm.calibration_gap};
  const size_t first_new = alarms_.size();
  for (size_t i = 0; i < detectors_.size(); ++i) {
    Detector& d = detectors_[i];
    const double ph =
        d.page_hinkley.Update(values[i], options_.ph_delta,
                              options_.ph_lambda);
    if (ph > 0.0) {
      alarms_.push_back({d.metric, "page_hinkley", seq, values[i], ph});
      d.page_hinkley = {};
    }
    const double cs =
        d.cusum.Update(values[i], options_.cusum_k, options_.cusum_h);
    if (cs > 0.0) {
      alarms_.push_back({d.metric, "cusum", seq, values[i], cs});
      d.cusum = {};
    }
  }
  if (first_new == alarms_.size()) return;
  // Fan each fresh alarm out: a lifecycle event (deterministic fields —
  // no clocks) and the hook bus. Hooks run here, on the drain thread,
  // while the trailing diagnostic evidence is still in the rings.
  std::vector<AlarmHook> hooks;
  {
    std::lock_guard<std::mutex> guard(hooks_mutex_);
    hooks = hooks_;
  }
  for (size_t a = first_new; a < alarms_.size(); ++a) {
    const DriftAlarm& alarm = alarms_[a];
    EmitEvent(Severity::kWarn, "monitor", "drift_alarm",
              {{"detector", alarm.detector},
               {"metric", alarm.metric},
               {"monitor", name_},
               {"seq", std::to_string(alarm.seq)},
               {"value", FormatDouble(alarm.value)}});
    for (const AlarmHook& hook : hooks) hook(*this, alarm);
  }
}

size_t FairnessMonitor::AddAlarmHook(AlarmHook hook) {
  std::lock_guard<std::mutex> guard(hooks_mutex_);
  hooks_.push_back(std::move(hook));
  return hooks_.size() - 1;
}

void FairnessMonitor::ClearAlarmHooks() {
  std::lock_guard<std::mutex> guard(hooks_mutex_);
  hooks_.clear();
}

WindowedMetrics FairnessMonitor::Windowed() const {
  WindowedMetrics wm;
#ifdef XFAIR_OBS_DISABLED
  return wm;
#else
  wm.events = ring_size_;
  if (ring_size_ == 0) return wm;
  const size_t oldest =
      ring_size_ == options_.window ? ring_pos_ : 0;

  // Per-group window counts for groups 0/1 (the offline comparison) and
  // per-group ECE bins, accumulated in seq order so the arithmetic is
  // bit-identical to fairness/group_metrics on the same rows.
  uint64_t n[2] = {0, 0}, pred_pos[2] = {0, 0};
  uint64_t tp[2] = {0, 0}, fp[2] = {0, 0}, tn[2] = {0, 0}, fn[2] = {0, 0};
  const size_t bins = options_.calibration_bins;
  std::vector<double> conf_sum(2 * bins, 0.0), label_sum(2 * bins, 0.0);
  std::vector<uint64_t> bin_count(2 * bins, 0);
  uint64_t labeled[2] = {0, 0};

  for (size_t i = 0; i < ring_size_; ++i) {
    const MonitorEvent& e = ring_[(oldest + i) % options_.window];
    if (i == 0) wm.first_seq = e.seq;
    wm.last_seq = e.seq;
    if (e.label >= 0) ++wm.labeled;
    if (e.group != 0 && e.group != 1) continue;
    const size_t g = static_cast<size_t>(e.group);
    ++n[g];
    if (e.prediction == 1) ++pred_pos[g];
    if (e.label < 0) continue;
    ++labeled[g];
    if (e.prediction == 1 && e.label == 1) ++tp[g];
    if (e.prediction == 1 && e.label == 0) ++fp[g];
    if (e.prediction == 0 && e.label == 0) ++tn[g];
    if (e.prediction == 0 && e.label == 1) ++fn[g];
    const size_t b = std::min(
        bins - 1, static_cast<size_t>(e.score * static_cast<double>(bins)));
    conf_sum[g * bins + b] += e.score;
    label_sum[g * bins + b] += static_cast<double>(e.label);
    ++bin_count[g * bins + b];
  }

  // Single-group sentinels, the PR 3 convention: no between-group
  // comparison to make, so differences report 0.
  wm.single_group = n[0] == 0 || n[1] == 0;
  if (wm.single_group) return wm;

  const auto rate = [](uint64_t num, uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  wm.demographic_parity_diff = rate(pred_pos[0], n[0]) - rate(pred_pos[1], n[1]);
  const double tpr0 = rate(tp[0], tp[0] + fn[0]);
  const double tpr1 = rate(tp[1], tp[1] + fn[1]);
  const double fpr0 = rate(fp[0], fp[0] + tn[0]);
  const double fpr1 = rate(fp[1], fp[1] + tn[1]);
  wm.equalized_odds_diff =
      std::max(std::fabs(tpr0 - tpr1), std::fabs(fpr0 - fpr1));

  // Per-group ECE over the labeled window rows, the offline formula:
  // sum over bins of (bin weight) * |mean confidence - mean label|.
  if (labeled[0] > 0 && labeled[1] > 0) {
    double ece[2] = {0.0, 0.0};
    for (size_t g = 0; g < 2; ++g) {
      const double total = static_cast<double>(labeled[g]);
      for (size_t b = 0; b < bins; ++b) {
        const uint64_t cnt = bin_count[g * bins + b];
        if (cnt == 0) continue;
        const double cb = static_cast<double>(cnt);
        ece[g] += (cb / total) * std::fabs(conf_sum[g * bins + b] / cb -
                                           label_sum[g * bins + b] / cb);
      }
    }
    wm.calibration_gap = std::fabs(ece[1] - ece[0]);
  }
  return wm;
#endif
}

void FairnessMonitor::Reset() {
  // Discard pending (undrained) events from every thread's buffer.
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  {
    std::lock_guard<std::mutex> guard(buffers_mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> guard(buf->block_mutex);
    buf->size.store(0, std::memory_order_release);
  }
  ring_pos_ = 0;
  ring_size_ = 0;
  aggregates_ = {};
  for (Detector& d : detectors_) {
    d.page_hinkley = {};
    d.cusum = {};
  }
  alarms_.clear();
  events_processed_ = 0;
  events_dropped_ = 0;
  next_seq_.store(0, std::memory_order_relaxed);
}

std::string FairnessMonitor::SnapshotJson() const {
#ifdef XFAIR_OBS_DISABLED
  return "{}";
#else
  std::string out = "{\n";
  out += "  \"alarms\": [";
  for (size_t i = 0; i < alarms_.size(); ++i) {
    const DriftAlarm& a = alarms_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"detector\": \"" + a.detector + "\", \"metric\": \"" +
           a.metric + "\", \"seq\": " + std::to_string(a.seq) +
           ", \"statistic\": " + FormatDouble(a.statistic) +
           ", \"value\": " + FormatDouble(a.value) + "}";
  }
  out += alarms_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"events_dropped\": " + std::to_string(events_dropped_) + ",\n";
  out += "  \"events_processed\": " + std::to_string(events_processed_) +
         ",\n";
  out += "  \"groups\": {";
  bool first = true;
  for (int g = 0; g < kMaxGroups; ++g) {
    const GroupAggregate& agg = aggregates_[static_cast<size_t>(g)];
    if (agg.events == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + std::to_string(g) + "\": {";
    out += "\"events\": " + std::to_string(agg.events);
    out += ", \"fpr\": " + FormatDouble(agg.fpr());
    out += ", \"labeled\": " + std::to_string(agg.labeled);
    out += ", \"positive_rate\": " + FormatDouble(agg.positive_rate());
    out += ", \"predicted_positive\": " +
           std::to_string(agg.predicted_positive);
    out += ", \"score_mean\": " + FormatDouble(agg.score_mean);
    out += ", \"score_variance\": " + FormatDouble(agg.score_variance());
    out += ", \"tpr\": " + FormatDouble(agg.tpr());
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"monitor\": \"" + name_ + "\",\n";
  const WindowedMetrics wm = Windowed();
  out += "  \"window\": {";
  out += "\"calibration_gap\": " + FormatDouble(wm.calibration_gap);
  out += ", \"demographic_parity_diff\": " +
         FormatDouble(wm.demographic_parity_diff);
  out += ", \"equalized_odds_diff\": " +
         FormatDouble(wm.equalized_odds_diff);
  out += ", \"events\": " + std::to_string(wm.events);
  out += ", \"first_seq\": " + std::to_string(wm.first_seq);
  out += ", \"labeled\": " + std::to_string(wm.labeled);
  out += ", \"last_seq\": " + std::to_string(wm.last_seq);
  out += std::string(", \"single_group\": ") +
         (wm.single_group ? "true" : "false");
  out += "}\n}";
  return out;
#endif
}

namespace {

/// Monitor interning registry (counters.cc pattern: heap-allocated,
/// never freed, references valid for the process lifetime).
struct MonitorRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<FairnessMonitor>> monitors;
};

MonitorRegistry& GlobalMonitorRegistry() {
  static MonitorRegistry* r = new MonitorRegistry();
  return *r;
}

}  // namespace

FairnessMonitor& GetMonitor(std::string_view name, MonitorOptions options) {
  MonitorRegistry& reg = GlobalMonitorRegistry();
  std::lock_guard<std::mutex> guard(reg.mutex);
  for (const auto& m : reg.monitors) {
    if (m->name() == name) return *m;
  }
  reg.monitors.emplace_back(
      new FairnessMonitor(std::string(name), options));
  return *reg.monitors.back();
}

std::vector<FairnessMonitor*> RegisteredMonitors() {
  MonitorRegistry& reg = GlobalMonitorRegistry();
  std::lock_guard<std::mutex> guard(reg.mutex);
  std::vector<FairnessMonitor*> out;
  out.reserve(reg.monitors.size());
  for (const auto& m : reg.monitors) out.push_back(m.get());
  std::sort(out.begin(), out.end(),
            [](const FairnessMonitor* a, const FairnessMonitor* b) {
              return a->name() < b->name();
            });
  return out;
}

ScopedStreamContext::ScopedStreamContext(FairnessMonitor* monitor,
                                         const int* groups,
                                         const int* labels, size_t n) {
  StreamContext& ctx = LocalStreamContext();
  prev_ = new StreamContext(ctx);
  ctx.monitor = monitor;
  ctx.groups = groups;
  ctx.labels = labels;
  ctx.n = n;
}

ScopedStreamContext::~ScopedStreamContext() {
  StreamContext* prev = static_cast<StreamContext*>(prev_);
  LocalStreamContext() = *prev;
  delete prev;
}

bool MonitorActive(size_t n) {
#ifdef XFAIR_OBS_DISABLED
  (void)n;
  return false;
#else
  if (!MonitoringEnabled()) return false;
  const StreamContext& ctx = LocalStreamContext();
  return ctx.monitor != nullptr && ctx.groups != nullptr && ctx.n == n &&
         n > 0;
#endif
}

void MonitorPredictionBatch(const double* scores, size_t n,
                            double threshold) {
#ifdef XFAIR_OBS_DISABLED
  (void)scores;
  (void)n;
  (void)threshold;
#else
  if (!MonitorActive(n)) return;
  const StreamContext& ctx = LocalStreamContext();
  const uint64_t base = ctx.monitor->ReserveSeq(n);
  for (size_t i = 0; i < n; ++i) {
    ctx.monitor->Ingest({base + i, scores[i],
                         scores[i] >= threshold ? 1 : 0,
                         ctx.labels == nullptr ? -1 : ctx.labels[i],
                         ctx.groups[i]});
  }
#endif
}

void MonitorPredictionBatch(const double* scores, const int* predictions,
                            size_t n) {
#ifdef XFAIR_OBS_DISABLED
  (void)scores;
  (void)predictions;
  (void)n;
#else
  if (!MonitorActive(n)) return;
  const StreamContext& ctx = LocalStreamContext();
  const uint64_t base = ctx.monitor->ReserveSeq(n);
  for (size_t i = 0; i < n; ++i) {
    ctx.monitor->Ingest({base + i, scores[i], predictions[i],
                         ctx.labels == nullptr ? -1 : ctx.labels[i],
                         ctx.groups[i]});
  }
#endif
}

}  // namespace xfair::obs
