// Streaming fairness monitor: sliding-window group metrics and drift
// alarms over a live prediction stream.
//
// A FairnessMonitor ingests `(prediction, score, label?, group)` events
// and maintains three views of the stream:
//
//   * cumulative per-group online aggregates — event/positive counts,
//     label-conditioned confusion counts (TPR/FPR once labels arrive),
//     and Welford mean/variance of the score;
//   * a ring-buffer sliding window of the last `window` events, from
//     which the windowed group metrics (demographic-parity difference,
//     equalized-odds difference, calibration gap) are derived on demand
//     by a scan that replays the exact arithmetic of the offline
//     `fairness/group_metrics` implementations — including the PR 3
//     single-group sentinels (differences 0, calibration 0);
//   * Page-Hinkley and CUSUM change detectors over each windowed gap,
//     which append DriftAlarm records when a gap drifts from its running
//     mean.
//
// Ingestion is lock-free on the hot path: each thread appends to its own
// chunked buffer (same design as trace.cc), and Drain() — which must not
// race with ingestion, the FlushSpans contract — merges all buffers and
// processes events in ascending `seq` order. Because the processed order
// is a function of the caller-assigned sequence numbers only, every
// derived quantity (window contents, aggregates, detector state, alarm
// steps) is deterministic and independent of thread count or ingestion
// interleaving.
//
// Model wiring: the batched PredictProbaBatch paths call
// XFAIR_MONITOR_PREDICTIONS after scores are final. The hook is inert
// (one relaxed load) unless monitoring is enabled *and* the calling
// thread installed a ScopedStreamContext whose group/label arrays match
// the batch row count — that is how group membership, which models never
// see, joins the event stream without widening the Model API.
//
// Under -DXFAIR_OBS=OFF the macros compile to nothing and every method
// of the monitor compiles to an empty no-op (Ingest drops, Drain returns
// 0, snapshots render empty), so the whole layer disappears from
// opted-out builds while still linking.

#ifndef XFAIR_OBS_MONITOR_H_
#define XFAIR_OBS_MONITOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xfair::obs {

/// True when the build compiles monitoring in (XFAIR_OBS=ON).
constexpr bool MonitoringCompiledIn() {
#ifdef XFAIR_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

/// One prediction event. `seq` is the event's position in the logical
/// stream and is assigned by the producer (ReserveSeq for batch hooks):
/// processing order, and therefore every alarm, is a function of `seq`
/// alone, never of ingestion interleaving.
struct MonitorEvent {
  uint64_t seq = 0;
  double score = 0.0;  ///< P(y=1 | x) in [0, 1].
  int prediction = 0;  ///< Hard decision, 0 or 1.
  int label = -1;      ///< Ground truth when known; -1 = unlabeled.
  int group = 0;       ///< Protected-group id (0 = G-, 1 = G+).
};

/// Tuning knobs for the window and the drift detectors.
struct MonitorOptions {
  /// Sliding-window capacity in events.
  size_t window = 512;
  /// Events before detectors start scoring gaps; 0 means "one full
  /// window" (the windowed gaps are meaningless before the ring fills).
  size_t warmup = 0;
  /// Detectors re-evaluate the windowed gaps every `detector_stride`
  /// events. Overlapping windows make per-event gap series strongly
  /// autocorrelated; a stride of window/8 keeps detection latency well
  /// under one window while damping noise accumulation.
  size_t detector_stride = 64;
  /// Probability bins of the windowed per-group ECE (offline default).
  size_t calibration_bins = 10;
  /// Page-Hinkley magnitude tolerance and alarm threshold.
  double ph_delta = 0.02;
  double ph_lambda = 0.35;
  /// CUSUM slack and alarm threshold.
  double cusum_k = 0.03;
  double cusum_h = 0.25;
};

/// Cumulative (whole-stream) per-group aggregate.
struct GroupAggregate {
  uint64_t events = 0;
  uint64_t predicted_positive = 0;
  uint64_t labeled = 0;
  uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  double score_mean = 0.0;  ///< Welford running mean of the score.
  double score_m2 = 0.0;    ///< Welford sum of squared deviations.

  double positive_rate() const {
    return events == 0 ? 0.0
                       : static_cast<double>(predicted_positive) /
                             static_cast<double>(events);
  }
  /// TPR over labeled events; 0 with no labeled positives (PR 3
  /// sentinel convention).
  double tpr() const {
    const uint64_t pos = tp + fn;
    return pos == 0 ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(pos);
  }
  /// FPR over labeled events; 0 with no labeled negatives.
  double fpr() const {
    const uint64_t neg = fp + tn;
    return neg == 0 ? 0.0
                    : static_cast<double>(fp) / static_cast<double>(neg);
  }
  /// Sample variance of the score; 0 with fewer than two events.
  double score_variance() const {
    return events < 2 ? 0.0
                      : score_m2 / static_cast<double>(events - 1);
  }
};

/// Windowed group metrics, derived on demand from the ring contents with
/// the offline group_metrics arithmetic (and sentinels).
struct WindowedMetrics {
  size_t events = 0;   ///< Events currently in the window.
  size_t labeled = 0;  ///< Of those, how many carry labels.
  uint64_t first_seq = 0, last_seq = 0;
  bool single_group = true;  ///< Sentinels applied (a group is absent).
  double demographic_parity_diff = 0.0;  ///< posrate(G-) - posrate(G+).
  double equalized_odds_diff = 0.0;      ///< max(|TPR gap|, |FPR gap|).
  double calibration_gap = 0.0;          ///< |ECE(G+) - ECE(G-)|.
};

/// One drift alarm. `seq` is the sequence number of the event whose
/// processing crossed the detector threshold.
struct DriftAlarm {
  std::string metric;    ///< "demographic_parity" | "equalized_odds" |
                         ///< "calibration".
  std::string detector;  ///< "page_hinkley" | "cusum".
  uint64_t seq = 0;
  double value = 0.0;      ///< The windowed gap at alarm time.
  double statistic = 0.0;  ///< Detector statistic that crossed.
};

namespace detail {

/// Two-sided Page-Hinkley over a scalar series: accumulates deviations
/// from the running mean and fires when the cumulative deviation escapes
/// its historical extremum by more than lambda.
struct PageHinkleyState {
  uint64_t n = 0;
  double mean = 0.0;
  double inc = 0.0, inc_min = 0.0;  ///< Rising-change accumulator.
  double dec = 0.0, dec_max = 0.0;  ///< Falling-change accumulator.

  /// Folds in x; returns the crossing statistic (> 0) on alarm, else 0.
  /// The caller resets the state after an alarm.
  double Update(double x, double delta, double lambda);
};

/// Two-sided CUSUM against the series' running mean.
struct CusumState {
  uint64_t n = 0;
  double mean = 0.0;
  double pos = 0.0, neg = 0.0;

  double Update(double x, double k, double h);
};

}  // namespace detail

/// Streaming fairness monitor. Thread-safe ingestion, single-threaded
/// drain/query (the FlushSpans contract: drain between parallel regions).
class FairnessMonitor {
 public:
  /// Group ids outside [0, kMaxGroups) are counted as dropped.
  static constexpr int kMaxGroups = 8;

  explicit FairnessMonitor(std::string name, MonitorOptions options = {});
  FairnessMonitor(const FairnessMonitor&) = delete;
  FairnessMonitor& operator=(const FairnessMonitor&) = delete;

  const std::string& name() const { return name_; }
  const MonitorOptions& options() const { return options_; }

  /// Appends one event to the calling thread's buffer (lock-free after
  /// the thread's first ingest). No-op under XFAIR_OBS=OFF.
  void Ingest(const MonitorEvent& event);

  /// Reserves `n` consecutive sequence numbers and returns the first.
  /// Batch producers stamp row i of a batch with base + i, so the stream
  /// order is the caller's batch order regardless of thread count.
  uint64_t ReserveSeq(uint64_t n) {
    return next_seq_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Drains every thread's buffer and processes the drained events in
  /// ascending seq order (ties by ingestion ordinal). Must not race with
  /// Ingest. Returns the number of events processed.
  size_t Drain();

  /// Windowed metrics from the current ring contents (O(window) scan
  /// replaying the offline group_metrics arithmetic).
  WindowedMetrics Windowed() const;

  const std::array<GroupAggregate, kMaxGroups>& aggregates() const {
    return aggregates_;
  }
  const std::vector<DriftAlarm>& alarms() const { return alarms_; }

  /// Alarm hook bus: every hook runs synchronously on the draining
  /// thread right after a detector appends a DriftAlarm — the moment the
  /// trailing evidence (flight recorder, event log, counters) is still
  /// hot. The recorder's InstallBundleDumpOnAlarm registers its bundle
  /// dump through this. Hooks must not call back into this monitor's
  /// Drain/Ingest. Never invoked under -DXFAIR_OBS=OFF (Drain is a
  /// no-op there).
  using AlarmHook =
      std::function<void(const FairnessMonitor&, const DriftAlarm&)>;

  /// Registers a hook; returns its id. Thread-safe.
  size_t AddAlarmHook(AlarmHook hook);

  /// Removes every registered hook.
  void ClearAlarmHooks();
  uint64_t events_processed() const { return events_processed_; }
  /// Events dropped for an out-of-range group id.
  uint64_t events_dropped() const { return events_dropped_; }

  /// Clears window, aggregates, detectors, alarms, and the sequence
  /// counter. Pending (undrained) events are discarded.
  void Reset();

  /// Self-contained JSON object for this monitor — keys sorted,
  /// rendering deterministic for identical state. "{}" when disabled.
  std::string SnapshotJson() const;

  /// Per-thread chunked event storage; defined in monitor.cc (exposed
  /// so the thread-local buffer cache there can name it).
  struct EventBuffer;

 private:
  struct Detector {
    const char* metric;
    detail::PageHinkleyState page_hinkley;
    detail::CusumState cusum;
  };

  EventBuffer& LocalBuffer();
  void Process(const MonitorEvent& event);
  void UpdateDetectors(uint64_t seq);

  /// Process-unique id, never reused: thread-local buffer caches key on
  /// it so a monitor allocated at a destroyed monitor's address cannot
  /// inherit the old monitor's buffers.
  const uint64_t uid_;
  std::string name_;
  MonitorOptions options_;
  std::atomic<uint64_t> next_seq_{0};

  // Ingestion side: per-thread chunked buffers (trace.cc design).
  std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<EventBuffer>> buffers_;

  // Alarm hook bus; the mutex guards registration only (invocation
  // copies the list and runs on the drain thread).
  std::mutex hooks_mutex_;
  std::vector<AlarmHook> hooks_;

  // Processing side: touched only under the Drain contract.
  std::vector<MonitorEvent> ring_;  ///< Capacity options_.window.
  size_t ring_pos_ = 0;             ///< Next slot to overwrite.
  size_t ring_size_ = 0;            ///< Events currently in the ring.
  std::array<GroupAggregate, kMaxGroups> aggregates_{};
  std::array<Detector, 3> detectors_;
  std::vector<DriftAlarm> alarms_;
  uint64_t events_processed_ = 0;
  uint64_t events_dropped_ = 0;
};

/// True when the monitoring hooks are live (one relaxed load). Off by
/// default unless the XFAIR_MONITOR environment variable is set to a
/// nonzero value at first use.
bool MonitoringEnabled();
void SetMonitoringEnabled(bool enabled);

/// Interns and returns the monitor named `name` (process lifetime),
/// creating it with `options` on first use.
FairnessMonitor& GetMonitor(std::string_view name,
                            MonitorOptions options = {});

/// All registered monitors, sorted by name (deterministic export order).
std::vector<FairnessMonitor*> RegisteredMonitors();

/// Installs, for the current thread, the group/label arrays that
/// MonitorPredictionBatch joins against batch scores. The arrays must
/// outlive the scope and have `n` entries (`labels` may be null for an
/// unlabeled stream). Restores the previous context on destruction.
class ScopedStreamContext {
 public:
  ScopedStreamContext(FairnessMonitor* monitor, const int* groups,
                      const int* labels, size_t n);
  ~ScopedStreamContext();
  ScopedStreamContext(const ScopedStreamContext&) = delete;
  ScopedStreamContext& operator=(const ScopedStreamContext&) = delete;

 private:
  void* prev_ = nullptr;  ///< Opaque saved context.
};

/// True when monitoring is enabled and the calling thread's stream
/// context matches a batch of `n` rows — the exact condition under which
/// MonitorPredictionBatch will ingest.
bool MonitorActive(size_t n);

/// Joins `scores[0..n)` with the thread's stream context and ingests one
/// event per row (prediction = score >= threshold). Inert unless
/// MonitorActive(n).
void MonitorPredictionBatch(const double* scores, size_t n,
                            double threshold);

/// Variant with precomputed hard decisions (multi-class argmax rules
/// that a threshold cannot express).
void MonitorPredictionBatch(const double* scores, const int* predictions,
                            size_t n);

}  // namespace xfair::obs

// Hot-path hook for batched prediction paths. Compiles to nothing under
// -DXFAIR_OBS=OFF; otherwise one relaxed load + branch when monitoring
// is off or no stream context is installed.
#ifndef XFAIR_OBS_DISABLED
#define XFAIR_MONITOR_PREDICTIONS(scores, n, threshold) \
  ::xfair::obs::MonitorPredictionBatch((scores), (n), (threshold))
#define XFAIR_MONITOR_ACTIVE(n) ::xfair::obs::MonitorActive(n)
#else
#define XFAIR_MONITOR_PREDICTIONS(scores, n, threshold) \
  do {                                                  \
  } while (0)
#define XFAIR_MONITOR_ACTIVE(n) false
#endif

#endif  // XFAIR_OBS_MONITOR_H_
