// Umbrella header + instrumentation macros for the observability layer.
//
// Instrumented code uses only the macros below, which obey two build
// modes:
//
//   * Default build: XFAIR_SPAN records a span when tracing is enabled at
//     runtime (one relaxed load + branch when disabled);
//     XFAIR_COUNTER_ADD / XFAIR_HISTOGRAM_OBSERVE are relaxed atomic
//     updates on interned counters (function-local-static lookup, paid
//     once per call site).
//   * -DXFAIR_OBS=OFF (CMake) defines XFAIR_OBS_DISABLED and every macro
//     compiles to nothing — the argument expressions are not evaluated —
//     so instrumentation is provably free in opted-out builds.
//
// The macros never influence the instrumented computation: no branches
// depend on counter values and spans only read the clock. That is the
// bit-identity guarantee the golden and thread-invariance tests pin.
//
// Naming scheme (see DESIGN.md §6): "<layer>/<operation>[/<detail>]"
// with layers {parallel, model, shap, tree_shap, fairness_shap, gopher,
// cf, kdtree, flat_tree}. Span names must be string literals.
//
// The streaming fairness-monitoring hook (XFAIR_MONITOR_PREDICTIONS,
// DESIGN.md §8) lives in monitor.h and obeys the same two build modes.

#ifndef XFAIR_OBS_OBS_H_
#define XFAIR_OBS_OBS_H_

#include "src/obs/counters.h"
#include "src/obs/eventlog.h"
#include "src/obs/export.h"
#include "src/obs/exposition.h"
#include "src/obs/monitor.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"

#define XFAIR_OBS_CONCAT_INNER(a, b) a##b
#define XFAIR_OBS_CONCAT(a, b) XFAIR_OBS_CONCAT_INNER(a, b)

#ifndef XFAIR_OBS_DISABLED

/// Opens a RAII span named `name` (string literal) for the rest of the
/// enclosing scope.
#define XFAIR_SPAN(name) \
  ::xfair::obs::Span XFAIR_OBS_CONCAT(xfair_span_, __LINE__)(name)

/// Adds `n` to the monotonic counter `name` (relaxed; thread-safe).
#define XFAIR_COUNTER_ADD(name, n)                                \
  do {                                                            \
    static ::xfair::obs::Counter& xfair_counter_ =                \
        ::xfair::obs::GetCounter(name);                           \
    xfair_counter_.Add(n);                                        \
  } while (0)

/// Records `v` into the log-linear histogram `name`.
#define XFAIR_HISTOGRAM_OBSERVE(name, v)                          \
  do {                                                            \
    static ::xfair::obs::Histogram& xfair_histogram_ =            \
        ::xfair::obs::GetHistogram(name);                         \
    xfair_histogram_.Observe(v);                                  \
  } while (0)

/// Observes the elapsed nanoseconds of the enclosing scope into the
/// log-linear histogram `name` (two steady-clock reads per scope; put
/// it at batch granularity, not inside per-row loops).
#define XFAIR_LATENCY_NS(name)                                        \
  static ::xfair::obs::Histogram& XFAIR_OBS_CONCAT(                   \
      xfair_latency_hist_, __LINE__) = ::xfair::obs::GetHistogram(name); \
  ::xfair::obs::ScopedLatency XFAIR_OBS_CONCAT(xfair_latency_,        \
                                               __LINE__)(             \
      XFAIR_OBS_CONCAT(xfair_latency_hist_, __LINE__))

/// Emits a structured lifecycle event (eventlog.h) with severity
/// `sev` (kDebug/kInfo/kWarn/kError), a component and event name, and
/// optional {{"key", value}, ...} fields. Field values are strings the
/// caller formats. Arguments are not evaluated when the log is off.
#define XFAIR_EVENT(sev, component, event, ...)                         \
  do {                                                                  \
    if (::xfair::obs::EventLogEnabled()) {                              \
      ::xfair::obs::EmitEvent(::xfair::obs::Severity::sev, (component), \
                              (event), ##__VA_ARGS__);                  \
    }                                                                   \
  } while (0)

#else  // XFAIR_OBS_DISABLED

#define XFAIR_SPAN(name) \
  do {                   \
  } while (0)
#define XFAIR_COUNTER_ADD(name, n) \
  do {                             \
  } while (0)
#define XFAIR_HISTOGRAM_OBSERVE(name, v) \
  do {                                   \
  } while (0)
#define XFAIR_LATENCY_NS(name) \
  do {                         \
  } while (0)
#define XFAIR_EVENT(sev, component, event, ...) \
  do {                                          \
  } while (0)

#endif  // XFAIR_OBS_DISABLED

#endif  // XFAIR_OBS_OBS_H_
