#include "src/obs/recorder.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "src/obs/eventlog.h"
#include "src/obs/export.h"
#include "src/obs/exposition.h"
#include "src/obs/monitor.h"

namespace xfair::obs {
namespace {

/// One thread's flight ring. The owning thread overwrites slots and
/// release-publishes the monotone write count; snapshotters read under
/// the quiesced-recording contract. Slot storage is only mutated by
/// SetRecorderRingCapacity, which shares that contract.
struct FlightRing {
  uint64_t uid = 0;  ///< Registration order; the drain sort key.
  std::vector<SpanRecord> slots;
  std::atomic<uint64_t> writes{0};
};

struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<FlightRing>> rings;
  uint64_t next_uid = 0;
  size_t capacity = 4096;
};

RingRegistry& GlobalRings() {
  static RingRegistry* r = new RingRegistry();
  return *r;
}

/// This thread's ring, registered on first use (shared_ptr keeps it
/// alive after thread exit, so a worker's trailing spans survive a pool
/// resize — same rationale as trace.cc).
FlightRing& LocalRing() {
  thread_local std::shared_ptr<FlightRing> ring = [] {
    auto r = std::make_shared<FlightRing>();
    RingRegistry& reg = GlobalRings();
    std::lock_guard<std::mutex> guard(reg.mutex);
    r->uid = reg.next_uid++;
    r->slots.resize(std::max<size_t>(1, reg.capacity));
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<bool> g_enabled{false};

/// Counter values at the last enable/reset; deltas are measured from it.
struct DeltaBaseline {
  std::mutex mutex;
  std::map<std::string, uint64_t> values;
};

DeltaBaseline& GlobalBaseline() {
  static DeltaBaseline* b = new DeltaBaseline();
  return *b;
}

void CaptureCounterBaseline() {
  DeltaBaseline& base = GlobalBaseline();
  std::lock_guard<std::mutex> guard(base.mutex);
  base.values.clear();
  for (const CounterSnapshot& c : SnapshotCounters()) {
    base.values[c.name] = c.value;
  }
}

struct ProvenanceState {
  std::mutex mutex;
  std::string json = "{}";
};

ProvenanceState& GlobalProvenance() {
  static ProvenanceState* p = new ProvenanceState();
  return *p;
}

std::atomic<uint64_t> g_bundle_index{0};

/// First-use env arming, mirroring the tracer: XFAIR_RECORDER=1 turns
/// the recorder on before main() runs any instrumented code.
struct EnvInit {
  EnvInit() {
#ifndef XFAIR_OBS_DISABLED
    const char* env = std::getenv("XFAIR_RECORDER");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      SetRecorderEnabled(true);
    }
#endif
  }
};
EnvInit g_env_init;

[[maybe_unused]] std::string SanitizeReason(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("alarm") : out;
}

}  // namespace

bool RecorderEnabled() {
#ifdef XFAIR_OBS_DISABLED
  return false;
#else
  return g_enabled.load(std::memory_order_relaxed);
#endif
}

void SetRecorderEnabled(bool enabled) {
#ifdef XFAIR_OBS_DISABLED
  (void)enabled;
#else
  const bool was = g_enabled.exchange(enabled, std::memory_order_relaxed);
  if (enabled && !was) CaptureCounterBaseline();
#endif
}

void SetRecorderRingCapacity(size_t capacity) {
  RingRegistry& reg = GlobalRings();
  std::lock_guard<std::mutex> guard(reg.mutex);
  reg.capacity = std::max<size_t>(1, capacity);
  for (const auto& ring : reg.rings) {
    ring->slots.assign(reg.capacity, SpanRecord{});
    ring->writes.store(0, std::memory_order_release);
  }
}

size_t RecorderRingCapacity() {
  RingRegistry& reg = GlobalRings();
  std::lock_guard<std::mutex> guard(reg.mutex);
  return reg.capacity;
}

std::vector<SpanRecord> SnapshotFlightSpans() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    RingRegistry& reg = GlobalRings();
    std::lock_guard<std::mutex> guard(reg.mutex);
    rings = reg.rings;
  }
  std::sort(rings.begin(), rings.end(),
            [](const auto& a, const auto& b) { return a->uid < b->uid; });
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    const uint64_t w = ring->writes.load(std::memory_order_acquire);
    const uint64_t cap = ring->slots.size();
    const uint64_t n = std::min(w, cap);
    const uint64_t start = w - n;  // Oldest retained absolute index.
    for (uint64_t i = 0; i < n; ++i) {
      out.push_back(ring->slots[(start + i) % cap]);
    }
  }
  return out;
}

uint64_t FlightSpansDropped() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    RingRegistry& reg = GlobalRings();
    std::lock_guard<std::mutex> guard(reg.mutex);
    rings = reg.rings;
  }
  uint64_t dropped = 0;
  for (const auto& ring : rings) {
    const uint64_t w = ring->writes.load(std::memory_order_acquire);
    const uint64_t cap = ring->slots.size();
    if (w > cap) dropped += w - cap;
  }
  return dropped;
}

std::vector<CounterSnapshot> RecorderCounterDeltas() {
  std::map<std::string, uint64_t> baseline;
  {
    DeltaBaseline& base = GlobalBaseline();
    std::lock_guard<std::mutex> guard(base.mutex);
    baseline = base.values;
  }
  std::vector<CounterSnapshot> out;
  for (const CounterSnapshot& c : SnapshotCounters()) {
    const auto it = baseline.find(c.name);
    const uint64_t prev = it == baseline.end() ? 0 : it->second;
    if (c.value > prev) out.push_back({c.name, c.value - prev});
  }
  return out;  // SnapshotCounters is sorted; the filter preserves that.
}

void ResetRecorder() {
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    RingRegistry& reg = GlobalRings();
    std::lock_guard<std::mutex> guard(reg.mutex);
    rings = reg.rings;
  }
  for (const auto& ring : rings) {
    ring->writes.store(0, std::memory_order_release);
  }
  CaptureCounterBaseline();
}

void SetActiveProvenance(std::string json) {
  ProvenanceState& p = GlobalProvenance();
  std::lock_guard<std::mutex> guard(p.mutex);
  p.json = json.empty() ? std::string("{}") : std::move(json);
}

std::string ActiveProvenanceJson() {
  ProvenanceState& p = GlobalProvenance();
  std::lock_guard<std::mutex> guard(p.mutex);
  return p.json;
}

Status DumpDiagnosticBundle(const std::string& directory,
                            const FairnessMonitor* monitor,
                            const std::string& reason,
                            std::string* bundle_dir) {
#ifdef XFAIR_OBS_DISABLED
  // The layer is compiled out: no evidence exists, write no artifacts.
  (void)directory;
  (void)monitor;
  (void)reason;
  if (bundle_dir != nullptr) bundle_dir->clear();
  return Status::OK();
#else
  namespace fs = std::filesystem;
  const uint64_t index =
      g_bundle_index.fetch_add(1, std::memory_order_relaxed);
  char name[96];
  std::snprintf(name, sizeof(name), "bundle-%03llu-%s",
                static_cast<unsigned long long>(index),
                SanitizeReason(reason).c_str());
  const std::string path = directory + "/" + name;
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::Internal("cannot create bundle dir " + path + ": " +
                            ec.message());
  }

  const std::vector<SpanRecord> spans = SnapshotFlightSpans();
  const std::vector<EventRecord> events = SnapshotEvents();

  std::string deltas = "{";
  {
    const auto dd = RecorderCounterDeltas();
    for (size_t i = 0; i < dd.size(); ++i) {
      deltas += i == 0 ? "\n" : ",\n";
      deltas += "  \"" + dd[i].name + "\": " + std::to_string(dd[i].value);
    }
    deltas += dd.empty() ? "}\n" : "\n}\n";
  }

  // MANIFEST keys and the file list are sorted; no clocks, no host
  // state — byte-deterministic for identical recorded state.
  const char* files[] = {"MANIFEST.json",  "counter_deltas.json",
                         "counters.json",  "events.jsonl",
                         "monitor.json",   "provenance.json",
                         "trace.json"};
  std::string manifest = "{\n";
  manifest += "  \"event_count\": " + std::to_string(events.size()) + ",\n";
  manifest += "  \"files\": [";
  for (size_t i = 0; i < sizeof(files) / sizeof(files[0]); ++i) {
    manifest += i == 0 ? "" : ", ";
    manifest += std::string("\"") + files[i] + "\"";
  }
  manifest += "],\n";
  manifest += "  \"reason\": \"" + SanitizeReason(reason) + "\",\n";
  manifest += "  \"span_count\": " + std::to_string(spans.size()) + "\n";
  manifest += "}\n";

  struct Entry {
    const char* file;
    std::string content;
  };
  const Entry entries[] = {
      {"MANIFEST.json", manifest},
      {"trace.json", SpansToChromeTraceJson(spans)},
      {"monitor.json",
       (monitor != nullptr ? monitor->SnapshotJson() : std::string("{}")) +
           "\n"},
      {"counters.json", CountersToJson()},
      {"counter_deltas.json", deltas},
      {"provenance.json", ActiveProvenanceJson() + "\n"},
      {"events.jsonl", EventsToJsonl(events)},
  };
  for (const Entry& e : entries) {
    if (Status st = WriteTextFile(path + "/" + e.file, e.content);
        !st.ok()) {
      return st;
    }
  }
  if (bundle_dir != nullptr) *bundle_dir = path;
  EmitEvent(Severity::kWarn, "recorder", "bundle_dumped",
            {{"reason", SanitizeReason(reason)},
             {"span_count", std::to_string(spans.size())}});
  return Status::OK();
#endif
}

size_t InstallBundleDumpOnAlarm(FairnessMonitor& monitor,
                                BundleOptions options) {
  auto dumped = std::make_shared<std::atomic<uint64_t>>(0);
  return monitor.AddAlarmHook(
      [options, dumped](const FairnessMonitor& m, const DriftAlarm& alarm) {
        if (options.max_bundles != 0 &&
            dumped->fetch_add(1, std::memory_order_relaxed) >=
                options.max_bundles) {
          return;
        }
        (void)DumpDiagnosticBundle(options.directory, &m,
                                   alarm.metric + "-" + alarm.detector,
                                   nullptr);
      });
}

namespace detail {

void RecordFlightSpan(const SpanRecord& rec) {
  FlightRing& ring = LocalRing();
  const uint64_t w = ring.writes.load(std::memory_order_relaxed);
  ring.slots[w % ring.slots.size()] = rec;
  ring.writes.store(w + 1, std::memory_order_release);
}

}  // namespace detail

}  // namespace xfair::obs
