// Flight recorder: always-on trailing window of spans + counter deltas,
// and anomaly-triggered diagnostic bundles.
//
// The tracer (trace.h) answers "record everything, export later"; an
// audit deployment needs the opposite: keep only the *trailing* K spans
// per thread at near-zero cost, and when a drift detector trips, dump
// everything relevant — the trailing Chrome trace, the monitor snapshot,
// the full counter/histogram export, the structured event log, and the
// active RunReport provenance — into one self-contained bundle directory
// that an auditor can replay without access to the live process.
//
// Recording path: each thread owns a fixed-capacity ring of SpanRecords
// (steady-clock timestamps, same epoch as the tracer). The owner
// overwrites the oldest slot and release-publishes a monotone write
// count; no locks, no allocation after the first span. Span destructors
// feed the ring whenever RecorderEnabled() — independently of tracing,
// so the recorder can stay on in production while full tracing stays
// off.
//
// Drain order is deterministic: rings sort by their registration uid and
// each ring yields its retained records in append order, i.e. keyed by
// (thread uid, per-thread span seq) — the same discipline as the
// monitor's ingestion path. SnapshotFlightSpans must not race with span
// recording (the FlushSpans contract: call between parallel regions).
//
// Enabling the recorder snapshots every counter as the delta baseline;
// RecorderCounterDeltas() reports what advanced since, so a bundle shows
// "what the process did lately", not lifetime totals.
//
// Under -DXFAIR_OBS=OFF spans do not exist, so the recorder compiles to
// an empty shell: RecorderEnabled() is false, snapshots are empty, and
// DumpDiagnosticBundle writes nothing and returns OK.

#ifndef XFAIR_OBS_RECORDER_H_
#define XFAIR_OBS_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace xfair::obs {

class FairnessMonitor;

/// True when span destructors feed the flight rings (one relaxed load).
/// Off by default unless the XFAIR_RECORDER environment variable is set
/// to a nonzero value at first use; always false under -DXFAIR_OBS=OFF.
bool RecorderEnabled();

/// Enables/disables flight recording. The off->on transition captures
/// the counter-delta baseline (see RecorderCounterDeltas).
void SetRecorderEnabled(bool enabled);

/// Per-thread ring capacity (trailing spans kept per thread; default
/// 4096). Resizes existing rings and discards their contents, so call it
/// only while no spans are recording (the FlushSpans contract).
void SetRecorderRingCapacity(size_t capacity);

/// Current per-thread ring capacity.
size_t RecorderRingCapacity();

/// The retained trailing spans of every thread, in deterministic
/// (thread uid, per-thread append order) order. Non-destructive. Must
/// not race with span recording.
std::vector<SpanRecord> SnapshotFlightSpans();

/// Spans overwritten (lost to the ring bound) since the last reset.
uint64_t FlightSpansDropped();

/// Counters that advanced since the recorder was last enabled (or since
/// ResetRecorder), as (name, increment) sorted by name.
std::vector<CounterSnapshot> RecorderCounterDeltas();

/// Clears every ring, the dropped count, and re-captures the counter
/// baseline. Must not race with span recording.
void ResetRecorder();

/// Sets the provenance JSON object embedded in bundles (the active
/// RunReport's method/seed/dataset fingerprint; "{}" when none).
/// RunWithReport installs this automatically around each run.
void SetActiveProvenance(std::string json);
std::string ActiveProvenanceJson();

/// Writes a diagnostic bundle directory under `directory` and returns
/// its path via `bundle_dir` (may be null). The bundle contains:
///
///   MANIFEST.json       file list + reason + record counts (no clocks)
///   trace.json          Chrome trace of the trailing flight window
///   monitor.json        monitor->SnapshotJson() ("{}" if null)
///   counters.json       full counter/histogram export with quantiles
///   counter_deltas.json counters advanced since recorder enable
///   provenance.json     the active RunReport provenance
///   events.jsonl        the structured event log (snapshot, not drain)
///
/// Every file except trace.json (whose timestamps are wall-clock) is
/// byte-deterministic for identical recorded state. Directory name:
/// bundle-<NNN>-<reason> with a process-global NNN.
Status DumpDiagnosticBundle(const std::string& directory,
                            const FairnessMonitor* monitor,
                            const std::string& reason,
                            std::string* bundle_dir = nullptr);

/// Bundle-dump policy for InstallBundleDumpOnAlarm.
struct BundleOptions {
  std::string directory = "bundles";
  /// Stop dumping after this many bundles (an alarm storm must not fill
  /// the disk); 0 means unlimited.
  size_t max_bundles = 4;
};

/// Installs an alarm hook on `monitor` that dumps a diagnostic bundle
/// for each drift alarm (reason "<metric>-<detector>"), honoring
/// `options.max_bundles`. Returns the hook id from AddAlarmHook.
size_t InstallBundleDumpOnAlarm(FairnessMonitor& monitor,
                                BundleOptions options = {});

namespace detail {
/// Called by Span::~Span when RecorderEnabled(): appends to the calling
/// thread's flight ring.
void RecordFlightSpan(const SpanRecord& rec);
}  // namespace detail

}  // namespace xfair::obs

#endif  // XFAIR_OBS_RECORDER_H_
