#include "src/obs/run_report.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

#include "src/obs/eventlog.h"
#include "src/obs/monitor.h"
#include "src/obs/recorder.h"

namespace xfair::obs {
namespace {

uint64_t Fnv1a(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const size_t n = data.size(), d = data.num_features();
  h = Fnv1a(h, &n, sizeof(n));
  h = Fnv1a(h, &d, sizeof(d));
  for (size_t r = 0; r < n; ++r) {
    h = Fnv1a(h, data.x().RowPtr(r), d * sizeof(double));
  }
  if (!data.labels().empty()) {
    h = Fnv1a(h, data.labels().data(), n * sizeof(int));
  }
  if (!data.groups().empty()) {
    h = Fnv1a(h, data.groups().data(), n * sizeof(int));
  }
  return h;
}

RunReport RunWithReport(const ApproachDescriptor& descriptor,
                        const RunContext& ctx) {
  RunReport report;
  report.method = descriptor.name;
  report.citation = descriptor.citation;
  report.seed = ctx.seed;
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      DatasetFingerprint(ctx.credit)));
    report.dataset_fingerprint = buf;
  }
  report.config = std::string(ToString(descriptor.stage)) + "/" +
                  ToString(descriptor.access) + "/" +
                  ToString(descriptor.agnostic) + "/" +
                  ToString(descriptor.coverage) + "/" +
                  ToString(descriptor.level) + "/" +
                  ToString(descriptor.task) + "/" +
                  descriptor.explanation_type + "/" +
                  descriptor.goals.ToString();

  // Publish this run as the active provenance, so a diagnostic bundle
  // dumped during (or after) the run can prove which method, seed, and
  // dataset produced the decisions under audit. Stays installed after
  // the run: "most recent run" is exactly what an alarm wants to see.
  SetActiveProvenance("{\n  \"citation\": \"" + JsonEscape(report.citation) +
                      "\",\n  \"config\": \"" + JsonEscape(report.config) +
                      "\",\n  \"dataset_fingerprint\": \"" +
                      report.dataset_fingerprint + "\",\n  \"method\": \"" +
                      JsonEscape(report.method) + "\",\n  \"seed\": " +
                      std::to_string(report.seed) + "\n}");
  EmitEvent(Severity::kInfo, "run_report", "run_start",
            {{"citation", report.citation},
             {"method", report.method},
             {"seed", std::to_string(report.seed)}});

  const std::map<std::string, uint64_t> before = [] {
    std::map<std::string, uint64_t> m;
    for (const CounterSnapshot& c : SnapshotCounters()) m[c.name] = c.value;
    return m;
  }();
  const bool was_tracing = TracingEnabled();
  FlushSpans();  // Discard anything recorded before this run.
  SetTracingEnabled(true);

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  report.summary = descriptor.runner(ctx);
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  SetTracingEnabled(was_tracing);
  report.stages = AggregateStages(FlushSpans());
  for (const CounterSnapshot& c : SnapshotCounters()) {
    const auto it = before.find(c.name);
    const uint64_t prev = it == before.end() ? 0 : it->second;
    if (c.value > prev) {
      report.counter_deltas.push_back({c.name, c.value - prev});
    }
  }

#ifndef XFAIR_OBS_DISABLED
  // Fairness telemetry: replay the credit fixture through the model's
  // batched path with a stream context attached, so the monitor hook in
  // PredictProbaBatch joins scores with groups and labels. A local
  // monitor sized to the fixture makes the windowed gaps equal the
  // whole-fixture group metrics; deterministic for a given fixture.
  {
    MonitorOptions mopts;
    mopts.window = ctx.credit.size() == 0 ? 1 : ctx.credit.size();
    FairnessMonitor monitor("run_report/credit_fixture", mopts);
    const bool was_monitoring = MonitoringEnabled();
    SetMonitoringEnabled(true);
    {
      ScopedStreamContext stream(&monitor, ctx.credit.groups().data(),
                                 ctx.credit.labels().data(),
                                 ctx.credit.size());
      (void)ctx.credit_model.PredictProbaBatch(ctx.credit.x());
    }
    SetMonitoringEnabled(was_monitoring);
    monitor.Drain();
    report.fairness_telemetry = monitor.SnapshotJson();
  }
#endif
  EmitEvent(Severity::kInfo, "run_report", "run_end",
            {{"method", report.method}, {"summary", report.summary}});
  return report;
}

std::string RunReport::ToJson() const {
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
  std::string out = "{\n";
  out += "  \"method\": \"" + JsonEscape(method) + "\",\n";
  out += "  \"citation\": \"" + JsonEscape(citation) + "\",\n";
  out += "  \"config\": \"" + JsonEscape(config) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"dataset_fingerprint\": \"" + dataset_fingerprint + "\",\n";
  out += "  \"summary\": \"" + JsonEscape(summary) + "\",\n";
  out += std::string("  \"wall_ms\": ") + wall + ",\n";
  // Indent the monitor snapshot one level to nest cleanly.
  std::string telemetry;
  telemetry.reserve(fairness_telemetry.size());
  for (char c : fairness_telemetry) {
    telemetry += c;
    if (c == '\n') telemetry += "  ";
  }
  out += "  \"fairness_telemetry\": " + telemetry + ",\n";
  out += "  \"stages\": " + StagesToJson(stages) + ",\n";
  out += "  \"counter_deltas\": {";
  for (size_t i = 0; i < counter_deltas.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counter_deltas[i].name) +
           "\": " + std::to_string(counter_deltas[i].value);
  }
  out += "\n  }\n}";
  return out;
}

}  // namespace xfair::obs
