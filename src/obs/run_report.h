// RunReport: an auditable record of one explainer/mitigator invocation.
//
// Benchmark suites for fairness explainers (ExplainBench, FairX) treat
// per-method provenance as a first-class output: which method ran, with
// what configuration and seed, on which data, what it measured, and what
// it cost. RunWithReport wraps a registry runner (core/registry) in a
// traced, counter-delta-measured execution and returns exactly that
// record; bench_table1 uses it to regenerate the Table-I artifact with
// measured provenance attached to every row.

#ifndef XFAIR_OBS_RUN_REPORT_H_
#define XFAIR_OBS_RUN_REPORT_H_

#include <string>
#include <vector>

#include "src/core/registry.h"
#include "src/obs/export.h"

namespace xfair::obs {

/// Audit record of one approach invocation on the shared fixtures.
struct RunReport {
  std::string method;    ///< Descriptor name, e.g. "GOPHER patterns".
  std::string citation;  ///< Table I row key, e.g. "[63]".
  std::string config;    ///< Taxonomy classification, rendered compactly.
  uint64_t seed = 0;     ///< RunContext seed the fixtures derive from.
  /// FNV-1a fingerprint (hex) of the credit fixture the runner saw:
  /// features, labels, and groups. Two runs with equal fingerprints and
  /// seeds executed the same workload.
  std::string dataset_fingerprint;
  std::string summary;  ///< The runner's measured one-line result.
  double wall_ms = 0.0;
  std::vector<StageStat> stages;  ///< Span aggregate during the run.
  /// Counters that advanced during the run (name, increment), sorted.
  std::vector<CounterSnapshot> counter_deltas;
  /// Fairness-telemetry JSON from streaming the credit fixture's
  /// predictions through a FairnessMonitor after the run (per-group
  /// aggregates, windowed gaps over a fixture-sized window, alarms).
  /// "{}" when monitoring is compiled out (XFAIR_OBS=OFF).
  std::string fairness_telemetry = "{}";

  /// Renders the record as a self-contained JSON object.
  std::string ToJson() const;
};

/// 64-bit FNV-1a over the dataset's feature bytes, labels, and groups.
uint64_t DatasetFingerprint(const Dataset& data);

/// Executes `descriptor.runner(ctx)` with tracing force-enabled and
/// counter deltas captured, and returns the populated audit record.
/// Restores the previous tracing state; flushes only spans recorded
/// during the run (any pending spans are flushed and discarded first).
RunReport RunWithReport(const ApproachDescriptor& descriptor,
                        const RunContext& ctx);

}  // namespace xfair::obs

#endif  // XFAIR_OBS_RUN_REPORT_H_
