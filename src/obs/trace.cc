#include "src/obs/trace.h"

#include "src/obs/recorder.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace xfair::obs {
namespace {

/// Steady-clock ns relative to a process-lifetime epoch (first use).
uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// Per-thread span storage. Only the owning thread writes records and
/// bumps `size`; the flusher reads under `block_mutex` + an acquire load
/// of `size`, so completed entries are safely visible once recording on
/// other threads has quiesced (see trace.h contract).
struct ThreadBuffer {
  static constexpr size_t kBlockSize = 4096;
  using Block = std::array<SpanRecord, kBlockSize>;

  uint32_t ordinal = 0;
  std::atomic<size_t> size{0};
  std::mutex block_mutex;  ///< Guards the block list structure only.
  std::vector<std::unique_ptr<Block>> blocks;

  // Owner-thread-only state.
  uint64_t next_id = 1;
  std::vector<uint64_t> open_stack;  ///< Ids of currently open spans.

  void Append(const SpanRecord& rec) {
    const size_t idx = size.load(std::memory_order_relaxed);
    if (idx / kBlockSize >= blocks.size()) {
      std::lock_guard<std::mutex> guard(block_mutex);
      blocks.emplace_back(new Block());
    }
    (*blocks[idx / kBlockSize])[idx % kBlockSize] = rec;
    size.store(idx + 1, std::memory_order_release);
  }
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& GlobalRegistry() {
  static BufferRegistry* r = new BufferRegistry();
  return *r;
}

/// This thread's buffer, registered on first use. The shared_ptr in the
/// registry keeps the buffer alive after the thread exits (pool workers
/// are joined and recreated on resize), so un-flushed spans survive.
ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    b->ordinal = static_cast<uint32_t>(reg.buffers.size());
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("XFAIR_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

}  // namespace

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTracingEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<SpanRecord> FlushSpans() {
  // Copy the registered buffer list, then drain each. New threads that
  // register mid-flush are picked up by the next flush.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferRegistry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> guard(buf->block_mutex);
    const size_t n = buf->size.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(
          (*buf->blocks[i / ThreadBuffer::kBlockSize])[i %
                                                       ThreadBuffer::kBlockSize]);
    }
    buf->size.store(0, std::memory_order_release);
  }
  // Buffers were visited in registration (ordinal) order and each drains
  // in append order; records close in LIFO order per thread, so sort into
  // the documented (thread ordinal, id) order for a stable, open-order
  // view.
  std::sort(out.begin(), out.end(), [](const SpanRecord& a,
                                       const SpanRecord& b) {
    return a.thread_ordinal != b.thread_ordinal
               ? a.thread_ordinal < b.thread_ordinal
               : a.id < b.id;
  });
  return out;
}

Span::Span(const char* name) : name_(name) {
  const bool trace = TracingEnabled();
  const bool flight = RecorderEnabled();
  if (!trace && !flight) return;
  ThreadBuffer& buf = LocalBuffer();
  active_ = trace;
  to_flight_ = flight;
  id_ = buf.next_id++;
  parent_id_ = buf.open_stack.empty() ? 0 : buf.open_stack.back();
  depth_ = static_cast<uint32_t>(buf.open_stack.size());
  buf.open_stack.push_back(id_);
  start_ns_ = NowNs();
}

Span::~Span() {
  if (!active_ && !to_flight_) return;
  const uint64_t end = NowNs();
  ThreadBuffer& buf = LocalBuffer();
  // Defensive: the stack top must be this span (RAII guarantees LIFO).
  if (!buf.open_stack.empty() && buf.open_stack.back() == id_) {
    buf.open_stack.pop_back();
  }
  const SpanRecord rec{name_,  start_ns_, end,       buf.ordinal,
                       depth_, id_,       parent_id_};
  if (active_) buf.Append(rec);
  if (to_flight_) detail::RecordFlightSpan(rec);
}

}  // namespace xfair::obs
