// Tracer: nestable RAII spans with per-thread lock-free buffers.
//
// A Span records its name (a string literal), wall-clock interval on the
// steady clock, owning thread, and parent span. The recording path is
// designed for instrumented hot loops:
//
//   * When tracing is disabled (the default), constructing a Span is one
//     relaxed atomic load and a branch.
//   * When enabled, records append to a per-thread chunked buffer. The
//     owning thread appends without taking a lock (block addresses are
//     stable; the entry count is published with a release store); a tiny
//     mutex is taken only when a 4096-entry block fills up.
//
// FlushSpans drains every thread's buffer and merges the records in a
// deterministic order — (thread ordinal, span id), i.e. per-thread
// program order with threads in registration order — so two flushes of
// identical buffer contents produce identical output. Flushing must not
// run concurrently with span recording on other threads; call it between
// parallel regions (the pool's join handshake makes worker records
// visible to the caller).
//
// Parent linkage is per-thread: a span's parent is the innermost open
// span on the same thread (0 = root). Spans that cross into pool workers
// appear as new roots on the worker's thread, as in any sampling-free
// tracer; the Chrome-trace exporter reconstructs nesting per thread from
// the timestamps.

#ifndef XFAIR_OBS_TRACE_H_
#define XFAIR_OBS_TRACE_H_

#include <cstdint>
#include <vector>

namespace xfair::obs {

/// One completed span, as drained by FlushSpans.
struct SpanRecord {
  const char* name = nullptr;  ///< The literal passed to XFAIR_SPAN.
  uint64_t start_ns = 0;       ///< Steady-clock ns since process start.
  uint64_t end_ns = 0;
  uint32_t thread_ordinal = 0;  ///< Buffer registration index, 0-based.
  uint32_t depth = 0;           ///< Nesting depth on its thread (0 = root).
  uint64_t id = 0;              ///< Unique per thread, ascending open order.
  uint64_t parent_id = 0;       ///< Enclosing span on the same thread; 0 = none.
};

/// True when spans are being recorded (one relaxed load).
bool TracingEnabled();

/// Enables/disables recording. Off by default unless the XFAIR_TRACE
/// environment variable is set to a nonzero value at first use.
void SetTracingEnabled(bool enabled);

/// Drains all per-thread buffers into one deterministically ordered list
/// (thread ordinal, then span id). Must not race with active recording;
/// call between parallel regions. Open spans are not included — they are
/// recorded when they close, into whatever buffer state then exists.
std::vector<SpanRecord> FlushSpans();

/// RAII span. Use via XFAIR_SPAN from obs.h; `name` must be a string
/// literal (the pointer is stored, not the characters). A closing span
/// is delivered to whichever sinks are live: the tracer's flush buffers
/// (TracingEnabled) and/or the flight recorder's trailing rings
/// (RecorderEnabled, see recorder.h) — one record, two destinations, so
/// the recorder sees exactly what a trace would.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;     ///< Record into the tracer's flush buffers.
  bool to_flight_ = false;  ///< Record into the flight recorder's rings.
};

}  // namespace xfair::obs

#endif  // XFAIR_OBS_TRACE_H_
