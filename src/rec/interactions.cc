#include "src/rec/interactions.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/matrix.h"

namespace xfair {

void Interactions::Add(size_t user, size_t item) {
  XFAIR_CHECK(user < num_users_ && item < num_items_);
  if (Has(user, item)) return;
  by_user_[user].push_back(item);
  by_item_[item].push_back(user);
  pairs_.emplace_back(user, item);
}

void Interactions::Remove(size_t user, size_t item) {
  XFAIR_CHECK(user < num_users_ && item < num_items_);
  auto erase_from = [](std::vector<size_t>* list, size_t x) {
    auto it = std::find(list->begin(), list->end(), x);
    if (it != list->end()) list->erase(it);
  };
  erase_from(&by_user_[user], item);
  erase_from(&by_item_[item], user);
  auto it = std::find(pairs_.begin(), pairs_.end(),
                      std::make_pair(user, item));
  if (it != pairs_.end()) pairs_.erase(it);
}

bool Interactions::Has(size_t user, size_t item) const {
  XFAIR_CHECK(user < num_users_ && item < num_items_);
  const auto& items = by_user_[user];
  return std::find(items.begin(), items.end(), item) != items.end();
}

const std::vector<size_t>& Interactions::ItemsOf(size_t user) const {
  XFAIR_CHECK(user < num_users_);
  return by_user_[user];
}

const std::vector<size_t>& Interactions::UsersOf(size_t item) const {
  XFAIR_CHECK(item < num_items_);
  return by_item_[item];
}

RecWorld GenerateRecWorld(const RecGenConfig& config, uint64_t seed) {
  XFAIR_CHECK(config.num_users > 0 && config.num_items > 1);
  Rng rng(seed);
  RecWorld world;
  world.interactions = Interactions(config.num_users, config.num_items);
  world.item_groups.resize(config.num_items);
  world.user_groups.resize(config.num_users);

  // Zipf-like base popularity, damped for protected items.
  Vector popularity(config.num_items);
  for (size_t i = 0; i < config.num_items; ++i) {
    world.item_groups[i] =
        rng.Bernoulli(config.protected_item_fraction) ? 1 : 0;
    const double zipf = 1.0 / std::pow(static_cast<double>(i) + 1.0, 0.8);
    popularity[i] =
        zipf * (world.item_groups[i] == 1 ? config.protected_item_popularity
                                          : 1.0);
  }

  for (size_t u = 0; u < config.num_users; ++u) {
    world.user_groups[u] =
        rng.Bernoulli(config.protected_user_fraction) ? 1 : 0;
    size_t budget = config.interactions_per_user;
    if (world.user_groups[u] == 1) {
      budget = std::max<size_t>(
          1, static_cast<size_t>(config.protected_user_activity *
                                 static_cast<double>(budget)));
    }
    for (size_t k = 0; k < budget; ++k) {
      const size_t item = rng.Categorical(popularity);
      world.interactions.Add(u, item);
    }
  }
  return world;
}

}  // namespace xfair
