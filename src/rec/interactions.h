// Bipartite user-item interaction substrate for the recommendation
// fairness methods of paper §IV-C, with a popularity-biased synthetic
// generator (popular items of one group dominate the head of the
// distribution — the exposure bias the methods must explain).

#ifndef XFAIR_REC_INTERACTIONS_H_
#define XFAIR_REC_INTERACTIONS_H_

#include <utility>
#include <vector>

#include "src/util/rng.h"

namespace xfair {

/// Implicit-feedback interactions between users and items.
class Interactions {
 public:
  Interactions(size_t num_users, size_t num_items)
      : num_users_(num_users),
        num_items_(num_items),
        by_user_(num_users),
        by_item_(num_items) {}

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  size_t num_interactions() const { return pairs_.size(); }

  /// Records a user-item interaction (idempotent).
  void Add(size_t user, size_t item);
  /// Removes an interaction if present.
  void Remove(size_t user, size_t item);
  bool Has(size_t user, size_t item) const;

  const std::vector<size_t>& ItemsOf(size_t user) const;
  const std::vector<size_t>& UsersOf(size_t item) const;
  const std::vector<std::pair<size_t, size_t>>& pairs() const {
    return pairs_;
  }

 private:
  size_t num_users_, num_items_;
  std::vector<std::vector<size_t>> by_user_;
  std::vector<std::vector<size_t>> by_item_;
  std::vector<std::pair<size_t, size_t>> pairs_;
};

/// Knobs for the biased interaction generator.
struct RecGenConfig {
  size_t num_users = 60;
  size_t num_items = 40;
  /// Fraction of items in the protected group (e.g. niche producers).
  double protected_item_fraction = 0.4;
  /// Fraction of users in the protected group (consumer side).
  double protected_user_fraction = 0.5;
  /// Interactions per user.
  size_t interactions_per_user = 8;
  /// Popularity skew: protected items' base attractiveness multiplier in
  /// (0, 1]; 1 = no item-side bias.
  double protected_item_popularity = 0.4;
  /// Activity skew: protected users' interaction-count multiplier.
  double protected_user_activity = 0.6;
};

/// A generated world: interactions plus group labels on both sides.
struct RecWorld {
  Interactions interactions{0, 0};
  std::vector<int> item_groups;
  std::vector<int> user_groups;
};

/// Samples a popularity/activity-biased interaction dataset.
RecWorld GenerateRecWorld(const RecGenConfig& config, uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_REC_INTERACTIONS_H_
