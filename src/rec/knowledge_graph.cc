#include "src/rec/knowledge_graph.h"

#include <algorithm>
#include <map>

#include "src/util/check.h"

namespace xfair {

size_t KnowledgeGraph::AddEntity(EntityType type, const std::string& name) {
  types_.push_back(type);
  names_.push_back(name);
  adjacency_.emplace_back();
  return types_.size() - 1;
}

size_t KnowledgeGraph::RelationId(const std::string& name) {
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relations_[r] == name) return r;
  }
  relations_.push_back(name);
  return relations_.size() - 1;
}

void KnowledgeGraph::AddTriple(size_t subject, const std::string& relation,
                               size_t object) {
  XFAIR_CHECK(subject < num_entities() && object < num_entities());
  const size_t rel = RelationId(relation);
  adjacency_[subject].push_back({object, rel});
  adjacency_[object].push_back({subject, rel});  // Traversable inverse.
}

EntityType KnowledgeGraph::type(size_t entity) const {
  XFAIR_CHECK(entity < num_entities());
  return types_[entity];
}

const std::string& KnowledgeGraph::name(size_t entity) const {
  XFAIR_CHECK(entity < num_entities());
  return names_[entity];
}

std::vector<KnowledgeGraph::Path> KnowledgeGraph::FindItemPaths(
    size_t user, size_t max_hops) const {
  XFAIR_CHECK(user < num_entities());
  XFAIR_CHECK(type(user) == EntityType::kUser);
  XFAIR_CHECK(max_hops >= 1);

  // Items directly linked to the user (already consumed): excluded.
  std::vector<bool> consumed(num_entities(), false);
  for (const KgEdge& e : adjacency_[user]) {
    if (type(e.target) == EntityType::kItem) consumed[e.target] = true;
  }

  // DFS over simple paths; keep the highest-relevance path per item.
  std::map<size_t, Path> best;
  Path current;
  current.entities = {user};
  current.relevance = 1.0;
  std::vector<bool> on_path(num_entities(), false);
  on_path[user] = true;

  struct Frame {
    size_t entity;
    size_t next_edge;
    double relevance_in;
  };
  std::vector<Frame> stack = {{user, 0, 1.0}};
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& edges = adjacency_[top.entity];
    if (top.next_edge >= edges.size()) {
      on_path[top.entity] = false;
      stack.pop_back();
      current.entities.pop_back();
      if (!current.relations.empty()) current.relations.pop_back();
      continue;
    }
    const KgEdge& e = edges[top.next_edge++];
    if (on_path[e.target]) continue;
    const double relevance =
        top.relevance_in / static_cast<double>(edges.size());
    current.entities.push_back(e.target);
    current.relations.push_back(e.relation);
    if (type(e.target) == EntityType::kItem && !consumed[e.target] &&
        current.relations.size() >= 2) {
      // A recommendation path (via at least one intermediate entity).
      Path found = current;
      found.relevance = relevance;
      // Stable path-type id from the relation sequence.
      size_t h = 1469598103u;
      for (size_t r : found.relations) h = h * 1099511628211ULL + r + 1;
      found.type_id = static_cast<int>(h % 1000003);
      auto it = best.find(e.target);
      if (it == best.end() || relevance > it->second.relevance) {
        best[e.target] = std::move(found);
      }
    }
    if (current.relations.size() < max_hops) {
      // Expansion continues through any entity type: attribute-mediated
      // content paths and user-mediated collaborative paths both count
      // as explanations.
      on_path[e.target] = true;
      stack.push_back({e.target, 0, relevance});
    } else {
      current.entities.pop_back();
      current.relations.pop_back();
    }
  }

  std::vector<Path> out;
  out.reserve(best.size());
  for (auto& [item, path] : best) out.push_back(std::move(path));
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    return a.relevance > b.relevance;
  });
  return out;
}

std::vector<ExplainedCandidate> KnowledgeGraph::ToCandidates(
    const std::vector<Path>& paths,
    const std::vector<int>& item_groups) const {
  std::vector<ExplainedCandidate> out;
  out.reserve(paths.size());
  for (const Path& p : paths) {
    XFAIR_CHECK(!p.entities.empty());
    const size_t item = p.entities.back();
    XFAIR_CHECK(item < item_groups.size());
    ExplainedCandidate c;
    c.item = item;
    c.relevance = p.relevance;
    c.item_group = item_groups[item];
    c.path_type = p.type_id;
    out.push_back(c);
  }
  return out;
}

KgWorld BuildKgFromRecWorld(const RecWorld& world, size_t num_attributes,
                            uint64_t seed) {
  XFAIR_CHECK(num_attributes >= 1);
  Rng rng(seed);
  KgWorld out;
  const Interactions& ia = world.interactions;
  out.user_entities.reserve(ia.num_users());
  for (size_t u = 0; u < ia.num_users(); ++u) {
    out.user_entities.push_back(
        out.kg.AddEntity(EntityType::kUser, "u" + std::to_string(u)));
  }
  out.item_entities.reserve(ia.num_items());
  for (size_t i = 0; i < ia.num_items(); ++i) {
    out.item_entities.push_back(
        out.kg.AddEntity(EntityType::kItem, "i" + std::to_string(i)));
  }
  std::vector<size_t> attribute_entities;
  for (size_t a = 0; a < num_attributes; ++a) {
    attribute_entities.push_back(
        out.kg.AddEntity(EntityType::kAttribute, "a" + std::to_string(a)));
  }
  for (const auto& [u, i] : ia.pairs()) {
    out.kg.AddTriple(out.user_entities[u], "interacted",
                     out.item_entities[i]);
  }
  for (size_t i = 0; i < ia.num_items(); ++i) {
    const size_t first = rng.Below(num_attributes);
    out.kg.AddTriple(out.item_entities[i], "has_attribute",
                     attribute_entities[first]);
    if (num_attributes > 1 && rng.Bernoulli(0.5)) {
      size_t second = rng.Below(num_attributes - 1);
      if (second >= first) ++second;
      out.kg.AddTriple(out.item_entities[i], "has_attribute",
                       attribute_entities[second]);
    }
  }
  out.entity_item_groups.assign(out.kg.num_entities(), 0);
  for (size_t i = 0; i < ia.num_items(); ++i) {
    out.entity_item_groups[out.item_entities[i]] = world.item_groups[i];
  }
  return out;
}

}  // namespace xfair
