// Minimal knowledge-graph substrate for explainable recommendation
// (paper §III "paths leading to answers serve as explanations" and §IV-C
// [44]): typed entities, typed relations, and bounded-length path search
// from a user to candidate items. Each found path doubles as the
// recommendation's explanation; its relation sequence is the "path type"
// the fairness-aware reranker diversifies over.

#ifndef XFAIR_REC_KNOWLEDGE_GRAPH_H_
#define XFAIR_REC_KNOWLEDGE_GRAPH_H_

#include <string>
#include <vector>

#include "src/beyond/kg_rerank.h"
#include "src/rec/interactions.h"
#include "src/util/status.h"

namespace xfair {

/// Entity categories in the recommendation KG.
enum class EntityType { kUser, kItem, kAttribute };

/// A typed, directed edge (relations are stored both ways for traversal;
/// `relation` is an id into relation_names()).
struct KgEdge {
  size_t target;
  size_t relation;
};

/// Knowledge graph over users, items, and attribute entities.
class KnowledgeGraph {
 public:
  /// Adds an entity; returns its id.
  size_t AddEntity(EntityType type, const std::string& name);
  /// Registers (or finds) a relation name; returns its id.
  size_t RelationId(const std::string& name);
  /// Adds a directed edge and its implicit inverse for traversal.
  void AddTriple(size_t subject, const std::string& relation,
                 size_t object);

  size_t num_entities() const { return types_.size(); }
  EntityType type(size_t entity) const;
  const std::string& name(size_t entity) const;
  const std::vector<std::string>& relation_names() const {
    return relations_;
  }

  /// A path from a user to an item with its relation sequence.
  struct Path {
    std::vector<size_t> entities;   ///< user, ..., item.
    std::vector<size_t> relations;  ///< One per hop.
    /// Path-type id: hash of the relation sequence, stable across calls.
    int type_id = 0;
    /// Relevance: product of 1/degree along the path (path-constrained
    /// random-walk probability), so short paths through specific
    /// entities score higher.
    double relevance = 0.0;
  };

  /// Enumerates simple paths of length <= max_hops from `user` to any
  /// item entity the user is not directly connected to, keeping the best
  /// path per item.
  std::vector<Path> FindItemPaths(size_t user, size_t max_hops) const;

  /// Converts found paths to the reranker's candidate format, attaching
  /// each item's group from `item_groups` (indexed by entity id).
  std::vector<ExplainedCandidate> ToCandidates(
      const std::vector<Path>& paths,
      const std::vector<int>& item_groups) const;

 private:
  std::vector<EntityType> types_;
  std::vector<std::string> names_;
  std::vector<std::string> relations_;
  std::vector<std::vector<KgEdge>> adjacency_;
};

/// A KG materialized from a RecWorld: interaction triples plus randomly
/// assigned item attributes (the side information KG-based recommenders
/// exploit).
struct KgWorld {
  KnowledgeGraph kg;
  std::vector<size_t> user_entities;  ///< Entity id per RecWorld user.
  std::vector<size_t> item_entities;  ///< Entity id per RecWorld item.
  /// Item group per *entity id* (0 for non-item entities), ready for
  /// KnowledgeGraph::ToCandidates.
  std::vector<int> entity_item_groups;
};

/// Builds the KG: one "interacted" triple per interaction and
/// "has_attribute" triples linking each item to 1-2 of `num_attributes`
/// attribute entities (deterministic in `seed`).
KgWorld BuildKgFromRecWorld(const RecWorld& world, size_t num_attributes,
                            uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_REC_KNOWLEDGE_GRAPH_H_
