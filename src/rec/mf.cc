#include "src/rec/mf.h"

#include <algorithm>
#include <cmath>

#include "src/util/kernels.h"

namespace xfair {

Status MatrixFactorization::Fit(const Interactions& interactions,
                                const MfOptions& options) {
  if (interactions.num_interactions() == 0) {
    return Status::InvalidArgument("no interactions to fit");
  }
  if (options.rank == 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  rank_ = options.rank;
  Rng rng(options.seed);
  const size_t nu = interactions.num_users();
  const size_t ni = interactions.num_items();
  users_ = Matrix(nu, rank_);
  items_ = Matrix(ni, rank_);
  for (size_t u = 0; u < nu; ++u)
    for (size_t f = 0; f < rank_; ++f)
      users_.At(u, f) = rng.Normal(0.0, 0.1);
  for (size_t i = 0; i < ni; ++i)
    for (size_t f = 0; f < rank_; ++f)
      items_.At(i, f) = rng.Normal(0.0, 0.1);

  // Each SGD step is two dense kernels on the contiguous factor rows:
  // a pinned-order dot for the score and a fused paired update.
  auto update = [&](size_t u, size_t i, double label) {
    double* pu = users_.RowPtr(u);
    double* qi = items_.RowPtr(i);
    const double z = kernels::Dot(pu, qi, rank_);
    const double err = kernels::Sigmoid(z) - label;
    kernels::SgdPairUpdate(pu, qi, options.learning_rate, err, options.l2,
                           rank_);
  };

  std::vector<std::pair<size_t, size_t>> positives = interactions.pairs();
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&positives);
    for (const auto& [u, i] : positives) {
      update(u, i, 1.0);
      for (size_t neg = 0; neg < options.negatives_per_positive; ++neg) {
        const size_t j = rng.Below(ni);
        if (!interactions.Has(u, j)) update(u, j, 0.0);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double MatrixFactorization::Score(size_t user, size_t item) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(user < users_.rows() && item < items_.rows());
  return kernels::Dot(users_.RowPtr(user), items_.RowPtr(item), rank_);
}

double MatrixFactorization::ScoreWithDampedFactor(size_t user, size_t item,
                                                  size_t f,
                                                  double scale) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(f < rank_);
  double z = 0.0;
  for (size_t k = 0; k < rank_; ++k) {
    const double damp = k == f ? scale : 1.0;
    z += users_.At(user, k) * items_.At(item, k) * damp;
  }
  return z;
}

std::vector<size_t> MatrixFactorization::RankItems(
    const Interactions& interactions, size_t user, size_t k) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  std::vector<size_t> order;
  for (size_t i = 0; i < items_.rows(); ++i)
    if (!interactions.Has(user, i)) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double sa = Score(user, a), sb = Score(user, b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace xfair
