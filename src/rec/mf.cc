#include "src/rec/mf.h"

#include <algorithm>
#include <cmath>

namespace xfair {
namespace {

double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status MatrixFactorization::Fit(const Interactions& interactions,
                                const MfOptions& options) {
  if (interactions.num_interactions() == 0) {
    return Status::InvalidArgument("no interactions to fit");
  }
  if (options.rank == 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  rank_ = options.rank;
  Rng rng(options.seed);
  const size_t nu = interactions.num_users();
  const size_t ni = interactions.num_items();
  users_ = Matrix(nu, rank_);
  items_ = Matrix(ni, rank_);
  for (size_t u = 0; u < nu; ++u)
    for (size_t f = 0; f < rank_; ++f)
      users_.At(u, f) = rng.Normal(0.0, 0.1);
  for (size_t i = 0; i < ni; ++i)
    for (size_t f = 0; f < rank_; ++f)
      items_.At(i, f) = rng.Normal(0.0, 0.1);

  auto update = [&](size_t u, size_t i, double label) {
    double z = 0.0;
    for (size_t f = 0; f < rank_; ++f)
      z += users_.At(u, f) * items_.At(i, f);
    const double err = Sigmoid(z) - label;
    for (size_t f = 0; f < rank_; ++f) {
      const double pu = users_.At(u, f), qi = items_.At(i, f);
      users_.At(u, f) -=
          options.learning_rate * (err * qi + options.l2 * pu);
      items_.At(i, f) -=
          options.learning_rate * (err * pu + options.l2 * qi);
    }
  };

  std::vector<std::pair<size_t, size_t>> positives = interactions.pairs();
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&positives);
    for (const auto& [u, i] : positives) {
      update(u, i, 1.0);
      for (size_t neg = 0; neg < options.negatives_per_positive; ++neg) {
        const size_t j = rng.Below(ni);
        if (!interactions.Has(u, j)) update(u, j, 0.0);
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double MatrixFactorization::Score(size_t user, size_t item) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(user < users_.rows() && item < items_.rows());
  double z = 0.0;
  for (size_t f = 0; f < rank_; ++f)
    z += users_.At(user, f) * items_.At(item, f);
  return z;
}

double MatrixFactorization::ScoreWithDampedFactor(size_t user, size_t item,
                                                  size_t f,
                                                  double scale) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  XFAIR_CHECK(f < rank_);
  double z = 0.0;
  for (size_t k = 0; k < rank_; ++k) {
    const double damp = k == f ? scale : 1.0;
    z += users_.At(user, k) * items_.At(item, k) * damp;
  }
  return z;
}

std::vector<size_t> MatrixFactorization::RankItems(
    const Interactions& interactions, size_t user, size_t k) const {
  XFAIR_CHECK_MSG(fitted_, "model not fitted");
  std::vector<size_t> order;
  for (size_t i = 0; i < items_.rows(); ++i)
    if (!interactions.Has(user, i)) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double sa = Score(user, a), sb = Score(user, b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace xfair
