// Implicit-feedback matrix factorization (SGD with sampled negatives) —
// the embedding-based recommender substrate used by the CEF-style
// attribute explanations [87], which need a factorized score to perturb.

#ifndef XFAIR_REC_MF_H_
#define XFAIR_REC_MF_H_

#include "src/rec/interactions.h"
#include "src/util/matrix.h"
#include "src/util/status.h"

namespace xfair {

/// Options for MatrixFactorization::Fit.
struct MfOptions {
  size_t rank = 8;
  size_t epochs = 30;
  double learning_rate = 0.05;
  double l2 = 0.01;
  size_t negatives_per_positive = 3;
  uint64_t seed = 5;
};

/// Logistic matrix factorization: P(interaction) = sigmoid(p_u . q_i).
class MatrixFactorization {
 public:
  Status Fit(const Interactions& interactions, const MfOptions& options);

  bool fitted() const { return fitted_; }
  size_t rank() const { return rank_; }
  /// Raw affinity p_u . q_i.
  double Score(size_t user, size_t item) const;
  /// Score with latent factor `f` of the item embedding damped by
  /// `scale` in [0, 1] — the perturbation primitive CEF-style
  /// explanations sweep.
  double ScoreWithDampedFactor(size_t user, size_t item, size_t f,
                               double scale) const;
  /// Top-k ranking for a user, excluding consumed items.
  std::vector<size_t> RankItems(const Interactions& interactions,
                                size_t user, size_t k) const;

  const Matrix& user_factors() const { return users_; }
  const Matrix& item_factors() const { return items_; }

 private:
  bool fitted_ = false;
  size_t rank_ = 0;
  Matrix users_, items_;
};

}  // namespace xfair

#endif  // XFAIR_REC_MF_H_
