#include "src/rec/recwalk.h"

#include <algorithm>

#include "src/fairness/ranking_metrics.h"
#include "src/util/check.h"

namespace xfair {

RecWalkScorer::RecWalkScorer(const Interactions* interactions,
                             RecWalkOptions options)
    : interactions_(interactions), options_(options) {
  XFAIR_CHECK(interactions != nullptr);
  XFAIR_CHECK(options_.restart_probability > 0.0 &&
              options_.restart_probability < 1.0);
}

Vector RecWalkScorer::ScoreItems(size_t user) const {
  const Interactions& ia = *interactions_;
  XFAIR_CHECK(user < ia.num_users());
  const size_t nu = ia.num_users(), ni = ia.num_items();
  // State vector: users [0, nu), items [nu, nu + ni).
  Vector prob(nu + ni, 0.0), next(nu + ni);
  prob[user] = 1.0;
  const double alpha = options_.restart_probability;
  for (size_t iter = 0; iter < options_.power_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    next[user] += alpha;  // Restart mass.
    for (size_t u = 0; u < nu; ++u) {
      const double mass = prob[u];
      if (mass <= 0.0) continue;
      const auto& items = ia.ItemsOf(u);
      if (items.empty()) {
        next[user] += (1.0 - alpha) * mass;  // Dangling: back to restart.
        continue;
      }
      const double share =
          (1.0 - alpha) * mass / static_cast<double>(items.size());
      for (size_t i : items) next[nu + i] += share;
    }
    for (size_t i = 0; i < ni; ++i) {
      const double mass = prob[nu + i];
      if (mass <= 0.0) continue;
      const auto& users = ia.UsersOf(i);
      if (users.empty()) {
        next[user] += (1.0 - alpha) * mass;
        continue;
      }
      const double share =
          (1.0 - alpha) * mass / static_cast<double>(users.size());
      for (size_t u : users) next[u] += share;
    }
    prob.swap(next);
  }
  return Vector(prob.begin() + static_cast<long>(nu), prob.end());
}

std::vector<size_t> RecWalkScorer::RankItems(size_t user, size_t k) const {
  const Vector scores = ScoreItems(user);
  std::vector<size_t> order;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!interactions_->Has(user, i)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;  // Deterministic tie-break.
  });
  if (order.size() > k) order.resize(k);
  return order;
}

double RecExposureShare(const RecWalkScorer& scorer,
                        const Interactions& interactions,
                        const std::vector<int>& item_groups, size_t k) {
  double total = 0.0;
  size_t users = 0;
  for (size_t u = 0; u < interactions.num_users(); ++u) {
    const auto ranking = scorer.RankItems(u, k);
    if (ranking.empty()) continue;
    const Result<double> share = ExposureShare(ranking, item_groups);
    XFAIR_CHECK(share.ok());  // RankItems emits only valid item ids.
    total += *share;
    ++users;
  }
  return users == 0 ? 0.0 : total / static_cast<double>(users);
}

}  // namespace xfair
