// RecWalk-style random-walk recommender [85] (paper §IV-C): user-item
// scores are the stationary mass a restart-at-the-user random walk on the
// bipartite interaction graph places on items. The walk is the substrate
// the edge-removal bias explanations of [84] perturb.

#ifndef XFAIR_REC_RECWALK_H_
#define XFAIR_REC_RECWALK_H_

#include "src/rec/interactions.h"
#include "src/util/matrix.h"

namespace xfair {

/// Options for RecWalkScorer.
struct RecWalkOptions {
  double restart_probability = 0.15;
  size_t power_iterations = 30;
};

/// Personalized random walk with restart over the bipartite graph.
class RecWalkScorer {
 public:
  /// `interactions` must outlive the scorer.
  RecWalkScorer(const Interactions* interactions,
                RecWalkOptions options = {});

  /// Item scores for one user: the stationary item-visit distribution of
  /// the restart walk. Items the user already consumed keep their score
  /// (callers typically exclude them when ranking).
  Vector ScoreItems(size_t user) const;

  /// Top-k ranking for a user, excluding already-consumed items.
  std::vector<size_t> RankItems(size_t user, size_t k) const;

 private:
  const Interactions* interactions_;
  RecWalkOptions options_;
};

/// Exposure share of protected items across all users' top-k lists (mean
/// of per-user ExposureShare weighted by position bias).
double RecExposureShare(const RecWalkScorer& scorer,
                        const Interactions& interactions,
                        const std::vector<int>& item_groups, size_t k);

}  // namespace xfair

#endif  // XFAIR_REC_RECWALK_H_
