#include "src/unfair/actions.h"

#include <algorithm>
#include <cmath>

#include "src/util/table.h"

namespace xfair {
namespace {

double FeatureRange(const FeatureSpec& spec) {
  const double r = spec.upper - spec.lower;
  if (r <= 0.0 || r > 1e29) return 1.0;
  return r;
}

}  // namespace

Discretizer::Discretizer(const Dataset& data, size_t bins) {
  XFAIR_CHECK(bins >= 2);
  XFAIR_CHECK(data.size() > 0);
  const size_t d = data.num_features();
  edges_.resize(d);
  representatives_.resize(d);
  for (size_t f = 0; f < d; ++f) {
    Vector col = data.x().Col(f);
    std::sort(col.begin(), col.end());
    Vector distinct;
    for (double v : col)
      if (distinct.empty() || v != distinct.back()) distinct.push_back(v);
    const size_t k = std::min(bins, distinct.size());
    if (k <= 1) {
      representatives_[f] = {distinct.empty() ? 0.0 : distinct[0]};
      continue;
    }
    // Quantile edges between k bins; dedupe collapsed edges.
    Vector edges;
    for (size_t b = 1; b < k; ++b) {
      const double q = static_cast<double>(b) / static_cast<double>(k);
      const double e = col[static_cast<size_t>(
          q * static_cast<double>(col.size() - 1))];
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
    edges_[f] = edges;
    // Representative of each bin: median of members.
    const size_t nb = edges.size() + 1;
    representatives_[f].resize(nb);
    for (size_t b = 0; b < nb; ++b) {
      Vector members;
      for (double v : col) {
        if (BinOf(f, v) == b) members.push_back(v);
      }
      representatives_[f][b] =
          members.empty()
              ? (b < edges.size() ? edges[b] : col.back())
              : members[members.size() / 2];
    }
  }
}

size_t Discretizer::NumBins(size_t feature) const {
  XFAIR_CHECK(feature < representatives_.size());
  return representatives_[feature].size();
}

size_t Discretizer::BinOf(size_t feature, double value) const {
  XFAIR_CHECK(feature < edges_.size());
  const Vector& edges = edges_[feature];
  size_t bin = 0;
  while (bin < edges.size() && value > edges[bin]) ++bin;
  return bin;
}

double Discretizer::Representative(size_t feature, size_t bin) const {
  XFAIR_CHECK(feature < representatives_.size());
  XFAIR_CHECK(bin < representatives_[feature].size());
  return representatives_[feature][bin];
}

std::string Discretizer::BinLabel(const Schema& schema, size_t feature,
                                  size_t bin) const {
  const Vector& edges = edges_[feature];
  const std::string& name = schema.feature(feature).name;
  if (edges.empty()) return name + " = any";
  if (bin == 0) return name + " <= " + FormatDouble(edges[0], 2);
  if (bin == edges.size())
    return name + " > " + FormatDouble(edges.back(), 2);
  return name + " in (" + FormatDouble(edges[bin - 1], 2) + ", " +
         FormatDouble(edges[bin], 2) + "]";
}

bool Action::ApplicableTo(const Schema& schema, const Vector& x) const {
  XFAIR_CHECK(feature < x.size());
  return schema.MoveAllowed(feature, target_value - x[feature]);
}

Vector Action::ApplyTo(const Vector& x) const {
  Vector out = x;
  out[feature] = target_value;
  return out;
}

double Action::Cost(const Schema& schema, const Vector& x) const {
  return std::fabs(target_value - x[feature]) /
         FeatureRange(schema.feature(feature));
}

std::string Action::ToString(const Schema& schema) const {
  return schema.feature(feature).name + " := " +
         FormatDouble(target_value, 2);
}

bool CompositeAction::ApplicableTo(const Schema& schema,
                                   const Vector& x) const {
  for (const auto& a : actions)
    if (!a.ApplicableTo(schema, x)) return false;
  return true;
}

Vector CompositeAction::ApplyTo(const Vector& x) const {
  Vector out = x;
  for (const auto& a : actions) out[a.feature] = a.target_value;
  return out;
}

double CompositeAction::Cost(const Schema& schema, const Vector& x) const {
  double cost = 0.0;
  for (const auto& a : actions) cost += a.Cost(schema, x);
  return cost;
}

std::string CompositeAction::ToString(const Schema& schema) const {
  if (actions.empty()) return "(no-op)";
  std::string out;
  for (size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ", ";
    out += actions[i].ToString(schema);
  }
  return out;
}

std::vector<Action> EnumerateActions(const Schema& schema,
                                     const Discretizer& disc) {
  std::vector<Action> out;
  for (size_t f = 0; f < schema.num_features(); ++f) {
    if (schema.feature(f).actionability == Actionability::kImmutable)
      continue;
    for (size_t b = 0; b < disc.NumBins(f); ++b) {
      out.push_back({f, disc.Representative(f, b)});
    }
  }
  return out;
}

double ActionEffectiveness(const Model& model, const Dataset& data,
                           const std::vector<size_t>& instances,
                           const CompositeAction& action, int target_class) {
  if (instances.empty()) return 0.0;
  size_t flipped = 0;
  for (size_t i : instances) {
    const Vector x = data.instance(i);
    if (!action.ApplicableTo(data.schema(), x)) continue;
    if (model.Predict(action.ApplyTo(x)) == target_class) ++flipped;
  }
  return static_cast<double>(flipped) /
         static_cast<double>(instances.size());
}

double ActionMeanCost(const Dataset& data,
                      const std::vector<size_t>& instances,
                      const CompositeAction& action) {
  double total = 0.0;
  size_t applicable = 0;
  for (size_t i : instances) {
    const Vector x = data.instance(i);
    if (!action.ApplicableTo(data.schema(), x)) continue;
    total += action.Cost(data.schema(), x);
    ++applicable;
  }
  return applicable == 0 ? 0.0 : total / static_cast<double>(applicable);
}

}  // namespace xfair
