// Shared vocabulary for group-counterfactual methods (FACTS [77], CE trees
// [76], AReS [74]): quantile discretization of features, candidate "set
// feature to value" actions, and action effectiveness/cost over instance
// sets.

#ifndef XFAIR_UNFAIR_ACTIONS_H_
#define XFAIR_UNFAIR_ACTIONS_H_

#include <string>

#include "src/model/model.h"

namespace xfair {

/// Quantile-based per-feature binning learned from a dataset.
class Discretizer {
 public:
  /// Learns up to `bins` quantile bins per feature (fewer if the feature
  /// has few distinct values; binary/categorical features get one bin per
  /// value).
  Discretizer(const Dataset& data, size_t bins);

  size_t num_features() const { return representatives_.size(); }
  size_t NumBins(size_t feature) const;
  /// Bin index of a value.
  size_t BinOf(size_t feature, double value) const;
  /// Representative (median-ish) value of a bin.
  double Representative(size_t feature, size_t bin) const;
  /// Human-readable bin description, e.g. "income in [3.1, 5.2)".
  std::string BinLabel(const Schema& schema, size_t feature,
                       size_t bin) const;

 private:
  // edges_[f] = sorted inner edges; bin i is (edge[i-1], edge[i]].
  std::vector<Vector> edges_;
  std::vector<Vector> representatives_;
};

/// An atomic recourse action: set one feature to a target value.
struct Action {
  size_t feature;
  double target_value;

  /// Whether the action is feasible for instance x under the schema
  /// (direction and immutability).
  bool ApplicableTo(const Schema& schema, const Vector& x) const;
  /// x with the action applied (caller must have checked applicability).
  Vector ApplyTo(const Vector& x) const;
  /// Range-normalized magnitude of the change for x.
  double Cost(const Schema& schema, const Vector& x) const;
  std::string ToString(const Schema& schema) const;
};

/// A conjunction of atomic actions (applied together).
struct CompositeAction {
  std::vector<Action> actions;

  bool ApplicableTo(const Schema& schema, const Vector& x) const;
  Vector ApplyTo(const Vector& x) const;
  double Cost(const Schema& schema, const Vector& x) const;
  std::string ToString(const Schema& schema) const;
};

/// Enumerates candidate atomic actions: for every actionable feature, one
/// action per discretizer bin representative (skipping bins identical to
/// the current value at evaluation time).
std::vector<Action> EnumerateActions(const Schema& schema,
                                     const Discretizer& disc);

/// eff(a, G): fraction of the given instances that are applicable and
/// whose prediction flips to `target_class` under the action.
double ActionEffectiveness(const Model& model, const Dataset& data,
                           const std::vector<size_t>& instances,
                           const CompositeAction& action, int target_class);

/// Mean cost of the action over the instances it applies to (0 if none).
double ActionMeanCost(const Dataset& data,
                      const std::vector<size_t>& instances,
                      const CompositeAction& action);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_ACTIONS_H_
