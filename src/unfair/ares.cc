#include "src/unfair/ares.h"

#include <algorithm>

namespace xfair {
namespace {

/// Candidate rule before selection, with its matched member list.
struct Candidate {
  RecourseRule rule;
  std::vector<size_t> members;        ///< Matching affected instances.
  std::vector<size_t> flipped;        ///< Members the action flips.
};

bool MatchesBin(const Discretizer& disc, const Dataset& data, size_t i,
                size_t feature, size_t bin) {
  return disc.BinOf(feature, data.x().At(i, feature)) == bin;
}

}  // namespace

AresReport BuildRecourseSet(const Model& model, const Dataset& data,
                            const AresOptions& options) {
  AresReport report;
  std::vector<size_t> affected;
  for (size_t i = 0; i < data.size(); ++i)
    if (model.Predict(data.instance(i)) == 0) affected.push_back(i);
  if (affected.empty()) return report;

  Discretizer disc(data, options.bins);
  const Schema& schema = data.schema();

  // Outer descriptors: bins of immutable features (always including the
  // trivial "everyone" descriptor).
  using Conditions = std::vector<std::pair<size_t, size_t>>;
  std::vector<Conditions> descriptors = {{}};
  for (size_t f = 0; f < data.num_features(); ++f) {
    if (schema.feature(f).actionability != Actionability::kImmutable)
      continue;
    for (size_t b = 0; b < disc.NumBins(f); ++b)
      descriptors.push_back({{f, b}});
  }

  // Enumerate candidates: descriptor x inner-condition x action where the
  // action moves the conditioned feature to a different bin.
  std::vector<Candidate> candidates;
  for (const auto& descriptor : descriptors) {
    for (size_t f = 0; f < data.num_features(); ++f) {
      if (schema.feature(f).actionability == Actionability::kImmutable)
        continue;
      for (size_t from_bin = 0; from_bin < disc.NumBins(f); ++from_bin) {
        for (size_t to_bin = 0; to_bin < disc.NumBins(f); ++to_bin) {
          if (to_bin == from_bin) continue;
          Candidate cand;
          cand.rule.subgroup = descriptor;
          cand.rule.inner_condition = {f, from_bin};
          cand.rule.action =
              CompositeAction{{Action{f, disc.Representative(f, to_bin)}}};
          for (size_t i : affected) {
            bool match = MatchesBin(disc, data, i, f, from_bin);
            for (const auto& [df, db] : descriptor)
              match = match && MatchesBin(disc, data, i, df, db);
            if (!match) continue;
            cand.members.push_back(i);
            const Vector x = data.instance(i);
            if (cand.rule.action.ApplicableTo(schema, x) &&
                model.Predict(cand.rule.action.ApplyTo(x)) == 1) {
              cand.flipped.push_back(i);
            }
          }
          if (cand.members.size() < options.min_rule_coverage) continue;
          if (cand.flipped.empty()) continue;
          cand.rule.coverage = cand.members.size();
          cand.rule.effectiveness =
              static_cast<double>(cand.flipped.size()) /
              static_cast<double>(cand.members.size());
          cand.rule.mean_cost =
              ActionMeanCost(data, cand.members, cand.rule.action);
          candidates.push_back(std::move(cand));
        }
      }
    }
  }

  // Greedy selection: maximize newly flipped affected instances.
  std::vector<bool> covered(data.size(), false);
  for (size_t round = 0;
       round < options.max_rules && !candidates.empty(); ++round) {
    size_t best = candidates.size();
    size_t best_new = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      size_t fresh = 0;
      for (size_t i : candidates[c].flipped)
        fresh += static_cast<size_t>(!covered[i]);
      if (fresh > best_new) {
        best_new = fresh;
        best = c;
      }
    }
    if (best == candidates.size() || best_new == 0) break;
    Candidate chosen = std::move(candidates[best]);
    candidates.erase(candidates.begin() + static_cast<long>(best));
    for (size_t i : chosen.flipped) covered[i] = true;
    // Render the description.
    std::string desc = "IF ";
    for (const auto& [df, db] : chosen.rule.subgroup)
      desc += disc.BinLabel(schema, df, db) + " AND ";
    desc += disc.BinLabel(schema, chosen.rule.inner_condition.first,
                          chosen.rule.inner_condition.second);
    desc += " THEN " + chosen.rule.action.ToString(schema);
    chosen.rule.description = std::move(desc);
    report.rules.push_back(std::move(chosen.rule));
  }

  // Summary metrics.
  size_t flipped_total = 0, flipped_g[2] = {0, 0}, count_g[2] = {0, 0};
  for (size_t i : affected) {
    ++count_g[data.group(i)];
    if (covered[i]) {
      ++flipped_total;
      ++flipped_g[data.group(i)];
    }
  }
  report.total_recourse_rate = static_cast<double>(flipped_total) /
                               static_cast<double>(affected.size());
  if (count_g[1] > 0) {
    report.recourse_rate_protected = static_cast<double>(flipped_g[1]) /
                                     static_cast<double>(count_g[1]);
  }
  if (count_g[0] > 0) {
    report.recourse_rate_non_protected =
        static_cast<double>(flipped_g[0]) /
        static_cast<double>(count_g[0]);
  }
  report.num_rules = report.rules.size();
  double width = 0.0;
  for (const auto& r : report.rules)
    width += static_cast<double>(r.subgroup.size() + 1 + r.action.actions.size());
  report.mean_rule_width =
      report.rules.empty() ? 0.0
                           : width / static_cast<double>(report.rules.size());
  return report;
}

}  // namespace xfair
