// AReS-style two-level recourse sets [74] (paper §IV-A): interpretable,
// interactive summaries of recourse. The outer level descends on subgroup
// descriptors (conditions over immutable features such as the protected
// attribute); the inner level holds if-then recourse rules ("if income is
// low then raise income to B"). Selection is greedy set cover maximizing
// covered flips under a rule budget. Since the original evaluates
// interpretability with a user study, the report carries complexity
// proxies (rule count, width) instead.

#ifndef XFAIR_UNFAIR_ARES_H_
#define XFAIR_UNFAIR_ARES_H_

#include <string>

#include "src/unfair/actions.h"

namespace xfair {

/// One selected two-level rule:
///   IF <subgroup conditions> AND <inner condition> THEN <action>.
struct RecourseRule {
  /// Conditions on immutable descriptor features: (feature, bin).
  std::vector<std::pair<size_t, size_t>> subgroup;
  /// Condition on one actionable feature: (feature, bin).
  std::pair<size_t, size_t> inner_condition;
  CompositeAction action;
  double effectiveness = 0.0;  ///< Flip rate among matching affected.
  double mean_cost = 0.0;
  size_t coverage = 0;  ///< Matching affected instances.
  std::string description;
};

/// Options for BuildRecourseSet.
struct AresOptions {
  size_t bins = 3;
  size_t max_rules = 6;
  size_t min_rule_coverage = 5;
};

/// The selected rule set and its summary metrics.
struct AresReport {
  std::vector<RecourseRule> rules;
  /// Fraction of all affected instances covered by >= 1 selected rule
  /// whose action flips them.
  double total_recourse_rate = 0.0;
  double recourse_rate_protected = 0.0;
  double recourse_rate_non_protected = 0.0;
  /// Interpretability proxies (stand-in for the paper's user study).
  double mean_rule_width = 0.0;
  size_t num_rules = 0;
};

AresReport BuildRecourseSet(const Model& model, const Dataset& data,
                            const AresOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_ARES_H_
