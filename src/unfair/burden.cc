#include "src/unfair/burden.h"

namespace xfair {
namespace {

/// True if instance i is in scope for the metric.
bool InScope(const Model& model, const Dataset& data, size_t i,
             BurdenScope scope) {
  if (model.Predict(data.instance(i)) != 0) return false;
  return scope == BurdenScope::kAllNegatives || data.label(i) == 1;
}

}  // namespace

BurdenReport ComputeBurden(const Model& model, const Dataset& data,
                           BurdenScope scope,
                           const CounterfactualConfig& config, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  BurdenReport report;
  double sum[2] = {0.0, 0.0};
  size_t count[2] = {0, 0};
  for (size_t i = 0; i < data.size(); ++i) {
    if (!InScope(model, data, i, scope)) continue;
    const auto r = GrowingSpheresCounterfactual(
        model, data.schema(), data.instance(i), config, rng);
    if (!r.valid) {
      ++report.failures;
      continue;
    }
    const int g = data.group(i);
    sum[g] += r.distance;
    ++count[g];
  }
  report.counterfactuals_protected = count[1];
  report.counterfactuals_non_protected = count[0];
  if (count[1] > 0)
    report.burden_protected = sum[1] / static_cast<double>(count[1]);
  if (count[0] > 0)
    report.burden_non_protected = sum[0] / static_cast<double>(count[0]);
  report.burden_gap = report.burden_protected - report.burden_non_protected;
  return report;
}

NawbReport ComputeNawb(const Model& model, const Dataset& data,
                       const CounterfactualConfig& config, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  const double num_features = static_cast<double>(data.num_features());
  double dist_sum[2] = {0.0, 0.0};
  size_t positives[2] = {0, 0};
  for (size_t i = 0; i < data.size(); ++i) {
    const int g = data.group(i);
    if (data.label(i) == 1) ++positives[g];
    if (!InScope(model, data, i, BurdenScope::kFalseNegatives)) continue;
    const auto r = GrowingSpheresCounterfactual(
        model, data.schema(), data.instance(i), config, rng);
    if (r.valid) dist_sum[g] += r.distance;
  }
  NawbReport report;
  if (positives[1] > 0) {
    report.nawb_protected =
        dist_sum[1] / (num_features * static_cast<double>(positives[1]));
  }
  if (positives[0] > 0) {
    report.nawb_non_protected =
        dist_sum[0] / (num_features * static_cast<double>(positives[0]));
  }
  report.nawb_gap = report.nawb_protected - report.nawb_non_protected;
  return report;
}

}  // namespace xfair
