// Burden [72] and NAWB [73] (paper §IV-A): counterfactual-based fairness
// *metrics* — Direction (a), "explanations to enhance fairness metrics".
//
// Burden(G) averages the distance between each negatively-classified member
// of G and its counterfactual: the effort the model implicitly demands of
// the group. NAWB (normalized accuracy-weighted burden) restricts to false
// negatives and normalizes by feature count and the group's positive mass,
// fusing burden with the error-rate dimension.

#ifndef XFAIR_UNFAIR_BURDEN_H_
#define XFAIR_UNFAIR_BURDEN_H_

#include "src/explain/counterfactual.h"

namespace xfair {

/// Which instances a group counterfactual metric runs over (paper §IV-A:
/// parity fairness vs error-based fairness).
enum class BurdenScope {
  kAllNegatives,    ///< Everyone predicted unfavorable (parity view).
  kFalseNegatives,  ///< Only y=1 predicted unfavorable (error view).
};

/// Per-group burden summary.
struct BurdenReport {
  double burden_protected = 0.0;      ///< Mean CF distance in G+.
  double burden_non_protected = 0.0;  ///< Mean CF distance in G-.
  /// burden_protected - burden_non_protected: positive = the protected
  /// group must travel farther for a favorable outcome.
  double burden_gap = 0.0;
  size_t counterfactuals_protected = 0;      ///< Valid CFs found in G+.
  size_t counterfactuals_non_protected = 0;  ///< Valid CFs found in G-.
  size_t failures = 0;  ///< Instances where no CF was found (excluded).
};

/// Computes burden with the growing-spheres generator (black-box tier).
BurdenReport ComputeBurden(const Model& model, const Dataset& data,
                           BurdenScope scope,
                           const CounterfactualConfig& config, Rng* rng);

/// NAWB per group [73]:
///   NAWB_g = sum_{i in FN_g} distance(x_i, x_i') / (L * |{y=1, G=g}|).
struct NawbReport {
  double nawb_protected = 0.0;
  double nawb_non_protected = 0.0;
  double nawb_gap = 0.0;  ///< protected - non_protected.
};
NawbReport ComputeNawb(const Model& model, const Dataset& data,
                       const CounterfactualConfig& config, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_BURDEN_H_
