#include "src/unfair/causal_path.h"

#include <algorithm>
#include <cmath>

namespace xfair {

CausalPathReport DecomposeDisparityByPaths(const Model& model,
                                           const CausalWorld& world,
                                           size_t num_samples,
                                           uint64_t seed) {
  XFAIR_CHECK(num_samples > 0);
  const Scm& scm = world.scm;
  const Dag& dag = scm.dag();
  const size_t s = world.sensitive;
  CausalPathReport report;

  // Enumerate all paths from S to every descendant.
  for (size_t target : dag.Descendants(s)) {
    for (const auto& path : dag.AllPaths(s, target)) {
      PathContribution pc;
      pc.path = path;
      for (size_t k = 0; k < path.size(); ++k) {
        if (k > 0) pc.description += " -> ";
        pc.description += dag.name(path[k]);
      }
      double w = 1.0;
      for (size_t k = 0; k + 1 < path.size(); ++k)
        w *= scm.EdgeWeight(path[k], path[k + 1]);
      // Shift transmitted to the terminal node when S moves 1 -> 0.
      pc.transmitted_shift = w * (0.0 - 1.0);
      report.paths.push_back(std::move(pc));
    }
  }

  // Monte Carlo: sample protected-world instances; measure (a) the true
  // disparity via the S: 1 -> 0 counterfactual and (b) each path's
  // contribution by shifting only that path's terminal input.
  Rng rng(seed);
  double total = 0.0;
  Vector per_path(report.paths.size(), 0.0);
  for (size_t n = 0; n < num_samples; ++n) {
    const Vector x1 = scm.SampleDo({{s, 1.0}}, &rng);
    const Vector x0 = scm.Counterfactual(x1, {{s, 0.0}});
    const double f1 = model.PredictProba(x1);
    total += model.PredictProba(x0) - f1;
    for (size_t p = 0; p < report.paths.size(); ++p) {
      Vector shifted = x1;
      const size_t terminal = report.paths[p].path.back();
      shifted[terminal] += report.paths[p].transmitted_shift;
      per_path[p] += model.PredictProba(shifted) - f1;
    }
  }
  report.total_disparity = total / static_cast<double>(num_samples);
  for (size_t p = 0; p < report.paths.size(); ++p) {
    report.paths[p].score_contribution =
        per_path[p] / static_cast<double>(num_samples);
    report.explained_disparity += report.paths[p].score_contribution;
  }
  std::sort(report.paths.begin(), report.paths.end(),
            [](const PathContribution& a, const PathContribution& b) {
              return std::fabs(a.score_contribution) >
                     std::fabs(b.score_contribution);
            });
  return report;
}

}  // namespace xfair
