// Causal-path decomposition of model disparity [82] (paper §IV-B):
// instead of attributing the parity gap to individual *features* (which
// ignores causal relationships), attribute it to the *directed paths* that
// connect the sensitive attribute to the model's inputs in the causal
// world. A feature-level decomposition would blame "income"; the path
// decomposition separates S -> income from S -> income -> savings.

#ifndef XFAIR_UNFAIR_CAUSAL_PATH_H_
#define XFAIR_UNFAIR_CAUSAL_PATH_H_

#include <string>

#include "src/causal/worlds.h"
#include "src/model/model.h"

namespace xfair {

/// Contribution of one causal path to the disparity.
struct PathContribution {
  std::vector<size_t> path;  ///< Node sequence from S to a model input.
  std::string description;   ///< "S -> income -> savings".
  /// Structural shift transmitted along this path when S goes 1 -> 0
  /// (product of edge weights).
  double transmitted_shift = 0.0;
  /// Estimated change in mean model score if only this path transmitted
  /// the group change. Positive = this path advantages the non-protected
  /// group.
  double score_contribution = 0.0;
};

/// Disparity decomposition report.
struct CausalPathReport {
  std::vector<PathContribution> paths;  ///< Sorted by |contribution|.
  /// Actual mean score disparity E[f | S=0 world] - E[f | S=1 world].
  double total_disparity = 0.0;
  /// Sum of per-path score contributions; close to total_disparity when
  /// the model is near-linear over the transmitted shifts.
  double explained_disparity = 0.0;
};

/// Decomposes the disparity of `model` over the causal paths of `world`,
/// estimating each path's contribution on `num_samples` Monte Carlo draws.
CausalPathReport DecomposeDisparityByPaths(const Model& model,
                                           const CausalWorld& world,
                                           size_t num_samples,
                                           uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_CAUSAL_PATH_H_
