#include "src/unfair/cet.h"

#include <algorithm>
#include <cmath>

#include "src/util/table.h"

namespace xfair {
namespace {

/// Best single-or-paired action for a member set, by effectiveness then
/// cost.
struct BestAction {
  CompositeAction action;
  double effectiveness = 0.0;
  double mean_cost = 0.0;
};

BestAction FindBestAction(const Model& model, const Dataset& data,
                          const std::vector<size_t>& members,
                          const std::vector<Action>& candidates) {
  BestAction best;
  for (const Action& a : candidates) {
    CompositeAction ca{{a}};
    const double eff = ActionEffectiveness(model, data, members, ca, 1);
    const double cost = ActionMeanCost(data, members, ca);
    if (eff > best.effectiveness + 1e-12 ||
        (std::fabs(eff - best.effectiveness) <= 1e-12 &&
         cost < best.mean_cost)) {
      best = {std::move(ca), eff, cost};
    }
  }
  // Try strengthening the best single action with one more feature.
  if (!best.action.actions.empty() && best.effectiveness < 1.0) {
    const size_t used = best.action.actions[0].feature;
    for (const Action& a : candidates) {
      if (a.feature == used) continue;
      CompositeAction ca{{best.action.actions[0], a}};
      const double eff = ActionEffectiveness(model, data, members, ca, 1);
      if (eff > best.effectiveness + 1e-9) {
        best = {std::move(ca), eff, ActionMeanCost(data, members, ca)};
      }
    }
  }
  return best;
}

struct Builder {
  const Model& model;
  const Dataset& data;
  const CetOptions& options;
  const std::vector<Action>& candidates;
  std::vector<CetNode> nodes;

  int Build(std::vector<size_t> members, size_t depth) {
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    BestAction best = FindBestAction(model, data, members, candidates);
    nodes[id].action = best.action;
    nodes[id].effectiveness = best.effectiveness;
    nodes[id].mean_cost = best.mean_cost;
    nodes[id].num_members = members.size();

    if (depth >= options.max_depth ||
        best.effectiveness >= options.target_effectiveness ||
        members.size() < 2 * options.min_leaf) {
      return id;
    }

    // Greedy split: pick the (feature, median) cut whose children's best
    // actions jointly flip the most members.
    double base_flips =
        best.effectiveness * static_cast<double>(members.size());
    double best_gain = 1e-9;
    int best_feature = -1;
    double best_threshold = 0.0;
    std::vector<size_t> best_left, best_right;
    for (size_t f = 0; f < data.num_features(); ++f) {
      Vector vals;
      for (size_t i : members) vals.push_back(data.x().At(i, f));
      std::sort(vals.begin(), vals.end());
      const double threshold = vals[vals.size() / 2];
      std::vector<size_t> left, right;
      for (size_t i : members) {
        (data.x().At(i, f) <= threshold ? left : right).push_back(i);
      }
      if (left.size() < options.min_leaf ||
          right.size() < options.min_leaf) {
        continue;
      }
      const BestAction bl = FindBestAction(model, data, left, candidates);
      const BestAction br = FindBestAction(model, data, right, candidates);
      const double flips =
          bl.effectiveness * static_cast<double>(left.size()) +
          br.effectiveness * static_cast<double>(right.size());
      if (flips - base_flips > best_gain) {
        best_gain = flips - base_flips;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
        best_left = std::move(left);
        best_right = std::move(right);
      }
    }
    if (best_feature < 0) return id;
    nodes[id].feature = best_feature;
    nodes[id].threshold = best_threshold;
    const int l = Build(std::move(best_left), depth + 1);
    nodes[id].left = l;
    const int r = Build(std::move(best_right), depth + 1);
    nodes[id].right = r;
    return id;
  }
};

}  // namespace

const CompositeAction& CetReport::ActionFor(const Vector& x) const {
  XFAIR_CHECK(!nodes.empty());
  int id = 0;
  for (;;) {
    const CetNode& n = nodes[static_cast<size_t>(id)];
    if (n.feature < 0) return n.action;
    id = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                          : n.right;
  }
}

std::string CetReport::ToString(const Schema& schema) const {
  std::string out;
  // Preorder walk with indentation.
  struct Frame {
    int id;
    size_t depth;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const CetNode& n = nodes[static_cast<size_t>(id)];
    out += std::string(2 * depth, ' ');
    if (n.feature < 0) {
      out += "=> " + n.action.ToString(schema) +
             " (eff " + FormatDouble(n.effectiveness, 2) + ", cost " +
             FormatDouble(n.mean_cost, 2) + ", n=" +
             std::to_string(n.num_members) + ")\n";
    } else {
      out += "if " + schema.feature(static_cast<size_t>(n.feature)).name +
             " <= " + FormatDouble(n.threshold, 2) + ":\n";
      stack.push_back({n.right, depth + 1});
      stack.push_back({n.left, depth + 1});
    }
  }
  return out;
}

CetReport BuildCounterfactualTree(const Model& model, const Dataset& data,
                                  const CetOptions& options) {
  CetReport report;
  std::vector<size_t> affected;
  for (size_t i = 0; i < data.size(); ++i)
    if (model.Predict(data.instance(i)) == 0) affected.push_back(i);
  if (affected.empty()) {
    report.nodes.emplace_back();  // Trivial empty leaf.
    report.num_leaves = 1;
    return report;
  }
  Discretizer disc(data, options.bins);
  const std::vector<Action> candidates =
      EnumerateActions(data.schema(), disc);
  Builder builder{model, data, options, candidates, {}};
  builder.Build(affected, 0);
  report.nodes = std::move(builder.nodes);

  // Per-group evaluation: route every affected member to its leaf action.
  double flips[2] = {0, 0}, costs[2] = {0, 0};
  size_t counts[2] = {0, 0};
  for (size_t i : affected) {
    const Vector x = data.instance(i);
    const CompositeAction& action = report.ActionFor(x);
    const int g = data.group(i);
    ++counts[g];
    if (action.ApplicableTo(data.schema(), x) &&
        model.Predict(action.ApplyTo(x)) == 1) {
      flips[g] += 1.0;
      costs[g] += action.Cost(data.schema(), x);
    }
  }
  if (counts[1] > 0) {
    report.effectiveness_protected =
        flips[1] / static_cast<double>(counts[1]);
    report.mean_cost_protected =
        flips[1] > 0 ? costs[1] / flips[1] : 0.0;
  }
  if (counts[0] > 0) {
    report.effectiveness_non_protected =
        flips[0] / static_cast<double>(counts[0]);
    report.mean_cost_non_protected =
        flips[0] > 0 ? costs[0] / flips[0] : 0.0;
  }
  for (const auto& n : report.nodes)
    report.num_leaves += static_cast<size_t>(n.feature < 0);
  return report;
}

}  // namespace xfair
