// Counterfactual explanation trees [76] (paper §IV-A): a transparent
// decision tree over the affected population where every leaf carries one
// shared action. Consistency by construction — identical individuals
// routed to the same leaf always receive the same recourse.

#ifndef XFAIR_UNFAIR_CET_H_
#define XFAIR_UNFAIR_CET_H_

#include <string>

#include "src/unfair/actions.h"

namespace xfair {

/// Node of the explanation tree. Leaves (feature == -1) carry the action.
struct CetNode {
  int feature = -1;        ///< Split feature, -1 for leaf.
  double threshold = 0.0;  ///< Left iff x[feature] <= threshold.
  int left = -1, right = -1;
  CompositeAction action;       ///< Leaf action.
  double effectiveness = 0.0;   ///< Flip rate of the action on leaf members.
  double mean_cost = 0.0;       ///< Mean action cost on leaf members.
  size_t num_members = 0;
};

/// Options for BuildCounterfactualTree.
struct CetOptions {
  size_t max_depth = 3;
  size_t min_leaf = 8;
  size_t bins = 4;  ///< Action-candidate discretization.
  /// Stop splitting once the leaf's best action reaches this flip rate.
  double target_effectiveness = 0.95;
};

/// The fitted tree plus per-group summaries.
struct CetReport {
  std::vector<CetNode> nodes;  ///< nodes[0] is the root.
  double effectiveness_protected = 0.0;      ///< Weighted flip rate, G+.
  double effectiveness_non_protected = 0.0;  ///< Weighted flip rate, G-.
  double mean_cost_protected = 0.0;
  double mean_cost_non_protected = 0.0;
  size_t num_leaves = 0;

  /// Routes an instance to its leaf and returns that leaf's action.
  const CompositeAction& ActionFor(const Vector& x) const;
  /// Multi-line rendering of the tree with actions.
  std::string ToString(const Schema& schema) const;
};

/// Builds the tree over all instances the model predicts unfavorable,
/// greedily splitting while leaf actions are insufficiently effective.
CetReport BuildCounterfactualTree(const Model& model, const Dataset& data,
                                  const CetOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_CET_H_
