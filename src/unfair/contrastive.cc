#include "src/unfair/contrastive.h"

namespace xfair {

InterventionQueryResult EstimateInterventionQuery(
    const Model& model, const Scm& scm, size_t sensitive, int group,
    const std::vector<Intervention>& dos, size_t num_samples,
    uint64_t seed) {
  XFAIR_CHECK(num_samples > 0);
  Rng rng(seed);
  std::vector<Intervention> all = dos;
  all.push_back({sensitive, static_cast<double>(group)});
  size_t favorable = 0;
  for (size_t n = 0; n < num_samples; ++n) {
    const Vector x = scm.SampleDo(all, &rng);
    favorable += static_cast<size_t>(model.Predict(x) == 1);
  }
  InterventionQueryResult out;
  out.samples = num_samples;
  out.favorable_rate =
      static_cast<double>(favorable) / static_cast<double>(num_samples);
  return out;
}

ContrastiveReport ContrastInterventions(
    const Model& model, const Scm& scm, size_t sensitive,
    const std::vector<Intervention>& dos,
    const std::vector<Intervention>& reverted_dos, size_t num_samples,
    uint64_t seed) {
  XFAIR_CHECK(num_samples > 0);
  ContrastiveReport report;
  Rng rng(seed);
  for (int group : {0, 1}) {
    size_t unfavorable_seen = 0, rescued = 0;
    size_t favorable_seen = 0, lost = 0;
    // Oversample so both conditioning events accumulate enough mass.
    for (size_t n = 0; n < num_samples * 4; ++n) {
      const Vector x = scm.SampleDo(
          {{sensitive, static_cast<double>(group)}}, &rng);
      const int pred = model.Predict(x);
      if (pred == 0 && unfavorable_seen < num_samples) {
        ++unfavorable_seen;
        // Sufficiency: apply the intervention counterfactually.
        const Vector cf = scm.Counterfactual(x, dos);
        rescued += static_cast<size_t>(model.Predict(cf) == 1);
      } else if (pred == 1 && favorable_seen < num_samples) {
        ++favorable_seen;
        // Necessity: revert the putative cause.
        const Vector cf = scm.Counterfactual(x, reverted_dos);
        lost += static_cast<size_t>(model.Predict(cf) == 0);
      }
      if (unfavorable_seen >= num_samples && favorable_seen >= num_samples)
        break;
    }
    const double suff = unfavorable_seen == 0
                            ? 0.0
                            : static_cast<double>(rescued) /
                                  static_cast<double>(unfavorable_seen);
    const double nec =
        favorable_seen == 0
            ? 0.0
            : static_cast<double>(lost) /
                  static_cast<double>(favorable_seen);
    if (group == 1) {
      report.sufficiency_protected = suff;
      report.necessity_protected = nec;
    } else {
      report.sufficiency_non_protected = suff;
      report.necessity_non_protected = nec;
    }
  }
  report.sufficiency_gap =
      report.sufficiency_non_protected - report.sufficiency_protected;
  report.necessity_gap =
      report.necessity_non_protected - report.necessity_protected;
  return report;
}

}  // namespace xfair
