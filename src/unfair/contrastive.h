// Probabilistic contrastive counterfactuals [10] (paper §IV-A): actions
// phrased as *intervention queries* over a probabilistic causal model that
// can be estimated from historical data — no structural-equation
// assumptions at query time. The two headline quantities are the classic
// probabilities of causation:
//   sufficiency  P(favorable after do(a) | currently unfavorable)
//   necessity    P(unfavorable after do(a') | currently favorable via a)
// contrasted across protected groups.

#ifndef XFAIR_UNFAIR_CONTRASTIVE_H_
#define XFAIR_UNFAIR_CONTRASTIVE_H_

#include "src/causal/scm.h"
#include "src/model/model.h"

namespace xfair {

/// Result of one intervention query on one group.
struct InterventionQueryResult {
  /// P(f = 1 | do(intervention), G = g), estimated by sampling the SCM
  /// with the group variable fixed.
  double favorable_rate = 0.0;
  size_t samples = 0;
};

/// Estimates P(f = 1 | do(dos), G = group) by Monte Carlo over `scm`.
/// `sensitive` is the SCM node index of the group variable.
InterventionQueryResult EstimateInterventionQuery(
    const Model& model, const Scm& scm, size_t sensitive, int group,
    const std::vector<Intervention>& dos, size_t num_samples,
    uint64_t seed);

/// Probabilities of sufficiency/necessity of an intervention for the
/// favorable outcome, per group, plus their contrast.
struct ContrastiveReport {
  double sufficiency_protected = 0.0;
  double sufficiency_non_protected = 0.0;
  double necessity_protected = 0.0;
  double necessity_non_protected = 0.0;
  /// sufficiency gap (non-protected - protected): positive = the same
  /// intervention rescues the non-protected group more often.
  double sufficiency_gap = 0.0;
  double necessity_gap = 0.0;
};

/// For intervention `dos` (e.g. do(income := high)): sufficiency is
/// estimated over individuals currently predicted unfavorable; necessity
/// over those currently favorable, by applying the SCM counterfactual of
/// the *reverted* intervention `reverted_dos` (e.g. do(income := low)).
ContrastiveReport ContrastInterventions(
    const Model& model, const Scm& scm, size_t sensitive,
    const std::vector<Intervention>& dos,
    const std::vector<Intervention>& reverted_dos, size_t num_samples,
    uint64_t seed);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_CONTRASTIVE_H_
