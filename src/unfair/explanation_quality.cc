#include "src/unfair/explanation_quality.h"

#include "src/util/stats.h"

namespace xfair {

ExplanationQualityReport AuditExplanationQuality(
    const Model& model, const Dataset& data,
    const ExplanationQualityOptions& options, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  XFAIR_CHECK(options.sample_per_group > 0);
  ExplanationQualityReport report;

  // Per-feature perturbation scales for the stability probe.
  Vector scales(data.num_features());
  for (size_t c = 0; c < data.num_features(); ++c) {
    const double sd = Stddev(data.x().Col(c));
    scales[c] = (sd > 1e-12 ? sd : 1.0) * options.stability_perturbation;
  }

  for (int group : {0, 1}) {
    const auto members = data.GroupIndices(group);
    if (members.empty()) continue;
    const size_t n = std::min(options.sample_per_group, members.size());
    const auto picks = rng->SampleWithoutReplacement(members.size(), n);

    RunningStats fidelity, instability, sparsity;
    for (size_t p : picks) {
      const size_t i = members[p];
      const Vector x = data.instance(i);

      // Fidelity + stability via local surrogates.
      const LocalSurrogate base =
          FitLocalSurrogate(model, data, x, options.surrogate, rng);
      fidelity.Add(base.fidelity);
      Vector xp = x;
      for (size_t c = 0; c < x.size(); ++c)
        xp[c] += rng->Normal(0.0, scales[c]);
      const LocalSurrogate shifted =
          FitLocalSurrogate(model, data, xp, options.surrogate, rng);
      instability.Add(Norm2(Sub(base.coefficients, shifted.coefficients)));

      // Counterfactual sparsity (only defined for denied instances).
      if (model.Predict(x) == 0) {
        auto cf = GrowingSpheresCounterfactual(model, data.schema(), x,
                                               options.cf_config, rng);
        if (cf.valid) sparsity.Add(static_cast<double>(cf.sparsity));
      }
    }
    if (group == 1) {
      report.fidelity_protected = fidelity.mean();
      report.instability_protected = instability.mean();
      report.cf_sparsity_protected = sparsity.mean();
      report.sampled_protected = fidelity.count();
    } else {
      report.fidelity_non_protected = fidelity.mean();
      report.instability_non_protected = instability.mean();
      report.cf_sparsity_non_protected = sparsity.mean();
      report.sampled_non_protected = fidelity.count();
    }
  }
  report.fidelity_gap =
      report.fidelity_non_protected - report.fidelity_protected;
  report.instability_gap =
      report.instability_protected - report.instability_non_protected;
  report.cf_sparsity_gap =
      report.cf_sparsity_protected - report.cf_sparsity_non_protected;
  return report;
}

}  // namespace xfair
