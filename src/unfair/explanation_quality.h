// Fairness *of* explanations (paper §II "Fairness in explanations",
// [41]-[43]): explanations themselves can be worse for one group —
// lower-fidelity surrogates, less stable attributions, denser
// counterfactuals. This module measures explanation-quality metrics per
// group and reports the disparities, following the protocol of [41]:
// compare group means; significant variance indicates disparity.

#ifndef XFAIR_UNFAIR_EXPLANATION_QUALITY_H_
#define XFAIR_UNFAIR_EXPLANATION_QUALITY_H_

#include "src/explain/counterfactual.h"
#include "src/explain/surrogate.h"

namespace xfair {

/// Per-group explanation quality and the cross-group gaps.
struct ExplanationQualityReport {
  // Fidelity: local-surrogate weighted R^2, averaged over sampled
  // explainees of each group.
  double fidelity_protected = 0.0;
  double fidelity_non_protected = 0.0;
  /// non_protected - protected: positive = the protected group receives
  /// less faithful explanations.
  double fidelity_gap = 0.0;

  // Stability: mean L2 distance between the local-surrogate coefficient
  // vectors of an instance and a small perturbation of it (lower =
  // more stable explanations).
  double instability_protected = 0.0;
  double instability_non_protected = 0.0;
  /// protected - non_protected: positive = protected explanations are
  /// *less* stable.
  double instability_gap = 0.0;

  // Sparsity: mean number of features changed by each group's
  // counterfactuals (lower = simpler recourse stories).
  double cf_sparsity_protected = 0.0;
  double cf_sparsity_non_protected = 0.0;
  double cf_sparsity_gap = 0.0;  ///< protected - non_protected.

  size_t sampled_protected = 0;
  size_t sampled_non_protected = 0;
};

/// Options for AuditExplanationQuality.
struct ExplanationQualityOptions {
  size_t sample_per_group = 25;
  /// Perturbation scale (fraction of feature stddev) for the stability
  /// probe.
  double stability_perturbation = 0.1;
  LocalSurrogateOptions surrogate;
  CounterfactualConfig cf_config;
};

/// Audits explanation quality across the protected split of `data` for
/// `model`, sampling explainees per group with `rng`.
ExplanationQualityReport AuditExplanationQuality(
    const Model& model, const Dataset& data,
    const ExplanationQualityOptions& options, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_EXPLANATION_QUALITY_H_
