#include "src/unfair/facts.h"

#include <algorithm>

namespace xfair {
namespace {

/// Indices of affected instances matching every (feature, bin) condition.
std::vector<size_t> MatchSubgroup(
    const Dataset& data, const Discretizer& disc,
    const std::vector<size_t>& affected,
    const std::vector<std::pair<size_t, size_t>>& conditions, int group) {
  std::vector<size_t> out;
  for (size_t i : affected) {
    if (data.group(i) != group) continue;
    bool match = true;
    for (const auto& [f, b] : conditions) {
      if (disc.BinOf(f, data.x().At(i, f)) != b) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(i);
  }
  return out;
}

/// Audits one subgroup: effectiveness of every candidate action per side.
void Audit(const Model& model, const Dataset& data,
           const std::vector<Action>& candidates, FactsSubgroup* sg,
           const std::vector<size_t>& members_p,
           const std::vector<size_t>& members_np, double phi) {
  for (const Action& a : candidates) {
    const CompositeAction ca{{a}};
    const double eff_p =
        ActionEffectiveness(model, data, members_p, ca, 1);
    const double eff_np =
        ActionEffectiveness(model, data, members_np, ca, 1);
    if (eff_p > sg->best_effectiveness_protected) {
      sg->best_effectiveness_protected = eff_p;
      sg->best_action_protected = ca;
    }
    if (eff_np > sg->best_effectiveness_non_protected) {
      sg->best_effectiveness_non_protected = eff_np;
      sg->best_action_non_protected = ca;
    }
    sg->unfairness = std::max(sg->unfairness, eff_np - eff_p);
    if (eff_p >= phi) ++sg->choices_protected;
    if (eff_np >= phi) ++sg->choices_non_protected;
  }
}

}  // namespace

FactsReport RunFacts(const Model& model, const Dataset& data,
                     const FactsOptions& options) {
  FactsReport report;
  // Affected population: everyone the classifier denies.
  std::vector<size_t> affected;
  for (size_t i = 0; i < data.size(); ++i)
    if (model.Predict(data.instance(i)) == 0) affected.push_back(i);
  if (affected.empty()) return report;

  Discretizer disc(data, options.bins);
  const std::vector<Action> candidates =
      EnumerateActions(data.schema(), disc);
  const size_t min_count = static_cast<size_t>(
      options.min_support * static_cast<double>(affected.size()));

  // Frequent single conditions over the affected population.
  using Conditions = std::vector<std::pair<size_t, size_t>>;
  std::vector<Conditions> frontier;
  const int sens = data.schema().sensitive_index();
  for (size_t f = 0; f < data.num_features(); ++f) {
    // The sensitive column itself would make degenerate single-group
    // subgroups; skip it as a descriptor.
    if (static_cast<int>(f) == sens) continue;
    for (size_t b = 0; b < disc.NumBins(f); ++b) {
      size_t support = 0;
      for (size_t i : affected)
        support +=
            static_cast<size_t>(disc.BinOf(f, data.x().At(i, f)) == b);
      if (support >= std::max<size_t>(min_count, 1)) {
        frontier.push_back({{f, b}});
      }
    }
  }

  // Apriori-style extension to pairs (and beyond if configured).
  std::vector<Conditions> all_subgroups = frontier;
  std::vector<Conditions> current = frontier;
  for (size_t depth = 2; depth <= options.max_itemset; ++depth) {
    std::vector<Conditions> next;
    for (const auto& base : current) {
      for (const auto& ext : frontier) {
        const auto& [f, b] = ext[0];
        if (f <= base.back().first) continue;  // Canonical order.
        Conditions cand = base;
        cand.push_back({f, b});
        size_t support = 0;
        for (size_t i : affected) {
          bool match = true;
          for (const auto& [cf, cb] : cand) {
            if (disc.BinOf(cf, data.x().At(i, cf)) != cb) {
              match = false;
              break;
            }
          }
          support += static_cast<size_t>(match);
        }
        if (support >= std::max<size_t>(min_count, 1)) {
          next.push_back(std::move(cand));
        }
      }
    }
    all_subgroups.insert(all_subgroups.end(), next.begin(), next.end());
    current = std::move(next);
  }

  // Audit every frequent subgroup that has members on both sides.
  std::vector<FactsSubgroup> audited;
  for (const auto& conditions : all_subgroups) {
    const auto members_p =
        MatchSubgroup(data, disc, affected, conditions, 1);
    const auto members_np =
        MatchSubgroup(data, disc, affected, conditions, 0);
    if (members_p.size() < options.min_group_members ||
        members_np.size() < options.min_group_members) {
      continue;
    }
    FactsSubgroup sg;
    sg.conditions = conditions;
    for (size_t k = 0; k < conditions.size(); ++k) {
      if (k > 0) sg.description += " AND ";
      sg.description += disc.BinLabel(data.schema(), conditions[k].first,
                                      conditions[k].second);
    }
    sg.affected_protected = members_p.size();
    sg.affected_non_protected = members_np.size();
    Audit(model, data, candidates, &sg, members_p, members_np, options.phi);
    audited.push_back(std::move(sg));
  }
  report.subgroups_examined = audited.size();

  // Classifier-level fairness of recourse on the trivial subgroup.
  {
    FactsSubgroup everyone;
    std::vector<size_t> all_p, all_np;
    for (size_t i : affected)
      (data.group(i) == 1 ? all_p : all_np).push_back(i);
    Audit(model, data, candidates, &everyone, all_p, all_np, options.phi);
    report.overall_best_effectiveness_protected =
        everyone.best_effectiveness_protected;
    report.overall_best_effectiveness_non_protected =
        everyone.best_effectiveness_non_protected;
    report.overall_effectiveness_gap =
        everyone.best_effectiveness_non_protected -
        everyone.best_effectiveness_protected;
    report.overall_choices_protected = everyone.choices_protected;
    report.overall_choices_non_protected = everyone.choices_non_protected;
    report.overall_choice_gap =
        static_cast<double>(everyone.choices_non_protected) -
        static_cast<double>(everyone.choices_protected);
  }

  std::sort(audited.begin(), audited.end(),
            [](const FactsSubgroup& a, const FactsSubgroup& b) {
              return a.unfairness > b.unfairness;
            });
  if (audited.size() > options.top_k) audited.resize(options.top_k);
  report.ranked_subgroups = std::move(audited);
  return report;
}

}  // namespace xfair
