// FACTS [77] — Fairness-Aware Counterfactuals for Subgroups (paper §IV-A).
//
// Explores the space of (subgroup, action) pairs: subgroups are frequent
// itemsets of discretized feature conditions among the *affected*
// population (predicted unfavorable); actions are candidate feature
// changes. For each subgroup it compares, across the protected split, the
// effectiveness of every action — surfacing subgroups where the same
// recourse works for one group but not the other (violations of *equal
// effectiveness* and *equal choice of recourse*).

#ifndef XFAIR_UNFAIR_FACTS_H_
#define XFAIR_UNFAIR_FACTS_H_

#include <string>

#include "src/unfair/actions.h"

namespace xfair {

/// One subgroup's recourse-bias audit.
struct FactsSubgroup {
  /// Conjunction of (feature, bin) conditions defining the subgroup.
  std::vector<std::pair<size_t, size_t>> conditions;
  std::string description;
  size_t affected_protected = 0;      ///< Affected members in G+.
  size_t affected_non_protected = 0;  ///< Affected members in G-.
  /// Best single-action effectiveness achievable per group.
  double best_effectiveness_protected = 0.0;
  double best_effectiveness_non_protected = 0.0;
  /// The actions achieving the bests above.
  CompositeAction best_action_protected;
  CompositeAction best_action_non_protected;
  /// max over actions a of eff(a, G-) - eff(a, G+): how much better the
  /// *same* recourse serves the non-protected side (equal-effectiveness
  /// violation; the FACTS ranking key).
  double unfairness = 0.0;
  /// Number of actions with effectiveness >= phi per group
  /// (equal-choice-of-recourse counts).
  size_t choices_protected = 0;
  size_t choices_non_protected = 0;
};

/// Options for RunFacts.
struct FactsOptions {
  size_t bins = 3;            ///< Discretization granularity.
  double min_support = 0.1;   ///< Of the affected population.
  size_t max_itemset = 2;     ///< Max conditions per subgroup.
  double phi = 0.3;           ///< Sufficient-effectiveness threshold.
  size_t min_group_members = 5;  ///< Per side, to audit a subgroup.
  size_t top_k = 10;          ///< Subgroups reported.
};

/// Full FACTS output.
struct FactsReport {
  /// Subgroups sorted by descending unfairness, truncated to top_k.
  std::vector<FactsSubgroup> ranked_subgroups;
  size_t subgroups_examined = 0;
  /// Classifier-level summaries on the trivial "everyone" subgroup:
  /// equal effectiveness / equal choice hold iff the gaps are ~0.
  double overall_best_effectiveness_protected = 0.0;
  double overall_best_effectiveness_non_protected = 0.0;
  double overall_effectiveness_gap = 0.0;
  size_t overall_choices_protected = 0;
  size_t overall_choices_non_protected = 0;
  double overall_choice_gap = 0.0;
};

FactsReport RunFacts(const Model& model, const Dataset& data,
                     const FactsOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_FACTS_H_
