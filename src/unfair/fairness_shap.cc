#include "src/unfair/fairness_shap.h"

#include <algorithm>
#include <cstdint>

#include "src/explain/tree_shap.h"
#include "src/fairness/group_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/util/kernels.h"

namespace xfair {
namespace {

/// Dataset restricted to the features in `mask`.
Dataset SelectFeatures(const Dataset& data, const std::vector<bool>& mask) {
  std::vector<size_t> kept;
  for (size_t c = 0; c < mask.size(); ++c)
    if (mask[c]) kept.push_back(c);
  Matrix x(data.size(), kept.size());
  for (size_t r = 0; r < data.size(); ++r)
    for (size_t k = 0; k < kept.size(); ++k)
      x.At(r, k) = data.x().At(r, kept[k]);
  std::vector<FeatureSpec> specs;
  for (size_t c : kept) specs.push_back(data.schema().feature(c));
  // Sensitive index bookkeeping is irrelevant for gap evaluation.
  Schema schema(std::move(specs), -1);
  return Dataset(std::move(schema), std::move(x), data.labels(),
                 data.groups());
}

}  // namespace

FairnessShapReport ExplainParityWithShapley(
    const Model& model, const Dataset& data,
    const FairnessShapOptions& options) {
  const size_t d = data.num_features();
  XFAIR_CHECK(d > 0);
  XFAIR_SPAN("fairness_shap/explain");
  Rng rng(options.seed);

  CoalitionValue value;
  if (options.mode == FairnessShapMode::kRetrain) {
    value = [&data](const std::vector<bool>& mask) {
      XFAIR_SPAN("fairness_shap/coalition_retrain");
      XFAIR_COUNTER_ADD("fairness_shap/coalitions", 1);
      bool any = false;
      for (bool m : mask) any |= m;
      if (!any) return 0.0;  // Featureless model treats groups equally.
      Dataset sub = SelectFeatures(data, mask);
      LogisticRegression lr;
      LogisticRegressionOptions opts;
      opts.max_iters = 200;  // Coalition models need only rough fits.
      if (!lr.Fit(sub, opts).ok()) return 0.0;
      return StatisticalParityDifference(lr, sub);
    };
  } else {
    // Masking mode: marginalize absent features to the global mean,
    // accumulated row-major (per-column sums keep ascending row order).
    Vector background(d, 0.0);
    for (size_t i = 0; i < data.size(); ++i)
      kernels::Axpy(1.0, data.x().RowPtr(i), background.data(), d);
    for (size_t c = 0; c < d; ++c)
      background[c] /= static_cast<double>(data.size());
    const size_t sample = std::min<size_t>(
        data.size(), std::max<size_t>(options.background_size * 10, 200));
    auto rows = rng.SampleWithoutReplacement(data.size(), sample);

    // Decision trees: the masked parity gap is, by linearity of Shapley
    // values, the weighted sum over sampled rows of per-row masking games
    // on the hard-thresholded tree — which interventional TreeSHAP solves
    // exactly in polynomial time. No coalition is ever evaluated.
    const auto* tree = dynamic_cast<const DecisionTree*>(&model);
    if (options.use_tree_fast_path && tree != nullptr) {
      size_t count[2] = {0, 0};
      for (size_t r : rows) ++count[data.group(r)];
      Vector weights(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        const int g = data.group(rows[i]);
        weights[i] = g == 0 ? 1.0 / static_cast<double>(count[0])
                            : -1.0 / static_cast<double>(count[1]);
      }
      FairnessShapReport report;
      report.feature_names.reserve(d);
      for (size_t c = 0; c < d; ++c)
        report.feature_names.push_back(data.schema().feature(c).name);
      report.contributions = InterventionalTreeShapThresholded(
          *tree, data.x(), rows, weights, background, model.threshold());
      // Endpoint gaps come from direct evaluation: full = original rows,
      // baseline = every feature masked to the background means.
      auto gap_with_mask = [&](bool keep) {
        const std::vector<uint8_t> mask(d, keep ? 1 : 0);
        Matrix z(rows.size(), d);
        for (size_t r = 0; r < rows.size(); ++r) {
          kernels::MaskedBlend(data.x().RowPtr(rows[r]), background.data(),
                               mask.data(), z.RowPtr(r), d);
        }
        const std::vector<int> pred = model.PredictBatch(z);
        double pos[2] = {0.0, 0.0};
        for (size_t r = 0; r < rows.size(); ++r)
          pos[data.group(rows[r])] += static_cast<double>(pred[r]);
        const double rate0 =
            count[0] ? pos[0] / static_cast<double>(count[0]) : 0.0;
        const double rate1 =
            count[1] ? pos[1] / static_cast<double>(count[1]) : 0.0;
        return rate0 - rate1;
      };
      report.full_gap = gap_with_mask(true);
      report.baseline_gap = gap_with_mask(false);
      report.ranked_features.resize(d);
      for (size_t c = 0; c < d; ++c) report.ranked_features[c] = c;
      std::sort(report.ranked_features.begin(),
                report.ranked_features.end(), [&](size_t a, size_t b) {
                  return report.contributions[a] > report.contributions[b];
                });
      return report;
    }

    value = [&model, &data, background = std::move(background),
             rows = std::move(rows)](const std::vector<bool>& mask) {
      XFAIR_SPAN("fairness_shap/coalition_mask");
      XFAIR_COUNTER_ADD("fairness_shap/coalitions", 1);
      // One batched prediction per coalition instead of a virtual call
      // per row: the coalition's features come from the data row, the
      // rest from the background means. The bit-packed mask is widened
      // to a byte mask once so each row is one branch-free MaskedBlend.
      const size_t dim = mask.size();
      std::vector<uint8_t> keep(dim);
      for (size_t c = 0; c < dim; ++c) keep[c] = mask[c] ? 1 : 0;
      Matrix z(rows.size(), dim);
      for (size_t r = 0; r < rows.size(); ++r) {
        kernels::MaskedBlend(data.x().RowPtr(rows[r]), background.data(),
                             keep.data(), z.RowPtr(r), dim);
      }
      const std::vector<int> pred = model.PredictBatch(z);
      double pos[2] = {0.0, 0.0};
      size_t count[2] = {0, 0};
      for (size_t r = 0; r < rows.size(); ++r) {
        const int g = data.group(rows[r]);
        pos[g] += static_cast<double>(pred[r]);
        ++count[g];
      }
      const double rate0 =
          count[0] ? pos[0] / static_cast<double>(count[0]) : 0.0;
      const double rate1 =
          count[1] ? pos[1] / static_cast<double>(count[1]) : 0.0;
      return rate0 - rate1;
    };
  }

  // Shared memoization: the engine's coalition evaluations land in the
  // cache, so the baseline/full gap queries below are free hits.
  CoalitionCache cache(std::move(value), d);

  FairnessShapReport report;
  report.feature_names.reserve(d);
  for (size_t c = 0; c < d; ++c)
    report.feature_names.push_back(data.schema().feature(c).name);
  if (d <= 10) {
    report.contributions = ExactShapley(cache.AsValue(), d);
  } else {
    report.contributions =
        SampledShapley(cache.AsValue(), d, options.permutations, &rng);
  }
  std::vector<bool> none(d, false), all(d, true);
  report.baseline_gap = cache(none);
  report.full_gap = cache(all);
  report.ranked_features.resize(d);
  for (size_t c = 0; c < d; ++c) report.ranked_features[c] = c;
  std::sort(report.ranked_features.begin(), report.ranked_features.end(),
            [&](size_t a, size_t b) {
              return report.contributions[a] > report.contributions[b];
            });
  return report;
}

}  // namespace xfair
