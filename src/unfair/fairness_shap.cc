#include "src/unfair/fairness_shap.h"

#include <algorithm>
#include <cstdint>

#include "src/explain/tree_shap.h"
#include "src/fairness/group_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

/// Dataset restricted to the features in `mask`.
Dataset SelectFeatures(const Dataset& data, const std::vector<bool>& mask) {
  std::vector<size_t> kept;
  for (size_t c = 0; c < mask.size(); ++c)
    if (mask[c]) kept.push_back(c);
  Matrix x(data.size(), kept.size());
  for (size_t r = 0; r < data.size(); ++r)
    for (size_t k = 0; k < kept.size(); ++k)
      x.At(r, k) = data.x().At(r, kept[k]);
  std::vector<FeatureSpec> specs;
  for (size_t c : kept) specs.push_back(data.schema().feature(c));
  // Sensitive index bookkeeping is irrelevant for gap evaluation.
  Schema schema(std::move(specs), -1);
  return Dataset(std::move(schema), std::move(x), data.labels(),
                 data.groups());
}

/// Per-worker scratch for the masked coalition games: the widened byte
/// mask and the blended-instance matrix are reused across coalitions
/// instead of reallocated per evaluation. Value functions run
/// concurrently on pool threads, so the scratch is thread-local — the
/// same idiom as the tree engine's arenas, and workers are long-lived so
/// the steady state allocates nothing.
struct BlendScratch {
  std::vector<uint8_t> keep;
  Matrix z;
};

BlendScratch& LocalBlendScratch() {
  static thread_local BlendScratch scratch;
  return scratch;
}

/// Blends each sampled row with the background means under the byte mask
/// `keep` into the row-major block at `z` (rows.size() x d).
void BlendRows(const Dataset& data, const std::vector<size_t>& rows,
               const Vector& background, const uint8_t* keep, size_t d,
               double* z) {
  for (size_t r = 0; r < rows.size(); ++r) {
    kernels::MaskedBlend(data.x().RowPtr(rows[r]), background.data(), keep,
                         z + r * d, d);
  }
}

/// Parity gap of thresholded predictions over the sampled rows, with the
/// generic engine's sentinel semantics (a missing group's rate is 0).
double GapFromPreds(const int* pred, const Dataset& data,
                    const std::vector<size_t>& rows, const size_t count[2]) {
  double pos[2] = {0.0, 0.0};
  for (size_t r = 0; r < rows.size(); ++r)
    pos[data.group(rows[r])] += static_cast<double>(pred[r]);
  const double rate0 = count[0] ? pos[0] / static_cast<double>(count[0]) : 0.0;
  const double rate1 = count[1] ? pos[1] / static_cast<double>(count[1]) : 0.0;
  return rate0 - rate1;
}

/// Rows per coalition-tile dispatch: coalition x row blended instances are
/// stacked until a PredictBatch call covers roughly this many rows, so the
/// per-dispatch overhead (virtual call, thread fan-out, output vector) is
/// amortized across many coalitions.
constexpr size_t kCoalitionTileRows = 4096;

/// Pre-evaluates the masked parity gap for every coalition of d features.
/// Each coalition's value is computed from the same blended rows and the
/// same ascending-row reduction as a one-coalition-at-a-time evaluation —
/// and PredictBatch scores rows independently for every model — so the
/// table is bit-identical to the lazy path at any thread count.
Vector MaskGapTable(const Model& model, const Dataset& data,
                    const std::vector<size_t>& rows, const Vector& background,
                    size_t d, const size_t count[2]) {
  XFAIR_SPAN("fairness_shap/mask_table");
  const size_t n = rows.size();
  const size_t num_masks = size_t{1} << d;
  const size_t per_block =
      std::max<size_t>(1, kCoalitionTileRows / std::max<size_t>(n, 1));
  const size_t nblocks = (num_masks + per_block - 1) / per_block;
  Vector table(num_masks, 0.0);
  ParallelForChunks(0, nblocks, [&](const ChunkRange& chunk) {
    XFAIR_SPAN("fairness_shap/coalition_tile");
    BlendScratch& scratch = LocalBlendScratch();
    if (scratch.keep.size() < d) scratch.keep.resize(d);
    for (size_t blk = chunk.begin; blk < chunk.end; ++blk) {
      const size_t m0 = blk * per_block;
      const size_t m1 = std::min(num_masks, m0 + per_block);
      const size_t stacked = (m1 - m0) * n;
      if (scratch.z.rows() != stacked || scratch.z.cols() != d) {
        scratch.z = Matrix(stacked, d);
      }
      for (size_t m = m0; m < m1; ++m) {
        for (size_t c = 0; c < d; ++c)
          scratch.keep[c] = static_cast<uint8_t>((m >> c) & 1);
        BlendRows(data, rows, background, scratch.keep.data(), d,
                  scratch.z.RowPtr((m - m0) * n));
      }
      const std::vector<int> pred = model.PredictBatch(scratch.z);
      XFAIR_COUNTER_ADD("fairness_shap/coalitions", m1 - m0);
      for (size_t m = m0; m < m1; ++m) {
        table[m] =
            GapFromPreds(pred.data() + (m - m0) * n, data, rows, count);
      }
    }
  });
  return table;
}

/// Assembles the report: names, endpoint gaps, descending-contribution
/// feature ranking.
FairnessShapReport MakeReport(const Dataset& data, size_t d,
                              Vector contributions, double full_gap,
                              double baseline_gap) {
  FairnessShapReport report;
  report.feature_names.reserve(d);
  for (size_t c = 0; c < d; ++c)
    report.feature_names.push_back(data.schema().feature(c).name);
  report.contributions = std::move(contributions);
  report.full_gap = full_gap;
  report.baseline_gap = baseline_gap;
  report.ranked_features.resize(d);
  for (size_t c = 0; c < d; ++c) report.ranked_features[c] = c;
  std::sort(report.ranked_features.begin(), report.ranked_features.end(),
            [&](size_t a, size_t b) {
              return report.contributions[a] > report.contributions[b];
            });
  return report;
}

/// kMask decomposition over a row view (`slice` == nullptr means every
/// row). Shared by ExplainParityWithShapley and FairnessShapBatch, which
/// is what makes the two bit-identical: both resolve the view to the same
/// row indices before any arithmetic happens.
FairnessShapReport ExplainParityMask(const Model& model, const Dataset& data,
                                     const std::vector<size_t>* slice,
                                     const FairnessShapOptions& options) {
  const size_t d = data.num_features();
  const size_t n = slice ? slice->size() : data.size();
  XFAIR_CHECK(n > 0);
  Rng rng(options.seed);

  // Masking mode: marginalize absent features to the slice mean,
  // accumulated row-major (per-column sums keep ascending row order).
  Vector background(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = slice ? (*slice)[i] : i;
    kernels::Axpy(1.0, data.x().RowPtr(r), background.data(), d);
  }
  for (size_t c = 0; c < d; ++c)
    background[c] /= static_cast<double>(n);
  const size_t sample = std::min<size_t>(
      n, std::max<size_t>(options.background_size * 10, 200));
  std::vector<size_t> rows = rng.SampleWithoutReplacement(n, sample);
  if (slice) {
    for (size_t& r : rows) r = (*slice)[r];
  }
  size_t count[2] = {0, 0};
  for (size_t r : rows) ++count[data.group(r)];

  // Single-group slice: the parity gap is identically zero under the
  // sentinel semantics (the missing group's rate is 0 in every
  // coalition's game... and so is the present group's weight-normalized
  // complement), so there is nothing to decompose. Returning the zero
  // report here keeps the tree fast path's per-row weights finite — the
  // former 1/count[g] would have produced an inf-weighted game.
  if (count[0] == 0 || count[1] == 0) {
    return MakeReport(data, d, Vector(d, 0.0), 0.0, 0.0);
  }

  // Decision trees: the masked parity gap is, by linearity of Shapley
  // values, the weighted sum over sampled rows of per-row masking games
  // on the hard-thresholded tree — which interventional TreeSHAP solves
  // exactly in polynomial time. No coalition is ever evaluated.
  const auto* tree = dynamic_cast<const DecisionTree*>(&model);
  if (options.use_tree_fast_path && tree != nullptr) {
    Vector weights(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const int g = data.group(rows[i]);
      weights[i] = g == 0 ? 1.0 / static_cast<double>(count[0])
                          : -1.0 / static_cast<double>(count[1]);
    }
    Vector contributions =
        options.use_batched_sweep
            ? InterventionalTreeShapThresholded(*tree, data.x(), rows,
                                                weights, background,
                                                model.threshold())
            : InterventionalTreeShapThresholdedLooped(*tree, data.x(), rows,
                                                      weights, background,
                                                      model.threshold());
    // Endpoint gaps come from direct evaluation: full = original rows,
    // baseline = every feature masked to the background means.
    const double full_gap = [&] {
      BlendScratch& scratch = LocalBlendScratch();
      if (scratch.keep.size() < d) scratch.keep.resize(d);
      std::fill(scratch.keep.begin(), scratch.keep.begin() + d,
                static_cast<uint8_t>(1));
      if (scratch.z.rows() != rows.size() || scratch.z.cols() != d) {
        scratch.z = Matrix(rows.size(), d);
      }
      BlendRows(data, rows, background, scratch.keep.data(), d,
                scratch.z.RowPtr(0));
      const std::vector<int> pred = model.PredictBatch(scratch.z);
      return GapFromPreds(pred.data(), data, rows, count);
    }();
    // With every feature masked, each blended row is bit-for-bit the
    // background vector, so one prediction serves every sampled row.
    // Summing count[g] copies of an integer-valued 0/1 prediction is
    // exact in double, so the rate arithmetic below reproduces
    // GapFromPreds on the constant prediction vector bit for bit.
    const double baseline_gap = [&] {
      const double p = static_cast<double>(model.Predict(background));
      const double rate0 = static_cast<double>(count[0]) * p /
                           static_cast<double>(count[0]);
      const double rate1 = static_cast<double>(count[1]) * p /
                           static_cast<double>(count[1]);
      return rate0 - rate1;
    }();
    return MakeReport(data, d, std::move(contributions), full_gap,
                      baseline_gap);
  }

  if (d <= 10) {
    // Exact engine: every coalition is needed anyway, so evaluate them all
    // up front through the coalition-tiled batch path and hand the engine
    // a table lookup.
    Vector table = MaskGapTable(model, data, rows, background, d, count);
    const CoalitionValue value = [&table](const std::vector<bool>& mask) {
      size_t m = 0;
      for (size_t c = 0; c < mask.size(); ++c)
        if (mask[c]) m |= size_t{1} << c;
      return table[m];
    };
    Vector contributions = ExactShapley(value, d);
    return MakeReport(data, d, std::move(contributions),
                      table[table.size() - 1], table[0]);
  }

  // Sampled engine (d > 10): coalitions arrive one at a time from the
  // permutation walks, so each evaluation is one blended PredictBatch
  // over the sampled rows, served from per-worker scratch.
  CoalitionValue value = [&model, &data, &background, &rows,
                          &count](const std::vector<bool>& mask) {
    XFAIR_SPAN("fairness_shap/coalition_mask");
    XFAIR_COUNTER_ADD("fairness_shap/coalitions", 1);
    const size_t dim = mask.size();
    BlendScratch& scratch = LocalBlendScratch();
    if (scratch.keep.size() < dim) scratch.keep.resize(dim);
    for (size_t c = 0; c < dim; ++c)
      scratch.keep[c] = mask[c] ? 1 : 0;
    if (scratch.z.rows() != rows.size() || scratch.z.cols() != dim) {
      scratch.z = Matrix(rows.size(), dim);
    }
    BlendRows(data, rows, background, scratch.keep.data(), dim,
              scratch.z.RowPtr(0));
    const std::vector<int> pred = model.PredictBatch(scratch.z);
    return GapFromPreds(pred.data(), data, rows, count);
  };
  // Shared memoization: the engine's coalition evaluations land in the
  // cache, so the baseline/full gap queries below are free hits.
  CoalitionCache cache(std::move(value), d);
  Vector contributions =
      SampledShapley(cache.AsValue(), d, options.permutations, &rng);
  std::vector<bool> none(d, false), all(d, true);
  const double baseline_gap = cache(none);
  const double full_gap = cache(all);
  return MakeReport(data, d, std::move(contributions), full_gap,
                    baseline_gap);
}

}  // namespace

FairnessShapReport ExplainParityWithShapley(
    const Model& model, const Dataset& data,
    const FairnessShapOptions& options) {
  const size_t d = data.num_features();
  XFAIR_CHECK(d > 0);
  XFAIR_SPAN("fairness_shap/explain");

  if (options.mode == FairnessShapMode::kMask) {
    return ExplainParityMask(model, data, /*slice=*/nullptr, options);
  }

  Rng rng(options.seed);
  const CoalitionValue value = [&data](const std::vector<bool>& mask) {
    XFAIR_SPAN("fairness_shap/coalition_retrain");
    XFAIR_COUNTER_ADD("fairness_shap/coalitions", 1);
    bool any = false;
    for (bool m : mask) any |= m;
    if (!any) return 0.0;  // Featureless model treats groups equally.
    Dataset sub = SelectFeatures(data, mask);
    LogisticRegression lr;
    LogisticRegressionOptions opts;
    opts.max_iters = 200;  // Coalition models need only rough fits.
    if (!lr.Fit(sub, opts).ok()) return 0.0;
    return StatisticalParityDifference(lr, sub);
  };
  // Shared memoization: the engine's coalition evaluations land in the
  // cache, so the baseline/full gap queries below are free hits.
  CoalitionCache cache(value, d);
  Vector contributions =
      d <= 10 ? ExactShapley(cache.AsValue(), d)
              : SampledShapley(cache.AsValue(), d, options.permutations, &rng);
  std::vector<bool> none(d, false), all(d, true);
  const double baseline_gap = cache(none);
  const double full_gap = cache(all);
  return MakeReport(data, d, std::move(contributions), full_gap,
                    baseline_gap);
}

FairnessShapReport FairnessShapBatch(const Model& model, const Dataset& data,
                                     const std::vector<size_t>& slice,
                                     const FairnessShapOptions& options) {
  const size_t d = data.num_features();
  XFAIR_CHECK(d > 0);
  XFAIR_CHECK(!slice.empty());
  for (size_t r : slice) XFAIR_CHECK(r < data.size());
  XFAIR_SPAN("fairness_shap/batch");
  XFAIR_LATENCY_NS("latency/fairness_shap_batch_ns");
  XFAIR_COUNTER_ADD("fairness_shap/batch_calls", 1);
  XFAIR_COUNTER_ADD("fairness_shap/batch_rows", slice.size());
  XFAIR_EVENT(kInfo, "fairness_shap", "batch",
              {{"features", std::to_string(d)},
               {"rows", std::to_string(slice.size())}});
  if (options.mode == FairnessShapMode::kRetrain) {
    // Retraining fits each coalition's model on the slice itself, so the
    // sub-dataset must be materialized; the mask path below never copies.
    return ExplainParityWithShapley(model, data.Subset(slice), options);
  }
  return ExplainParityMask(model, data, &slice, options);
}

}  // namespace xfair
