// Fairness Shapley decomposition [81] (paper §IV-B): the Shapley engine of
// src/explain/shap.h applied to a *fairness* value function — v(S) is the
// model disparity attributable to the coalition S of features, so phi_i is
// feature i's contribution to the parity gap rather than to accuracy.
//
// Two value functions are provided, mirroring the two practical regimes:
//  - retraining (faithful but slow): v(S) = parity gap of a fresh logistic
//    model trained on feature subset S;
//  - masking (fast, model-agnostic): v(S) = parity gap of the fixed model
//    with features outside S marginalized to group-agnostic background
//    values.

#ifndef XFAIR_UNFAIR_FAIRNESS_SHAP_H_
#define XFAIR_UNFAIR_FAIRNESS_SHAP_H_

#include <string>

#include "src/explain/shap.h"

namespace xfair {

/// How coalitions are evaluated.
enum class FairnessShapMode {
  kRetrain,  ///< Train a logistic model per coalition.
  kMask,     ///< Marginalize absent features on the fixed model.
};

/// Per-feature contributions to the statistical parity difference.
struct FairnessShapReport {
  std::vector<std::string> feature_names;
  Vector contributions;  ///< Sum to (full-model gap) - (baseline gap).
  double full_gap = 0.0;      ///< Parity gap with all features.
  double baseline_gap = 0.0;  ///< Parity gap with no features.
  std::vector<size_t> ranked_features;  ///< By descending contribution.
};

/// Options for ExplainParityWithShapley.
struct FairnessShapOptions {
  FairnessShapMode mode = FairnessShapMode::kMask;
  /// Permutations for the sampled engine when num_features > 10.
  size_t permutations = 60;
  /// Background rows used by the masking mode (sampled from data).
  size_t background_size = 30;
  uint64_t seed = 17;
  /// In kMask mode with a DecisionTree model, compute the decomposition
  /// with exact polynomial TreeSHAP (src/explain/tree_shap.h) instead of
  /// coalition enumeration/sampling: the masked parity gap is a weighted
  /// sum of per-row masking games on the hard-thresholded tree, so the
  /// attributions agree with the generic engine (exactly where the
  /// generic engine is itself exact, i.e. d <= 10). Disable to force the
  /// generic engines, e.g. for benchmarking.
  bool use_tree_fast_path = true;
  /// On the tree fast path, run the thresholded games as one batched SoA
  /// tile sweep (DESIGN §10) instead of one IvWalk per sampled row. The
  /// two are bit-identical (0 ulp); disable to force the looped
  /// reference, e.g. for the audit-rows/sec benchmark baseline.
  bool use_batched_sweep = true;
};

/// Decomposes the statistical parity difference of `model` on `data` into
/// per-feature Shapley contributions. In kRetrain mode `model` is ignored
/// (each coalition trains its own) and the decomposition explains the
/// disparity of the model *family*; in kMask mode it explains the given
/// model.
FairnessShapReport ExplainParityWithShapley(
    const Model& model, const Dataset& data,
    const FairnessShapOptions& options);

/// Slice-scale audit: decomposes the parity gap of the rows named by
/// `slice` (indices into `data`) in one call, without materializing a
/// sub-dataset. Bit-identical at every thread count to
/// ExplainParityWithShapley(model, data.Subset(slice), options): the
/// background means, row sampling, and engine dispatch all see the slice
/// rows in slice order. kMask mode reads the slice in place (tree models
/// take the batched thresholded sweep, other models the coalition-tiled
/// generic path); kRetrain mode materializes the subset, since coalition
/// models are fitted on it. Slices whose sampled rows all land in one
/// group get the PR 3 sentinel treatment: a zero-contribution report
/// (both gaps 0) instead of an inf-weighted game.
FairnessShapReport FairnessShapBatch(const Model& model, const Dataset& data,
                                     const std::vector<size_t>& slice,
                                     const FairnessShapOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_FAIRNESS_SHAP_H_
