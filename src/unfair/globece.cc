#include "src/unfair/globece.h"

#include <cmath>

#include "src/util/stats.h"

namespace xfair {
namespace {

double FeatureRange(const FeatureSpec& spec) {
  const double r = spec.upper - spec.lower;
  if (r <= 0.0 || r > 1e29) return 1.0;
  return r;
}

/// Applies x + scale * direction (direction lives in range-normalized
/// space), then clamps to actionability and bounds.
Vector Translate(const Schema& schema, const Vector& x,
                 const Vector& direction, double scale,
                 bool respect_actionability) {
  Vector out = x;
  for (size_t c = 0; c < x.size(); ++c) {
    const FeatureSpec& spec = schema.feature(c);
    double v = x[c] + scale * direction[c] * FeatureRange(spec);
    if (respect_actionability) {
      switch (spec.actionability) {
        case Actionability::kImmutable:
          v = x[c];
          break;
        case Actionability::kIncreaseOnly:
          v = std::max(v, x[c]);
          break;
        case Actionability::kDecreaseOnly:
          v = std::min(v, x[c]);
          break;
        case Actionability::kAny:
          break;
      }
    }
    v = std::min(std::max(v, spec.lower), spec.upper);
    if (spec.kind == FeatureKind::kBinary) v = v >= 0.5 ? 1.0 : 0.0;
    if (spec.kind == FeatureKind::kCategorical) {
      v = std::min(std::max(std::round(v), 0.0),
                   static_cast<double>(spec.arity - 1));
    }
    out[c] = v;
  }
  return out;
}

GlobalDirection FitForGroup(const Model& model, const Dataset& data,
                            int group, const GlobeCeOptions& options,
                            Rng* rng) {
  GlobalDirection out;
  const Schema& schema = data.schema();
  const size_t d = data.num_features();

  // Members of the group currently denied the favorable outcome.
  std::vector<size_t> negatives;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.group(i) == group &&
        model.Predict(data.instance(i)) == 0) {
      negatives.push_back(i);
    }
  }
  out.direction.assign(d, 0.0);
  if (negatives.empty()) return out;

  // Estimate the direction from sampled individual CF deltas
  // (range-normalized so all features are commensurate).
  const size_t sample_size =
      std::min(options.direction_sample, negatives.size());
  auto sample = rng->SampleWithoutReplacement(negatives.size(), sample_size);
  size_t used = 0;
  for (size_t s : sample) {
    const size_t i = negatives[s];
    const Vector x = data.instance(i);
    auto r = GrowingSpheresCounterfactual(model, schema, x,
                                          options.cf_config, rng);
    if (!r.valid) continue;
    for (size_t c = 0; c < d; ++c) {
      out.direction[c] += (r.counterfactual[c] - x[c]) /
                          FeatureRange(schema.feature(c));
    }
    ++used;
  }
  const double norm = Norm2(out.direction);
  if (used == 0 || norm < 1e-12) {
    out.direction.assign(d, 0.0);
    return out;
  }
  for (double& v : out.direction) v /= norm;

  // Minimal flipping scale per member along the shared direction.
  const bool act = options.cf_config.respect_actionability;
  for (size_t i : negatives) {
    const Vector x = data.instance(i);
    for (size_t step = 1; step <= options.scale_steps; ++step) {
      const double scale = options.max_scale * static_cast<double>(step) /
                           static_cast<double>(options.scale_steps);
      const Vector moved = Translate(schema, x, out.direction, scale, act);
      if (model.Predict(moved) == options.cf_config.target_class) {
        out.min_scales.push_back(scale);
        break;
      }
    }
  }
  out.coverage = static_cast<double>(out.min_scales.size()) /
                 static_cast<double>(negatives.size());
  out.mean_cost = Mean(out.min_scales);
  return out;
}

}  // namespace

GlobeCeReport FitGlobeCe(const Model& model, const Dataset& data,
                         const GlobeCeOptions& options, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  GlobeCeReport report;
  report.protected_group = FitForGroup(model, data, 1, options, rng);
  report.non_protected_group = FitForGroup(model, data, 0, options, rng);
  report.cost_gap = report.protected_group.mean_cost -
                    report.non_protected_group.mean_cost;
  report.coverage_gap = report.non_protected_group.coverage -
                        report.protected_group.coverage;
  return report;
}

}  // namespace xfair
