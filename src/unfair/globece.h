// GLOBE-CE [75] (paper §IV-A): a *global* counterfactual explanation — one
// translation direction per group along which its members travel to flip
// their predictions; per-member cost is the minimal scale needed. Equal
// directions with unequal scale distributions expose recourse bias.

#ifndef XFAIR_UNFAIR_GLOBECE_H_
#define XFAIR_UNFAIR_GLOBECE_H_

#include "src/explain/counterfactual.h"

namespace xfair {

/// Fitted global direction for one group.
struct GlobalDirection {
  Vector direction;       ///< Unit direction in range-normalized space.
  Vector min_scales;      ///< Per covered member: minimal flipping scale.
  double coverage = 0.0;  ///< Fraction of the group's negatives flipped.
  double mean_cost = 0.0; ///< Mean of min_scales (range-normalized units).
};

/// GLOBE-CE comparison across groups.
struct GlobeCeReport {
  GlobalDirection protected_group;
  GlobalDirection non_protected_group;
  /// mean_cost(G+) - mean_cost(G-): positive = protected members must
  /// travel farther along their own best direction.
  double cost_gap = 0.0;
  /// coverage(G-) - coverage(G+).
  double coverage_gap = 0.0;
};

/// Options for FitGlobeCe.
struct GlobeCeOptions {
  /// CFs sampled to estimate the direction (per group).
  size_t direction_sample = 30;
  /// Scales tried per instance (grid 0..max_scale).
  size_t scale_steps = 50;
  double max_scale = 5.0;
  CounterfactualConfig cf_config;
};

/// Fits one global direction per group (from sampled individual CF deltas)
/// and evaluates minimal scales for every negatively-predicted member.
GlobeCeReport FitGlobeCe(const Model& model, const Dataset& data,
                         const GlobeCeOptions& options, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_GLOBECE_H_
