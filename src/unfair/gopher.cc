#include "src/unfair/gopher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/explain/influence.h"
#include "src/fairness/group_metrics.h"
#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

using Conditions = std::vector<std::pair<size_t, size_t>>;

/// Instance-major table of discretized bins, computed once so the apriori
/// scan does array compares instead of re-binning every (row, condition)
/// pair.
class BinTable {
 public:
  BinTable(const Discretizer& disc, const Dataset& data)
      : n_(data.size()), d_(data.num_features()), bins_(n_ * d_) {
    ParallelFor(0, n_, [&](size_t i) {
      for (size_t f = 0; f < d_; ++f) {
        bins_[i * d_ + f] =
            static_cast<uint16_t>(disc.BinOf(f, data.x().At(i, f)));
      }
    });
  }

  bool Matches(size_t i, const Conditions& conditions) const {
    for (const auto& [f, b] : conditions) {
      if (bins_[i * d_ + f] != b) return false;
    }
    return true;
  }

  uint16_t bin(size_t i, size_t f) const { return bins_[i * d_ + f]; }

 private:
  size_t n_, d_;
  std::vector<uint16_t> bins_;
};

std::string Describe(const Discretizer& disc, const Schema& schema,
                     const Conditions& conditions) {
  std::string out;
  for (size_t k = 0; k < conditions.size(); ++k) {
    if (k > 0) out += " AND ";
    out += disc.BinLabel(schema, conditions[k].first, conditions[k].second);
  }
  return out;
}

}  // namespace

Result<GopherReport> ExplainUnfairnessByPatterns(
    const LogisticRegression& model, const Dataset& train,
    const GopherOptions& options) {
  XFAIR_SPAN("gopher/explain");
  GopherReport report;
  report.original_gap = StatisticalParityDifference(model, train);

  auto analyzer_result = InfluenceAnalyzer::Create(model, train);
  if (!analyzer_result.ok()) return analyzer_result.status();
  const InfluenceAnalyzer& analyzer = *analyzer_result;
  // Per-instance first-order effect on the gap of removing the instance.
  const Vector influence = analyzer.InfluenceOnParityGap(train);

  Discretizer disc(train, options.bins);
  const BinTable bins(disc, train);
  const size_t n = train.size();
  const size_t min_count = std::max<size_t>(
      1, static_cast<size_t>(options.min_support * static_cast<double>(n)));
  const size_t max_count = static_cast<size_t>(
      options.max_support * static_cast<double>(n));

  // Frequent patterns (apriori to max_conditions), scored by influence.
  std::vector<Conditions> singles;
  for (size_t f = 0; f < train.num_features(); ++f) {
    for (size_t b = 0; b < disc.NumBins(f); ++b) {
      singles.push_back({{f, b}});
    }
  }
  std::vector<GopherPattern> scored;
  std::vector<Conditions> current;
  for (const auto& cand : singles) current.push_back(cand);
  for (size_t depth = 1; depth <= options.max_conditions; ++depth) {
    XFAIR_SPAN("gopher/apriori_depth");
    XFAIR_COUNTER_ADD("gopher/candidates_scored", current.size());
    // Score every candidate. Either a row-major scan (each row deposits
    // into the candidates it matches — no per-candidate data pass) or the
    // candidate-major baseline; both accumulate every candidate's
    // influence sum in ascending row order, so the scores are identical
    // bit for bit and independent of the thread count.
    std::vector<size_t> supports(current.size(), 0);
    Vector estimates(current.size(), 0.0);
    // Single-condition id: sid(f, b) = sid_offset[f] + b. The depth-1
    // candidate list is exactly the singles in sid order.
    std::vector<size_t> sid_offset(train.num_features() + 1, 0);
    for (size_t f = 0; f < train.num_features(); ++f)
      sid_offset[f + 1] = sid_offset[f] + disc.NumBins(f);
    const size_t num_sids = sid_offset.back();
    const size_t d = train.num_features();
    bool fast_done = false;
    if (options.fast_pair_scan && depth == 1) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t f = 0; f < d; ++f) {
          const size_t ci = sid_offset[f] + bins.bin(i, f);
          ++supports[ci];
          estimates[ci] += influence[i];
        }
      }
      fast_done = true;
    } else if (options.fast_pair_scan && depth == 2 && num_sids <= 4096) {
      // Dense (sid, sid) -> candidate-index table; rows then deposit into
      // their d*(d-1)/2 matching pairs directly.
      std::vector<int32_t> pair_ci(num_sids * num_sids, -1);
      for (size_t ci = 0; ci < current.size(); ++ci) {
        const auto& [f1, b1] = current[ci][0];
        const auto& [f2, b2] = current[ci][1];
        pair_ci[(sid_offset[f1] + b1) * num_sids + (sid_offset[f2] + b2)] =
            static_cast<int32_t>(ci);
      }
      for (size_t i = 0; i < n; ++i) {
        for (size_t f1 = 0; f1 + 1 < d; ++f1) {
          const size_t sid1 = sid_offset[f1] + bins.bin(i, f1);
          for (size_t f2 = f1 + 1; f2 < d; ++f2) {
            const int32_t ci =
                pair_ci[sid1 * num_sids + sid_offset[f2] + bins.bin(i, f2)];
            if (ci < 0) continue;
            ++supports[static_cast<size_t>(ci)];
            estimates[static_cast<size_t>(ci)] += influence[i];
          }
        }
      }
      fast_done = true;
    }
    if (!fast_done) {
      ParallelFor(0, current.size(), [&](size_t ci) {
        const Conditions& cand = current[ci];
        size_t support = 0;
        double est = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (!bins.Matches(i, cand)) continue;
          ++support;
          est += influence[i];
        }
        supports[ci] = support;
        estimates[ci] = est;
      });
    }
    // Collect the frequent and scored patterns in candidate order.
    std::vector<Conditions> next;
    for (size_t ci = 0; ci < current.size(); ++ci) {
      const Conditions& cand = current[ci];
      if (supports[ci] < min_count) continue;
      next.push_back(cand);  // Frequent: extendable at the next depth.
      if (supports[ci] > max_count) continue;
      GopherPattern p;
      p.conditions = cand;
      p.description = Describe(disc, train.schema(), cand);
      p.support = supports[ci];
      p.estimated_gap_change = estimates[ci];
      p.interestingness =
          std::fabs(estimates[ci]) / static_cast<double>(supports[ci]);
      scored.push_back(std::move(p));
    }
    if (depth == options.max_conditions) break;
    // Extend frequent patterns by one canonical-order condition.
    std::vector<Conditions> extended;
    for (const auto& base : next) {
      if (base.size() != depth) continue;
      for (const auto& ext : singles) {
        if (ext[0].first <= base.back().first) continue;
        Conditions grown = base;
        grown.push_back(ext[0]);
        extended.push_back(std::move(grown));
      }
    }
    current = std::move(extended);
  }
  report.patterns_examined = scored.size();
  XFAIR_COUNTER_ADD("gopher/patterns_examined", scored.size());

  // Most gap-reducing removals first (most negative estimated change).
  std::sort(scored.begin(), scored.end(),
            [](const GopherPattern& a, const GopherPattern& b) {
              return a.estimated_gap_change < b.estimated_gap_change;
            });
  if (scored.size() > options.top_k) scored.resize(options.top_k);

  // Verify by actual retraining without the pattern's subset. Each
  // retrain is independent; fan them out.
  ParallelFor(0, scored.size(), [&](size_t pi) {
    GopherPattern& p = scored[pi];
    std::vector<size_t> keep;
    for (size_t i = 0; i < n; ++i)
      if (!bins.Matches(i, p.conditions)) keep.push_back(i);
    if (keep.size() < train.num_features() + 2) return;
    Dataset reduced = train.Subset(keep);
    LogisticRegression retrained;
    if (!retrained.Fit(reduced).ok()) return;
    p.verified_gap_change =
        StatisticalParityDifference(retrained, train) - report.original_gap;
    p.verified = true;
  });
  report.patterns = std::move(scored);
  return report;
}

}  // namespace xfair
