#include "src/unfair/gopher.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>

#include "src/explain/influence.h"
#include "src/fairness/group_metrics.h"
#include "src/obs/obs.h"
#include "src/unfair/slice_search.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

using Conditions = std::vector<std::pair<size_t, size_t>>;

/// Instance-major table of discretized bins, computed once so the apriori
/// scan does array compares instead of re-binning every (row, condition)
/// pair.
class BinTable {
 public:
  BinTable(const Discretizer& disc, const Dataset& data)
      : n_(data.size()), d_(data.num_features()), bins_(n_ * d_) {
    ParallelFor(0, n_, [&](size_t i) {
      for (size_t f = 0; f < d_; ++f) {
        bins_[i * d_ + f] =
            static_cast<uint16_t>(disc.BinOf(f, data.x().At(i, f)));
      }
    });
  }

  bool Matches(size_t i, const Conditions& conditions) const {
    for (const auto& [f, b] : conditions) {
      if (bins_[i * d_ + f] != b) return false;
    }
    return true;
  }

  uint16_t bin(size_t i, size_t f) const { return bins_[i * d_ + f]; }

 private:
  size_t n_, d_;
  std::vector<uint16_t> bins_;
};

std::string Describe(const Discretizer& disc, const Schema& schema,
                     const Conditions& conditions) {
  std::string out;
  for (size_t k = 0; k < conditions.size(); ++k) {
    if (k > 0) out += " AND ";
    out += disc.BinLabel(schema, conditions[k].first, conditions[k].second);
  }
  return out;
}

}  // namespace

Result<GopherReport> ExplainUnfairnessByPatterns(
    const LogisticRegression& model, const Dataset& train,
    const GopherOptions& options) {
  XFAIR_SPAN("gopher/explain");
  GopherReport report;
  report.original_gap = StatisticalParityDifference(model, train);

  auto analyzer_result = InfluenceAnalyzer::Create(model, train);
  if (!analyzer_result.ok()) return analyzer_result.status();
  const InfluenceAnalyzer& analyzer = *analyzer_result;
  // Per-instance first-order effect on the gap of removing the instance.
  const Vector influence = analyzer.InfluenceOnParityGap(train);

  Discretizer disc(train, options.bins);
  const BinTable bins(disc, train);
  const size_t n = train.size();
  const size_t min_count = std::max<size_t>(
      1, static_cast<size_t>(options.min_support * static_cast<double>(n)));
  const size_t max_count = static_cast<size_t>(
      options.max_support * static_cast<double>(n));

  std::vector<GopherPattern> scored;
  const auto collect = [&](const Conditions& cand, size_t support,
                           double estimate) {
    GopherPattern p;
    p.conditions = cand;
    p.description = Describe(disc, train.schema(), cand);
    p.support = support;
    p.estimated_gap_change = estimate;
    p.interestingness = std::fabs(estimate) / static_cast<double>(support);
    scored.push_back(std::move(p));
  };

  if (options.use_bitset_engine) {
    // Vertical-bitset lattice engine (DESIGN.md §11): extents by word-wise
    // AND, supports by popcount, estimates by a masked influence sweep.
    // Every depth takes this path — no dense pair table, no per-candidate
    // row scan, no num_sids cap.
    XFAIR_SPAN("gopher/lattice_engine");
    SliceExtentIndex index(disc, train);
    // Optimistic bound: a sub-slice's estimate is a subset sum of its
    // ancestor's extent, so it can never fall below the extent's total
    // negative influence mass. Once the top-k heap is full, extents whose
    // negative mass cannot beat the k-th best estimate stop extending.
    const bool prune = options.optimistic_prune && options.top_k > 0;
    Vector neg_influence;
    if (prune) {
      neg_influence.resize(n);
      for (size_t i = 0; i < n; ++i)
        neg_influence[i] = std::min(influence[i], 0.0);
    }
    std::priority_queue<double> top_estimates;  // k smallest seen so far.
    size_t bound_pruned = 0;
    Vector estimates, bounds;
    const auto stats = LatticeWalk(
        index, min_count, options.max_conditions,
        /*begin_level=*/
        [&](size_t count) {
          estimates.assign(count, 0.0);
          if (prune) bounds.assign(count, 0.0);
        },
        /*score=*/
        [&](size_t ci, const LatticeNode& node) {
          estimates[ci] =
              kernels::MaskedSumU64(influence.data(), node.extent, n);
          if (prune) {
            bounds[ci] =
                kernels::MaskedSumU64(neg_influence.data(), node.extent, n);
          }
        },
        /*admit=*/
        [&](size_t ci, const LatticeNode& node) {
          if (node.support >= min_count && node.support <= max_count) {
            Conditions cand(node.depth);
            for (size_t k = 0; k < node.depth; ++k)
              cand[k] = index.condition(node.sids[k]);
            collect(cand, node.support, estimates[ci]);
            if (prune) {
              top_estimates.push(estimates[ci]);
              if (top_estimates.size() > options.top_k) top_estimates.pop();
            }
          }
          if (prune && top_estimates.size() == options.top_k) {
            // Strict-with-slack comparison: the slack absorbs the masked
            // sum's rounding, so a descendant whose true estimate ties the
            // k-th best is never cut and the reported top-k stays exact.
            const double bound =
                bounds[ci] - 1e-9 * (1.0 + std::fabs(bounds[ci]));
            if (bound > top_estimates.top()) {
              ++bound_pruned;
              return false;
            }
          }
          return true;
        });
    report.candidates_scored = stats.candidates;
    report.bound_pruned = bound_pruned;
    XFAIR_COUNTER_ADD("gopher/candidates_scored", stats.candidates);
    XFAIR_COUNTER_ADD("gopher/singles_pruned", stats.singles_zero_support);
    XFAIR_COUNTER_ADD("gopher/bound_pruned", bound_pruned);
  } else {
    // Looped golden oracle: level-wise apriori with one BinTable::Matches
    // row scan per candidate. Each candidate's mask is built bit by bit
    // and reduced with the scalar reference masked sum, so its estimate is
    // bit-identical to the engine's (the kernel contract pins dispatched
    // == scalar at 0 ulp) and the engine tests can demand EXPECT_EQ.
    std::vector<Conditions> singles;
    for (size_t f = 0; f < train.num_features(); ++f) {
      for (size_t b = 0; b < disc.NumBins(f); ++b) singles.push_back({{f, b}});
    }
    const size_t words = (n + 63) / 64;
    std::vector<Conditions> current = singles;
    for (size_t depth = 1; depth <= options.max_conditions && !current.empty();
         ++depth) {
      XFAIR_SPAN("gopher/apriori_depth");
      XFAIR_COUNTER_ADD("gopher/candidates_scored", current.size());
      report.candidates_scored += current.size();
      std::vector<size_t> supports(current.size(), 0);
      Vector estimates(current.size(), 0.0);
      ParallelFor(0, current.size(), [&](size_t ci) {
        const Conditions& cand = current[ci];
        std::vector<uint64_t> mask(words, 0);
        size_t support = 0;
        for (size_t i = 0; i < n; ++i) {
          if (!bins.Matches(i, cand)) continue;
          mask[i >> 6] |= uint64_t{1} << (i & 63);
          ++support;
        }
        supports[ci] = support;
        estimates[ci] =
            kernels::detail::MaskedSumU64Scalar(influence.data(), mask.data(), n);
      });
      // Collect the frequent and scored patterns in candidate order.
      std::vector<Conditions> next;
      for (size_t ci = 0; ci < current.size(); ++ci) {
        if (supports[ci] < min_count) continue;
        next.push_back(current[ci]);  // Frequent: extendable next depth.
        if (supports[ci] > max_count) continue;
        collect(current[ci], supports[ci], estimates[ci]);
      }
      if (depth == options.max_conditions) break;
      // Extend frequent patterns by one canonical-order condition.
      std::vector<Conditions> extended;
      for (const auto& base : next) {
        if (base.size() != depth) continue;
        for (const auto& ext : singles) {
          if (ext[0].first <= base.back().first) continue;
          Conditions grown = base;
          grown.push_back(ext[0]);
          extended.push_back(std::move(grown));
        }
      }
      current = std::move(extended);
    }
  }
  report.patterns_examined = scored.size();
  XFAIR_COUNTER_ADD("gopher/patterns_examined", scored.size());

  // Most gap-reducing removals first (most negative estimated change).
  // Ties resolve by lexicographic conditions — a total order, so the
  // ranking is identical across engine/oracle paths and thread counts.
  std::sort(scored.begin(), scored.end(),
            [](const GopherPattern& a, const GopherPattern& b) {
              if (a.estimated_gap_change != b.estimated_gap_change)
                return a.estimated_gap_change < b.estimated_gap_change;
              return a.conditions < b.conditions;
            });
  if (scored.size() > options.top_k) scored.resize(options.top_k);

  // Verify by actual retraining without the pattern's subset. Each
  // retrain is independent; fan them out.
  ParallelFor(0, scored.size(), [&](size_t pi) {
    GopherPattern& p = scored[pi];
    std::vector<size_t> keep;
    for (size_t i = 0; i < n; ++i)
      if (!bins.Matches(i, p.conditions)) keep.push_back(i);
    if (keep.size() < train.num_features() + 2) return;
    Dataset reduced = train.Subset(keep);
    LogisticRegression retrained;
    if (!retrained.Fit(reduced).ok()) return;
    p.verified_gap_change =
        StatisticalParityDifference(retrained, train) - report.original_gap;
    p.verified = true;
  });
  report.patterns = std::move(scored);
  return report;
}

}  // namespace xfair
