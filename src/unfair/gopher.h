// Gopher-style data-based explanations [63], [83] (paper §IV-B): explain
// unfairness by the *training data* — find interpretable patterns
// (conjunctions of bounds on feature values) whose removal or relabeling
// from the training set most reduces the model's parity gap. Candidate
// patterns are scored cheaply with influence functions, then the top ones
// are verified by actual retraining.

#ifndef XFAIR_UNFAIR_GOPHER_H_
#define XFAIR_UNFAIR_GOPHER_H_

#include <string>

#include "src/model/logistic_regression.h"
#include "src/unfair/actions.h"

namespace xfair {

/// One pattern and its estimated/verified effect on the parity gap.
struct GopherPattern {
  /// Conjunction of (feature, bin) conditions over the training data.
  std::vector<std::pair<size_t, size_t>> conditions;
  std::string description;
  size_t support = 0;  ///< Matching training instances.
  /// Influence-function estimate of the parity-gap change when the
  /// matching subset is removed (negative = removal reduces the gap).
  double estimated_gap_change = 0.0;
  /// Gap change measured by actually retraining without the subset
  /// (filled only for the verified top-k).
  double verified_gap_change = 0.0;
  bool verified = false;
  /// |estimated change| / support: unfairness concentration, the Gopher
  /// interestingness score.
  double interestingness = 0.0;
};

/// Options for ExplainUnfairnessByPatterns.
struct GopherOptions {
  size_t bins = 3;
  size_t max_conditions = 2;
  double min_support = 0.02;  ///< Of the training set.
  double max_support = 0.5;   ///< Patterns larger than this explain nothing.
  size_t top_k = 5;           ///< Patterns to verify by retraining.
  /// Score candidates on the vertical-bitset lattice engine
  /// (src/unfair/slice_search.h): extents are word-wise ANDs of single
  /// bitvectors, supports are popcounts, and estimates are
  /// kernels::MaskedSumU64 sweeps — every depth takes the fast path.
  /// Off = the per-candidate looped scan over BinTable::Matches, kept as
  /// the golden oracle the engine is pinned against at 0 ulp.
  bool use_bitset_engine = true;
  /// Skip extending subgroups whose total negative influence mass cannot
  /// beat the current top-k (an optimistic bound: any sub-slice's
  /// estimate is a subset sum, so it is at least the parent extent's
  /// negative mass). Never changes the reported top-k patterns; it only
  /// shrinks patterns_examined. Engine path only; needs top_k > 0.
  bool optimistic_prune = true;
};

/// Gopher report: patterns sorted by descending estimated gap reduction.
struct GopherReport {
  std::vector<GopherPattern> patterns;  ///< Top-k, verified.
  double original_gap = 0.0;            ///< Parity gap of the input model.
  size_t patterns_examined = 0;  ///< In-support-band patterns scored.
  size_t candidates_scored = 0;  ///< Lattice candidates materialized.
  size_t bound_pruned = 0;  ///< Extensions cut by the optimistic bound.
};

/// `model` must be a logistic regression fitted on `train` (influence
/// functions need its Hessian). Returns kFailedPrecondition if the
/// Hessian is singular.
Result<GopherReport> ExplainUnfairnessByPatterns(
    const LogisticRegression& model, const Dataset& train,
    const GopherOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_GOPHER_H_
