#include "src/unfair/precof.h"

#include <algorithm>
#include <cmath>

namespace xfair {
namespace {

PrecofReport BuildReport(const Model& model, const Dataset& data,
                         const CounterfactualConfig& config, Rng* rng) {
  const size_t d = data.num_features();
  PrecofReport report;
  report.feature_names.reserve(d);
  for (size_t c = 0; c < d; ++c)
    report.feature_names.push_back(data.schema().feature(c).name);
  Vector changed[2] = {Vector(d, 0.0), Vector(d, 0.0)};
  size_t count[2] = {0, 0};

  for (size_t i = 0; i < data.size(); ++i) {
    const Vector x = data.instance(i);
    if (model.Predict(x) != 0) continue;
    const auto r =
        GrowingSpheresCounterfactual(model, data.schema(), x, config, rng);
    if (!r.valid) continue;
    const int g = data.group(i);
    ++count[g];
    for (size_t c = 0; c < d; ++c) {
      if (std::fabs(r.counterfactual[c] - x[c]) > 1e-12)
        changed[g][c] += 1.0;
    }
  }
  report.counterfactuals_protected = count[1];
  report.counterfactuals_non_protected = count[0];
  report.change_freq_protected.assign(d, 0.0);
  report.change_freq_non_protected.assign(d, 0.0);
  for (size_t c = 0; c < d; ++c) {
    if (count[1] > 0)
      report.change_freq_protected[c] =
          changed[1][c] / static_cast<double>(count[1]);
    if (count[0] > 0)
      report.change_freq_non_protected[c] =
          changed[0][c] / static_cast<double>(count[0]);
  }
  report.frequency_gap.resize(d);
  for (size_t c = 0; c < d; ++c) {
    report.frequency_gap[c] = std::fabs(report.change_freq_protected[c] -
                                        report.change_freq_non_protected[c]);
  }
  report.ranked_features.resize(d);
  for (size_t c = 0; c < d; ++c) report.ranked_features[c] = c;
  std::sort(report.ranked_features.begin(), report.ranked_features.end(),
            [&](size_t a, size_t b) {
              return report.frequency_gap[a] > report.frequency_gap[b];
            });
  return report;
}

}  // namespace

PrecofReport PrecofExplicitBias(const Model& model, const Dataset& data,
                                Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  CounterfactualConfig config;
  config.respect_actionability = false;  // Sensitive attribute may flip.
  return BuildReport(model, data, config, rng);
}

PrecofReport PrecofImplicitBias(const Dataset& data, Rng* rng) {
  XFAIR_CHECK(rng != nullptr);
  const int sens = data.schema().sensitive_index();
  XFAIR_CHECK_MSG(sens >= 0, "data must carry its sensitive column");
  Dataset blind = data.WithoutFeature(static_cast<size_t>(sens));
  LogisticRegression model;
  XFAIR_CHECK(model.Fit(blind).ok());
  CounterfactualConfig config;  // Actionability on: realistic recourse.
  return BuildReport(model, blind, config, rng);
}

}  // namespace xfair
