// PreCoF [71] (paper §IV-A): understanding the causes of unfairness by
// comparing which attributes counterfactuals change per group.
//
// Explicit bias: train *with* the sensitive attribute and let the CF
// search touch it; if flipping the sensitive attribute alone earns the
// favorable outcome, the model discriminates directly.
// Implicit bias: train *without* the sensitive attribute; features whose
// CF-change frequency differs most between groups are the proxies through
// which bias flows.

#ifndef XFAIR_UNFAIR_PRECOF_H_
#define XFAIR_UNFAIR_PRECOF_H_

#include <string>

#include "src/explain/counterfactual.h"
#include "src/model/logistic_regression.h"

namespace xfair {

/// Per-feature counterfactual change frequencies, split by group.
struct PrecofReport {
  std::vector<std::string> feature_names;
  /// change_freq_*[c] = fraction of generated CFs (for negatives of that
  /// group) that changed feature c.
  Vector change_freq_protected;
  Vector change_freq_non_protected;
  /// |protected - non_protected| per feature: large = group-specific
  /// recourse route, the PreCoF bias signal.
  Vector frequency_gap;
  /// Features ordered by descending frequency_gap.
  std::vector<size_t> ranked_features;
  size_t counterfactuals_protected = 0;
  size_t counterfactuals_non_protected = 0;
};

/// Explicit-bias probe: the model must have been trained on data that
/// includes the sensitive column; CF search is run *without* actionability
/// constraints so the sensitive attribute may flip. The report's
/// change frequency of the sensitive column measures direct discrimination.
PrecofReport PrecofExplicitBias(const Model& model, const Dataset& data,
                                Rng* rng);

/// Implicit-bias probe [71]: drops the sensitive column, trains a fresh
/// logistic model on the remainder, generates actionable CFs for each
/// group's negatives, and reports per-group change frequencies — the
/// proxies through which bias operates.
PrecofReport PrecofImplicitBias(const Dataset& data, Rng* rng);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_PRECOF_H_
