#include "src/unfair/recourse.h"

#include <cmath>

namespace xfair {
namespace {

/// Candidate interventions on one node: value +/- delta * noise_std.
std::vector<Intervention> NodeCandidates(
    const Scm& scm, const Vector& x, size_t node,
    const CausalRecourseOptions& options) {
  std::vector<Intervention> out;
  const double scale = std::max(scm.noise_std(node), 1e-6);
  for (double d : options.delta_grid) {
    out.push_back({node, x[node] + d * scale});
    out.push_back({node, x[node] - d * scale});
  }
  return out;
}

double InterventionCost(const Scm& scm, const Vector& x,
                        const std::vector<Intervention>& dos) {
  double cost = 0.0;
  for (const auto& d : dos) {
    cost += std::fabs(d.value - x[d.node]) /
            std::max(scm.noise_std(d.node), 1e-6);
  }
  return cost;
}

}  // namespace

RecourseAction FindCausalRecourse(const Model& model, const Scm& scm,
                                  const Vector& x,
                                  const std::vector<size_t>& actionable_nodes,
                                  const CausalRecourseOptions& options) {
  RecourseAction best;
  if (model.Predict(x) == 1) {
    best.found = true;
    best.resulting_state = x;
    return best;
  }
  auto consider = [&](const std::vector<Intervention>& dos) {
    const Vector cf = scm.Counterfactual(x, dos);
    if (model.Predict(cf) != 1) return;
    const double cost = InterventionCost(scm, x, dos);
    if (!best.found || cost < best.cost) {
      best.found = true;
      best.cost = cost;
      best.interventions = dos;
      best.resulting_state = cf;
    }
  };

  // Single interventions.
  for (size_t node : actionable_nodes) {
    for (const auto& iv : NodeCandidates(scm, x, node, options)) {
      consider({iv});
    }
  }
  if (options.max_interventions >= 2) {
    for (size_t a = 0; a < actionable_nodes.size(); ++a) {
      for (size_t b = a + 1; b < actionable_nodes.size(); ++b) {
        for (const auto& iva :
             NodeCandidates(scm, x, actionable_nodes[a], options)) {
          for (const auto& ivb :
               NodeCandidates(scm, x, actionable_nodes[b], options)) {
            consider({iva, ivb});
          }
        }
      }
    }
  }
  if (!best.found) best.resulting_state = x;
  return best;
}

GroupRecourseReport EvaluateGroupRecourse(const LogisticRegression& model,
                                          const Dataset& data) {
  GroupRecourseReport report;
  double sum[2] = {0.0, 0.0};
  size_t count[2] = {0, 0};
  for (size_t i = 0; i < data.size(); ++i) {
    const Vector x = data.instance(i);
    if (model.Predict(x) != 0) continue;
    const int g = data.group(i);
    sum[g] += model.DistanceToBoundary(x);
    ++count[g];
  }
  report.negatives_protected = count[1];
  report.negatives_non_protected = count[0];
  if (count[1] > 0)
    report.recourse_protected = sum[1] / static_cast<double>(count[1]);
  if (count[0] > 0)
    report.recourse_non_protected = sum[0] / static_cast<double>(count[0]);
  report.recourse_gap =
      report.recourse_protected - report.recourse_non_protected;
  return report;
}

CausalRecourseFairnessReport EvaluateCausalRecourseFairness(
    const Model& model, const CausalWorld& world,
    const std::vector<size_t>& actionable_nodes, size_t num_samples,
    uint64_t seed, const CausalRecourseOptions& options) {
  XFAIR_CHECK(num_samples > 0);
  CausalRecourseFairnessReport report;
  Rng rng(seed);
  double cost_sum[2] = {0.0, 0.0};
  size_t cost_count[2] = {0, 0};
  double twin_diff_sum = 0.0;
  size_t twin_count = 0;

  for (size_t n = 0; n < num_samples; ++n) {
    const double g = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const Vector x =
        world.scm.SampleDo({{world.sensitive, g}}, &rng);
    if (model.Predict(x) != 0) continue;
    const RecourseAction own =
        FindCausalRecourse(model, world.scm, x, actionable_nodes, options);
    if (!own.found) continue;
    const int gi = static_cast<int>(g);
    cost_sum[gi] += own.cost;
    ++cost_count[gi];
    ++report.evaluated;

    // Counterfactual twin in the other group.
    const Vector twin =
        world.scm.Counterfactual(x, {{world.sensitive, 1.0 - g}});
    if (model.Predict(twin) != 0) {
      // The twin needs no recourse at all: maximal individual-level
      // unfairness of recourse cost (own cost vs 0).
      twin_diff_sum += own.cost;
      ++twin_count;
      continue;
    }
    const RecourseAction twin_recourse = FindCausalRecourse(
        model, world.scm, twin, actionable_nodes, options);
    if (!twin_recourse.found) continue;
    twin_diff_sum += std::fabs(own.cost - twin_recourse.cost);
    ++twin_count;
  }
  if (cost_count[1] > 0) {
    report.mean_cost_protected =
        cost_sum[1] / static_cast<double>(cost_count[1]);
  }
  if (cost_count[0] > 0) {
    report.mean_cost_non_protected =
        cost_sum[0] / static_cast<double>(cost_count[0]);
  }
  report.group_gap =
      report.mean_cost_protected - report.mean_cost_non_protected;
  if (twin_count > 0) {
    report.individual_unfairness =
        twin_diff_sum / static_cast<double>(twin_count);
  }
  return report;
}

}  // namespace xfair
