// Recourse for mitigation design (paper §IV-A, Direction (c)):
//  - Actionable recourse as minimal-cost *interventions* in an SCM [65]:
//    actions are do() operations whose downstream effects propagate, not
//    independent feature edits.
//  - Distance-based recourse [79]: an individual's recourse is its
//    distance to the decision boundary; group recourse is the group mean.
//  - Fair causal recourse [80]: recourse is individually fair if its cost
//    would have been the same had the individual belonged to the other
//    group (evaluated via the SCM counterfactual twin).

#ifndef XFAIR_UNFAIR_RECOURSE_H_
#define XFAIR_UNFAIR_RECOURSE_H_

#include "src/causal/worlds.h"
#include "src/model/logistic_regression.h"

namespace xfair {

/// A minimal-cost intervention set found for one individual.
struct RecourseAction {
  std::vector<Intervention> interventions;
  double cost = 0.0;       ///< Sum of |delta| / noise_std per intervention.
  Vector resulting_state;  ///< SCM counterfactual after the interventions.
  bool found = false;
};

/// Options for FindCausalRecourse.
struct CausalRecourseOptions {
  /// Candidate deltas per variable, in units of that variable's noise std.
  std::vector<double> delta_grid = {0.5, 1.0, 1.5, 2.0, 3.0};
  /// Search single interventions, then pairs.
  size_t max_interventions = 2;
};

/// Searches single and paired do() interventions on `actionable_nodes`
/// that flip `model`'s prediction on the SCM counterfactual of `x`,
/// returning the cheapest. Interventions may move values in both
/// directions.
RecourseAction FindCausalRecourse(const Model& model, const Scm& scm,
                                  const Vector& x,
                                  const std::vector<size_t>& actionable_nodes,
                                  const CausalRecourseOptions& options);

/// Group recourse in the sense of [79]: mean distance to the decision
/// boundary over each group's negatively-predicted members.
struct GroupRecourseReport {
  double recourse_protected = 0.0;
  double recourse_non_protected = 0.0;
  /// protected - non_protected: positive = the protected group sits
  /// farther from favorable outcomes.
  double recourse_gap = 0.0;
  size_t negatives_protected = 0;
  size_t negatives_non_protected = 0;
};
GroupRecourseReport EvaluateGroupRecourse(const LogisticRegression& model,
                                          const Dataset& data);

/// Fair causal recourse audit [80].
struct CausalRecourseFairnessReport {
  double mean_cost_protected = 0.0;
  double mean_cost_non_protected = 0.0;
  /// Group-level gap (protected - non_protected).
  double group_gap = 0.0;
  /// Individual-level unfairness: mean |cost(x) - cost(twin)| over
  /// individuals whose twin also needs recourse.
  double individual_unfairness = 0.0;
  size_t evaluated = 0;
};
CausalRecourseFairnessReport EvaluateCausalRecourseFairness(
    const Model& model, const CausalWorld& world,
    const std::vector<size_t>& actionable_nodes, size_t num_samples,
    uint64_t seed, const CausalRecourseOptions& options = {});

}  // namespace xfair

#endif  // XFAIR_UNFAIR_RECOURSE_H_
