#include "src/unfair/slice_search.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/kernels.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

using Conditions = std::vector<std::pair<size_t, size_t>>;

std::string DescribeSlice(const Discretizer& disc, const Schema& schema,
                          const Conditions& conditions) {
  std::string out;
  for (size_t k = 0; k < conditions.size(); ++k) {
    if (k > 0) out += " AND ";
    out += disc.BinLabel(schema, conditions[k].first, conditions[k].second);
  }
  return out;
}

/// Per-row numerator/denominator indicators for a slice metric: the
/// slice's metric is |extent ∩ hit| / |extent ∩ relevant|. Shared by
/// the bitvector engine and the looped oracle so both count the exact
/// same integers.
void MetricIndicators(SliceMetricKind metric, int yhat, int y, bool* hit,
                      bool* relevant) {
  const bool pos = yhat == 1;
  switch (metric) {
    case SliceMetricKind::kSelectionRate:
      *relevant = true;
      *hit = pos;
      break;
    case SliceMetricKind::kAccuracy:
      *relevant = true;
      *hit = pos == (y == 1);
      break;
    case SliceMetricKind::kTruePositiveRate:
      *relevant = y == 1;
      *hit = *relevant && pos;
      break;
    case SliceMetricKind::kFalsePositiveRate:
      *relevant = y == 0;
      *hit = *relevant && pos;
      break;
  }
}

}  // namespace

SliceExtentIndex::SliceExtentIndex(const Discretizer& disc,
                                   const Dataset& data,
                                   const std::vector<size_t>& columns)
    : n_(data.size()), words_((data.size() + 63) / 64) {
  std::vector<size_t> cols = columns;
  if (cols.empty()) {
    cols.resize(data.num_features());
    std::iota(cols.begin(), cols.end(), size_t{0});
  }
  std::vector<size_t> offset(cols.size() + 1, 0);
  for (size_t c = 0; c < cols.size(); ++c) {
    XFAIR_CHECK(cols[c] < data.num_features());
    offset[c + 1] = offset[c] + disc.NumBins(cols[c]);
  }
  const size_t num_sids = offset.back();
  bits_.assign(num_sids * words_, 0);
  supports_.assign(num_sids, 0);
  conditions_.resize(num_sids);
  column_rank_.resize(num_sids);
  for (size_t c = 0; c < cols.size(); ++c) {
    for (size_t b = 0; offset[c] + b < offset[c + 1]; ++b) {
      conditions_[offset[c] + b] = {cols[c], b};
      column_rank_[offset[c] + b] = c;
    }
  }
  // Each column owns a disjoint sid range, so the per-column fills never
  // touch the same words and the result is thread-count independent.
  ParallelFor(0, cols.size(), [&](size_t c) {
    const size_t f = cols[c];
    uint64_t* base = bits_.data() + offset[c] * words_;
    for (size_t i = 0; i < n_; ++i) {
      const size_t b = disc.BinOf(f, data.x().At(i, f));
      base[b * words_ + (i >> 6)] |= uint64_t{1} << (i & 63);
    }
    for (size_t sid = offset[c]; sid < offset[c + 1]; ++sid) {
      supports_[sid] = kernels::PopcountU64(extent(sid), words_);
    }
  });
}

LatticeWalkStats LatticeWalk(
    const SliceExtentIndex& index, size_t min_count, size_t max_depth,
    const std::function<void(size_t)>& begin_level,
    const std::function<void(size_t, const LatticeNode&)>& score,
    const std::function<bool(size_t, const LatticeNode&)>& admit) {
  XFAIR_SPAN("slice_search/lattice_walk");
  XFAIR_LATENCY_NS("latency/lattice_walk_ns");
  LatticeWalkStats stats;
  const size_t words = index.words();

  // Frequent singles in sid order — the depth-1 candidates and the only
  // viable extension set (a child of an infrequent single is infrequent).
  std::vector<uint32_t> frequent;
  for (size_t sid = 0; sid < index.num_singles(); ++sid) {
    if (index.support(sid) == 0) {
      ++stats.singles_zero_support;
    } else if (index.support(sid) < min_count) {
      ++stats.singles_infrequent;
    } else {
      frequent.push_back(static_cast<uint32_t>(sid));
    }
  }

  // Level state: flat sid tuples (depth entries per candidate) plus an
  // extent arena. Depth-1 extents alias the index; deeper levels own
  // theirs.
  std::vector<uint32_t> sids;
  std::vector<uint64_t> arena;
  std::vector<size_t> supports;
  size_t count = frequent.size();
  sids = frequent;
  supports.reserve(count);
  for (uint32_t s : frequent) supports.push_back(index.support(s));

  const auto node_at = [&](size_t ci, size_t depth) {
    LatticeNode node;
    node.sids = sids.data() + ci * depth;
    node.depth = depth;
    node.extent = depth == 1 ? index.extent(sids[ci])
                             : arena.data() + ci * words;
    node.support = supports[ci];
    return node;
  };

  for (size_t depth = 1; depth <= max_depth && count > 0; ++depth) {
    stats.candidates += count;
    XFAIR_COUNTER_ADD("slice_search/level_candidates", count);
    begin_level(count);
    {
      XFAIR_SPAN("slice_search/level_score");
      ParallelFor(0, count,
                  [&](size_t ci) { score(ci, node_at(ci, depth)); });
    }
    // Sequential admit in canonical order; collect the extendable nodes.
    std::vector<size_t> extend;
    {
      XFAIR_SPAN("slice_search/level_admit");
      for (size_t ci = 0; ci < count; ++ci) {
        const LatticeNode node = node_at(ci, depth);
        const bool grow = admit(ci, node);
        if (depth < max_depth && grow && node.support >= min_count) {
          extend.push_back(ci);
        }
      }
    }
    if (depth == max_depth || extend.empty()) break;
    XFAIR_SPAN("slice_search/level_extend");

    // Materialize the children: each extendable node crossed with every
    // frequent single of a strictly later column, in canonical order.
    std::vector<uint32_t> child_sids;
    std::vector<std::pair<size_t, uint32_t>> child_from;  // (parent ci, ext)
    for (size_t pi : extend) {
      const uint32_t last = sids[pi * depth + depth - 1];
      const size_t last_rank = index.column_rank(last);
      for (uint32_t ext : frequent) {
        if (index.column_rank(ext) <= last_rank) continue;
        child_sids.insert(child_sids.end(), sids.begin() + pi * depth,
                          sids.begin() + (pi + 1) * depth);
        child_sids.push_back(ext);
        child_from.emplace_back(pi, ext);
      }
    }
    const size_t child_count = child_from.size();
    std::vector<uint64_t> child_arena(child_count * words);
    std::vector<size_t> child_supports(child_count);
    ParallelFor(0, child_count, [&](size_t ci) {
      const auto& [pi, ext] = child_from[ci];
      const uint64_t* parent = depth == 1 ? index.extent(sids[pi])
                                          : arena.data() + pi * words;
      child_supports[ci] = kernels::AndPopcountU64(
          parent, index.extent(ext), child_arena.data() + ci * words, words);
    });
    sids = std::move(child_sids);
    arena = std::move(child_arena);
    supports = std::move(child_supports);
    count = child_count;
  }
  return stats;
}

WorstSliceReport WorstSliceSearch(const Model& model, const Dataset& data,
                                  const SliceSearchOptions& options) {
  XFAIR_SPAN("slice_search/worst_slice");
  XFAIR_LATENCY_NS("latency/slice_search_ns");
  WorstSliceReport report;
  const size_t n = data.size();
  if (n == 0) return report;

  std::vector<size_t> cols = options.columns;
  if (cols.empty()) {
    cols.resize(data.num_features());
    std::iota(cols.begin(), cols.end(), size_t{0});
  } else {
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    XFAIR_CHECK(cols.back() < data.num_features());
  }
  Discretizer disc(data, options.bins);

  // Metric numerator/denominator indicators per row, packed once.
  const std::vector<int> yhat = model.PredictBatch(data.x());
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> hit_bits(words, 0), rel_bits(words, 0);
  {
    XFAIR_SPAN("slice_search/pack_indicators");
    for (size_t i = 0; i < n; ++i) {
      bool hit = false, relevant = false;
      MetricIndicators(options.metric, yhat[i], data.label(i), &hit,
                       &relevant);
      if (hit) hit_bits[i >> 6] |= uint64_t{1} << (i & 63);
      if (relevant) rel_bits[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  const size_t total_rel = kernels::PopcountU64(rel_bits.data(), words);
  const size_t total_hit = kernels::PopcountU64(hit_bits.data(), words);
  report.overall_metric =
      total_rel == 0
          ? 0.0
          : static_cast<double>(total_hit) / static_cast<double>(total_rel);

  const size_t min_count = std::max<size_t>(
      1, static_cast<size_t>(options.min_support * static_cast<double>(n)));

  struct Qualifying {
    Conditions conditions;
    size_t support, hits, relevant;
  };
  std::vector<Qualifying> qualifying;

  if (options.use_bitset_engine) {
    SliceExtentIndex index(disc, data, cols);
    std::vector<size_t> hits, rels;
    const auto stats = LatticeWalk(
        index, min_count, options.max_conditions,
        /*begin_level=*/
        [&](size_t count) {
          hits.assign(count, 0);
          rels.assign(count, 0);
        },
        /*score=*/
        [&](size_t ci, const LatticeNode& node) {
          hits[ci] =
              kernels::AndPopcountU64(node.extent, hit_bits.data(), words);
          rels[ci] =
              kernels::AndPopcountU64(node.extent, rel_bits.data(), words);
        },
        /*admit=*/
        [&](size_t ci, const LatticeNode& node) {
          if (node.support >= min_count && rels[ci] > 0) {
            Conditions conds(node.depth);
            for (size_t k = 0; k < node.depth; ++k) {
              conds[k] = index.condition(node.sids[k]);
            }
            qualifying.push_back(
                {std::move(conds), node.support, hits[ci], rels[ci]});
          }
          return true;
        });
    report.lattice_candidates = stats.candidates;
    XFAIR_COUNTER_ADD("slice_search/singles_pruned",
                      stats.singles_zero_support);
  } else {
    // Looped golden oracle: same level-wise apriori enumeration, but every
    // candidate is scored by a per-row scan of the raw data.
    std::vector<Conditions> singles;
    for (size_t f : cols) {
      for (size_t b = 0; b < disc.NumBins(f); ++b) singles.push_back({{f, b}});
    }
    std::vector<Conditions> current = singles;
    for (size_t depth = 1; depth <= options.max_conditions && !current.empty();
         ++depth) {
      report.lattice_candidates += current.size();
      std::vector<size_t> supports(current.size(), 0);
      std::vector<size_t> hits(current.size(), 0), rels(current.size(), 0);
      ParallelFor(0, current.size(), [&](size_t ci) {
        const Conditions& cand = current[ci];
        for (size_t i = 0; i < n; ++i) {
          bool match = true;
          for (const auto& [f, b] : cand) {
            if (disc.BinOf(f, data.x().At(i, f)) != b) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          ++supports[ci];
          bool hit = false, relevant = false;
          MetricIndicators(options.metric, yhat[i], data.label(i), &hit,
                           &relevant);
          if (hit) ++hits[ci];
          if (relevant) ++rels[ci];
        }
      });
      std::vector<Conditions> next;
      for (size_t ci = 0; ci < current.size(); ++ci) {
        if (supports[ci] < min_count) continue;
        if (rels[ci] > 0) {
          qualifying.push_back(
              {current[ci], supports[ci], hits[ci], rels[ci]});
        }
        next.push_back(current[ci]);
      }
      if (depth == options.max_conditions) break;
      std::vector<Conditions> extended;
      for (const auto& base : next) {
        if (base.size() != depth) continue;
        for (const auto& ext : singles) {
          if (ext[0].first <= base.back().first) continue;
          Conditions grown = base;
          grown.push_back(ext[0]);
          extended.push_back(std::move(grown));
        }
      }
      current = std::move(extended);
    }
  }

  report.slices_examined = qualifying.size();
  XFAIR_COUNTER_ADD("slice_search/slices_examined", qualifying.size());
  XFAIR_SPAN("slice_search/rank");
  XFAIR_EVENT(kInfo, "slice_search", "worst_slice_done",
              {{"candidates", std::to_string(report.lattice_candidates)},
               {"qualifying", std::to_string(qualifying.size())},
               {"rows", std::to_string(n)}});

  // Worst first under a total order (badness, then larger support, then
  // lexicographic conditions): deterministic at any thread count and
  // identical across engine/oracle paths.
  const bool higher_is_worse =
      options.metric == SliceMetricKind::kFalsePositiveRate;
  const auto badness = [&](const Qualifying& q) {
    const double value =
        static_cast<double>(q.hits) / static_cast<double>(q.relevant);
    return higher_is_worse ? -value : value;
  };
  std::sort(qualifying.begin(), qualifying.end(),
            [&](const Qualifying& a, const Qualifying& b) {
              const double ba = badness(a), bb = badness(b);
              if (ba != bb) return ba < bb;
              if (a.support != b.support) return a.support > b.support;
              return a.conditions < b.conditions;
            });
  if (qualifying.size() > options.top_k) qualifying.resize(options.top_k);

  report.slices.reserve(qualifying.size());
  for (auto& q : qualifying) {
    SliceStat s;
    s.description = DescribeSlice(disc, data.schema(), q.conditions);
    s.conditions = std::move(q.conditions);
    s.support = q.support;
    s.relevant = q.relevant;
    s.hits = q.hits;
    s.metric_value =
        static_cast<double>(q.hits) / static_cast<double>(q.relevant);
    s.gap_to_overall = s.metric_value - report.overall_metric;
    report.slices.push_back(std::move(s));
  }
  return report;
}

}  // namespace xfair
