// Vertical-bitset slice-discovery engine (paper §IV-B subgroup search;
// ROADMAP "intersectional and k-group fairness" direction). The
// intersectional lattice (race×gender×age…) is searched level by level:
// every (column, bin) single condition owns an n-row bitvector built
// once, a depth-k candidate's extent is the word-wise AND of k single
// bitvectors, its support is a popcount sweep, and per-row reductions
// (influence mass, hit/relevant counts) are masked sweeps over the
// extent. Gopher's pattern scoring (src/unfair/gopher.cc) and the
// WorstSliceSearch audit below both run on this engine; see DESIGN.md
// §11 for the layout and the determinism argument.

#ifndef XFAIR_UNFAIR_SLICE_SEARCH_H_
#define XFAIR_UNFAIR_SLICE_SEARCH_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/model/model.h"
#include "src/unfair/actions.h"

namespace xfair {

/// Vertical (transposed) bitset index over discretized rows: each
/// indexed (column, bin) single owns an n-row bitvector (uint64 words,
/// bit i of word i/64 = row i; bits past row n-1 in the last word are
/// zero). Built once per search with Discretizer::BinOf, so extents
/// agree bit for bit with any per-row binning loop over the same data.
class SliceExtentIndex {
 public:
  /// Indexes `columns` of `data` (empty = every feature, ascending).
  /// Columns are indexed in the given order; canonical lattice extension
  /// appends singles of strictly later columns, so pass them sorted.
  SliceExtentIndex(const Discretizer& disc, const Dataset& data,
                   const std::vector<size_t>& columns = {});

  size_t rows() const { return n_; }
  /// uint64 words per extent bitvector.
  size_t words() const { return words_; }
  /// Total singles (one per indexed (column, bin) pair), in column-major
  /// sid order: sids of one column are contiguous, bins ascending.
  size_t num_singles() const { return conditions_.size(); }

  const uint64_t* extent(size_t sid) const {
    return bits_.data() + sid * words_;
  }
  size_t support(size_t sid) const { return supports_[sid]; }
  /// The (dataset column, bin) condition of single `sid`.
  const std::pair<size_t, size_t>& condition(size_t sid) const {
    return conditions_[sid];
  }
  /// Rank of the column owning `sid` in the indexed-column order.
  size_t column_rank(size_t sid) const { return column_rank_[sid]; }

 private:
  size_t n_ = 0, words_ = 0;
  std::vector<uint64_t> bits_;
  std::vector<size_t> supports_;
  std::vector<std::pair<size_t, size_t>> conditions_;
  std::vector<size_t> column_rank_;
};

/// One candidate conjunction viewed during a lattice walk.
struct LatticeNode {
  /// The node's single ids (into SliceExtentIndex), `depth` of them,
  /// with strictly ascending column ranks.
  const uint32_t* sids = nullptr;
  size_t depth = 0;
  /// Extent bitvector (index.words() words): rows matching every single.
  const uint64_t* extent = nullptr;
  size_t support = 0;  ///< Popcount of `extent`.
};

/// What the walk pruned and materialized, for observability counters.
struct LatticeWalkStats {
  size_t singles_zero_support = 0;  ///< Dead (empty-bin) singles dropped.
  size_t singles_infrequent = 0;    ///< Singles with 0 < support < min_count.
  size_t candidates = 0;            ///< Nodes materialized over all depths.
};

/// Level-wise pruned walk of the conjunction lattice over the index's
/// singles. Depth-1 candidates are the frequent singles (support >=
/// min_count; zero-support and infrequent singles are dropped up front —
/// any child of an infrequent single is itself infrequent, so dropping
/// them cannot change what a caller reports). Each deeper candidate's
/// extent is its parent's extent ANDed with one frequent single of a
/// strictly later column (canonical order, no rescan of rows).
///
/// Per level the walk calls `begin_level(count)` once, then `score(ci,
/// node)` for every level candidate from a ParallelFor (ci is the
/// level-local index; candidates are independent, so any thread count
/// produces the same values), then `admit(ci, node)` sequentially in
/// canonical candidate order. A node is extended iff its support
/// reaches min_count and admit returned true — admit is where callers
/// collect results and apply bound-based cutoffs.
LatticeWalkStats LatticeWalk(
    const SliceExtentIndex& index, size_t min_count, size_t max_depth,
    const std::function<void(size_t)>& begin_level,
    const std::function<void(size_t, const LatticeNode&)>& score,
    const std::function<bool(size_t, const LatticeNode&)>& admit);

/// Per-slice group metric a worst-slice audit ranks by. Rates where
/// lower is worse for the slice's members, except kFalsePositiveRate
/// where higher is worse (e.g. recidivism-style harms).
enum class SliceMetricKind {
  kSelectionRate,      ///< P(yhat = 1 | slice): base-rate favorability.
  kAccuracy,           ///< P(yhat = y | slice).
  kTruePositiveRate,   ///< P(yhat = 1 | slice, y = 1): equal opportunity.
  kFalsePositiveRate,  ///< P(yhat = 1 | slice, y = 0): higher = worse.
};

/// Options for WorstSliceSearch.
struct SliceSearchOptions {
  /// Dataset columns to slice over (sorted + deduped internally).
  /// Empty = all features, which includes the sensitive column — the
  /// intersectional audit the paper's subgroup methods assume.
  std::vector<size_t> columns;
  size_t bins = 3;           ///< Discretizer quantile bins per column.
  size_t max_conditions = 3; ///< Lattice depth (intersection arity).
  double min_support = 0.02; ///< Of the dataset; apriori frequency floor.
  size_t top_k = 5;          ///< Worst slices to return.
  SliceMetricKind metric = SliceMetricKind::kSelectionRate;
  /// Route scoring through the vertical-bitset lattice engine. Off =
  /// per-candidate row scans (the golden oracle the tests pin against).
  bool use_bitset_engine = true;
};

/// One audited subgroup and its metric.
struct SliceStat {
  /// Conjunction of (dataset column, bin) conditions defining the slice.
  std::vector<std::pair<size_t, size_t>> conditions;
  std::string description;
  size_t support = 0;   ///< Rows matching the conjunction.
  size_t relevant = 0;  ///< Metric-denominator rows within the slice.
  size_t hits = 0;      ///< Metric-numerator rows within the slice.
  double metric_value = 0.0;     ///< hits / relevant.
  double gap_to_overall = 0.0;   ///< metric_value - overall_metric.
};

/// Worst-off subgroups, worst first.
struct WorstSliceReport {
  std::vector<SliceStat> slices;  ///< Top-k by badness (total order).
  double overall_metric = 0.0;    ///< Same metric over the whole dataset.
  size_t slices_examined = 0;     ///< Qualifying slices ranked.
  size_t lattice_candidates = 0;  ///< Candidates materialized/scored.
};

/// Finds the top-k worst-off intersectional subgroups of `data` under
/// `model` by the chosen metric, searching conjunctions of up to
/// max_conditions discretized conditions over the chosen columns.
/// Slices below min_support or with an empty metric denominator are
/// skipped. Ranking is a total order (badness, then larger support,
/// then lexicographic conditions), so results are deterministic at any
/// thread count and identical between the engine and oracle paths.
WorstSliceReport WorstSliceSearch(const Model& model, const Dataset& data,
                                  const SliceSearchOptions& options);

}  // namespace xfair

#endif  // XFAIR_UNFAIR_SLICE_SEARCH_H_
