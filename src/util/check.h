// Precondition checks for programmer errors.
//
// XFAIR_CHECK aborts with a message on violation; it is always on (not
// compiled out in release builds) because the library's correctness
// guarantees depend on these invariants. Recoverable errors use Status.

#ifndef XFAIR_UTIL_CHECK_H_
#define XFAIR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace xfair::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const char* msg) {
  std::fprintf(stderr, "XFAIR_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace xfair::internal

/// Aborts if `cond` is false. Use for preconditions whose violation is a
/// bug in the caller, never for data-dependent failures.
#define XFAIR_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::xfair::internal::CheckFail(__FILE__, __LINE__, #cond, "");     \
  } while (0)

/// XFAIR_CHECK with an explanatory message (a string literal).
#define XFAIR_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond))                                                       \
      ::xfair::internal::CheckFail(__FILE__, __LINE__, #cond, msg);    \
  } while (0)

// Debug-only check for per-element hot paths (Matrix::At and friends).
// Armed in Debug builds (no NDEBUG) and whenever the build opts in via
// XFAIR_DCHECK_ENABLED — which CMake defines for every sanitizer
// configuration, so ASan/UBSan/TSan runs always see the full checks. In
// plain release builds it compiles to nothing (the condition is not
// evaluated, only syntax-checked), which is what lets the dense kernels
// and flat-tree inference vectorize.
#if defined(XFAIR_DCHECK_ENABLED) || !defined(NDEBUG)
#define XFAIR_DCHECK_IS_ON 1
#define XFAIR_DCHECK(cond) XFAIR_CHECK(cond)
#define XFAIR_DCHECK_MSG(cond, msg) XFAIR_CHECK_MSG(cond, msg)
#else
#define XFAIR_DCHECK_IS_ON 0
#define XFAIR_DCHECK(cond)       \
  do {                           \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)
#define XFAIR_DCHECK_MSG(cond, msg) XFAIR_DCHECK(cond)
#endif

#endif  // XFAIR_UTIL_CHECK_H_
