#include "src/util/kdtree.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/util/kernels.h"

namespace xfair {
namespace {

/// Max-heap comparator on (squared distance, row index): the worst
/// candidate — largest distance, then largest index — sits at the front.
inline bool HeapLess(const std::pair<double, size_t>& a,
                     const std::pair<double, size_t>& b) {
  return a.first < b.first || (a.first == b.first && a.second < b.second);
}

}  // namespace

KdTree::KdTree(const Matrix& points, size_t leaf_size) : points_(points) {
  XFAIR_CHECK(leaf_size > 0);
  order_.resize(points_.rows());
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!order_.empty()) {
    nodes_.reserve(2 * order_.size() / leaf_size + 2);
    Build(0, static_cast<uint32_t>(order_.size()), leaf_size);
  }
}

int32_t KdTree::Build(uint32_t begin, uint32_t end, size_t leaf_size) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].begin = begin;
  nodes_[id].end = end;
  if (end - begin <= leaf_size) return id;

  // Split on the dimension with the largest spread (ties -> smallest
  // dimension) so elongated clouds split along their long axis. A zero
  // spread everywhere means all points coincide: keep a leaf.
  const size_t d = points_.cols();
  int32_t split_dim = -1;
  double best_spread = 0.0;
  for (size_t c = 0; c < d; ++c) {
    double lo = points_.At(order_[begin], c), hi = lo;
    for (uint32_t i = begin + 1; i < end; ++i) {
      const double v = points_.At(order_[i], c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      split_dim = static_cast<int32_t>(c);
    }
  }
  if (split_dim < 0) return id;

  // Median split ordered by (coordinate, row index): deterministic for
  // any duplicate coordinates.
  const uint32_t mid = begin + (end - begin) / 2;
  const size_t sc = static_cast<size_t>(split_dim);
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](uint32_t a, uint32_t b) {
                     const double va = points_.At(a, sc);
                     const double vb = points_.At(b, sc);
                     return va < vb || (va == vb && a < b);
                   });
  nodes_[id].split_dim = split_dim;
  nodes_[id].split_val = points_.At(order_[mid], sc);
  const int32_t left = Build(begin, mid, leaf_size);
  nodes_[id].left = left;
  const int32_t right = Build(mid, end, leaf_size);
  nodes_[id].right = right;
  return id;
}

double KdTree::SquaredDistance(const double* q, size_t row) const {
  // Pinned-order dense kernel: brute-force reference scans must use the
  // same kernel to stay bit-identical (see KnnClassifier).
  return kernels::SquaredDistance(points_.RowPtr(row), q, points_.cols());
}

void KdTree::Search(int32_t node, const double* q, size_t k,
                    std::vector<std::pair<double, size_t>>* heap,
                    size_t* visited) const {
  ++*visited;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.split_dim < 0) {
    for (uint32_t i = n.begin; i < n.end; ++i) {
      const size_t row = order_[i];
      const std::pair<double, size_t> cand(SquaredDistance(q, row), row);
      if (heap->size() < k) {
        heap->push_back(cand);
        std::push_heap(heap->begin(), heap->end(), HeapLess);
      } else if (HeapLess(cand, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), HeapLess);
        heap->back() = cand;
        std::push_heap(heap->begin(), heap->end(), HeapLess);
      }
    }
    return;
  }
  const double qv = q[static_cast<size_t>(n.split_dim)];
  const double diff = qv - n.split_val;
  const int32_t near = diff <= 0.0 ? n.left : n.right;
  const int32_t far = diff <= 0.0 ? n.right : n.left;
  Search(near, q, k, heap, visited);
  // The far half-space is at least diff^2 away. Prune only when every
  // point there is *strictly* worse than the current k-th candidate, so
  // equal-distance points still compete on row index.
  if (heap->size() < k || diff * diff <= heap->front().first) {
    Search(far, q, k, heap, visited);
  }
}

std::vector<size_t> KdTree::KNearest(const double* q, size_t k) const {
  XFAIR_CHECK(k > 0 && k <= points_.rows());
  std::vector<std::pair<double, size_t>> heap;
  heap.reserve(k);
  size_t visited = 0;
  Search(0, q, k, &heap, &visited);
  XFAIR_COUNTER_ADD("kdtree/queries", 1);
  XFAIR_HISTOGRAM_OBSERVE("kdtree/nodes_visited", visited);
  std::sort(heap.begin(), heap.end(), HeapLess);
  std::vector<size_t> out(heap.size());
  for (size_t i = 0; i < heap.size(); ++i) out[i] = heap[i].second;
  return out;
}

std::vector<size_t> KdTree::KNearest(const Vector& q, size_t k) const {
  XFAIR_CHECK(q.size() == points_.cols());
  return KNearest(q.data(), k);
}

}  // namespace xfair
