// Exact k-nearest-neighbor index with deterministic tie-breaking.
//
// A KD-tree over the rows of a dense matrix, built by median splits on the
// maximum-spread dimension. Queries return exactly the k rows that a
// stable brute-force scan would return: candidates are ordered by the
// total order (squared distance, row index), and a subtree is pruned only
// when every point in it is *strictly* farther than the current k-th
// candidate — so equal-distance points always compete and the smaller row
// index wins, regardless of traversal order. Squared distances are
// accumulated in ascending coordinate order, matching the brute-force
// reference bit for bit; the index is therefore a drop-in replacement for
// the O(n*d) scan in KnnClassifier and the neighbor-seeded counterfactual
// search.

#ifndef XFAIR_UTIL_KDTREE_H_
#define XFAIR_UTIL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "src/util/matrix.h"

namespace xfair {

/// KD-tree over matrix rows for exact Euclidean k-NN queries.
class KdTree {
 public:
  KdTree() = default;

  /// Builds the index over the rows of `points` (copied). O(n log n).
  /// `leaf_size` rows or fewer are scanned linearly at the leaves.
  explicit KdTree(const Matrix& points, size_t leaf_size = 16);

  /// Number of indexed rows.
  size_t size() const { return points_.rows(); }
  bool empty() const { return points_.rows() == 0; }

  /// The indexed points (row order preserved from construction).
  const Matrix& points() const { return points_; }

  /// Row indices of the k nearest points to `q`, closest first; ties
  /// broken by ascending row index. Requires 0 < k <= size() and
  /// `q` to hold cols() coordinates.
  std::vector<size_t> KNearest(const double* q, size_t k) const;
  std::vector<size_t> KNearest(const Vector& q, size_t k) const;

  /// Squared Euclidean distance from `q` to indexed row `row`, summed in
  /// ascending coordinate order (the same arithmetic the queries use).
  double SquaredDistance(const double* q, size_t row) const;

 private:
  struct Node {
    int32_t split_dim = -1;   ///< -1 for a leaf.
    double split_val = 0.0;   ///< Left coords <= split_val <= right coords.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;  ///< Leaf: range into order_.
    uint32_t end = 0;
  };

  int32_t Build(uint32_t begin, uint32_t end, size_t leaf_size);
  /// `visited` counts nodes touched, for the kdtree/nodes_visited
  /// histogram (observability only — never affects the result).
  void Search(int32_t node, const double* q, size_t k,
              std::vector<std::pair<double, size_t>>* heap,
              size_t* visited) const;

  Matrix points_;
  std::vector<uint32_t> order_;  ///< Row ids permuted by the build.
  std::vector<Node> nodes_;
};

}  // namespace xfair

#endif  // XFAIR_UTIL_KDTREE_H_
