#include "src/util/kernels.h"

#include <cmath>

#include "src/obs/obs.h"

// AVX2 specializations are compiled when the build opts in
// (-DXFAIR_SIMD=ON -> XFAIR_SIMD_ENABLED) on an x86-64 toolchain, and
// selected at runtime via cpuid so the same binary runs on machines
// without AVX2. Each intrinsic body mirrors the scalar pinned-order
// implementation lane for lane; FMA is never used (it would fuse the
// multiply-add rounding and break the 0-ulp scalar/SIMD guarantee).
#if defined(XFAIR_SIMD_ENABLED) && defined(__x86_64__)
#define XFAIR_KERNELS_AVX2 1
#include <immintrin.h>
#endif

namespace xfair::kernels {
namespace detail {

double DotScalar(const double* __restrict a, const double* __restrict b,
                 size_t n) {
  const size_t n4 = n & ~size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (size_t i = 0; i < n4; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredDistanceScalar(const double* __restrict a,
                             const double* __restrict b, size_t n) {
  const size_t n4 = n & ~size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (size_t i = 0; i < n4; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double WeightedSquaredDistanceScalar(const double* __restrict a,
                                     const double* __restrict b,
                                     const double* __restrict inv_scale,
                                     size_t n) {
  const size_t n4 = n & ~size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (size_t i = 0; i < n4; i += 4) {
    const double d0 = (a[i] - b[i]) * inv_scale[i];
    const double d1 = (a[i + 1] - b[i + 1]) * inv_scale[i + 1];
    const double d2 = (a[i + 2] - b[i + 2]) * inv_scale[i + 2];
    const double d3 = (a[i + 3] - b[i + 3]) * inv_scale[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) {
    const double d = (a[i] - b[i]) * inv_scale[i];
    acc += d * d;
  }
  return acc;
}

double MaskedDotScalar(const double* __restrict w,
                       const double* __restrict a,
                       const double* __restrict b,
                       const uint8_t* __restrict keep, size_t n) {
  const size_t n4 = n & ~size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (size_t i = 0; i < n4; i += 4) {
    l0 += w[i] * (keep[i] ? a[i] : b[i]);
    l1 += w[i + 1] * (keep[i + 1] ? a[i + 1] : b[i + 1]);
    l2 += w[i + 2] * (keep[i + 2] ? a[i + 2] : b[i + 2]);
    l3 += w[i + 3] * (keep[i + 3] ? a[i + 3] : b[i + 3]);
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) acc += w[i] * (keep[i] ? a[i] : b[i]);
  return acc;
}

double MaskedSumU64Scalar(const double* __restrict v,
                          const uint64_t* __restrict bits, size_t n) {
  const size_t n4 = n & ~size_t{3};
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  while (i < n4) {
    if ((i & 63) == 0) {
      // Zero-word skip (part of the API, see kernels.h): a 64-row group
      // with no set bits would only add +0.0 to each lane, so whole
      // zero words are stepped over without touching the accumulators.
      while (i + 64 <= n4 && bits[i >> 6] == 0) i += 64;
      if (i >= n4) break;
    }
    const uint64_t nib = (bits[i >> 6] >> (i & 63)) & 0xF;
    l0 += (nib & 1) ? v[i] : 0.0;
    l1 += (nib & 2) ? v[i + 1] : 0.0;
    l2 += (nib & 4) ? v[i + 2] : 0.0;
    l3 += (nib & 8) ? v[i + 3] : 0.0;
    i += 4;
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (size_t t = n4; t < n; ++t) {
    acc += ((bits[t >> 6] >> (t & 63)) & 1) ? v[t] : 0.0;
  }
  return acc;
}

void AxpyScalar(double alpha, const double* __restrict x,
                double* __restrict y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace detail

#if XFAIR_KERNELS_AVX2
namespace {

/// Combines the four lanes of `acc` in the pinned order
/// (lane0 + lane1) + (lane2 + lane3) using scalar adds.
__attribute__((target("avx2"))) inline double HorizontalPinned(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);     // lanes 0, 1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);   // lanes 2, 3
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

__attribute__((target("avx2"))) double DotAvx2(const double* __restrict a,
                                               const double* __restrict b,
                                               size_t n) {
  const size_t n4 = n & ~size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, prod);
  }
  double total = HorizontalPinned(acc);
  for (size_t i = n4; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2"))) double SquaredDistanceAvx2(
    const double* __restrict a, const double* __restrict b, size_t n) {
  const size_t n4 = n & ~size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = HorizontalPinned(acc);
  for (size_t i = n4; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2"))) double WeightedSquaredDistanceAvx2(
    const double* __restrict a, const double* __restrict b,
    const double* __restrict inv_scale, size_t n) {
  const size_t n4 = n & ~size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)),
        _mm256_loadu_pd(inv_scale + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = HorizontalPinned(acc);
  for (size_t i = n4; i < n; ++i) {
    const double d = (a[i] - b[i]) * inv_scale[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha,
                                              const double* __restrict x,
                                              double* __restrict y,
                                              size_t n) {
  const size_t n4 = n & ~size_t{3};
  const __m256d va = _mm256_set1_pd(alpha);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (size_t i = n4; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) double MaskedSumU64Avx2(
    const double* __restrict v, const uint64_t* __restrict bits, size_t n) {
  const size_t n4 = n & ~size_t{3};
  // Lane j of `sel` carries bit value 1 << j; comparing (nibble & sel)
  // against sel turns the mask nibble into a per-lane all-ones/zeros
  // blend mask. ANDing the loaded values keeps masked-in lanes exact and
  // turns masked-out lanes into +0.0 — the same term the scalar
  // reference adds, so the add sequences are identical.
  const __m256i sel = _mm256_set_epi64x(8, 4, 2, 1);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  while (i < n4) {
    if ((i & 63) == 0) {
      while (i + 64 <= n4 && bits[i >> 6] == 0) i += 64;  // Zero-word skip.
      if (i >= n4) break;
    }
    const long long nib =
        static_cast<long long>((bits[i >> 6] >> (i & 63)) & 0xF);
    const __m256i hit = _mm256_and_si256(_mm256_set1_epi64x(nib), sel);
    const __m256d mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(hit, sel));
    acc = _mm256_add_pd(acc, _mm256_and_pd(mask, _mm256_loadu_pd(v + i)));
    i += 4;
  }
  double total = HorizontalPinned(acc);
  for (size_t t = n4; t < n; ++t) {
    total += ((bits[t >> 6] >> (t & 63)) & 1) ? v[t] : 0.0;
  }
  return total;
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }
const bool kAvx2 = DetectAvx2();

}  // namespace
#endif  // XFAIR_KERNELS_AVX2

bool SimdActive() {
#if XFAIR_KERNELS_AVX2
  return kAvx2;
#else
  return false;
#endif
}

double Dot(const double* a, const double* b, size_t n) {
#if XFAIR_KERNELS_AVX2
  if (kAvx2) return DotAvx2(a, b, n);
#endif
  return detail::DotScalar(a, b, n);
}

double SquaredDistance(const double* a, const double* b, size_t n) {
#if XFAIR_KERNELS_AVX2
  if (kAvx2) return SquaredDistanceAvx2(a, b, n);
#endif
  return detail::SquaredDistanceScalar(a, b, n);
}

double WeightedSquaredDistance(const double* a, const double* b,
                               const double* inv_scale, size_t n) {
#if XFAIR_KERNELS_AVX2
  if (kAvx2) return WeightedSquaredDistanceAvx2(a, b, inv_scale, n);
#endif
  return detail::WeightedSquaredDistanceScalar(a, b, inv_scale, n);
}

double MaskedDot(const double* w, const double* a, const double* b,
                 const uint8_t* keep, size_t n) {
  return detail::MaskedDotScalar(w, a, b, keep, n);
}

double MaskedSumU64(const double* v, const uint64_t* bits, size_t n) {
#if XFAIR_KERNELS_AVX2
  if (kAvx2) return MaskedSumU64Avx2(v, bits, n);
#endif
  return detail::MaskedSumU64Scalar(v, bits, n);
}

size_t PopcountU64(const uint64_t* bits, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(bits[w]));
  }
  return count;
}

size_t AndPopcountU64(const uint64_t* __restrict a,
                      const uint64_t* __restrict b,
                      uint64_t* __restrict out, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    const uint64_t v = a[w] & b[w];
    out[w] = v;
    count += static_cast<size_t>(__builtin_popcountll(v));
  }
  return count;
}

size_t AndPopcountU64(const uint64_t* __restrict a,
                      const uint64_t* __restrict b, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
#if XFAIR_KERNELS_AVX2
  if (kAvx2) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  detail::AxpyScalar(alpha, x, y, n);
}

void ScaledAxpy(double alpha, const double* __restrict scale,
                const double* __restrict x, double* __restrict y,
                size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * (scale[i] * x[i]);
}

void AccumSquaredDiff(const double* __restrict x,
                      const double* __restrict mean,
                      double* __restrict acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - mean[i];
    acc[i] += d * d;
  }
}

void Standardize(const double* __restrict x, const double* __restrict mean,
                 const double* __restrict std, double* __restrict out,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = (x[i] - mean[i]) / std[i];
}

void MaskedBlend(const double* __restrict a, const double* __restrict b,
                 const uint8_t* __restrict keep, double* __restrict out,
                 size_t n) {
  XFAIR_COUNTER_ADD("kernels/masked_blend", 1);
  for (size_t i = 0; i < n; ++i) out[i] = keep[i] ? a[i] : b[i];
}

void Gemv(const double* m, size_t rows, size_t cols, const double* v,
          double bias, double* out) {
  XFAIR_COUNTER_ADD("kernels/gemv_rows", rows);
  for (size_t r = 0; r < rows; ++r) out[r] = bias + Dot(m + r * cols, v, cols);
}

void GemvBias(const double* m, size_t rows, size_t cols, const double* v,
              const double* bias, double* out) {
  XFAIR_COUNTER_ADD("kernels/gemv_rows", rows);
  for (size_t r = 0; r < rows; ++r)
    out[r] = bias[r] + Dot(m + r * cols, v, cols);
}

void MatVecT(const double* m, size_t rows, size_t cols, const double* v,
             double* out) {
  XFAIR_COUNTER_ADD("kernels/matvect_rows", rows);
  for (size_t r = 0; r < rows; ++r) Axpy(v[r], m + r * cols, out, cols);
}

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void SigmoidBatch(const double* __restrict z, double* __restrict out,
                  size_t n) {
  XFAIR_COUNTER_ADD("kernels/sigmoid_batch_elems", n);
  for (size_t i = 0; i < n; ++i) out[i] = Sigmoid(z[i]);
}

void SoftmaxRow(double* logits, size_t k) {
  XFAIR_COUNTER_ADD("kernels/softmax_rows", 1);
  double max_logit = -1e300;
  for (size_t i = 0; i < k; ++i) max_logit = std::max(max_logit, logits[i]);
  double denom = 0.0;
  for (size_t i = 0; i < k; ++i) {
    logits[i] = std::exp(logits[i] - max_logit);
    denom += logits[i];
  }
  for (size_t i = 0; i < k; ++i) logits[i] /= denom;
}

void SgdPairUpdate(double* __restrict u, double* __restrict q, double lr,
                   double err, double l2, size_t n) {
  XFAIR_COUNTER_ADD("kernels/sgd_pair_updates", 1);
  for (size_t i = 0; i < n; ++i) {
    const double pu = u[i], qi = q[i];
    u[i] -= lr * (err * qi + l2 * pu);
    q[i] -= lr * (err * pu + l2 * qi);
  }
}

}  // namespace xfair::kernels
