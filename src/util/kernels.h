// Dense kernel layer: check-free, SIMD-friendly inner loops.
//
// Every fit/predict/distance hot loop in the library bottoms out in one
// of these primitives. They take raw `__restrict`-qualified pointers —
// no Matrix::At bounds check per element (callers validate shapes once,
// the kernels trust them; Debug/sanitizer builds re-arm the per-element
// checks via XFAIR_DCHECK in Matrix) — so the compiler can keep the
// inner loop in registers and vector units.
//
// Determinism contract (see DESIGN.md §7). Reduction kernels (Dot,
// SquaredDistance, WeightedSquaredDistance, MaskedDot, and Gemv's
// per-row dots) accumulate in a *pinned four-lane order* that is part of
// the API, not an implementation detail:
//
//   lane j   accumulates elements j, j+4, j+8, ... (j in 0..3) over the
//            first 4*floor(n/4) elements, each as acc_j += term_i;
//   combine  total = (lane0 + lane1) + (lane2 + lane3);
//   tail     the remaining n mod 4 elements are added sequentially:
//            total += term_i for i = 4*floor(n/4) .. n-1.
//
// The AVX2 specializations (enabled by -DXFAIR_SIMD=ON, dispatched at
// runtime on cpuid) map lane j to vector lane j and use separate
// multiply/add instructions — never FMA, which would contract the
// rounding — so scalar and SIMD builds produce bit-identical results (0
// ulp, golden-tested in tests/kernels_test.cc). For n < 4 the pinned
// order degenerates to the naive sequential loop. Elementwise kernels
// (Axpy, SigmoidBatch, MaskedBlend, ...) have one IEEE-defined result
// per element and are trivially order-independent.
//
// Instrumentation: kernels invoked once per batch or per row carry an
// XFAIR_COUNTER_ADD so BENCH JSONs report kernel call volumes. The
// element-granularity reducers (Dot, SquaredDistance, Axpy) are left
// uncounted on purpose: a relaxed atomic per call would cost as much as
// the kernel itself at the d ~ 4-64 sizes the library runs.

#ifndef XFAIR_UTIL_KERNELS_H_
#define XFAIR_UTIL_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace xfair::kernels {

/// sum_i a[i] * b[i], pinned four-lane order.
double Dot(const double* a, const double* b, size_t n);

/// sum_i (a[i] - b[i])^2, pinned four-lane order.
double SquaredDistance(const double* a, const double* b, size_t n);

/// sum_i ((a[i] - b[i]) * inv_scale[i])^2, pinned four-lane order.
double WeightedSquaredDistance(const double* a, const double* b,
                               const double* inv_scale, size_t n);

/// sum_i w[i] * (keep[i] ? a[i] : b[i]), pinned four-lane order. `keep`
/// is a byte mask (0 = take b). Branchless coalition evaluation for
/// linear models.
double MaskedDot(const double* w, const double* a, const double* b,
                 const uint8_t* keep, size_t n);

/// y[i] += alpha * x[i] (elementwise; no FMA contraction).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// y[i] += alpha * scale[i] * x[i], evaluated as alpha * (scale * x).
void ScaledAxpy(double alpha, const double* scale, const double* x,
                double* y, size_t n);

/// acc[i] += (x[i] - mean[i])^2 (elementwise): the second pass of
/// column-variance computed row-major.
void AccumSquaredDiff(const double* x, const double* mean, double* acc,
                      size_t n);

/// out[i] = (x[i] - mean[i]) / std[i] (elementwise standardization).
void Standardize(const double* x, const double* mean, const double* std,
                 double* out, size_t n);

/// out[i] = keep[i] ? a[i] : b[i] — masked-instance assembly for SHAP
/// coalition evaluation. Counted per call ("kernels/masked_blend").
void MaskedBlend(const double* a, const double* b, const uint8_t* keep,
                 double* out, size_t n);

/// out[r] = bias + Dot(row_r of m, v) for a row-major rows x cols
/// matrix; each row uses the pinned dot. Counted ("kernels/gemv_rows").
void Gemv(const double* m, size_t rows, size_t cols, const double* v,
          double bias, double* out);

/// out[r] = bias[r] + Dot(row_r of m, v). Counted ("kernels/gemv_rows").
void GemvBias(const double* m, size_t rows, size_t cols, const double* v,
              const double* bias, double* out);

/// out[c] += sum_r v[r] * m[r][c] (transpose mat-vec), accumulated row
/// by row in ascending r — an Axpy per row, elementwise deterministic.
/// `out` must be pre-initialized. Counted ("kernels/matvect_rows").
void MatVecT(const double* m, size_t rows, size_t cols, const double* v,
             double* out);

/// Branch-stable logistic function (the library's one sigmoid).
double Sigmoid(double z);

/// out[i] = Sigmoid(z[i]). Counted ("kernels/sigmoid_batch_elems").
void SigmoidBatch(const double* z, double* out, size_t n);

/// In-place softmax of one row of k logits: subtract the sequential
/// running max, exponentiate, divide by the sequentially accumulated
/// denominator — exactly the order SoftmaxRegression::PredictProba has
/// always used, so batch and single-row paths stay bit-identical.
/// Counted ("kernels/softmax_rows").
void SoftmaxRow(double* logits, size_t k);

/// sum of v[i] over the set bits of an n-row bitvector (uint64 words,
/// bit i of word i/64 is row i), the extent-masked reducer behind the
/// subgroup-search lattice. Pinned four-lane order over masked terms
/// t_i = (bit_i ? v[i] : 0.0), with one extra rule that is also part of
/// the API: a 64-row group whose mask word is zero is skipped outright
/// (its sixteen all-zero quads never touch the accumulators), so sparse
/// extents cost O(set words), not O(n). The scalar reference and the
/// AVX2 specialization execute the identical add sequence, so they are
/// bit-identical at 0 ulp like every other reducer.
double MaskedSumU64(const double* v, const uint64_t* bits, size_t n);

/// Number of set bits in `words` uint64 words.
size_t PopcountU64(const uint64_t* bits, size_t words);

/// out[w] = a[w] & b[w]; returns the popcount of the result. The
/// word-wise extent intersection of the lattice engine: a depth-k
/// candidate's extent is the AND of k single-condition bitvectors, and
/// its support is the returned popcount. Integer-only, so SIMD and
/// thread count cannot perturb it.
size_t AndPopcountU64(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t words);

/// Popcount of a & b without materializing the intersection — counting
/// metric numerators/denominators inside an extent (hits = |extent ∩
/// predicted-positive| and so on) costs two sweeps and no scratch.
size_t AndPopcountU64(const uint64_t* a, const uint64_t* b, size_t words);

/// One paired SGD step of matrix factorization on user factors u and
/// item factors q (the BPR-style update in src/rec/mf.cc):
///   u[i] -= lr * (err * q_old + l2 * u_old)
///   q[i] -= lr * (err * u_old + l2 * q_old)
/// with both reads taken before either write. Counted
/// ("kernels/sgd_pair_updates").
void SgdPairUpdate(double* u, double* q, double lr, double err, double l2,
                   size_t n);

/// True when the AVX2 specializations are compiled in *and* the CPU
/// supports them (what the dispatched entry points above will use).
bool SimdActive();

namespace detail {
// Scalar reference implementations of the pinned order, always compiled
// regardless of XFAIR_SIMD. The golden tests compare the dispatched
// kernels against these at 0 ulp, which is exactly the XFAIR_SIMD
// ON/OFF equivalence guarantee.
double DotScalar(const double* a, const double* b, size_t n);
double SquaredDistanceScalar(const double* a, const double* b, size_t n);
double WeightedSquaredDistanceScalar(const double* a, const double* b,
                                     const double* inv_scale, size_t n);
double MaskedDotScalar(const double* w, const double* a, const double* b,
                       const uint8_t* keep, size_t n);
double MaskedSumU64Scalar(const double* v, const uint64_t* bits, size_t n);
void AxpyScalar(double alpha, const double* x, double* y, size_t n);
}  // namespace detail

}  // namespace xfair::kernels

#endif  // XFAIR_UTIL_KERNELS_H_
