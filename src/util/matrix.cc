#include "src/util/matrix.h"

#include <cmath>

#include "src/util/kernels.h"

namespace xfair {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    XFAIR_CHECK_MSG(rows[r].size() == m.cols_, "ragged rows");
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  XFAIR_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<long>(r * cols_),
                data_.begin() + static_cast<long>((r + 1) * cols_));
}

Vector Matrix::Col(size_t c) const {
  XFAIR_CHECK(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  XFAIR_CHECK(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = v[c];
}

Vector Matrix::MatVec(const Vector& v) const {
  XFAIR_CHECK(v.size() == cols_);
  Vector out(rows_, 0.0);
  kernels::Gemv(data_.data(), rows_, cols_, v.data(), 0.0, out.data());
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& v) const {
  XFAIR_CHECK(v.size() == rows_);
  Vector out(cols_, 0.0);
  kernels::MatVecT(data_.data(), rows_, cols_, v.data(), out.data());
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  XFAIR_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      kernels::Axpy(aik, other.RowPtr(k), out.RowPtr(i), other.cols_);
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  return out;
}

double Dot(const Vector& a, const Vector& b) {
  XFAIR_CHECK(a.size() == b.size());
  return kernels::Dot(a.data(), b.data(), a.size());
}

double Norm2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double Norm1(const Vector& a) {
  double acc = 0.0;
  for (double x : a) acc += std::fabs(x);
  return acc;
}

size_t NonZeroCount(const Vector& a, double tol) {
  size_t n = 0;
  for (double x : a)
    if (std::fabs(x) > tol) ++n;
  return n;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  XFAIR_CHECK(x.size() == y->size());
  kernels::Axpy(alpha, x.data(), y->data(), x.size());
}

Vector Sub(const Vector& a, const Vector& b) {
  XFAIR_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(const Vector& a, const Vector& b) {
  XFAIR_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Scale(double alpha, const Vector& a) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

Result<Vector> SolveLinearSystem(Matrix a, Vector b) {
  XFAIR_CHECK(a.rows() == a.cols());
  XFAIR_CHECK(b.size() == a.rows());
  const size_t n = a.rows();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular matrix in solve");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c)
        std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double d = a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a.At(r, col) / d;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= f * a.At(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  Vector x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a.At(ri, c) * x[c];
    x[ri] = acc / a.At(ri, ri);
  }
  return x;
}

Result<Matrix> Invert(const Matrix& a) {
  XFAIR_CHECK(a.rows() == a.cols());
  const size_t n = a.rows();
  Matrix inv(n, n);
  for (size_t c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    Result<Vector> col = SolveLinearSystem(a, std::move(e));
    if (!col.ok()) return col.status();
    for (size_t r = 0; r < n; ++r) inv.At(r, c) = (*col)[r];
  }
  return inv;
}

}  // namespace xfair
