// Dense linear algebra used throughout xfair.
//
// The library deliberately ships its own small dense kernel instead of
// depending on BLAS/Eigen: every model and explainer here operates on
// tens-to-hundreds of features, where a simple row-major kernel is fast
// enough and keeps the build dependency-free.

#ifndef XFAIR_UTIL_MATRIX_H_
#define XFAIR_UTIL_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/util/check.h"
#include "src/util/status.h"

namespace xfair {

/// Dense column of doubles; the library's basic numeric vector type.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Builds from nested initializer-style rows; all rows must be equal
  /// length.
  static Matrix FromRows(const std::vector<Vector>& rows);
  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Element access is bounds-checked only in Debug/sanitizer builds
  // (XFAIR_DCHECK): a per-element branch in release defeats
  // auto-vectorization of every fit/predict/distance loop, and the dense
  // kernel layer (src/util/kernels.h) these loops run through validates
  // shapes once per call instead. Sanitizer configurations re-arm the
  // checks, so an out-of-bounds index still aborts in scripts/verify.sh's
  // ASan/UBSan/TSan stages.
  double& At(size_t r, size_t c) {
    XFAIR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    XFAIR_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked-in-release element access, same contract as At.
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Pointer to the start of row r (contiguous, cols() entries).
  const double* RowPtr(size_t r) const {
    XFAIR_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  double* RowPtr(size_t r) {
    XFAIR_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Row r as a span (no copy, cols() entries).
  std::span<const double> RowSpan(size_t r) const {
    XFAIR_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> RowSpan(size_t r) {
    XFAIR_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of row r as a Vector.
  Vector Row(size_t r) const;
  /// Copy of column c as a Vector.
  Vector Col(size_t c) const;
  /// Overwrites row r with `v` (v.size() must equal cols()).
  void SetRow(size_t r, const Vector& v);

  /// this * v. Requires v.size() == cols().
  Vector MatVec(const Vector& v) const;
  /// this^T * v. Requires v.size() == rows().
  Vector TransposeMatVec(const Vector& v) const;
  /// this * other. Requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  /// Transposed copy.
  Matrix Transposed() const;

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Dot product. Requires equal sizes.
double Dot(const Vector& a, const Vector& b);
/// Euclidean (L2) norm.
double Norm2(const Vector& a);
/// L1 norm.
double Norm1(const Vector& a);
/// Count of entries with |a_i| > tol (sparsity of a change vector).
size_t NonZeroCount(const Vector& a, double tol = 1e-12);
/// y += alpha * x. Requires equal sizes.
void Axpy(double alpha, const Vector& x, Vector* y);
/// Elementwise a - b.
Vector Sub(const Vector& a, const Vector& b);
/// Elementwise a + b.
Vector Add(const Vector& a, const Vector& b);
/// alpha * a.
Vector Scale(double alpha, const Vector& a);

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns kFailedPrecondition if A is (numerically) singular.
Result<Vector> SolveLinearSystem(Matrix a, Vector b);

/// Inverse of A via column-wise solves. Returns kFailedPrecondition if
/// singular. Intended for small systems (influence functions, SCM fitting).
Result<Matrix> Invert(const Matrix& a);

}  // namespace xfair

#endif  // XFAIR_UTIL_MATRIX_H_
