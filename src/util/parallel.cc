#include "src/util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/obs/obs.h"
#include "src/util/check.h"

namespace xfair {
namespace {

thread_local bool t_in_worker = false;
thread_local bool t_in_run = false;

/// Worker count from XFAIR_THREADS (0/unset/garbage -> hardware).
size_t ThreadsFromEnvironment() {
  const char* env = std::getenv("XFAIR_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

/// Global pool. One job runs at a time; workers pull task indices from a
/// shared atomic counter, so scheduling is dynamic but (by construction
/// of the chunking and reductions above it) results are not affected by
/// which worker runs which chunk. Nested calls — from a worker or from a
/// loop body on the calling thread — run inline.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool(ThreadsFromEnvironment());
    return *pool;
  }

  size_t num_threads() {
    std::lock_guard<std::mutex> guard(config_mutex_);
    return num_threads_;
  }

  void Resize(size_t n) {
    if (n == 0) n = ThreadsFromEnvironment();
    std::lock_guard<std::mutex> guard(config_mutex_);
    if (n == num_threads_) return;
    StopWorkers();
    num_threads_ = n;
    StartWorkers();
  }

  /// Runs task(0), ..., task(count - 1), blocking until all complete.
  /// The calling thread participates.
  void Run(size_t count, const std::function<void(size_t)>& task) {
    if (count == 0) return;
    if (t_in_worker || t_in_run) {
      for (size_t i = 0; i < count; ++i) task(i);
      return;
    }
    std::lock_guard<std::mutex> config_guard(config_mutex_);
    t_in_run = true;
    if (num_threads_ <= 1 || count <= 1) {
      for (size_t i = 0; i < count; ++i) task(i);
      t_in_run = false;
      return;
    }
    // Shared ownership: a worker that observed the job may touch its
    // counters slightly after the last task completes; the control block
    // must outlive every such access.
    auto job = std::make_shared<Job>();
    job->task = &task;
    job->count = count;
    {
      std::lock_guard<std::mutex> guard(job_mutex_);
      job_ = job;
      ++generation_;
    }
    job_cv_.notify_all();
    Drain(*job);  // Caller works too.
    {
      std::unique_lock<std::mutex> lock(job->done_mutex);
      job->done_cv.wait(lock, [&job] {
        return job->done.load(std::memory_order_acquire) >= job->count;
      });
    }
    {
      std::lock_guard<std::mutex> guard(job_mutex_);
      job_.reset();
    }
    t_in_run = false;
  }

 private:
  struct Job {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  explicit ThreadPool(size_t n) : num_threads_(n) { StartWorkers(); }

  void StartWorkers() {
    // num_threads_ includes the caller; spawn one fewer.
    for (size_t w = 0; w + 1 < num_threads_; ++w) {
      workers_.emplace_back([this](std::stop_token stop) {
        t_in_worker = true;
        uint64_t seen_generation = 0;
        for (;;) {
          std::shared_ptr<Job> job;
          {
            std::unique_lock<std::mutex> lock(job_mutex_);
            job_cv_.wait(lock, stop, [this, seen_generation] {
              return job_ != nullptr && generation_ != seen_generation;
            });
            if (stop.stop_requested()) return;
            seen_generation = generation_;
            job = job_;
          }
          Drain(*job);
        }
      });
    }
  }

  void StopWorkers() {
    for (auto& worker : workers_) worker.request_stop();
    job_cv_.notify_all();
    workers_.clear();  // jthread joins on destruction.
  }

  static void Drain(Job& job) {
    for (;;) {
      const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.count) return;
      (*job.task)(i);
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.count) {
        std::lock_guard<std::mutex> guard(job.done_mutex);
        job.done_cv.notify_all();
      }
    }
  }

  std::mutex config_mutex_;  // Serializes Run/Resize; one job at a time.
  size_t num_threads_;
  std::vector<std::jthread> workers_;

  std::mutex job_mutex_;
  std::condition_variable_any job_cv_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
};

}  // namespace

std::vector<ChunkRange> DeterministicChunks(size_t begin, size_t end) {
  XFAIR_CHECK(begin <= end);
  const size_t n = end - begin;
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  const size_t count = n < kMaxChunks ? n : kMaxChunks;
  chunks.reserve(count);
  const size_t base = n / count;
  const size_t extra = n % count;  // First `extra` chunks get one more.
  size_t at = begin;
  for (size_t c = 0; c < count; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    chunks.push_back({at, at + len, c});
    at += len;
  }
  XFAIR_CHECK(at == end);
  return chunks;
}

size_t ParallelThreads() { return ThreadPool::Instance().num_threads(); }

void SetParallelThreads(size_t n) { ThreadPool::Instance().Resize(n); }

bool InParallelWorker() { return t_in_worker; }

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(const ChunkRange&)>& body) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(begin, end);
  if (chunks.empty()) return;
  XFAIR_COUNTER_ADD("parallel/loops", 1);
  XFAIR_COUNTER_ADD("parallel/chunks", chunks.size());
  if (chunks.size() == 1) {
    body(chunks[0]);
    return;
  }
  XFAIR_SPAN("parallel/dispatch");
  ThreadPool::Instance().Run(chunks.size(),
                             [&](size_t c) { body(chunks[c]); });
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  ParallelForChunks(begin, end, [&body](const ChunkRange& chunk) {
    for (size_t i = chunk.begin; i < chunk.end; ++i) body(i);
  });
}

double PairwiseSum(std::vector<double> v) {
  return PairwiseSumInPlace(v.data(), v.size());
}

double PairwiseSumInPlace(double* v, size_t n) {
  if (n == 0) return 0.0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t i = 0; i + width < n; i += 2 * width) {
      v[i] += v[i + width];
    }
  }
  return v[0];
}

double ParallelReduceSum(size_t begin, size_t end,
                         const std::function<double(size_t)>& term) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(begin, end);
  if (chunks.empty()) return 0.0;
  std::vector<double> partials(chunks.size(), 0.0);
  ParallelForChunks(begin, end, [&](const ChunkRange& chunk) {
    double acc = 0.0;
    for (size_t i = chunk.begin; i < chunk.end; ++i) acc += term(i);
    partials[chunk.index] = acc;
  });
  return PairwiseSum(std::move(partials));
}

Vector ParallelReduceVector(
    size_t begin, size_t end, size_t dim,
    const std::function<void(const ChunkRange&, Vector*)>& partial) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(begin, end);
  Vector out(dim, 0.0);
  if (chunks.empty()) return out;
  std::vector<Vector> partials(chunks.size());
  ParallelForChunks(begin, end, [&](const ChunkRange& chunk) {
    Vector acc(dim, 0.0);
    partial(chunk, &acc);
    partials[chunk.index] = std::move(acc);
  });
  std::vector<double> column(chunks.size());
  for (size_t c = 0; c < dim; ++c) {
    for (size_t k = 0; k < partials.size(); ++k) column[k] = partials[k][c];
    out[c] = PairwiseSum(column);
  }
  return out;
}

}  // namespace xfair
