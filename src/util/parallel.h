// Deterministic parallel runtime.
//
// A lazily-initialized global pool of std::jthread workers runs chunked
// loops and reductions. The cardinal rule: results are bit-identical for
// every thread count, including the serial fallback. That is achieved by
// making all work decomposition a pure function of the *range size* —
// never of the thread count — and by reducing partial results in a fixed
// pairwise tree:
//
//   * A range [begin, end) is always split into the same chunks
//     (DeterministicChunks), whether 1 or 64 threads execute them.
//   * Each chunk is processed serially in ascending index order.
//   * ParallelReduceSum accumulates one partial per chunk and combines the
//     partials with PairwiseSum, so floating-point rounding is identical
//     regardless of which thread computed which chunk.
//   * Stochastic loop bodies draw from per-chunk (or per-item) Rng streams
//     obtained via Rng::Fork(index) instead of sharing one sequential
//     stream.
//
// The worker count comes from the XFAIR_THREADS environment variable at
// first use (default: hardware concurrency); SetParallelThreads overrides
// it at runtime. At 1 thread everything runs inline on the caller with no
// synchronization. Nested ParallelFor calls from inside a worker run
// inline, so library code can parallelize freely without deadlock.

#ifndef XFAIR_UTIL_PARALLEL_H_
#define XFAIR_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/util/matrix.h"

namespace xfair {

/// One chunk of a deterministically-split range.
struct ChunkRange {
  size_t begin = 0;  ///< First index (inclusive).
  size_t end = 0;    ///< Past-the-end index.
  size_t index = 0;  ///< Chunk ordinal; stable across thread counts.
};

/// Splits [begin, end) into at most kMaxChunks near-equal chunks. The
/// split depends only on the range, never on the thread count — the
/// foundation of the determinism guarantee.
std::vector<ChunkRange> DeterministicChunks(size_t begin, size_t end);

/// Upper bound on chunks per range (and so on per-call task count).
inline constexpr size_t kMaxChunks = 64;

/// Worker threads the global pool is configured for (>= 1). Reads
/// XFAIR_THREADS on first use; 0 or unset means hardware concurrency.
size_t ParallelThreads();

/// Reconfigures the pool to `n` workers (0 = re-read XFAIR_THREADS /
/// hardware default). Joins existing workers; must not be called
/// concurrently with a running parallel loop. Intended for tests and
/// benchmarks.
void SetParallelThreads(size_t n);

/// True when the calling thread is a pool worker (nested loops inline).
bool InParallelWorker();

/// Calls body(i) exactly once for every i in [begin, end), in parallel
/// across chunks. Each chunk runs its indices in ascending order. The
/// body must only write to caller-disjoint state per index.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

/// Chunk-granular variant: body(chunk) is called exactly once per chunk
/// of DeterministicChunks(begin, end). Use when the body wants per-chunk
/// scratch buffers or a per-chunk Rng stream (root.Fork(chunk.index)).
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(const ChunkRange&)>& body);

/// Sum of v in a fixed pairwise (binary-tree) order. Deterministic for a
/// given v regardless of threads; used to combine per-chunk partials.
double PairwiseSum(std::vector<double> v);

/// The same fixed pairwise tree over v[0..n), destroying the buffer in
/// place (no allocation). Bit-identical to PairwiseSum on the same
/// values — the allocation-free form batch engines use to replicate a
/// ParallelReduceVector combine inside reusable scratch arenas.
double PairwiseSumInPlace(double* v, size_t n);

/// Sum of term(i) over [begin, end): per-chunk serial accumulation plus a
/// pairwise tree over the chunk partials. Bit-identical for every thread
/// count (the serial path runs the same chunked algorithm).
double ParallelReduceSum(size_t begin, size_t end,
                         const std::function<double(size_t)>& term);

/// Elementwise vector reduction: returns the per-coordinate sum of
/// partial(i) over [begin, end) chunks. `partial` fills its chunk's
/// accumulator (size `dim`, zero-initialized); the per-chunk vectors are
/// combined coordinate-wise with PairwiseSum.
Vector ParallelReduceVector(
    size_t begin, size_t end, size_t dim,
    const std::function<void(const ChunkRange&, Vector*)>& partial);

}  // namespace xfair

#endif  // XFAIR_UTIL_PARALLEL_H_
