#include "src/util/rng.h"

#include <cmath>
#include <numbers>

namespace xfair {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  XFAIR_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::Below(uint64_t n) {
  XFAIR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::IntIn(int64_t lo, int64_t hi) {
  XFAIR_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  XFAIR_CHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  XFAIR_CHECK(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    XFAIR_CHECK(w >= 0.0);
    total += w;
  }
  XFAIR_CHECK_MSG(total > 0.0, "Categorical needs a positive weight");
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return last bucket.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  XFAIR_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Split() { return Rng(Next()); }

Rng Rng::Fork(uint64_t stream) const {
  // Mix the (unmodified) state words with the stream index through
  // splitmix64 so nearby stream numbers land in unrelated seeds.
  uint64_t h = 0x6a09e667f3bcc909ULL ^ stream;
  h = SplitMix64(&h);
  for (uint64_t s : state_) {
    uint64_t mixed = h ^ s;
    h = SplitMix64(&mixed);
  }
  uint64_t final_mix = h ^ stream;
  return Rng(SplitMix64(&final_mix));
}

}  // namespace xfair
