// Deterministic pseudo-random number generation.
//
// Every stochastic component in xfair takes an explicit seed and derives all
// randomness from an Rng, so experiments and tests are exactly reproducible
// across runs and platforms. The generator is xoshiro256** seeded via
// splitmix64, independent of the (implementation-defined) <random>
// distributions.

#ifndef XFAIR_UTIL_RNG_H_
#define XFAIR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace xfair {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Seeds the state via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t IntIn(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Below(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// A fresh Rng whose stream is independent of this one (for spawning
  /// per-worker or per-component generators). Advances this generator.
  Rng Split();

  /// Deterministic child stream number `stream`, derived from the current
  /// state WITHOUT advancing it: Fork(i) always yields the same generator
  /// for a given state, and distinct `stream` values yield independent
  /// streams. This is how parallel loops get per-chunk (or per-item)
  /// randomness that is identical for every thread count.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace xfair

#endif  // XFAIR_UTIL_RNG_H_
