#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace xfair {

double Mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double Variance(const Vector& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double Stddev(const Vector& v) { return std::sqrt(Variance(v)); }

double Quantile(Vector v, double q) {
  XFAIR_CHECK(q >= 0.0 && q <= 1.0);
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(Vector v) { return Quantile(std::move(v), 0.5); }

double PearsonCorrelation(const Vector& a, const Vector& b) {
  XFAIR_CHECK(a.size() == b.size() && !a.empty());
  const double ma = Mean(a), mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double LogGamma(double x) {
  XFAIR_CHECK(x > 0.0);
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * std::numbers::pi) + (x + 0.5) * std::log(t) -
         t + std::log(a);
}

double LogChoose(uint64_t n, uint64_t k) {
  XFAIR_CHECK(k <= n);
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

double BinomialTailProb(uint64_t n, uint64_t k, double p) {
  XFAIR_CHECK(p >= 0.0 && p <= 1.0);
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double tail = 0.0;
  const double lp = std::log(p), lq = std::log1p(-p);
  for (uint64_t i = k; i <= n; ++i) {
    const double lterm = LogChoose(n, i) + static_cast<double>(i) * lp +
                         static_cast<double>(n - i) * lq;
    tail += std::exp(lterm);
  }
  return std::min(tail, 1.0);
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace xfair
