// Descriptive statistics and the few special functions xfair needs
// (normal CDF, log-gamma, binomial tails for probability-based ranking
// fairness tests).

#ifndef XFAIR_UTIL_STATS_H_
#define XFAIR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

#include "src/util/matrix.h"

namespace xfair {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const Vector& v);

/// Unbiased sample variance; 0 for fewer than two elements.
double Variance(const Vector& v);

/// Sample standard deviation.
double Stddev(const Vector& v);

/// Linear-interpolation quantile, q in [0, 1]. An empty vector yields
/// quiet NaN (the documented "no data" sentinel — callers that can see
/// empty slices must test with std::isnan); a one-element vector yields
/// that element for every q.
double Quantile(Vector v, double q);

/// Median (Quantile at 0.5). Empty input yields quiet NaN; one element
/// yields that element.
double Median(Vector v);

/// Pearson correlation; 0 if either side is constant. Requires equal,
/// non-empty sizes.
double PearsonCorrelation(const Vector& a, const Vector& b);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// log(Gamma(x)) for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// log(n choose k); requires k <= n.
double LogChoose(uint64_t n, uint64_t k);

/// P(X >= k) for X ~ Binomial(n, p). Exact summation in log space.
double BinomialTailProb(uint64_t n, uint64_t k, double p);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace xfair

#endif  // XFAIR_UTIL_STATS_H_
