// Status / Result error-handling primitives.
//
// Public xfair APIs do not throw: fallible operations return Status (no
// payload) or Result<T> (payload or error), in the style of RocksDB/Arrow.
// Programmer errors (precondition violations) use XFAIR_CHECK from check.h.

#ifndef XFAIR_UTIL_STATUS_H_
#define XFAIR_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace xfair {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kNotConverged,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy and
/// compare; the message is only meaningful for non-OK statuses.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Exactly one is present.
///
/// Usage:
///   Result<Dataset> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. OK statuses are a logic error
  /// and are converted to kInternal to keep the invariant.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value.
};

/// Propagates a non-OK Status out of the enclosing function.
#define XFAIR_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::xfair::Status _xfair_st = (expr);              \
    if (!_xfair_st.ok()) return _xfair_st;           \
  } while (0)

}  // namespace xfair

#endif  // XFAIR_UTIL_STATUS_H_
